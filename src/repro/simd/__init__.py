"""SIMD substrate: a counting lane machine and vectorization primitives."""

from .analysis import (
    divergence_loss,
    lane_utilization_report,
    queue_lane_efficiency,
)
from .gather import compress, expand, partition_by_key
from .kernels import (
    distance_kernel_intrinsics,
    distance_kernel_scalar,
    instruction_ratio,
    masked_lookup_kernel,
)
from .lanes import LaneCounters, VectorUnit

__all__ = [
    "divergence_loss",
    "lane_utilization_report",
    "queue_lane_efficiency",
    "compress",
    "expand",
    "partition_by_key",
    "distance_kernel_intrinsics",
    "distance_kernel_scalar",
    "instruction_ratio",
    "masked_lookup_kernel",
    "LaneCounters",
    "VectorUnit",
]
