"""Compress / expand primitives: how SIMD code replaces conditionals.

The paper (§II-A3): conditional physics "is typically done by replacing the
conditionals with appropriate gather/scatter, compress/decompress, and
bit-controlled vector operations."  These are those primitives, built on
the counting :class:`repro.simd.lanes.VectorUnit` so the cost of the
transformation is measurable:

* :func:`compress` packs the active lanes of a bank into a dense sub-bank
  (``vcompress``);
* :func:`expand` scatters a dense sub-bank's results back to their home
  lanes (``vexpand``);
* :func:`partition_by_key` splits a bank into per-key dense queues (the
  event-based method's per-material / per-reaction queues).
"""

from __future__ import annotations

import numpy as np

from .lanes import VectorUnit

__all__ = ["compress", "expand", "partition_by_key"]


def compress(
    unit: VectorUnit, mask: np.ndarray, *arrays: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Pack the masked lanes of each array into dense arrays.

    Returns one packed array per input; costs one vector instruction per
    chunk per array (as ``vcompressps`` would).
    """
    mask = np.asarray(mask, dtype=bool)
    idx = np.nonzero(mask)[0]
    outs = []
    for a in arrays:
        a = np.asarray(a)
        chunks = -(-mask.shape[0] // unit.width)
        unit.counters.vector_instructions += chunks
        unit.counters.lane_slots_total += chunks * unit.width
        unit.counters.lane_slots_active += idx.shape[0]
        outs.append(a[idx])
    return tuple(outs)


def expand(
    unit: VectorUnit,
    mask: np.ndarray,
    packed: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Scatter a packed array back to its home lanes (inverse of compress)."""
    mask = np.asarray(mask, dtype=bool)
    idx = np.nonzero(mask)[0]
    if idx.shape[0] != np.asarray(packed).shape[0]:
        raise ValueError("packed length does not match mask population")
    chunks = -(-mask.shape[0] // unit.width)
    unit.counters.vector_instructions += chunks
    unit.counters.lane_slots_total += chunks * unit.width
    unit.counters.lane_slots_active += idx.shape[0]
    out[idx] = packed
    return out


def partition_by_key(
    unit: VectorUnit, keys: np.ndarray, *arrays: np.ndarray
) -> dict[int, tuple[np.ndarray, ...]]:
    """Split a bank into dense per-key queues (event queues).

    ``keys`` is an integer array (material id, event kind, ...); each key's
    entry holds the compressed arrays for that key.
    """
    keys = np.asarray(keys)
    out: dict[int, tuple[np.ndarray, ...]] = {}
    for key in np.unique(keys):
        mask = keys == key
        out[int(key)] = compress(unit, mask, *arrays)
    return out
