"""A masked vector-lane machine with instruction accounting.

The Xeon Phi's 512-bit unit executes every instruction across 16 lanes,
with a write mask disabling lanes that must not participate — conditionals
become masked execution, at the cost of wasted lane-slots.  This module
emulates that model on NumPy arrays: work is processed in fixed-width
chunks, every chunk costs one vector instruction regardless of how many
lanes are active, and the unit keeps precise counts of instructions issued
and lane-slots used vs wasted.

This makes the paper's central quantities *observable*: the instruction-
count gap between banked (vector) and per-particle (scalar) execution, and
the lane-efficiency loss caused by branchy physics (S(alpha,beta)/URR) —
the reason the paper had to strip those treatments to vectorize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MachineModelError

__all__ = ["VectorUnit", "LaneCounters"]


@dataclass
class LaneCounters:
    """Instruction and lane-occupancy accounting."""

    vector_instructions: int = 0
    scalar_instructions: int = 0
    gather_instructions: int = 0
    lane_slots_total: int = 0
    lane_slots_active: int = 0

    @property
    def lane_efficiency(self) -> float:
        """Fraction of issued lane-slots that did useful work."""
        if self.lane_slots_total == 0:
            return 1.0
        return self.lane_slots_active / self.lane_slots_total

    def reset(self) -> None:
        self.vector_instructions = 0
        self.scalar_instructions = 0
        self.gather_instructions = 0
        self.lane_slots_total = 0
        self.lane_slots_active = 0


class VectorUnit:
    """A ``width``-lane SIMD unit executing NumPy ufuncs chunk by chunk.

    Default width 16 mirrors the MIC's 512-bit single-precision registers.
    All elementwise results are exactly NumPy's (the unit changes *how*
    work is counted, not *what* is computed).
    """

    def __init__(self, width: int = 16) -> None:
        if width < 1:
            raise MachineModelError("vector width must be >= 1")
        self.width = width
        self.counters = LaneCounters()

    # -- Core execution -------------------------------------------------------

    def elementwise(
        self,
        op: np.ufunc,
        *arrays: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Apply a ufunc across lanes, chunk by chunk, with optional mask.

        Every chunk costs one vector instruction and ``width`` lane-slots;
        masked-off lanes are issued but wasted (exactly the masked-execution
        cost model of real vector hardware).  Unmasked lanes of the output
        hold the op result; masked lanes hold the first input unchanged
        (merge-masking).
        """
        arrays = tuple(np.asarray(a) for a in arrays)
        n = arrays[0].shape[0]
        for a in arrays[1:]:
            if a.shape[0] != n:
                raise MachineModelError("lane operand length mismatch")
        out = np.array(arrays[0], dtype=np.result_type(*arrays), copy=True)
        full = op(*arrays)
        if mask is None:
            out = full
            active = n
        else:
            mask = np.asarray(mask, dtype=bool)
            out[mask] = full[mask]
            active = int(mask.sum())
        chunks = -(-n // self.width)
        self.counters.vector_instructions += chunks
        self.counters.lane_slots_total += chunks * self.width
        self.counters.lane_slots_active += active
        return out

    def scalar_loop(self, op, *arrays: np.ndarray) -> np.ndarray:
        """The scalar counterpart: one instruction per element.

        Used as the history-method stand-in when measuring instruction
        ratios; executes a genuine Python-level loop."""
        arrays = tuple(np.asarray(a) for a in arrays)
        n = arrays[0].shape[0]
        out = np.empty(n, dtype=np.result_type(*arrays))
        for i in range(n):
            out[i] = op(*(a[i] for a in arrays))
            self.counters.scalar_instructions += 1
        return out

    # -- Memory-style operations ---------------------------------------------

    def gather(self, table: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Indexed load across lanes (``vgather``)."""
        idx = np.asarray(idx)
        chunks = -(-idx.shape[0] // self.width)
        self.counters.gather_instructions += chunks
        self.counters.vector_instructions += chunks
        self.counters.lane_slots_total += chunks * self.width
        self.counters.lane_slots_active += idx.shape[0]
        return table[idx]

    def scatter(self, out: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        """Indexed store across lanes (``vscatter``)."""
        idx = np.asarray(idx)
        chunks = -(-idx.shape[0] // self.width)
        self.counters.gather_instructions += chunks
        self.counters.vector_instructions += chunks
        self.counters.lane_slots_total += chunks * self.width
        self.counters.lane_slots_active += idx.shape[0]
        out[idx] = values

    def reset(self) -> None:
        self.counters.reset()
