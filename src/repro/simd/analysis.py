"""Lane-utilization analysis of a transport run's queue trace.

As a generation drains, the event queues shrink; once a queue holds fewer
particles than the vector width (or a non-multiple), trailing lanes idle.
:func:`queue_lane_efficiency` converts the per-stage queue occupancies
(:class:`repro.transport.stats.TransportStats`, recorded by *either*
backend — per event cycle on the banked schedule, per particle history on
the scalar one) into the lane efficiency a ``width``-lane machine would
achieve — the quantitative form of the paper's observation that banking
needs *large* banks (Fig. 3's ">10,000 particles" crossover has a
lane-utilization component as well as a PCIe one).  Run on a history
trace, the report shows what vectorizing *those* histories as-is would
waste — the divergence the event schedule exists to absorb.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..transport.stats import TransportStats

__all__ = [
    "queue_lane_efficiency",
    "divergence_loss",
    "lane_utilization_report",
]


def queue_lane_efficiency(queue_sizes: Iterable[int], width: int = 16) -> float:
    """Aggregate lane efficiency of processing each queue in ``width`` chunks.

    ``sum(q) / sum(ceil(q / width) * width)`` over all queue drains.
    """
    total_active = 0
    total_slots = 0
    for q in queue_sizes:
        if q < 0:
            raise ValueError("negative queue size")
        if q == 0:
            continue
        total_active += q
        total_slots += math.ceil(q / width) * width
    return total_active / total_slots if total_slots else 1.0


def divergence_loss(
    branch_fractions: Iterable[float], width: int = 16
) -> float:
    """Expected lane efficiency when a bank splits into branches.

    If a bank of many particles splits into sub-banks with the given
    fractions and each sub-bank is compressed and executed separately,
    efficiency approaches 1 for large banks; but under *masked* execution
    (no compress), every branch pays full-width issue and efficiency is
    ``1 / n_branches``-ish weighted by fractions.  This helper returns the
    masked-execution efficiency: ``1 / sum over branches of 1`` weighted —
    i.e. ``1 / (number of executed branches)`` when all lanes take some
    branch: sum(f_i) / n_branches executed.
    """
    fractions = [f for f in branch_fractions if f > 0]
    if not fractions:
        return 1.0
    total = sum(fractions)
    if total > 1.0 + 1e-9:
        raise ValueError("branch fractions exceed 1")
    # Masked execution issues every branch across all lanes.
    return total / len(fractions)


def lane_utilization_report(
    stats: "TransportStats", width: int = 16
) -> dict:
    """Per-stage lane utilization from a transport run's queue trace.

    Combines :meth:`~repro.transport.stats.TransportStats.summary`
    occupancy statistics with :func:`queue_lane_efficiency` for each
    stage, so one call answers "how full were the SIMD lanes in each
    stage of this run?" — for either backend's trace.

    Returns ``{"iterations", "width", "stages": {stage: {"mean", "min",
    "max", "total", "lane_efficiency"}}, "gather": {"mean_stride",
    "strides"}}``.  The ``gather`` section is the union-grid
    gather-locality profile recorded by the event schedule
    (:meth:`~repro.transport.stats.TransportStats.record_gather_indices`):
    ``mean_stride`` is the mean absolute index stride between consecutive
    XS-lookup gathers — near-sequential (≈1) under the energy-sorted bank
    policy, on the order of the union-grid size without it — or ``None``
    when no gather stream was recorded (history trace, no union grid).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    summary = stats.summary()
    counts_by_stage = {
        "lookup": stats.lookup_counts,
        "collision": stats.collision_counts,
        "crossing": stats.crossing_counts,
    }
    stages = {}
    for name, occ in summary["stages"].items():
        stages[name] = dict(occ)
        stages[name]["lane_efficiency"] = queue_lane_efficiency(
            counts_by_stage[name], width=width
        )
    return {
        "iterations": summary["iterations"],
        "width": width,
        "stages": stages,
        "gather": summary["gather"],
    }
