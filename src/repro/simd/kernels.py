r"""Intrinsics-style kernels on the lane machine (Algorithm 4, literally).

:func:`distance_kernel_intrinsics` transcribes lines 10-19 of the paper's
Algorithm 4 onto the counting :class:`~repro.simd.lanes.VectorUnit`: per
16-wide chunk, a load of R, a load of X, ``log``, ``div``, ``set1(-1)``,
``mul``, and a store — so the emitted instruction counts can be compared
directly against the scalar method's, and the lane machine's result is
bit-identical to the NumPy reference.

:func:`masked_lookup_kernel` demonstrates the cost of *conditional* physics
under masking: lanes whose particles need the URR branch execute it masked,
and the unit's lane-efficiency counter quantifies the waste — the paper's
reason for stripping URR/S(alpha, beta) from its vectorized benchmarks.
"""

from __future__ import annotations

import numpy as np

from .lanes import VectorUnit

__all__ = [
    "distance_kernel_intrinsics",
    "distance_kernel_scalar",
    "masked_lookup_kernel",
    "instruction_ratio",
]


def distance_kernel_intrinsics(
    unit: VectorUnit, r: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Algorithm 4's vector body: ``D = -log(R) / X`` on the lane machine."""
    v3 = unit.elementwise(np.log, r)  # _mm512_log_ps
    v4 = unit.elementwise(np.divide, v3, x)  # _mm512_div_ps
    v6 = unit.elementwise(np.negative, v4)  # set1(-1) + _mm512_mul_ps
    return v6


def distance_kernel_scalar(
    unit: VectorUnit, r: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """The per-particle scalar equivalent (history-method structure)."""
    import math

    return unit.scalar_loop(lambda ri, xi: -math.log(ri) / xi, r, x)


def masked_lookup_kernel(
    unit: VectorUnit,
    sigma: np.ndarray,
    urr_mask: np.ndarray,
    urr_factor: np.ndarray,
) -> np.ndarray:
    """A lookup epilogue with a masked URR branch.

    All lanes multiply by the URR factor under mask; the instruction cost is
    charged for every lane, so the unit's lane efficiency drops exactly in
    proportion to how rare the branch is — quantifying the divergence the
    paper describes for branchy physics.
    """
    return unit.elementwise(np.multiply, sigma, urr_factor, mask=urr_mask)


def instruction_ratio(n: int, width: int = 16) -> dict[str, float]:
    """Measured instruction counts: scalar vs vector for the same kernel.

    Runs both distance-kernel variants on the same data and reports the
    emitted instruction counts and their ratio (ideally ~width x fewer
    vector instructions).
    """
    rng = np.random.default_rng(0)
    r = rng.random(n) * 0.98 + 0.01
    x = rng.random(n) + 0.5
    vec_unit = VectorUnit(width=width)
    d_vec = distance_kernel_intrinsics(vec_unit, r, x)
    scal_unit = VectorUnit(width=width)
    d_scal = distance_kernel_scalar(scal_unit, r, x)
    assert np.allclose(d_vec, d_scal)
    return {
        "vector_instructions": float(vec_unit.counters.vector_instructions),
        "scalar_instructions": float(scal_unit.counters.scalar_instructions),
        "ratio": scal_unit.counters.scalar_instructions
        / max(1, vec_unit.counters.vector_instructions),
    }
