"""Per-rank health tracking: batch rates, heartbeats, and classification.

The monitor ingests two observation streams and nothing else:

* :meth:`HealthMonitor.record` — one entry per (rank, batch) with the
  rank's wall/modelled seconds and particle count, folded into an
  exponentially smoothed calculation rate (the paper observes the rate
  "varies little between batches", so the EMA settles fast);
* :meth:`HealthMonitor.heartbeat` — a liveness timestamp on an explicit
  caller-supplied clock.

Classification is a **pure function of the observations**: a rank is a
``STRAGGLER`` when the fastest rank's smoothed rate exceeds its own by
more than ``straggler_factor``, and ``DEAD`` when it was explicitly marked
(eviction, injected crash) or its heartbeat is older than
``heartbeat_timeout_s`` at the queried ``now``.  No hidden wall-clock
reads — the same observation sequence classifies identically on any
machine, which is what lets supervision tests (and degraded-run replays)
be deterministic.
"""

from __future__ import annotations

import enum
from typing import Iterable

from ..errors import SupervisionError

__all__ = ["HealthMonitor", "RankStatus"]


class RankStatus(enum.Enum):
    """The three states a supervised rank can be in."""

    HEALTHY = "healthy"
    STRAGGLER = "straggler"
    DEAD = "dead"


class _RankState:
    __slots__ = ("rate", "batches", "last_batch", "last_seen",
                 "consecutive_straggles", "dead")

    def __init__(self) -> None:
        self.rate: float | None = None
        self.batches = 0
        self.last_batch = -1
        self.last_seen: float | None = None
        self.consecutive_straggles = 0
        self.dead = False


class HealthMonitor:
    """Tracks per-rank batch rates and heartbeats; classifies each rank."""

    def __init__(
        self,
        ranks: int | Iterable[int],
        *,
        straggler_factor: float = 4.0,
        heartbeat_timeout_s: float | None = None,
        smoothing: float = 0.5,
    ) -> None:
        rank_ids = (
            list(range(ranks)) if isinstance(ranks, int) else list(ranks)
        )
        if not rank_ids:
            raise SupervisionError("HealthMonitor needs at least one rank")
        if straggler_factor <= 1.0:
            raise SupervisionError(
                f"straggler_factor must be > 1, got {straggler_factor}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise SupervisionError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        self.straggler_factor = straggler_factor
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.smoothing = smoothing
        self._ranks: dict[int, _RankState] = {
            r: _RankState() for r in rank_ids
        }

    def _state(self, rank: int) -> _RankState:
        try:
            return self._ranks[rank]
        except KeyError:
            raise SupervisionError(f"unknown rank {rank}") from None

    # -- Observations -------------------------------------------------------------

    def record(
        self, rank: int, batch: int, seconds: float, n_particles: int
    ) -> float:
        """Fold one batch observation into the rank's smoothed rate."""
        state = self._state(rank)
        if seconds < 0 or n_particles < 0:
            raise SupervisionError(
                f"rank {rank}: negative batch observation "
                f"({seconds=}, {n_particles=})"
            )
        rate = n_particles / seconds if seconds > 0 else float("inf")
        if state.rate is None:
            state.rate = rate
        else:
            state.rate = (
                self.smoothing * rate + (1.0 - self.smoothing) * state.rate
            )
        state.batches += 1
        state.last_batch = max(state.last_batch, batch)
        return state.rate

    def heartbeat(self, rank: int, now: float) -> None:
        """Record a liveness signal at caller-clock time ``now``."""
        self._state(rank).last_seen = now

    def mark_dead(self, rank: int) -> None:
        """Declare a rank dead (eviction, injected crash)."""
        self._state(rank).dead = True

    # -- Classification -----------------------------------------------------------

    def rate(self, rank: int) -> float | None:
        """The rank's smoothed calculation rate (None before any batch)."""
        return self._state(rank).rate

    def _best_rate(self) -> float | None:
        rates = [
            s.rate
            for s in self._ranks.values()
            if not s.dead and s.rate is not None
        ]
        return max(rates) if rates else None

    def classify(self, rank: int, now: float | None = None) -> RankStatus:
        """Deterministic status from the recorded observations alone."""
        state = self._state(rank)
        if state.dead:
            return RankStatus.DEAD
        if (
            self.heartbeat_timeout_s is not None
            and now is not None
            and state.last_seen is not None
            and now - state.last_seen > self.heartbeat_timeout_s
        ):
            return RankStatus.DEAD
        best = self._best_rate()
        if (
            best is not None
            and state.rate is not None
            and state.rate * self.straggler_factor < best
        ):
            return RankStatus.STRAGGLER
        return RankStatus.HEALTHY

    def statuses(self, now: float | None = None) -> dict[int, RankStatus]:
        return {r: self.classify(r, now) for r in sorted(self._ranks)}

    def update_straggles(self, now: float | None = None) -> dict[int, int]:
        """Advance per-rank consecutive-straggler counters by one batch.

        Call once per completed batch, after every rank's observation has
        been recorded; returns the updated counters.  A batch spent
        straggling increments the counter, a healthy batch resets it —
        chronic straggling (``evict_after`` consecutive batches) is the
        supervisor's eviction trigger.
        """
        counts: dict[int, int] = {}
        for rank in sorted(self._ranks):
            state = self._ranks[rank]
            if state.dead:
                continue
            if self.classify(rank, now) is RankStatus.STRAGGLER:
                state.consecutive_straggles += 1
            else:
                state.consecutive_straggles = 0
            counts[rank] = state.consecutive_straggles
        return counts

    def consecutive_straggles(self, rank: int) -> int:
        return self._state(rank).consecutive_straggles

    # -- Export -------------------------------------------------------------------

    def summary(self, now: float | None = None) -> dict:
        """Per-rank health document (rates, statuses, straggle streaks)."""
        return {
            rank: {
                "status": self.classify(rank, now).value,
                "rate": state.rate,
                "batches": state.batches,
                "last_batch": state.last_batch,
                "consecutive_straggles": state.consecutive_straggles,
            }
            for rank, state in sorted(self._ranks.items())
        }
