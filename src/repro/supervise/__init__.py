"""In-flight supervision: health monitoring, deadlines, degradation.

Layering: this package sits *beside* the execution and serve layers, not
above them — it imports only :mod:`repro.errors` (pure bookkeeping), and
the layers being supervised call into it.  ``tools/check_layering.py``
enforces that no transport/execution/serve/cluster module is imported
from here.
"""

from .circuit import CircuitBreaker
from .deadline import Budget, Deadline
from .health import HealthMonitor, RankStatus
from .supervisor import SupervisionEvent, SupervisionPolicy, Supervisor

__all__ = [
    "Budget",
    "CircuitBreaker",
    "Deadline",
    "HealthMonitor",
    "RankStatus",
    "SupervisionEvent",
    "SupervisionPolicy",
    "Supervisor",
]
