"""Deadline and budget primitives: typed, clock-agnostic time bounds.

Two shapes cover every supervised operation in the system:

* :class:`Deadline` — a fixed allowance measured against a *clock* (wall
  clock by default, an injectable callable in tests and modelled-time
  callers).  ``check()`` raises :class:`~repro.errors.DeadlineExceededError`
  once the allowance is spent; ``remaining()`` feeds poll timeouts so a
  loop converges on its bound instead of overshooting it.
* :class:`Budget` — a consumable allowance of *charged* seconds with no
  clock at all.  Callers ``spend()`` modelled costs explicitly (a fabric
  collective's tree time, a PCIe shipment), which keeps enforcement
  bit-deterministic: the same run charges the same costs in the same order
  on any machine.

Both raise typed errors carrying the allowance and the overrun, so a
caller can distinguish "the batch barrier hung" from a physics failure and
route it into retry / eviction instead of aborting the run.
"""

from __future__ import annotations

import time

from ..errors import DeadlineExceededError, SupervisionError

__all__ = ["Budget", "Deadline"]


class Deadline:
    """A fixed time allowance measured against an injectable clock."""

    def __init__(
        self,
        seconds: float,
        *,
        label: str = "operation",
        clock=time.monotonic,
    ) -> None:
        if seconds < 0:
            raise SupervisionError(
                f"deadline for {label!r} must be >= 0, got {seconds}"
            )
        self.seconds = float(seconds)
        self.label = label
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (clamped at zero) — the natural poll timeout."""
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        return self.elapsed() > self.seconds

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the allowance is spent."""
        elapsed = self.elapsed()
        if elapsed > self.seconds:
            detail = f" while {what}" if what else ""
            raise DeadlineExceededError(
                f"{self.label} exceeded its {self.seconds:g}s deadline"
                f"{detail} ({elapsed:.3f}s elapsed)",
                deadline_s=self.seconds,
                elapsed_s=elapsed,
            )


class Budget:
    """A consumable allowance of explicitly charged (modelled) seconds.

    There is no clock: callers charge costs with :meth:`spend`, so a
    deterministic run enforces the same bound identically on every
    machine.  The charge that crosses the line is *included* in
    ``spent`` — the error reports exactly how far over the run went.
    """

    def __init__(self, total_s: float, *, label: str = "budget") -> None:
        if total_s < 0:
            raise SupervisionError(
                f"budget {label!r} must be >= 0, got {total_s}"
            )
        self.total_s = float(total_s)
        self.label = label
        self.spent = 0.0

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_s - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent > self.total_s

    def spend(self, seconds: float, what: str = "") -> float:
        """Charge ``seconds``; raise once the total allowance is crossed."""
        if seconds < 0:
            raise SupervisionError(
                f"budget {self.label!r}: negative charge {seconds}"
            )
        self.spent += float(seconds)
        if self.spent > self.total_s:
            detail = f" on {what}" if what else ""
            raise DeadlineExceededError(
                f"{self.label} exhausted its {self.total_s:g}s allowance"
                f"{detail} ({self.spent:.6g}s charged)",
                deadline_s=self.total_s,
                elapsed_s=self.spent,
            )
        return self.spent
