"""A consecutive-failure circuit breaker keyed by arbitrary ids.

The serve pool's crash-recovery loop (respawn the worker, requeue the job)
is the right response to a *flaky* failure and exactly the wrong response
to a *poison* one: a job that deterministically kills its worker would be
respawned forever, burning a worker slot per attempt.  The breaker bounds
that loop with the standard circuit pattern: ``threshold`` consecutive
failures on one key trips the key's circuit **open**; a success while
still closed resets the streak.  The same shape serves rank supervision —
a rank that straggles N consecutive batches trips its circuit and is
evicted.

The breaker is bookkeeping only (no clock, no half-open probation): state
is a pure function of the record_* call sequence, so a replayed run trips
identically.  Thread-safe: the serve service mutates it from its loop
while scrapers export it.
"""

from __future__ import annotations

import threading

from ..errors import SupervisionError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Per-key consecutive-failure counter with an open/closed circuit."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise SupervisionError(
                f"CircuitBreaker needs threshold >= 1, got {threshold}"
            )
        self.threshold = threshold
        self._lock = threading.Lock()
        self._failures: dict[str, int] = {}
        self._open: set[str] = set()

    def record_failure(self, key: str) -> int:
        """Count one failure; returns the key's consecutive-failure streak.

        The circuit for ``key`` trips open when the streak reaches the
        threshold (and stays open — a poisoned key does not heal).
        """
        with self._lock:
            count = self._failures.get(key, 0) + 1
            self._failures[key] = count
            if count >= self.threshold:
                self._open.add(key)
            return count

    def record_success(self, key: str) -> None:
        """A success on a still-closed circuit resets the streak."""
        with self._lock:
            if key not in self._open:
                self._failures.pop(key, None)

    def is_open(self, key: str) -> bool:
        with self._lock:
            return key in self._open

    def allow(self, key: str) -> bool:
        """Whether work keyed by ``key`` may still be dispatched."""
        return not self.is_open(key)

    def failures(self, key: str) -> int:
        with self._lock:
            return self._failures.get(key, 0)

    def open_keys(self) -> list[str]:
        with self._lock:
            return sorted(self._open)

    def as_dict(self) -> dict:
        """Exportable state: threshold plus every tracked key's circuit."""
        with self._lock:
            return {
                "threshold": self.threshold,
                "open": sorted(self._open),
                "keys": {
                    key: {
                        "consecutive_failures": count,
                        "state": "open" if key in self._open else "closed",
                    }
                    for key, count in sorted(self._failures.items())
                },
            }
