"""The supervisor: policy + monitor + eviction bookkeeping for a run.

The paper's symmetric mode (§III-B3) has no answer to a rank that slows or
dies mid-run: the batch barrier simply waits.  The resilience layer (PR 1)
can recover *after* a crash from a checkpoint; the :class:`Supervisor`
watches a run *in flight* and drives **graceful degradation**:

* every batch, each rank's (seconds, particles) observation feeds the
  :class:`~repro.supervise.health.HealthMonitor`;
* a rank declared dead (injected crash, missed heartbeats) or chronically
  straggling (``evict_after`` consecutive batches beyond
  ``straggler_factor``) is **evicted**: removed from the alive set, its
  in-flight global-id slice redistributed across survivors by the caller
  (:func:`repro.resilience.recovery.redistribute_slice`), and subsequent
  batches split over the survivors only;
* eviction below ``min_ranks`` raises
  :class:`~repro.errors.DegradedRunError` — degradation has a floor;
* ``batch_deadline_s`` bounds any single batch, surfacing a hung barrier
  as a typed :class:`~repro.errors.DeadlineExceededError` instead of a
  silent stall.

Determinism argument: eviction changes *which rank* transports a slice,
never *which histories* are run — particle RNG streams are keyed by global
id alone and the fission bank's canonical ``(parent, seq)`` order is
partition-invariant, so a degraded run's banks and work counters are
bit-identical to a fault-free run of the surviving topology (tallies agree
to per-rank summation order, the repo-wide float contract).

This module deliberately imports **no transport, execution, serve, or
cluster code** (enforced by ``tools/check_layering.py``): schedulers call
into the supervisor, never the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DegradedRunError, SupervisionError
from .deadline import Budget
from .health import HealthMonitor, RankStatus

__all__ = ["SupervisionEvent", "SupervisionPolicy", "Supervisor"]


@dataclass(frozen=True)
class SupervisionPolicy:
    """Deterministic thresholds governing one supervised run."""

    #: A rank is straggling when the fastest rank's smoothed rate exceeds
    #: its own by more than this factor.
    straggler_factor: float = 4.0
    #: Consecutive straggling batches before a rank is evicted.
    evict_after: int = 2
    #: Eviction never reduces the alive set below this floor.
    min_ranks: int = 1
    #: Hard bound on a single batch's wall/modelled seconds (None = off).
    batch_deadline_s: float | None = None
    #: Heartbeats older than this (on the caller's clock) mean dead.
    heartbeat_timeout_s: float | None = None
    #: Modelled-communication allowance for the whole run (None = off).
    comm_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.evict_after < 1:
            raise SupervisionError(
                f"evict_after must be >= 1, got {self.evict_after}"
            )
        if self.min_ranks < 1:
            raise SupervisionError(
                f"min_ranks must be >= 1, got {self.min_ranks}"
            )
        for name in ("batch_deadline_s", "heartbeat_timeout_s",
                     "comm_budget_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SupervisionError(
                    f"{name} must be positive when set, got {value}"
                )


@dataclass(frozen=True)
class SupervisionEvent:
    """One supervision decision, kept for the run report."""

    batch: int
    rank: int
    action: str  # "evict"
    reason: str  # "crash" | "straggler" | "heartbeat"


@dataclass
class Supervisor:
    """In-flight watchdog for one run across a fixed initial rank set."""

    n_ranks: int = 1
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)

    def __post_init__(self) -> None:
        if self.n_ranks < 1:
            raise SupervisionError("Supervisor needs n_ranks >= 1")
        self.monitor = HealthMonitor(
            self.n_ranks,
            straggler_factor=self.policy.straggler_factor,
            heartbeat_timeout_s=self.policy.heartbeat_timeout_s,
        )
        self._alive = list(range(self.n_ranks))
        self.evicted: list[int] = []
        self.events: list[SupervisionEvent] = []
        self.retries = 0
        self._batch = -1
        self.comm_budget: Budget | None = (
            Budget(self.policy.comm_budget_s, label="communication budget")
            if self.policy.comm_budget_s is not None
            else None
        )

    # -- Topology -----------------------------------------------------------------

    @property
    def alive(self) -> list[int]:
        """Surviving ranks, ascending (the current split targets)."""
        return list(self._alive)

    @property
    def batch(self) -> int:
        """Index of the batch currently being supervised (-1 before any)."""
        return self._batch

    def begin_batch(self) -> int:
        """Advance the supervised batch counter; returns the new index."""
        self._batch += 1
        return self._batch

    def evict(self, rank: int, batch: int | None = None,
              reason: str = "dead") -> list[int]:
        """Remove a rank from the alive set; returns the survivors.

        Raises :class:`DegradedRunError` when the eviction would leave
        fewer than ``policy.min_ranks`` survivors — the caller should
        abort (and typically checkpoint-restart on fresh resources)
        rather than limp on.
        """
        if rank not in self._alive:
            raise SupervisionError(
                f"cannot evict rank {rank}: not in alive set {self._alive}"
            )
        survivors = [r for r in self._alive if r != rank]
        if len(survivors) < self.policy.min_ranks:
            raise DegradedRunError(
                f"evicting rank {rank} ({reason}) would leave "
                f"{len(survivors)} rank(s), below the policy floor of "
                f"{self.policy.min_ranks}"
            )
        self._alive = survivors
        self.evicted.append(rank)
        self.monitor.mark_dead(rank)
        self.events.append(
            SupervisionEvent(
                batch=self._batch if batch is None else batch,
                rank=rank, action="evict", reason=reason,
            )
        )
        return list(survivors)

    # -- Observations -------------------------------------------------------------

    def observe_batch(
        self, rank: int, batch: int, seconds: float, n_particles: int
    ) -> float:
        """Record one rank's batch; returns its smoothed rate."""
        return self.monitor.record(rank, batch, seconds, n_particles)

    def note_retry(self, n: int = 1) -> None:
        """Count an aborted-and-reissued operation (PCIe re-shipment)."""
        self.retries += int(n)

    def enforce_deadline(self, seconds: float, what: str = "batch") -> None:
        """Raise :class:`DeadlineExceededError` when a batch overran
        ``policy.batch_deadline_s`` (no-op without a deadline)."""
        deadline = self.policy.batch_deadline_s
        if deadline is not None and seconds > deadline:
            from ..errors import DeadlineExceededError

            raise DeadlineExceededError(
                f"{what} took {seconds:.3f}s, over the "
                f"{deadline:g}s batch deadline",
                deadline_s=deadline,
                elapsed_s=seconds,
            )

    def finish_batch(self, batch: int | None = None,
                     now: float | None = None) -> list[int]:
        """Close out a batch: update straggle streaks, evict chronic
        stragglers.  Returns the ranks evicted by this call (possibly
        empty); raises :class:`DegradedRunError` at the policy floor."""
        streaks = self.monitor.update_straggles(now)
        evicted: list[int] = []
        for rank in self.alive:
            if streaks.get(rank, 0) >= self.policy.evict_after:
                self.evict(rank, batch=batch, reason="straggler")
                evicted.append(rank)
        return evicted

    def check_heartbeats(self, now: float) -> list[int]:
        """Evict every alive rank whose heartbeat has timed out at
        ``now``; returns the evicted ranks."""
        evicted = []
        for rank in self.alive:
            if self.monitor.classify(rank, now) is RankStatus.DEAD:
                self.evict(rank, reason="heartbeat")
                evicted.append(rank)
        return evicted

    # -- Simulation-driver hook ---------------------------------------------------

    def batch_callback(self):
        """An ``on_batch`` observer for :meth:`repro.transport.simulation.
        Simulation.run`: records each batch as rank 0 and enforces the
        batch deadline (raising aborts the run, typed)."""

        def on_batch(batch: int, seconds: float, n_particles: int) -> None:
            self._batch = max(self._batch, batch)
            self.observe_batch(0, batch, seconds, n_particles)
            self.enforce_deadline(seconds, what=f"batch {batch}")

        return on_batch

    # -- Export -------------------------------------------------------------------

    def report(self, now: float | None = None) -> dict:
        """The run's supervision document: topology, events, health."""
        return {
            "batches": self._batch + 1,
            "alive": self.alive,
            "evicted": list(self.evicted),
            "retries": self.retries,
            "events": [
                {"batch": e.batch, "rank": e.rank, "action": e.action,
                 "reason": e.reason}
                for e in self.events
            ],
            "health": self.monitor.summary(now),
            "comm_budget_spent_s": (
                self.comm_budget.spent if self.comm_budget else None
            ),
        }
