"""Shared enums and small value types used across subsystems."""

from __future__ import annotations

from enum import IntEnum


class Reaction(IntEnum):
    """Reaction channels tabulated for every nuclide.

    The integer values index the rows of each nuclide's cross-section matrix
    (``xs[reaction, energy_index]``), so they must stay dense and start at 0.
    """

    TOTAL = 0
    ELASTIC = 1
    CAPTURE = 2
    FISSION = 3


#: Number of tabulated reaction channels (rows in a nuclide XS matrix).
N_REACTIONS = len(Reaction)


class EventKind(IntEnum):
    """Event queues of the event-based (banked) transport algorithm.

    Each kind corresponds to one homogeneous kernel applied across a bank of
    particles, in the spirit of Brown & Martin's vectorized Monte Carlo.
    """

    XS_LOOKUP = 0
    ADVANCE = 1
    COLLISION = 2
    SURFACE_CROSSING = 3
    DEAD = 4


class CollisionChannel(IntEnum):
    """Outcome of sampling the reaction channel at a collision site."""

    SCATTER = 0
    CAPTURE = 1
    FISSION = 2
