"""Materials: nuclide compositions with atom densities.

A :class:`Material` maps nuclide names to atom densities [atoms/barn-cm].
For the SoA transport kernels it resolves, against a given library, into
dense integer nuclide ids plus an aligned density vector — the layout the
macroscopic-XS kernel iterates over (Algorithm 1's ``for all n in m``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.library import NuclideLibrary, fuel_nuclide_names
from ..errors import GeometryError

__all__ = [
    "Material",
    "make_fuel",
    "make_water",
    "make_cladding",
]


@dataclass
class Material:
    """A homogeneous mixture of nuclides.

    Attributes
    ----------
    name:
        Human-readable identifier.
    densities:
        Mapping nuclide name -> atom density [atoms/barn-cm].
    temperature:
        Material temperature [K].
    """

    name: str
    densities: dict[str, float]
    temperature: float = 293.6

    def __post_init__(self) -> None:
        if not self.densities:
            raise GeometryError(f"material {self.name!r} has no nuclides")
        for nuc, rho in self.densities.items():
            if not (rho > 0 and np.isfinite(rho)):
                raise GeometryError(
                    f"material {self.name!r}: invalid density for {nuc}"
                )
        # resolve() memo: id(library) -> (library, ids, rho).  The strong
        # library reference keeps the id stable for the cache's lifetime.
        self._resolved: dict[int, tuple[NuclideLibrary, np.ndarray, np.ndarray]] = {}

    @property
    def n_nuclides(self) -> int:
        """Number of nuclides in the mixture — the inner-loop trip count of
        the cross-section kernel, central to the paper's vectorization story."""
        return len(self.densities)

    def resolve(self, library: NuclideLibrary) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(nuclide_ids, atom_densities)`` arrays aligned to a library.

        Memoized per library instance (every library ever resolved against,
        not just the most recent one), so the transport kernels and the
        XS-engine material plans can call this on every stage of every cycle
        and always hit the cache.
        """
        hit = self._resolved.get(id(library))
        if hit is not None:
            return hit[1], hit[2]
        try:
            ids = np.array(
                [library.index(name) for name in self.densities], dtype=np.int64
            )
        except KeyError as err:
            raise GeometryError(
                f"material {self.name!r} references nuclide {err.args[0]!r} "
                f"missing from library {library.model!r}"
            ) from None
        rho = np.array(list(self.densities.values()), dtype=np.float64)
        self._resolved[id(library)] = (library, ids, rho)
        return ids, rho


def make_fuel(
    model: str = "hm-small",
    enrichment_scale: float = 1.0,
    overrides=(),
) -> Material:
    """Hoogenboom-Martin UO2 fuel with the model's full nuclide census.

    Major uranium/oxygen densities follow ~10.3 g/cc UO2; the actinide and
    fission-product inventory carries trace densities so every nuclide's
    cross-section table participates in the lookup loop (what the paper's
    H.M. Small/Large distinction is about: 34 vs 320 nuclides per lookup).

    ``overrides`` is a sequence of ``(nuclide, number_density)`` pairs
    applied after the census densities — the scenario system's channel for
    explicit isotopics (a MOX loading, a depleted inventory) without
    leaving the synthetic builder.  Every named nuclide must be in the
    model's census: an override cannot add data the library will not hold.
    """
    names = fuel_nuclide_names(model)
    densities: dict[str, float] = {
        "U238": 2.2e-2,
        "U235": 1.65e-3 * enrichment_scale,
    }
    # Strong thermal absorbers sit at (sub-)equilibrium densities, as in a
    # real operating core; other actinides and fission products carry trace
    # densities so every nuclide's table participates in the lookup loop
    # (the point of the H.M. Small/Large distinction: 34 vs 320 nuclides).
    super_absorbers = {"Xe135", "Sm149", "Gd155"}
    for i, name in enumerate(names):
        if name in densities:
            continue
        if name in super_absorbers:
            densities[name] = 1.0e-9
        else:
            densities[name] = 1.0e-7 * (1.0 + (i % 7))
    # Oxygen in UO2 (stoichiometric 2x the heavy-metal density).
    densities["O16"] = 4.6e-2
    census = set(densities)
    for nuc, rho in overrides:
        if nuc not in census:
            raise GeometryError(
                f"fuel override names {nuc!r}, which is not in the "
                f"{model!r} nuclide census"
            )
        densities[nuc] = float(rho)
    return Material(name=f"fuel ({model})", densities=densities)


def make_water(boron_ppm: float = 600.0) -> Material:
    """Borated light water at PWR operating density."""
    densities = {
        "H1": 6.67e-2,
        "O16": 3.33e-2,
    }
    if boron_ppm > 0:
        # Natural boron: 19.9% B-10, 80.1% B-11.
        b_total = 5.4e-5 * (boron_ppm / 1000.0)
        densities["B10"] = 0.199 * b_total
        densities["B11"] = 0.801 * b_total
    return Material(name="borated water", densities=densities)


def make_cladding() -> Material:
    """Natural zirconium cladding (Zircaloy, minor alloys neglected)."""
    abundances = {
        "Zr90": 0.5145,
        "Zr91": 0.1122,
        "Zr92": 0.1715,
        "Zr94": 0.1738,
        "Zr96": 0.0280,
    }
    total = 4.3e-2
    return Material(
        name="zirconium cladding",
        densities={k: v * total for k, v in abundances.items()},
    )
