"""Constructive solid geometry: cells, universes, lattices, and tracking.

This is the reference geometry engine used by the history-based transport
loop: nested universes (pin -> assembly -> core) with rectangular lattices,
exactly the structure OpenMC uses for the Hoogenboom-Martin benchmark.

Tracking is deliberately simple and robust: :meth:`Geometry.locate` does a
full recursive descent from the root, and
:meth:`Geometry.distance_to_boundary` returns the nearest candidate surface
crossing along a ray; after moving, the particle is nudged past the surface
and relocated from scratch.  There is no surface-memory optimization — the
performance of Python-level tracking is modelled, not measured (DESIGN.md
§2), so clarity wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..constants import INFINITY, SURFACE_NUDGE
from ..errors import GeometryError
from .materials import Material
from .surfaces import Surface

__all__ = [
    "Halfspace",
    "Cell",
    "Universe",
    "RectLattice",
    "BoundaryBox",
    "Location",
    "Geometry",
]


@dataclass(frozen=True)
class Halfspace:
    """One side of a surface: ``side=-1`` is the negative side (inside a
    cylinder / below a plane), ``side=+1`` the positive side."""

    surface: Surface
    side: int

    def contains(self, p: np.ndarray) -> bool:
        return self.side * self.surface.evaluate(p) > 0.0


Fill = Union[Material, "Universe", "RectLattice"]


@dataclass
class Cell:
    """A region (intersection of halfspaces) filled by a material, a
    universe, or a lattice."""

    name: str
    region: list[Halfspace]
    fill: Fill

    def contains(self, p: np.ndarray) -> bool:
        return all(h.contains(p) for h in self.region)

    def boundary_distance(self, p: np.ndarray, u: np.ndarray) -> float:
        """Nearest crossing of any bounding surface along ``u``."""
        best = INFINITY
        for h in self.region:
            d = h.surface.distance(p, u)
            if d < best:
                best = d
        return best


@dataclass
class Universe:
    """An unordered collection of cells tiling (part of) space."""

    name: str
    cells: list[Cell] = field(default_factory=list)

    def add(self, cell: Cell) -> "Universe":
        self.cells.append(cell)
        return self

    def find(self, p: np.ndarray) -> Cell | None:
        for cell in self.cells:
            if cell.contains(p):
                return cell
        return None


@dataclass
class RectLattice:
    """A 2-D rectangular lattice of universes (infinite in z).

    ``universes[iy][ix]`` fills the element whose center is
    ``lower_left + ((ix + 0.5) px, (iy + 0.5) py)``.
    """

    name: str
    lower_left: tuple[float, float]
    pitch: tuple[float, float]
    universes: list[list[Universe | None]]

    def __post_init__(self) -> None:
        self.ny = len(self.universes)
        if self.ny == 0:
            raise GeometryError(f"lattice {self.name!r} is empty")
        self.nx = len(self.universes[0])
        if any(len(row) != self.nx for row in self.universes):
            raise GeometryError(f"lattice {self.name!r} rows have unequal length")
        if self.pitch[0] <= 0 or self.pitch[1] <= 0:
            raise GeometryError(f"lattice {self.name!r} needs positive pitch")

    def element(self, p: np.ndarray) -> tuple[int, int]:
        """Lattice indices (ix, iy) of the element containing ``p``."""
        ix = int(np.floor((p[0] - self.lower_left[0]) / self.pitch[0]))
        iy = int(np.floor((p[1] - self.lower_left[1]) / self.pitch[1]))
        return ix, iy

    def in_bounds(self, ix: int, iy: int) -> bool:
        return 0 <= ix < self.nx and 0 <= iy < self.ny

    def center(self, ix: int, iy: int) -> tuple[float, float]:
        return (
            self.lower_left[0] + (ix + 0.5) * self.pitch[0],
            self.lower_left[1] + (iy + 0.5) * self.pitch[1],
        )

    def local_point(self, p: np.ndarray, ix: int, iy: int) -> np.ndarray:
        cx, cy = self.center(ix, iy)
        return np.array([p[0] - cx, p[1] - cy, p[2]])

    def element_boundary_distance(
        self, local: np.ndarray, u: np.ndarray
    ) -> float:
        """Distance from a local point to the element's four walls."""
        best = INFINITY
        for axis, half in ((0, 0.5 * self.pitch[0]), (1, 0.5 * self.pitch[1])):
            du = u[axis]
            if abs(du) < 1e-12:
                continue
            wall = half if du > 0 else -half
            d = (wall - local[axis]) / du
            if 1e-12 < d < best:
                best = d
        return best


#: Face identifiers for the outer boundary box.
_FACES = ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax")


@dataclass
class BoundaryBox:
    """Axis-aligned outer boundary with per-face boundary conditions.

    ``bc`` maps face name ("xmin", ..., "zmax") to "vacuum" or "reflective".
    """

    xmin: float
    xmax: float
    ymin: float
    ymax: float
    zmin: float
    zmax: float
    bc: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (self.xmin < self.xmax and self.ymin < self.ymax and self.zmin < self.zmax):
            raise GeometryError("degenerate boundary box")
        for face in _FACES:
            self.bc.setdefault(face, "vacuum")
            if self.bc[face] not in ("vacuum", "reflective"):
                raise GeometryError(f"unknown BC {self.bc[face]!r} on {face}")
        self._lo = np.array([self.xmin, self.ymin, self.zmin])
        self._hi = np.array([self.xmax, self.ymax, self.zmax])

    def contains(self, p: np.ndarray) -> bool:
        return bool(np.all(p >= self._lo) and np.all(p <= self._hi))

    def distance(self, p: np.ndarray, u: np.ndarray) -> tuple[float, str]:
        """Distance to the box boundary and the face that is hit."""
        best, face = INFINITY, "xmax"
        for axis in range(3):
            du = u[axis]
            if abs(du) < 1e-12:
                continue
            if du > 0:
                d = (self._hi[axis] - p[axis]) / du
                f = _FACES[2 * axis + 1]
            else:
                d = (self._lo[axis] - p[axis]) / du
                f = _FACES[2 * axis]
            if 1e-12 < d < best:
                best, face = d, f
        return best, face

    def reflect(self, u: np.ndarray, face: str) -> np.ndarray:
        """Mirror a direction off a face."""
        axis = _FACES.index(face) // 2
        out = u.copy()
        out[axis] = -out[axis]
        return out


@dataclass(frozen=True)
class Location:
    """Result of :meth:`Geometry.locate`: where a point is.

    ``cell_path`` is the chain of cell names and lattice indices down the
    universe hierarchy; it uniquely keys the geometric cell instance (used
    by tallies and the fission-site entropy mesh).
    """

    material: Material
    cell_path: tuple[str, ...]
    local_point: np.ndarray


class Geometry:
    """A root universe plus an outer boundary box."""

    def __init__(self, root: Universe, boundary: BoundaryBox) -> None:
        self.root = root
        self.boundary = boundary

    # -- Point location -----------------------------------------------------

    def locate(self, p: np.ndarray) -> Location | None:
        """Find the material cell containing ``p`` (None if lost/outside)."""
        p = np.asarray(p, dtype=np.float64)
        if not self.boundary.contains(p):
            return None
        return self._descend(self.root, p, ())

    def _descend(
        self, universe: Universe, p: np.ndarray, path: tuple[str, ...]
    ) -> Location | None:
        cell = universe.find(p)
        if cell is None:
            return None
        fill = cell.fill
        path = path + (cell.name,)
        if isinstance(fill, Material):
            return Location(material=fill, cell_path=path, local_point=p)
        if isinstance(fill, Universe):
            return self._descend(fill, p, path)
        if isinstance(fill, RectLattice):
            ix, iy = fill.element(p)
            if not fill.in_bounds(ix, iy):
                return None
            inner = fill.universes[iy][ix]
            if inner is None:
                return None
            local = fill.local_point(p, ix, iy)
            return self._descend(inner, local, path + (f"[{ix},{iy}]",))
        raise GeometryError(f"cell {cell.name!r} has unsupported fill {fill!r}")

    # -- Ray tracing -------------------------------------------------------------

    def distance_to_boundary(self, p: np.ndarray, u: np.ndarray) -> float:
        """Nearest candidate surface crossing along ``u`` from ``p``.

        Considers, at every level of the descent, the bounding surfaces of
        the containing cell and the walls of any lattice element, plus the
        outer boundary box.  Crossing any of these may change the material,
        so the transport loop re-locates after each crossing.
        """
        p = np.asarray(p, dtype=np.float64)
        u = np.asarray(u, dtype=np.float64)
        best, _ = self.boundary.distance(p, u)
        best = min(best, self._descend_distance(self.root, p, u))
        return best

    def _descend_distance(
        self, universe: Universe, p: np.ndarray, u: np.ndarray
    ) -> float:
        cell = universe.find(p)
        if cell is None:
            return INFINITY
        best = cell.boundary_distance(p, u)
        fill = cell.fill
        if isinstance(fill, Universe):
            best = min(best, self._descend_distance(fill, p, u))
        elif isinstance(fill, RectLattice):
            ix, iy = fill.element(p)
            if fill.in_bounds(ix, iy):
                local = fill.local_point(p, ix, iy)
                best = min(best, fill.element_boundary_distance(local, u))
                inner = fill.universes[iy][ix]
                if inner is not None:
                    best = min(best, self._descend_distance(inner, local, u))
        return best

    # -- Boundary handling ---------------------------------------------------

    def handle_boundary(
        self, p: np.ndarray, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Apply the outer BC to a particle that has reached (or slightly
        overshot) the box.

        Returns ``(p, u, alive)``: for a reflective face the direction is
        mirrored and the *position reflected across the face plane* (so a
        nudged-past point lands back inside); for vacuum the particle leaks
        (``alive=False``).
        """
        dist, face = self.boundary.distance(p - u * (2 * SURFACE_NUDGE), u)
        if self.boundary.bc[face] == "vacuum":
            return p, u, False
        axis = _FACES.index(face) // 2
        wall = (
            self.boundary._lo[axis] if face.endswith("min") else self.boundary._hi[axis]
        )
        u_new = self.boundary.reflect(u, face)
        p_new = p.copy()
        p_new[axis] = 2.0 * wall - p_new[axis]
        return p_new, u_new, True
