"""CSG surfaces: axis-aligned planes and z-cylinders.

Each surface supports a signed ``evaluate`` (negative inside / below) and a
ray ``distance`` to the nearest positive crossing, in both scalar and
array-vectorized forms.  The PWR geometry the paper simulates needs exactly
these primitives: planes bound the core box and lattice elements, z-cylinders
bound fuel pins and cladding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import INFINITY

__all__ = ["Surface", "XPlane", "YPlane", "ZPlane", "ZCylinder"]

_EPS = 1.0e-12


class Surface:
    """Abstract CSG surface."""

    def evaluate(self, p: np.ndarray) -> float:
        """Signed surface function; negative on the 'inside'/'below' side."""
        raise NotImplementedError

    def distance(self, p: np.ndarray, u: np.ndarray) -> float:
        """Distance along unit direction ``u`` to the surface, or INFINITY."""
        raise NotImplementedError

    def evaluate_many(self, p: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; ``p`` has shape ``(n, 3)``."""
        raise NotImplementedError

    def distance_many(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`distance`; ``p``/``u`` have shape ``(n, 3)``."""
        raise NotImplementedError


@dataclass(frozen=True)
class _AxisPlane(Surface):
    """Plane normal to a coordinate axis at ``x0`` (axis set by subclass)."""

    x0: float

    # Plain class attribute (NOT a dataclass field): subclasses override it,
    # and the generated __init__ must not shadow it with an instance value.
    _axis = 0

    def evaluate(self, p: np.ndarray) -> float:
        return float(p[self._axis] - self.x0)

    def evaluate_many(self, p: np.ndarray) -> np.ndarray:
        return p[:, self._axis] - self.x0

    def distance(self, p: np.ndarray, u: np.ndarray) -> float:
        du = u[self._axis]
        if abs(du) < _EPS:
            return INFINITY
        d = (self.x0 - p[self._axis]) / du
        return d if d > _EPS else INFINITY

    def distance_many(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        du = u[:, self._axis]
        with np.errstate(divide="ignore", invalid="ignore"):
            d = (self.x0 - p[:, self._axis]) / du
        d = np.where((np.abs(du) < _EPS) | (d <= _EPS), INFINITY, d)
        return d


class XPlane(_AxisPlane):
    """Plane ``x = x0``."""

    _axis = 0


class YPlane(_AxisPlane):
    """Plane ``y = y0``."""

    _axis = 1


class ZPlane(_AxisPlane):
    """Plane ``z = z0``."""

    _axis = 2


@dataclass(frozen=True)
class ZCylinder(Surface):
    """Infinite cylinder about an axis parallel to z: ``(x-x0)^2+(y-y0)^2=r^2``."""

    r: float
    x0: float = 0.0
    y0: float = 0.0

    def evaluate(self, p: np.ndarray) -> float:
        dx = p[0] - self.x0
        dy = p[1] - self.y0
        return float(dx * dx + dy * dy - self.r * self.r)

    def evaluate_many(self, p: np.ndarray) -> np.ndarray:
        dx = p[:, 0] - self.x0
        dy = p[:, 1] - self.y0
        return dx * dx + dy * dy - self.r * self.r

    def distance(self, p: np.ndarray, u: np.ndarray) -> float:
        dx = p[0] - self.x0
        dy = p[1] - self.y0
        a = u[0] * u[0] + u[1] * u[1]
        if a < _EPS:
            return INFINITY
        k = dx * u[0] + dy * u[1]
        c = dx * dx + dy * dy - self.r * self.r
        disc = k * k - a * c
        if disc < 0.0:
            return INFINITY
        sq = np.sqrt(disc)
        # Nearest positive root of a t^2 + 2 k t + c = 0.
        t1 = (-k - sq) / a
        if t1 > _EPS:
            return float(t1)
        t2 = (-k + sq) / a
        return float(t2) if t2 > _EPS else INFINITY

    def distance_many(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        dx = p[:, 0] - self.x0
        dy = p[:, 1] - self.y0
        a = u[:, 0] ** 2 + u[:, 1] ** 2
        k = dx * u[:, 0] + dy * u[:, 1]
        c = dx * dx + dy * dy - self.r * self.r
        disc = k * k - a * c
        out = np.full(p.shape[0], INFINITY)
        ok = (a >= _EPS) & (disc >= 0.0)
        if ok.any():
            sq = np.sqrt(disc[ok])
            a_ok = a[ok]
            t1 = (-k[ok] - sq) / a_ok
            t2 = (-k[ok] + sq) / a_ok
            t = np.where(t1 > _EPS, t1, np.where(t2 > _EPS, t2, INFINITY))
            out[ok] = t
        return out
