"""The Hoogenboom-Martin full-core PWR benchmark geometry.

The model (Hoogenboom, Martin & Petrovic 2009) used throughout the paper:

* a pressurized-water-reactor core of **241 identical fuel assemblies**, each
  21.42 x 21.42 cm;
* each assembly a **17 x 17 lattice** of fuel pins (pitch 1.26 cm) including
  **24 control-rod guide tubes and 1 instrumentation tube**;
* fuel pins of radius 0.41 cm with natural-zirconium cladding to 0.475 cm;
* 366 cm active height with water reflectors on all sides.

Two equivalent geometry engines are provided:

* :func:`build_hm_geometry` — the nested-universe CSG model (pin universe ->
  assembly lattice -> core lattice), used by the scalar history-based loop;
* :class:`FastCoreGeometry` — an analytic, fully NumPy-vectorized tracker
  exploiting the model's regularity, used by the banked (event-based) loop.
  Tests assert the two agree point-for-point.

A single-pin-cell model (:func:`build_pincell_geometry`) with reflective
boundaries supports fast eigenvalue tests and the quickstart example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import INFINITY
from ..errors import GeometryError
from .csg import BoundaryBox, Cell, Geometry, Halfspace, RectLattice, Universe
from .materials import Material, make_cladding, make_fuel, make_water
from .surfaces import ZCylinder, ZPlane

__all__ = [
    "PIN_PITCH",
    "FUEL_RADIUS",
    "CLAD_RADIUS",
    "GT_INNER_RADIUS",
    "GT_CLAD_RADIUS",
    "ASSEMBLY_PITCH",
    "N_PINS",
    "CORE_SIZE",
    "ACTIVE_HALF_HEIGHT",
    "BOX_HALF_HEIGHT",
    "GUIDE_TUBE_POSITIONS",
    "CORE_PATTERNS",
    "hm_core_pattern",
    "smr_core_pattern",
    "pattern_from_rows",
    "pattern_to_rows",
    "HMModel",
    "build_hm_geometry",
    "build_pincell_geometry",
    "FastCoreGeometry",
]

# --- Benchmark dimensions [cm] ------------------------------------------------

PIN_PITCH = 1.26
FUEL_RADIUS = 0.41
CLAD_RADIUS = 0.475
GT_INNER_RADIUS = 0.561
GT_CLAD_RADIUS = 0.602
ASSEMBLY_PITCH = 21.42  # = 17 * 1.26
N_PINS = 17
#: Core lattice is 19 x 19 assembly positions: the 17 x 17 fuel map plus a
#: one-assembly-thick ring of water reflector.
CORE_SIZE = 19
ACTIVE_HALF_HEIGHT = 183.0  # 366 cm active height
BOX_HALF_HEIGHT = 203.0  # 20 cm axial reflectors

#: Standard Westinghouse 17x17 guide-tube positions (24) — the central
#: (8, 8) position is the instrumentation tube, hydraulically identical here.
GUIDE_TUBE_POSITIONS: frozenset[tuple[int, int]] = frozenset(
    {
        (2, 5), (2, 8), (2, 11),
        (3, 3), (3, 13),
        (5, 2), (5, 5), (5, 8), (5, 11), (5, 14),
        (8, 2), (8, 5), (8, 11), (8, 14),
        (11, 2), (11, 5), (11, 8), (11, 11), (11, 14),
        (13, 3), (13, 13),
        (14, 5), (14, 8), (14, 11),
    }
)

#: The instrumentation tube position.
INSTRUMENT_TUBE: tuple[int, int] = (8, 8)


def hm_core_pattern() -> np.ndarray:
    """17x17 boolean map of the 241 fuel-assembly positions.

    Corners are stepped so each quadrant loses 12 positions
    (289 - 48 = 241), the canonical roughly-cylindrical PWR footprint.
    """
    pattern = np.ones((17, 17), dtype=bool)
    # Per-corner removals per row (from the edge inward).  The staircase is
    # self-conjugate, so the footprint has the full D4 symmetry of a real
    # core map; each corner loses 12 positions.
    cut = [5, 3, 2, 1, 1]
    for k, c in enumerate(cut):
        pattern[k, :c] = False
        pattern[k, 17 - c:] = False
        pattern[16 - k, :c] = False
        pattern[16 - k, 17 - c:] = False
    assert int(pattern.sum()) == 241
    return pattern


def smr_core_pattern() -> np.ndarray:
    """7x7 boolean map of a 37-assembly small-modular-core footprint.

    The same stepped-corner construction as :func:`hm_core_pattern`, at the
    footprint of an integral PWR (37 seventeen-by-seventeen assemblies, the
    NuScale-class core size): each corner loses 3 positions (49 - 12 = 37).
    """
    pattern = np.ones((7, 7), dtype=bool)
    cut = [2, 1]
    for k, c in enumerate(cut):
        pattern[k, :c] = False
        pattern[k, 7 - c:] = False
        pattern[6 - k, :c] = False
        pattern[6 - k, 7 - c:] = False
    assert int(pattern.sum()) == 37
    return pattern


#: Named core footprints a scenario (or ``Settings.core_pattern``) may pick
#: by name instead of spelling out lattice rows.
CORE_PATTERNS: dict = {
    "hm-241": hm_core_pattern,
    "smr-37": smr_core_pattern,
}


def pattern_from_rows(rows) -> np.ndarray:
    """Parse a declarative core lattice: rows of ``F`` (fuel assembly) and
    ``W`` (water reflector) characters, square, at least one assembly."""
    rows = [str(r) for r in rows]
    n = len(rows)
    if n < 1:
        raise GeometryError("core pattern needs at least one row")
    for i, row in enumerate(rows):
        if len(row) != n:
            raise GeometryError(
                f"core pattern must be square: row {i} has {len(row)} "
                f"columns, want {n}"
            )
        bad = set(row) - {"F", "W"}
        if bad:
            raise GeometryError(
                f"core pattern row {i}: unknown characters "
                f"{sorted(bad)} (want 'F' fuel or 'W' water)"
            )
    pattern = np.array(
        [[ch == "F" for ch in row] for row in rows], dtype=bool
    )
    if not pattern.any():
        raise GeometryError("core pattern has no fuel assemblies")
    return pattern


def pattern_to_rows(pattern: np.ndarray) -> tuple[str, ...]:
    """Inverse of :func:`pattern_from_rows` (canonical row strings)."""
    return tuple(
        "".join("F" if cell else "W" for cell in row) for row in pattern
    )


@dataclass
class HMModel:
    """A built Hoogenboom-Martin model: geometry + material registry."""

    geometry: Geometry
    fuel: Material
    cladding: Material
    water: Material
    model: str

    @property
    def materials(self) -> tuple[Material, Material, Material]:
        """Materials ordered by fast-path id: (fuel=0, clad=1, water=2)."""
        return (self.fuel, self.cladding, self.water)


def _pin_universe(
    name: str,
    inner_r: float,
    clad_r: float,
    inner_mat: Material,
    clad: Material,
    water: Material,
) -> Universe:
    """A two-cylinder pin cell: inner material / cladding / water."""
    cyl_in = ZCylinder(r=inner_r)
    cyl_out = ZCylinder(r=clad_r)
    return Universe(
        name=name,
        cells=[
            Cell(f"{name}/inner", [Halfspace(cyl_in, -1)], inner_mat),
            Cell(
                f"{name}/clad",
                [Halfspace(cyl_in, +1), Halfspace(cyl_out, -1)],
                clad,
            ),
            Cell(f"{name}/water", [Halfspace(cyl_out, +1)], water),
        ],
    )


def build_hm_geometry(
    model: str = "hm-small",
    boron_ppm: float = 600.0,
    *,
    pattern: np.ndarray | None = None,
    enrichment_scale: float = 1.0,
    fuel_overrides=(),
) -> HMModel:
    """Construct the full-core CSG model.

    Parameters
    ----------
    model:
        ``"hm-small"`` (34-nuclide fuel) or ``"hm-large"`` (320 nuclides);
        only the fuel composition differs — geometry is identical, exactly
        as in the paper.
    pattern:
        Boolean assembly footprint (square); ``None`` uses the canonical
        241-assembly Hoogenboom-Martin map.  The core lattice is the
        pattern plus a one-assembly reflector ring; assembly internals
        (17x17 pins, guide tubes) are common to every footprint.
    enrichment_scale, fuel_overrides:
        Forwarded to :func:`~repro.geometry.materials.make_fuel` — the
        scenario system's handles on fuel composition.
    """
    fuel = make_fuel(
        model, enrichment_scale=enrichment_scale, overrides=fuel_overrides
    )
    clad = make_cladding()
    water = make_water(boron_ppm)

    fuel_pin = _pin_universe("pin", FUEL_RADIUS, CLAD_RADIUS, fuel, clad, water)
    guide = _pin_universe("gt", GT_INNER_RADIUS, GT_CLAD_RADIUS, water, clad, water)
    water_u = Universe("water", [Cell("water/all", [], water)])

    # Assembly: 17x17 pin lattice.
    half_assembly = 0.5 * ASSEMBLY_PITCH
    rows: list[list[Universe]] = []
    for iy in range(N_PINS):
        row: list[Universe] = []
        for ix in range(N_PINS):
            if (iy, ix) in GUIDE_TUBE_POSITIONS or (iy, ix) == INSTRUMENT_TUBE:
                row.append(guide)
            else:
                row.append(fuel_pin)
        rows.append(row)
    pin_lattice = RectLattice(
        "assembly-lattice",
        lower_left=(-half_assembly, -half_assembly),
        pitch=(PIN_PITCH, PIN_PITCH),
        universes=rows,
    )
    assembly = Universe("assembly", [Cell("assembly/lat", [], pin_lattice)])

    # Core: (n+2)x(n+2) assembly lattice (n x n pattern + reflector ring);
    # the H.M. footprint gives the canonical 19x19.
    if pattern is None:
        pattern = hm_core_pattern()
    n_pattern = pattern.shape[0]
    core_size = n_pattern + 2
    core_rows: list[list[Universe]] = []
    for iy in range(core_size):
        row = []
        for ix in range(core_size):
            py, px = iy - 1, ix - 1
            if 0 <= py < n_pattern and 0 <= px < n_pattern and pattern[py, px]:
                row.append(assembly)
            else:
                row.append(water_u)
        core_rows.append(row)
    half_core = 0.5 * core_size * ASSEMBLY_PITCH
    core_lattice = RectLattice(
        "core-lattice",
        lower_left=(-half_core, -half_core),
        pitch=(ASSEMBLY_PITCH, ASSEMBLY_PITCH),
        universes=core_rows,
    )

    z_bot = ZPlane(-ACTIVE_HALF_HEIGHT)
    z_top = ZPlane(ACTIVE_HALF_HEIGHT)
    root = Universe(
        "root",
        [
            Cell("active", [Halfspace(z_bot, +1), Halfspace(z_top, -1)], core_lattice),
            Cell("bottom-reflector", [Halfspace(z_bot, -1)], water),
            Cell("top-reflector", [Halfspace(z_top, +1)], water),
        ],
    )
    box = BoundaryBox(
        xmin=-half_core,
        xmax=half_core,
        ymin=-half_core,
        ymax=half_core,
        zmin=-BOX_HALF_HEIGHT,
        zmax=BOX_HALF_HEIGHT,
    )
    return HMModel(
        geometry=Geometry(root, box), fuel=fuel, cladding=clad, water=water,
        model=model,
    )


def build_pincell_geometry(
    model: str = "hm-small",
    boron_ppm: float = 600.0,
    *,
    enrichment_scale: float = 1.0,
    fuel_overrides=(),
) -> HMModel:
    """A single reflected pin cell — the workhorse for fast eigenvalue tests."""
    fuel = make_fuel(
        model, enrichment_scale=enrichment_scale, overrides=fuel_overrides
    )
    clad = make_cladding()
    water = make_water(boron_ppm)
    pin = _pin_universe("pin", FUEL_RADIUS, CLAD_RADIUS, fuel, clad, water)
    half = 0.5 * PIN_PITCH
    box = BoundaryBox(
        xmin=-half, xmax=half, ymin=-half, ymax=half,
        zmin=-ACTIVE_HALF_HEIGHT, zmax=ACTIVE_HALF_HEIGHT,
        bc={f: "reflective" for f in ("xmin", "xmax", "ymin", "ymax", "zmin", "zmax")},
    )
    return HMModel(
        geometry=Geometry(pin, box), fuel=fuel, cladding=clad, water=water,
        model=model,
    )


# --- Vectorized analytic fast path ---------------------------------------------

#: Fast-path material ids.
MAT_FUEL, MAT_CLAD, MAT_WATER, MAT_OUTSIDE = 0, 1, 2, -1


class FastCoreGeometry:
    """Analytic, vectorized tracker for the H.M. core.

    Exploits the model's regularity — modular arithmetic finds the assembly
    and pin; radii classify fuel/clad/water — so a whole particle bank is
    located or ray-traced with a handful of fused NumPy operations.  This is
    the geometry engine of the event-based (banked) transport loop, the
    Python analogue of restructuring data/control flow for SIMD.
    """

    def __init__(
        self, pincell: bool = False, pattern: np.ndarray | None = None
    ) -> None:
        self.pincell = pincell
        self.pattern = hm_core_pattern() if pattern is None else pattern
        #: Assembly footprint size (17 for H.M.) and the enclosing core
        #: lattice (footprint + reflector ring, 19 for H.M.).
        self.n_pattern = int(self.pattern.shape[0])
        self.core_size = self.n_pattern + 2
        self.half_core = 0.5 * self.core_size * ASSEMBLY_PITCH
        gt = np.zeros((N_PINS, N_PINS), dtype=bool)
        for (iy, ix) in GUIDE_TUBE_POSITIONS | {INSTRUMENT_TUBE}:
            gt[iy, ix] = True
        self.gt_map = gt

    # -- Location -------------------------------------------------------------

    def locate_many(self, p: np.ndarray) -> np.ndarray:
        """Material id for each point; shape ``(n, 3)`` -> ``(n,)``.

        Returns :data:`MAT_OUTSIDE` for points outside the boundary box.
        """
        p = np.asarray(p, dtype=np.float64)
        x, y, z = p[:, 0], p[:, 1], p[:, 2]
        n = x.shape[0]
        out = np.full(n, MAT_WATER, dtype=np.int64)

        if self.pincell:
            half = 0.5 * PIN_PITCH
            outside = (
                (np.abs(x) > half) | (np.abs(y) > half)
                | (np.abs(z) > ACTIVE_HALF_HEIGHT)
            )
            r2 = x * x + y * y
            out[r2 <= FUEL_RADIUS**2] = MAT_FUEL
            out[(r2 > FUEL_RADIUS**2) & (r2 <= CLAD_RADIUS**2)] = MAT_CLAD
            out[outside] = MAT_OUTSIDE
            return out

        outside = (
            (np.abs(x) > self.half_core)
            | (np.abs(y) > self.half_core)
            | (np.abs(z) > BOX_HALF_HEIGHT)
        )
        in_active = np.abs(z) <= ACTIVE_HALF_HEIGHT

        # Assembly indices in the core lattice (19x19 for H.M.).
        ax = np.floor((x + self.half_core) / ASSEMBLY_PITCH).astype(np.int64)
        ay = np.floor((y + self.half_core) / ASSEMBLY_PITCH).astype(np.int64)
        # minimum/maximum instead of integer np.clip: same values, but
        # avoids np.iinfo bound construction on every call.
        np.minimum(ax, self.core_size - 1, out=ax)
        np.maximum(ax, 0, out=ax)
        np.minimum(ay, self.core_size - 1, out=ay)
        np.maximum(ay, 0, out=ay)
        px_, py_ = ax - 1, ay - 1
        n_pat = self.n_pattern
        fueled = (
            in_active
            & (px_ >= 0) & (px_ < n_pat) & (py_ >= 0) & (py_ < n_pat)
        )
        fueled[fueled] = self.pattern[py_[fueled], px_[fueled]]

        if fueled.any():
            # Pin indices and local coordinates within fueled assemblies.
            cx = -self.half_core + (ax[fueled] + 0.5) * ASSEMBLY_PITCH
            cy = -self.half_core + (ay[fueled] + 0.5) * ASSEMBLY_PITCH
            lx = x[fueled] - cx
            ly = y[fueled] - cy
            half_a = 0.5 * ASSEMBLY_PITCH
            ix = np.floor((lx + half_a) / PIN_PITCH).astype(np.int64)
            iy = np.floor((ly + half_a) / PIN_PITCH).astype(np.int64)
            np.minimum(ix, N_PINS - 1, out=ix)
            np.maximum(ix, 0, out=ix)
            np.minimum(iy, N_PINS - 1, out=iy)
            np.maximum(iy, 0, out=iy)
            ex = lx + half_a - (ix + 0.5) * PIN_PITCH
            ey = ly + half_a - (iy + 0.5) * PIN_PITCH
            r2 = ex * ex + ey * ey
            is_gt = self.gt_map[iy, ix]
            mat = np.full(r2.shape[0], MAT_WATER, dtype=np.int64)
            # Fuel pins.
            pin = ~is_gt
            mat[pin & (r2 <= FUEL_RADIUS**2)] = MAT_FUEL
            mat[pin & (r2 > FUEL_RADIUS**2) & (r2 <= CLAD_RADIUS**2)] = MAT_CLAD
            # Guide tubes: water / clad / water.
            mat[is_gt & (r2 > GT_INNER_RADIUS**2) & (r2 <= GT_CLAD_RADIUS**2)] = (
                MAT_CLAD
            )
            out[fueled] = mat

        out[outside] = MAT_OUTSIDE
        return out

    def locate(self, p: np.ndarray) -> int:
        """Scalar convenience wrapper over :meth:`locate_many`."""
        return int(self.locate_many(np.asarray(p, dtype=float)[None, :])[0])

    # -- Ray tracing ----------------------------------------------------------

    def distance_many(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Nearest candidate surface crossing for each particle.

        Candidates: the pin's two cylinders (fuel/clad or GT radii), the pin
        cell walls, the active-height planes, and the outer box — each
        computed as one fused array expression and reduced with minima.
        """
        p = np.asarray(p, dtype=np.float64)
        u = np.asarray(u, dtype=np.float64)
        x, y, z = p[:, 0], p[:, 1], p[:, 2]
        n = x.shape[0]
        best = np.full(n, INFINITY)

        if self.pincell:
            half = 0.5 * PIN_PITCH
            ex, ey = x, y
            ex_wall = self._wall_distance(ex, u[:, 0], half)
            ey_wall = self._wall_distance(ey, u[:, 1], half)
            best = np.minimum(ex_wall, ey_wall)
            zd = self._wall_distance(z, u[:, 2], ACTIVE_HALF_HEIGHT)
            best = np.minimum(best, zd)
            for r in (FUEL_RADIUS, CLAD_RADIUS):
                best = np.minimum(best, _cyl_distance(ex, ey, u, r))
            return best

        # Outer box and active-height planes.
        best = np.minimum(best, self._wall_distance(x, u[:, 0], self.half_core))
        best = np.minimum(best, self._wall_distance(y, u[:, 1], self.half_core))
        best = np.minimum(best, self._wall_distance(z, u[:, 2], BOX_HALF_HEIGHT))
        best = np.minimum(
            best, self._plane_distance(z, u[:, 2], -ACTIVE_HALF_HEIGHT)
        )
        best = np.minimum(
            best, self._plane_distance(z, u[:, 2], ACTIVE_HALF_HEIGHT)
        )

        # Assembly walls (everywhere — they tile the whole box).
        ax = np.floor((x + self.half_core) / ASSEMBLY_PITCH)
        ay = np.floor((y + self.half_core) / ASSEMBLY_PITCH)
        lx = x + self.half_core - (ax + 0.5) * ASSEMBLY_PITCH
        ly = y + self.half_core - (ay + 0.5) * ASSEMBLY_PITCH
        best = np.minimum(
            best, self._wall_distance(lx, u[:, 0], 0.5 * ASSEMBLY_PITCH)
        )
        best = np.minimum(
            best, self._wall_distance(ly, u[:, 1], 0.5 * ASSEMBLY_PITCH)
        )

        # Pin walls and cylinders, only inside fueled assemblies.
        px_ = ax.astype(np.int64) - 1
        py_ = ay.astype(np.int64) - 1
        n_pat = self.n_pattern
        in_active = np.abs(z) <= ACTIVE_HALF_HEIGHT
        fueled = (
            in_active
            & (px_ >= 0) & (px_ < n_pat) & (py_ >= 0) & (py_ < n_pat)
        )
        fueled[fueled] = self.pattern[py_[fueled], px_[fueled]]
        if fueled.any():
            half_a = 0.5 * ASSEMBLY_PITCH
            lxf, lyf = lx[fueled], ly[fueled]
            uf = u[fueled]
            ix = np.floor((lxf + half_a) / PIN_PITCH)
            iy = np.floor((lyf + half_a) / PIN_PITCH)
            ex = lxf + half_a - (ix + 0.5) * PIN_PITCH
            ey = lyf + half_a - (iy + 0.5) * PIN_PITCH
            sub = np.minimum(
                self._wall_distance(ex, uf[:, 0], 0.5 * PIN_PITCH),
                self._wall_distance(ey, uf[:, 1], 0.5 * PIN_PITCH),
            )
            is_gt = self.gt_map[
                np.minimum(np.maximum(iy.astype(np.int64), 0), N_PINS - 1),
                np.minimum(np.maximum(ix.astype(np.int64), 0), N_PINS - 1),
            ]
            r_in = np.where(is_gt, GT_INNER_RADIUS, FUEL_RADIUS)
            r_out = np.where(is_gt, GT_CLAD_RADIUS, CLAD_RADIUS)
            sub = np.minimum(sub, _cyl_distance(ex, ey, uf, r_in))
            sub = np.minimum(sub, _cyl_distance(ex, ey, uf, r_out))
            best[fueled] = np.minimum(best[fueled], sub)
        return best

    def distance(self, p: np.ndarray, u: np.ndarray) -> float:
        """Scalar convenience wrapper over :meth:`distance_many`."""
        return float(
            self.distance_many(
                np.asarray(p, dtype=float)[None, :],
                np.asarray(u, dtype=float)[None, :],
            )[0]
        )

    @staticmethod
    def _wall_distance(coord: np.ndarray, du: np.ndarray, half: float) -> np.ndarray:
        """Distance to symmetric walls at +/- half along one axis."""
        d = np.full(du.shape, INFINITY)
        # copysign picks the wall the particle is heading toward (du == +0
        # lanes disagree with the old where(du > 0, ...) form, but those are
        # masked to INFINITY anyway).  Masked divide: lanes with
        # |du| < 1e-12 keep INFINITY, so no errstate guard is needed.
        np.divide(
            np.copysign(half, du) - coord, du, out=d,
            where=np.abs(du) >= 1e-12,
        )
        return np.where(d <= 1e-12, INFINITY, d)

    @staticmethod
    def _plane_distance(coord: np.ndarray, du: np.ndarray, plane: float) -> np.ndarray:
        d = np.full(du.shape, INFINITY)
        np.divide(plane - coord, du, out=d, where=np.abs(du) >= 1e-12)
        return np.where(d <= 1e-12, INFINITY, d)


def _cyl_distance(ex: np.ndarray, ey: np.ndarray, u: np.ndarray, r) -> np.ndarray:
    """Vectorized distance to a z-cylinder of radius ``r`` centered at the
    local origin (``r`` may be a scalar or per-particle array)."""
    a = u[:, 0] ** 2 + u[:, 1] ** 2
    k = ex * u[:, 0] + ey * u[:, 1]
    c = ex * ex + ey * ey - np.asarray(r) ** 2
    disc = k * k - a * c
    out = np.full(ex.shape[0], INFINITY)
    ok = (a >= 1e-12) & (disc >= 0.0)
    if ok.any():
        sq = np.sqrt(disc[ok])
        t1 = (-k[ok] - sq) / a[ok]
        t2 = (-k[ok] + sq) / a[ok]
        out[ok] = np.where(t1 > 1e-12, t1, np.where(t2 > 1e-12, t2, INFINITY))
    return out
