"""Macroscopic cross-section calculation — the paper's bottleneck kernel.

Implements Algorithm 1 (``calculate_xs``) in the three structural variants
the paper compares:

* :meth:`XSCalculator.scalar` — the history-based path: one particle, a
  scalar loop over the material's nuclides (with optional unionized-grid
  indexing, URR probability-table sampling, and S(alpha, beta) substitution);
* :meth:`XSCalculator.banked` — the event-based path: a whole bank of
  particles at once, Python-looping over nuclides while NumPy vectorizes the
  particle dimension (the analogue of ``#pragma simd`` on Algorithm 2's
  inner loop, transposed to NumPy's strength);
* :meth:`XSCalculator.banked_outer` — the alternative the paper tried and
  found slower: vectorizing across the *nuclide* dimension per particle
  (ragged bounds per material are why it loses on real hardware).

Both banked variants reproduce the scalar path's results — and its random-
number stream — exactly, so history and event transport are bit-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.library import NuclideLibrary
from ..data.nuclide import NU_THERMAL_SLOPE, Nuclide
from ..data.sab import SabTable
from ..data.soa import AoSLibrary, SoALibrary
from ..data.unionized import UnionizedGrid
from ..data.urr import URRTable
from ..errors import PhysicsError
from ..geometry.materials import Material
from ..rng.lcg import RandomStream, prn_array
from ..types import N_REACTIONS, Reaction
from ..work import WorkCounters

__all__ = ["MacroXS", "MaterialPlan", "XSCalculator"]

#: Bytes touched per nuclide per lookup: two grid points x (energy + four
#: cross sections) x 8 bytes.  Feeds the memory-bound roofline estimate.
BYTES_PER_NUCLIDE_LOOKUP = 2 * (1 + N_REACTIONS) * 8


@dataclass
class MacroXS:
    """Macroscopic cross sections [1/cm] of a material at one energy.

    ``nu_fission`` is :math:`\\nu\\Sigma_f` — fission production — used by
    all three k-effective estimators.
    """

    total: float
    elastic: float
    capture: float
    fission: float
    nu_fission: float = 0.0

    @property
    def absorption(self) -> float:
        return self.capture + self.fission


class MaterialPlan:
    """Precomputed per-material metadata for the banked kernels.

    Everything the hot loop would otherwise recompute per call — dense
    nuclide ids, densities, flat-array offsets, and which nuclides carry
    S(alpha, beta) / URR tables — resolved once and cached on the
    :class:`XSCalculator` (see :meth:`XSCalculator.material_plan`).

    Attributes
    ----------
    ids, rho:
        Dense nuclide ids and aligned atom densities (``Material.resolve``).
    offsets:
        ``soa.offsets[ids]`` — start of each material nuclide's grid in the
        flat SoA arrays, so fused gathers are ``offsets[:, None] + local``.
    nuclides:
        The material's :class:`Nuclide` objects in id order (non-union grid
        searches, scalar fallbacks).
    fissionable, nu0:
        Per-material-nuclide scalars gathered from the SoA side-tables.
    sab_entries:
        ``(k, table, cutoff)`` for each nuclide with an S(alpha, beta)
        table, in material (accumulation/RNG) order ``k``.
    urr_entries:
        ``(k, table)`` for each nuclide with an unresolved-resonance
        probability table, in material order ``k``.
    """

    __slots__ = (
        "material",
        "ids",
        "ids_col",
        "rho",
        "n_nuclides",
        "offsets",
        "offsets_col",
        "nuclides",
        "fissionable",
        "any_fissionable",
        "nu0",
        "nu0_fissionable",
        "sab_entries",
        "urr_entries",
        "urr_emin",
        "urr_emax",
        "union_rowoff_col",
    )

    def __init__(self, calc: XSCalculator, material: Material) -> None:
        ids, rho = material.resolve(calc.library)
        self.material = material
        self.ids = ids
        self.ids_col = ids[:, None]
        self.rho = rho
        self.n_nuclides = int(ids.shape[0])
        soa = calc.soa
        self.offsets = soa.offsets[ids]
        self.offsets_col = self.offsets[:, None]
        self.nuclides: list[Nuclide] = [calc.library[int(i)] for i in ids]
        self.fissionable = soa.fissionable[ids]
        self.any_fissionable = bool(self.fissionable.any())
        self.nu0 = soa.nu0[ids]
        self.nu0_fissionable = self.nu0[self.fissionable]
        self.sab_entries: list[tuple[int, SabTable, float]] = []
        self.urr_entries: list[tuple[int, URRTable]] = []
        for k, nuc in enumerate(self.nuclides):
            if nuc.has_sab:
                nid = int(ids[k])
                self.sab_entries.append(
                    (k, soa.sab_tables[nid], float(soa.sab_cutoff[nid]))
                )
            if nuc.has_urr:
                self.urr_entries.append((k, calc.library.urr[nuc.name]))
        # Fused-containment bounds for the URR nuclides (one vectorized
        # range check per bank instead of a ``contains`` call per nuclide).
        self.urr_emin = np.array([t.emin for _, t in self.urr_entries])
        self.urr_emax = np.array([t.emax for _, t in self.urr_entries])
        # Flat row offsets into the union index matrix, so the hot gather is
        # a single ``take`` out of the raveled matrix instead of 2-D fancy
        # indexing (same elements, lower dispatch cost).
        if calc.union is not None:
            n_union = calc.union.indices.shape[1]
            self.union_rowoff_col = (
                ids.astype(np.int64) * n_union
            )[:, None]
        else:
            self.union_rowoff_col = None


class XSCalculator:
    """Cross-section engine bound to a library (and optionally a union grid).

    Parameters
    ----------
    library:
        The nuclide library.
    union:
        Optional unionized grid; when present, per-nuclide binary searches
        are replaced by one union search plus index gathers (Leppänen).
    use_sab, use_urr:
        Physics toggles.  The paper *removed* the S(alpha, beta) and URR
        blocks to vectorize its micro-benchmarks; switching these off
        reproduces that stripped configuration.
    layout:
        ``"soa"`` (default) or ``"aos"`` — which data layout the banked
        kernels read from (ablation #1 in DESIGN.md).
    """

    def __init__(
        self,
        library: NuclideLibrary,
        union: UnionizedGrid | None = None,
        *,
        use_sab: bool = True,
        use_urr: bool = True,
        layout: str = "soa",
    ) -> None:
        self.library = library
        self.union = union
        self.use_sab = use_sab
        self.use_urr = use_urr
        if layout not in ("soa", "aos"):
            raise PhysicsError(f"unknown layout {layout!r}")
        self.layout = layout
        self.soa = SoALibrary(library)
        self.aos = AoSLibrary(library) if layout == "aos" else None
        # id(material) -> MaterialPlan; the plan's material reference keeps
        # the id stable for the cache's lifetime.
        self._plans: dict[int, MaterialPlan] = {}
        self._union_indices_flat = (
            union.indices.ravel() if union is not None else None
        )

    def material_plan(self, material: Material) -> MaterialPlan:
        """Cached :class:`MaterialPlan` for a material (built on first use)."""
        plan = self._plans.get(id(material))
        if plan is None:
            plan = MaterialPlan(self, material)
            self._plans[id(material)] = plan
        return plan

    def _local_indices(
        self, plan: MaterialPlan, energies: np.ndarray
    ) -> np.ndarray:
        """Interval indices within each material nuclide's own grid.

        Shape ``(n_nuclides_in_material, N)``.  With a union grid this is a
        single search plus one fused 2-D gather out of the index matrix;
        without one it falls back to per-nuclide binary searches.
        """
        if self.union is not None:
            u = self.union.search_many(energies)
            flat = plan.union_rowoff_col + u[None, :]
            return self._union_indices_flat.take(flat)
        local = np.empty(
            (plan.n_nuclides, energies.shape[0]), dtype=np.int64
        )
        for k, nuc in enumerate(plan.nuclides):
            local[k] = nuc.find_index_many(energies)
        return local

    # ------------------------------------------------------------------
    # Scalar (history-based) path
    # ------------------------------------------------------------------

    def scalar(
        self,
        material: Material,
        energy: float,
        stream: RandomStream,
        counters: WorkCounters | None = None,
        per_nuclide_total: np.ndarray | None = None,
    ) -> MacroXS:
        """Algorithm 1 for a single particle.

        ``per_nuclide_total``, if given (length >= material.n_nuclides), is
        filled with each nuclide's contribution to the total macroscopic
        cross section — the weights for collision-nuclide sampling.
        """
        ids, rho = material.resolve(self.library)
        n = ids.shape[0]
        if self.union is not None:
            u = self.union.search(energy)
        total = elastic = capture = fission = nu_fission = 0.0
        for k in range(n):
            nid = int(ids[k])
            nuc = self.library[nid]
            if self.union is not None:
                idx = int(self.union.indices[nid, u])
            else:
                idx = nuc.find_index(energy)
            micro = nuc.micro_xs(energy, index=idx)
            m_el = micro[Reaction.ELASTIC]
            m_cap = micro[Reaction.CAPTURE]
            m_fis = micro[Reaction.FISSION]
            if self.use_sab and nuc.has_sab:
                sab = self.library.sab[nuc.name]
                if energy < sab.cutoff:
                    m_el = float(sab.thermal_xs(energy))
                    if counters:
                        counters.sab_samples += 1
            if self.use_urr and nuc.has_urr:
                table = self.library.urr[nuc.name]
                if table.contains(energy):
                    factors = table.sample_factors(energy, stream.prn())
                    m_el *= factors[Reaction.ELASTIC]
                    m_cap *= factors[Reaction.CAPTURE]
                    m_fis *= factors[Reaction.FISSION]
                    if counters:
                        counters.urr_samples += 1
                        counters.rn_draws += 1
            m_tot = m_el + m_cap + m_fis
            contrib = rho[k] * m_tot
            total += contrib
            elastic += rho[k] * m_el
            capture += rho[k] * m_cap
            fission += rho[k] * m_fis
            if nuc.fissionable:
                nu_fission += rho[k] * m_fis * float(nuc.nu(energy))
            if per_nuclide_total is not None:
                per_nuclide_total[k] = contrib
        if counters:
            counters.lookups += 1
            counters.nuclide_iterations += n
            counters.grid_searches += 1 if self.union is not None else n
            counters.bytes_read += n * BYTES_PER_NUCLIDE_LOOKUP
        return MacroXS(
            total=total,
            elastic=elastic,
            capture=capture,
            fission=fission,
            nu_fission=nu_fission,
        )

    # ------------------------------------------------------------------
    # Banked (event-based) path: inner nuclide loop, vectorized particles
    # ------------------------------------------------------------------

    def apply_corrections(
        self,
        plan: MaterialPlan,
        energies: np.ndarray,
        m_el_mat: np.ndarray,
        m_cap_mat: np.ndarray,
        m_fis_mat: np.ndarray,
        *,
        rng_states: np.ndarray | None = None,
        counters: WorkCounters | None = None,
    ) -> None:
        """S(alpha, beta) substitution (no RNG) and URR factor sampling
        (RNG draws in material order ``k``, exactly the scalar path's draw
        order), applied **in place** to the ``(n_nuc, N)`` micro matrices.

        The two nuclide sets are disjoint, so the split loops touch
        different rows and commute with the old interleaved form.  Shared by
        the NumPy banked path and the compiled-kernel path
        (:mod:`repro.transport.jit`), which brackets it between its gather
        and accumulate kernels — corrections have one implementation, so
        the two paths cannot drift.
        """
        if self.use_sab:
            for k, sab, cutoff in plan.sab_entries:
                mask = energies < cutoff
                if mask.any():
                    m_el_mat[k, mask] = sab.thermal_xs(energies[mask])
                    if counters:
                        counters.sab_samples += int(mask.sum())
        if self.use_urr and plan.urr_entries:
            in_range = (energies[None, :] >= plan.urr_emin[:, None]) & (
                energies[None, :] < plan.urr_emax[:, None]
            )
            for i, (k, table) in enumerate(plan.urr_entries):
                mask = in_range[i]
                if mask.any():
                    if rng_states is None:
                        raise PhysicsError(
                            "banked URR sampling requires rng_states"
                        )
                    new_states, xi = prn_array(rng_states[mask])
                    rng_states[mask] = new_states
                    factors = table.sample_factors_many(energies[mask], xi)
                    m_el_mat[k, mask] *= factors[Reaction.ELASTIC]
                    m_cap_mat[k, mask] *= factors[Reaction.CAPTURE]
                    m_fis_mat[k, mask] *= factors[Reaction.FISSION]
                    if counters:
                        counters.urr_samples += int(mask.sum())
                        counters.rn_draws += int(mask.sum())

    def banked(
        self,
        material: Material,
        energies: np.ndarray,
        rng_states: np.ndarray | None = None,
        counters: WorkCounters | None = None,
        per_nuclide_total: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Vectorized Algorithm 1 over a bank of particles.

        Parameters
        ----------
        energies:
            Particle energies, shape ``(N,)``.
        rng_states:
            Per-particle LCG states (uint64), advanced **in place** exactly
            as the scalar path would advance each particle's stream (URR
            draws happen only for particles inside a table's range, in the
            same material order) — required when ``use_urr`` is on.
        per_nuclide_total:
            Optional ``(n_nuclides_in_material, N)`` output of per-nuclide
            contributions (collision-nuclide sampling weights).

        Returns a dict of ``(N,)`` arrays: ``total``, ``elastic``,
        ``capture``, ``fission``.
        """
        energies = np.asarray(energies, dtype=np.float64)
        plan = self.material_plan(material)
        rho = plan.rho
        n_nuc = plan.n_nuclides
        n = energies.shape[0]
        local = self._local_indices(plan, energies)  # (n_nuc, N)
        if self.layout == "soa":
            # Fused gather: one (n_nuc, N) take per quantity instead of
            # n_nuc small per-nuclide gathers.  Element-wise arithmetic is
            # identical to the per-nuclide micro_xs_gather form
            # ((1 - f) * lo + f * hi per point), so results stay bit-equal.
            soa = self.soa
            idx = plan.offsets_col + local
            idx1 = idx + 1
            e0 = soa.energy.take(idx)
            e1 = soa.energy.take(idx1)
            den = np.subtract(e1, e0, out=e1)
            f = np.subtract(energies[None, :], e0, out=e0)
            f /= den
            np.clip(f, 0.0, 1.0, out=f)
            g = np.subtract(1.0, f, out=den)
            row = soa.xs[Reaction.ELASTIC]
            m_el_mat = row.take(idx)
            m_el_mat *= g
            hi = row.take(idx1)
            hi *= f
            m_el_mat += hi
            row = soa.xs[Reaction.CAPTURE]
            m_cap_mat = row.take(idx)
            m_cap_mat *= g
            hi = row.take(idx1)
            hi *= f
            m_cap_mat += hi
            row = soa.xs[Reaction.FISSION]
            m_fis_mat = row.take(idx)
            m_fis_mat *= g
            hi = row.take(idx1)
            hi *= f
            m_fis_mat += hi
        else:
            # AoS ablation: keep the per-nuclide strided gathers (that cost
            # is the point of the layout comparison) but share the fused
            # correction/accumulation code below.
            m_el_mat = np.empty((n_nuc, n))
            m_cap_mat = np.empty((n_nuc, n))
            m_fis_mat = np.empty((n_nuc, n))
            for k in range(n_nuc):
                micro = self.aos.micro_xs_gather(
                    int(plan.ids[k]), energies, local[k]
                )
                m_el_mat[k] = micro[Reaction.ELASTIC]
                m_cap_mat[k] = micro[Reaction.CAPTURE]
                m_fis_mat[k] = micro[Reaction.FISSION]
        self.apply_corrections(
            plan, energies, m_el_mat, m_cap_mat, m_fis_mat,
            rng_states=rng_states, counters=counters,
        )
        # Per-nuclide accumulation in material order: float sums must happen
        # in the scalar path's order to stay bit-identical (no matmul/BLAS
        # reductions here, by design).  ``np.add.reduce`` over axis 0 of a
        # C-order (n_nuc, N) array is a strided reduction that accumulates
        # row-by-row in exactly that order — except when N == 1, where the
        # reduction is contiguous and NumPy switches to pairwise summation,
        # so that case keeps the explicit loop.
        nu_e = NU_THERMAL_SLOPE * energies
        if n == 1:
            total = np.zeros(n)
            elastic = np.zeros(n)
            capture = np.zeros(n)
            fission = np.zeros(n)
            nu_fission = np.zeros(n)
            buf = np.empty(n)
            for k in range(n_nuc):
                m_el = m_el_mat[k]
                m_cap = m_cap_mat[k]
                m_fis = m_fis_mat[k]
                np.add(m_el, m_cap, out=buf)
                buf += m_fis
                buf *= rho[k]
                total += buf
                if per_nuclide_total is not None:
                    per_nuclide_total[k] = buf
                m_el *= rho[k]
                elastic += m_el
                m_cap *= rho[k]
                capture += m_cap
                m_fis *= rho[k]
                fission += m_fis
                if plan.fissionable[k]:
                    nu_fission += m_fis * (plan.nu0[k] + nu_e)
        else:
            rho_col = rho[:, None]
            contrib = m_el_mat + m_cap_mat
            contrib += m_fis_mat
            contrib *= rho_col
            total = np.add.reduce(contrib, axis=0)
            if per_nuclide_total is not None:
                per_nuclide_total[:n_nuc] = contrib
            m_el_mat *= rho_col
            elastic = np.add.reduce(m_el_mat, axis=0)
            m_cap_mat *= rho_col
            capture = np.add.reduce(m_cap_mat, axis=0)
            m_fis_mat *= rho_col
            fission = np.add.reduce(m_fis_mat, axis=0)
            if plan.any_fissionable:
                nu_mat = m_fis_mat[plan.fissionable]
                nu_mat *= plan.nu0_fissionable[:, None] + nu_e[None, :]
                nu_fission = np.add.reduce(nu_mat, axis=0)
            else:
                nu_fission = np.zeros(n)
        if counters:
            counters.lookups += n
            counters.nuclide_iterations += n * n_nuc
            counters.grid_searches += n if self.union is not None else n * n_nuc
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return {
            "total": total,
            "elastic": elastic,
            "capture": capture,
            "fission": fission,
            "nu_fission": nu_fission,
        }

    # ------------------------------------------------------------------
    # Banked, outer-loop variant (for the ablation)
    # ------------------------------------------------------------------

    def banked_outer(
        self,
        material: Material,
        energies: np.ndarray,
        counters: WorkCounters | None = None,
    ) -> np.ndarray:
        """Total macroscopic XS via per-particle vectorization over nuclides.

        One Python-level iteration *per particle*, each gathering all
        nuclides' contributions at once — the structure of putting
        ``#pragma simd`` on the outer loop of Algorithm 2.  The paper found
        this slower (ragged inner bounds per material); here the Python
        per-particle overhead plays that role.  S(alpha, beta)/URR are not
        supported in this stripped variant (as in the paper's
        micro-benchmark).  Requires a union grid.
        """
        if self.union is None:
            raise PhysicsError("banked_outer requires a unionized grid")
        energies = np.asarray(energies, dtype=np.float64)
        ids, rho = material.resolve(self.library)
        n = energies.shape[0]
        out = np.empty(n)
        for j in range(n):
            u = self.union.search(float(energies[j]))
            local = self.union.indices[ids, u]
            micro_tot = self.soa.micro_total_across_nuclides(
                float(energies[j]), self.soa_local_indices(ids, local)
            )
            out[j] = float(np.dot(rho, micro_tot[ids]))
        if counters:
            counters.lookups += n
            counters.nuclide_iterations += n * ids.shape[0]
            counters.grid_searches += n
            counters.bytes_read += n * ids.shape[0] * BYTES_PER_NUCLIDE_LOOKUP
        return out

    # ------------------------------------------------------------------
    # Collision attribution
    # ------------------------------------------------------------------

    def attribution_weights(
        self,
        material: Material,
        energies: np.ndarray,
        reaction: Reaction,
        counters: WorkCounters | None = None,
    ) -> np.ndarray:
        """Per-nuclide sampling weights for collision attribution.

        Shape ``(n_nuclides_in_material, N)``: entry ``[k, j]`` is
        :math:`N_k \\sigma_{x,k}(E_j)` for the requested channel ``x``.
        S(alpha, beta) substitution is applied (bound hydrogen dominates
        thermal scattering attribution); URR factors are *not* — they were
        consumed during the lookup and re-drawing them would desynchronize
        the particle streams.  Both transport loops use this same function,
        so history and event runs attribute collisions identically.
        """
        energies = np.atleast_1d(np.asarray(energies, dtype=np.float64))
        plan = self.material_plan(material)
        n_nuc = plan.n_nuclides
        n = energies.shape[0]
        # Fused SoA gather of the one requested reaction row across all the
        # material's nuclides at once (always SoA — attribution is shared
        # infrastructure, not part of the layout ablation).
        local = self._local_indices(plan, energies)
        idx = plan.offsets_col + local
        idx1 = idx + 1
        soa = self.soa
        e0 = soa.energy.take(idx)
        e1 = soa.energy.take(idx1)
        den = np.subtract(e1, e0, out=e1)
        f = np.subtract(energies[None, :], e0, out=e0)
        f /= den
        np.clip(f, 0.0, 1.0, out=f)
        g = np.subtract(1.0, f, out=den)
        row = soa.xs[reaction]
        out = row.take(idx)
        out *= g
        hi = row.take(idx1)
        hi *= f
        out += hi
        if reaction == Reaction.ELASTIC and self.use_sab:
            for k, sab, cutoff in plan.sab_entries:
                mask = energies < cutoff
                if mask.any():
                    out[k, mask] = sab.thermal_xs(energies[mask])
        out *= plan.rho[:, None]
        if counters:
            counters.nuclide_iterations += n * n_nuc
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return out

    def soa_local_indices(
        self, ids: np.ndarray, local: np.ndarray
    ) -> np.ndarray:
        """Expand material-subset local indices to a full per-nuclide vector
        (nuclides outside the material get index 0; they are masked out by
        the dot product with the density vector)."""
        full = np.zeros(self.soa.n_nuclides, dtype=np.int64)
        full[ids] = local
        return full
