"""Macroscopic cross-section calculation — the paper's bottleneck kernel.

Implements Algorithm 1 (``calculate_xs``) in the three structural variants
the paper compares:

* :meth:`XSCalculator.scalar` — the history-based path: one particle, a
  scalar loop over the material's nuclides (with optional unionized-grid
  indexing, URR probability-table sampling, and S(alpha, beta) substitution);
* :meth:`XSCalculator.banked` — the event-based path: a whole bank of
  particles at once, Python-looping over nuclides while NumPy vectorizes the
  particle dimension (the analogue of ``#pragma simd`` on Algorithm 2's
  inner loop, transposed to NumPy's strength);
* :meth:`XSCalculator.banked_outer` — the alternative the paper tried and
  found slower: vectorizing across the *nuclide* dimension per particle
  (ragged bounds per material are why it loses on real hardware).

Both banked variants reproduce the scalar path's results — and its random-
number stream — exactly, so history and event transport are bit-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.library import NuclideLibrary
from ..data.soa import AoSLibrary, SoALibrary
from ..data.unionized import UnionizedGrid
from ..errors import PhysicsError
from ..geometry.materials import Material
from ..rng.lcg import RandomStream, prn_array
from ..types import N_REACTIONS, Reaction
from ..work import WorkCounters

__all__ = ["MacroXS", "XSCalculator"]

#: Bytes touched per nuclide per lookup: two grid points x (energy + four
#: cross sections) x 8 bytes.  Feeds the memory-bound roofline estimate.
BYTES_PER_NUCLIDE_LOOKUP = 2 * (1 + N_REACTIONS) * 8


@dataclass
class MacroXS:
    """Macroscopic cross sections [1/cm] of a material at one energy.

    ``nu_fission`` is :math:`\\nu\\Sigma_f` — fission production — used by
    all three k-effective estimators.
    """

    total: float
    elastic: float
    capture: float
    fission: float
    nu_fission: float = 0.0

    @property
    def absorption(self) -> float:
        return self.capture + self.fission


class XSCalculator:
    """Cross-section engine bound to a library (and optionally a union grid).

    Parameters
    ----------
    library:
        The nuclide library.
    union:
        Optional unionized grid; when present, per-nuclide binary searches
        are replaced by one union search plus index gathers (Leppänen).
    use_sab, use_urr:
        Physics toggles.  The paper *removed* the S(alpha, beta) and URR
        blocks to vectorize its micro-benchmarks; switching these off
        reproduces that stripped configuration.
    layout:
        ``"soa"`` (default) or ``"aos"`` — which data layout the banked
        kernels read from (ablation #1 in DESIGN.md).
    """

    def __init__(
        self,
        library: NuclideLibrary,
        union: UnionizedGrid | None = None,
        *,
        use_sab: bool = True,
        use_urr: bool = True,
        layout: str = "soa",
    ) -> None:
        self.library = library
        self.union = union
        self.use_sab = use_sab
        self.use_urr = use_urr
        if layout not in ("soa", "aos"):
            raise PhysicsError(f"unknown layout {layout!r}")
        self.layout = layout
        self.soa = SoALibrary(library)
        self.aos = AoSLibrary(library) if layout == "aos" else None

    # ------------------------------------------------------------------
    # Scalar (history-based) path
    # ------------------------------------------------------------------

    def scalar(
        self,
        material: Material,
        energy: float,
        stream: RandomStream,
        counters: WorkCounters | None = None,
        per_nuclide_total: np.ndarray | None = None,
    ) -> MacroXS:
        """Algorithm 1 for a single particle.

        ``per_nuclide_total``, if given (length >= material.n_nuclides), is
        filled with each nuclide's contribution to the total macroscopic
        cross section — the weights for collision-nuclide sampling.
        """
        ids, rho = material.resolve(self.library)
        n = ids.shape[0]
        if self.union is not None:
            u = self.union.search(energy)
        total = elastic = capture = fission = nu_fission = 0.0
        for k in range(n):
            nid = int(ids[k])
            nuc = self.library[nid]
            if self.union is not None:
                idx = int(self.union.indices[nid, u])
            else:
                idx = nuc.find_index(energy)
            micro = nuc.micro_xs(energy, index=idx)
            m_el = micro[Reaction.ELASTIC]
            m_cap = micro[Reaction.CAPTURE]
            m_fis = micro[Reaction.FISSION]
            if self.use_sab and nuc.has_sab:
                sab = self.library.sab[nuc.name]
                if energy < sab.cutoff:
                    m_el = float(sab.thermal_xs(energy))
                    if counters:
                        counters.sab_samples += 1
            if self.use_urr and nuc.has_urr:
                table = self.library.urr[nuc.name]
                if table.contains(energy):
                    factors = table.sample_factors(energy, stream.prn())
                    m_el *= factors[Reaction.ELASTIC]
                    m_cap *= factors[Reaction.CAPTURE]
                    m_fis *= factors[Reaction.FISSION]
                    if counters:
                        counters.urr_samples += 1
                        counters.rn_draws += 1
            m_tot = m_el + m_cap + m_fis
            contrib = rho[k] * m_tot
            total += contrib
            elastic += rho[k] * m_el
            capture += rho[k] * m_cap
            fission += rho[k] * m_fis
            if nuc.fissionable:
                nu_fission += rho[k] * m_fis * float(nuc.nu(energy))
            if per_nuclide_total is not None:
                per_nuclide_total[k] = contrib
        if counters:
            counters.lookups += 1
            counters.nuclide_iterations += n
            counters.grid_searches += 1 if self.union is not None else n
            counters.bytes_read += n * BYTES_PER_NUCLIDE_LOOKUP
        return MacroXS(
            total=total,
            elastic=elastic,
            capture=capture,
            fission=fission,
            nu_fission=nu_fission,
        )

    # ------------------------------------------------------------------
    # Banked (event-based) path: inner nuclide loop, vectorized particles
    # ------------------------------------------------------------------

    def banked(
        self,
        material: Material,
        energies: np.ndarray,
        rng_states: np.ndarray | None = None,
        counters: WorkCounters | None = None,
        per_nuclide_total: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Vectorized Algorithm 1 over a bank of particles.

        Parameters
        ----------
        energies:
            Particle energies, shape ``(N,)``.
        rng_states:
            Per-particle LCG states (uint64), advanced **in place** exactly
            as the scalar path would advance each particle's stream (URR
            draws happen only for particles inside a table's range, in the
            same material order) — required when ``use_urr`` is on.
        per_nuclide_total:
            Optional ``(n_nuclides_in_material, N)`` output of per-nuclide
            contributions (collision-nuclide sampling weights).

        Returns a dict of ``(N,)`` arrays: ``total``, ``elastic``,
        ``capture``, ``fission``.
        """
        energies = np.asarray(energies, dtype=np.float64)
        ids, rho = material.resolve(self.library)
        n_nuc = ids.shape[0]
        n = energies.shape[0]
        if self.union is not None:
            u = self.union.search_many(energies)
        total = np.zeros(n)
        elastic = np.zeros(n)
        capture = np.zeros(n)
        fission = np.zeros(n)
        nu_fission = np.zeros(n)
        gather = (
            self.soa.micro_xs_gather
            if self.layout == "soa"
            else self.aos.micro_xs_gather
        )
        for k in range(n_nuc):
            nid = int(ids[k])
            nuc = self.library[nid]
            if self.union is not None:
                idx = self.union.indices[nid, u]
            else:
                idx = nuc.find_index_many(energies)
            micro = gather(nid, energies, idx)  # (N_REACTIONS, N)
            m_el = micro[Reaction.ELASTIC]
            m_cap = micro[Reaction.CAPTURE]
            m_fis = micro[Reaction.FISSION]
            if self.use_sab and nuc.has_sab:
                sab = self.library.sab[nuc.name]
                mask = energies < sab.cutoff
                if mask.any():
                    m_el = m_el.copy()
                    m_el[mask] = sab.thermal_xs(energies[mask])
                    if counters:
                        counters.sab_samples += int(mask.sum())
            if self.use_urr and nuc.has_urr:
                table = self.library.urr[nuc.name]
                mask = np.asarray(table.contains(energies))
                if mask.any():
                    if rng_states is None:
                        raise PhysicsError(
                            "banked URR sampling requires rng_states"
                        )
                    new_states, xi = prn_array(rng_states[mask])
                    rng_states[mask] = new_states
                    factors = table.sample_factors_many(energies[mask], xi)
                    m_el = m_el.copy()
                    m_cap = m_cap.copy()
                    m_fis = m_fis.copy()
                    m_el[mask] *= factors[Reaction.ELASTIC]
                    m_cap[mask] *= factors[Reaction.CAPTURE]
                    m_fis[mask] *= factors[Reaction.FISSION]
                    if counters:
                        counters.urr_samples += int(mask.sum())
                        counters.rn_draws += int(mask.sum())
            m_tot = m_el + m_cap + m_fis
            contrib = rho[k] * m_tot
            total += contrib
            elastic += rho[k] * m_el
            capture += rho[k] * m_cap
            fission += rho[k] * m_fis
            if nuc.fissionable:
                nu_fission += rho[k] * m_fis * nuc.nu(energies)
            if per_nuclide_total is not None:
                per_nuclide_total[k] = contrib
        if counters:
            counters.lookups += n
            counters.nuclide_iterations += n * n_nuc
            counters.grid_searches += n if self.union is not None else n * n_nuc
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return {
            "total": total,
            "elastic": elastic,
            "capture": capture,
            "fission": fission,
            "nu_fission": nu_fission,
        }

    # ------------------------------------------------------------------
    # Banked, outer-loop variant (for the ablation)
    # ------------------------------------------------------------------

    def banked_outer(
        self,
        material: Material,
        energies: np.ndarray,
        counters: WorkCounters | None = None,
    ) -> np.ndarray:
        """Total macroscopic XS via per-particle vectorization over nuclides.

        One Python-level iteration *per particle*, each gathering all
        nuclides' contributions at once — the structure of putting
        ``#pragma simd`` on the outer loop of Algorithm 2.  The paper found
        this slower (ragged inner bounds per material); here the Python
        per-particle overhead plays that role.  S(alpha, beta)/URR are not
        supported in this stripped variant (as in the paper's
        micro-benchmark).  Requires a union grid.
        """
        if self.union is None:
            raise PhysicsError("banked_outer requires a unionized grid")
        energies = np.asarray(energies, dtype=np.float64)
        ids, rho = material.resolve(self.library)
        n = energies.shape[0]
        out = np.empty(n)
        for j in range(n):
            u = self.union.search(float(energies[j]))
            local = self.union.indices[ids, u]
            micro_tot = self.soa.micro_total_across_nuclides(
                float(energies[j]), self.soa_local_indices(ids, local)
            )
            out[j] = float(np.dot(rho, micro_tot[ids]))
        if counters:
            counters.lookups += n
            counters.nuclide_iterations += n * ids.shape[0]
            counters.grid_searches += n
            counters.bytes_read += n * ids.shape[0] * BYTES_PER_NUCLIDE_LOOKUP
        return out

    # ------------------------------------------------------------------
    # Collision attribution
    # ------------------------------------------------------------------

    def attribution_weights(
        self,
        material: Material,
        energies: np.ndarray,
        reaction: Reaction,
        counters: WorkCounters | None = None,
    ) -> np.ndarray:
        """Per-nuclide sampling weights for collision attribution.

        Shape ``(n_nuclides_in_material, N)``: entry ``[k, j]`` is
        :math:`N_k \\sigma_{x,k}(E_j)` for the requested channel ``x``.
        S(alpha, beta) substitution is applied (bound hydrogen dominates
        thermal scattering attribution); URR factors are *not* — they were
        consumed during the lookup and re-drawing them would desynchronize
        the particle streams.  Both transport loops use this same function,
        so history and event runs attribute collisions identically.
        """
        energies = np.atleast_1d(np.asarray(energies, dtype=np.float64))
        ids, rho = material.resolve(self.library)
        n_nuc = ids.shape[0]
        n = energies.shape[0]
        if self.union is not None:
            u = self.union.search_many(energies)
        out = np.empty((n_nuc, n))
        for k in range(n_nuc):
            nid = int(ids[k])
            nuc = self.library[nid]
            if self.union is not None:
                idx = self.union.indices[nid, u]
            else:
                idx = nuc.find_index_many(energies)
            micro = self.soa.micro_xs_gather(nid, energies, idx)
            row = micro[reaction].copy()
            if (
                reaction == Reaction.ELASTIC
                and self.use_sab
                and nuc.has_sab
            ):
                sab = self.library.sab[nuc.name]
                mask = energies < sab.cutoff
                if mask.any():
                    row[mask] = sab.thermal_xs(energies[mask])
            out[k] = rho[k] * row
        if counters:
            counters.nuclide_iterations += n * n_nuc
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return out

    def soa_local_indices(
        self, ids: np.ndarray, local: np.ndarray
    ) -> np.ndarray:
        """Expand material-subset local indices to a full per-nuclide vector
        (nuclides outside the material get index 0; they are masked out by
        the dot product with the density vector)."""
        full = np.zeros(self.soa.n_nuclides, dtype=np.int64)
        full[ids] = local
        return full
