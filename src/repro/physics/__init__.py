"""Collision physics: cross-section kernels, sampling, kinematics."""

from .collision import (
    sample_nuclide,
    sample_nuclide_many,
    select_channel,
    select_channel_many,
)
from .distance import (
    sample_distance_from_uniforms,
    sample_distance_naive,
    sample_distance_optimized1,
    sample_distance_optimized2,
)
from .fission import sample_nu, sample_nu_many, watt_spectrum, watt_spectrum_many
from .macroxs import MacroXS, XSCalculator
from .scattering import (
    elastic_scatter,
    elastic_scatter_many,
    isotropic_direction,
    isotropic_direction_many,
    rotate_direction,
    rotate_direction_many,
)
from .thermal import free_gas_scatter, free_gas_scatter_many

__all__ = [
    "sample_nuclide",
    "sample_nuclide_many",
    "select_channel",
    "select_channel_many",
    "sample_distance_from_uniforms",
    "sample_distance_naive",
    "sample_distance_optimized1",
    "sample_distance_optimized2",
    "sample_nu",
    "sample_nu_many",
    "watt_spectrum",
    "watt_spectrum_many",
    "MacroXS",
    "XSCalculator",
    "elastic_scatter",
    "elastic_scatter_many",
    "isotropic_direction",
    "isotropic_direction_many",
    "rotate_direction",
    "rotate_direction_many",
    "free_gas_scatter",
    "free_gas_scatter_many",
]
