r"""Elastic scattering kinematics and direction sampling.

Target-at-rest elastic scattering off a nucleus of atomic weight ratio
:math:`A`: with the center-of-mass cosine :math:`\mu_c` sampled isotropically
(:math:`\mu_c = 2\xi - 1`, as in the paper §II-A2),

.. math::

    \frac{E'}{E} = \frac{A^2 + 2 A \mu_c + 1}{(A + 1)^2}, \qquad
    \mu_{lab} = \frac{1 + A \mu_c}{\sqrt{A^2 + 2 A \mu_c + 1}} .

Scalar and bank-vectorized forms are provided, plus the direction rotation
(new unit vector at polar cosine mu about the old direction with azimuth
phi) used by both transport loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "elastic_scatter",
    "elastic_scatter_many",
    "isotropic_direction",
    "isotropic_direction_many",
    "rotate_direction",
    "rotate_direction_many",
]


def elastic_scatter(energy: float, awr: float, xi: float) -> tuple[float, float]:
    """Scalar elastic scatter: returns (outgoing energy, lab cosine)."""
    mu_c = 2.0 * xi - 1.0
    s = awr * awr + 2.0 * awr * mu_c + 1.0
    e_out = energy * s / (awr + 1.0) ** 2
    # For A=1 exact backscatter s -> 0 and the lab cosine limit is 0;
    # the floor keeps the division finite (numerator vanishes with s).
    mu_lab = (1.0 + awr * mu_c) / np.sqrt(max(s, 1e-30))
    return e_out, float(np.clip(mu_lab, -1.0, 1.0))


def elastic_scatter_many(
    energies: np.ndarray, awr: np.ndarray, xi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized elastic scatter across a bank.

    ``awr`` may be scalar or per-particle (the colliding nuclide differs
    particle to particle — a gather in the banked algorithm).
    """
    mu_c = 2.0 * np.asarray(xi) - 1.0
    awr = np.asarray(awr, dtype=np.float64)
    s = awr * awr + 2.0 * awr * mu_c + 1.0
    e_out = energies * s / (awr + 1.0) ** 2
    mu_lab = (1.0 + awr * mu_c) / np.sqrt(np.maximum(s, 1e-30))
    return e_out, np.clip(mu_lab, -1.0, 1.0)


def isotropic_direction(xi1: float, xi2: float) -> np.ndarray:
    """Unit vector uniform on the sphere from two uniforms."""
    mu = 2.0 * xi1 - 1.0
    phi = 2.0 * np.pi * xi2
    s = np.sqrt(max(0.0, 1.0 - mu * mu))
    return np.array([s * np.cos(phi), s * np.sin(phi), mu])


def isotropic_direction_many(xi1: np.ndarray, xi2: np.ndarray) -> np.ndarray:
    """Vectorized isotropic directions, shape ``(n, 3)``."""
    mu = 2.0 * np.asarray(xi1) - 1.0
    phi = 2.0 * np.pi * np.asarray(xi2)
    s = np.sqrt(np.maximum(1.0 - mu * mu, 0.0))
    return np.column_stack([s * np.cos(phi), s * np.sin(phi), mu])


def rotate_direction(u: np.ndarray, mu: float, phi: float) -> np.ndarray:
    """Rotate a unit vector to polar cosine ``mu`` about itself, azimuth
    ``phi`` — the standard MC direction-change formula, stable at the poles."""
    ux, uy, uz = u
    s = np.sqrt(max(0.0, 1.0 - mu * mu))
    cos_phi, sin_phi = np.cos(phi), np.sin(phi)
    a = np.sqrt(max(1e-30, 1.0 - uz * uz))
    if a < 1e-10:
        # Travelling (anti)parallel to z: rotate about x instead.
        sign = 1.0 if uz > 0 else -1.0
        return np.array([s * cos_phi, s * sin_phi, sign * mu])
    vx = mu * ux + s * (ux * uz * cos_phi - uy * sin_phi) / a
    vy = mu * uy + s * (uy * uz * cos_phi + ux * sin_phi) / a
    vz = mu * uz - s * a * cos_phi
    v = np.array([vx, vy, vz])
    return v / np.linalg.norm(v)


def rotate_direction_many(
    u: np.ndarray, mu: np.ndarray, phi: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`rotate_direction`; ``u`` has shape ``(n, 3)``."""
    u = np.asarray(u, dtype=np.float64)
    mu = np.asarray(mu, dtype=np.float64)
    phi = np.asarray(phi, dtype=np.float64)
    ux, uy, uz = u[:, 0], u[:, 1], u[:, 2]
    s = np.sqrt(np.maximum(1.0 - mu * mu, 0.0))
    cos_phi, sin_phi = np.cos(phi), np.sin(phi)
    a = np.sqrt(np.maximum(1.0 - uz * uz, 1e-30))
    polar = a < 1e-10
    vx = mu * ux + s * (ux * uz * cos_phi - uy * sin_phi) / a
    vy = mu * uy + s * (uy * uz * cos_phi + ux * sin_phi) / a
    vz = mu * uz - s * a * cos_phi
    if polar.any():
        sign = np.where(uz[polar] > 0, 1.0, -1.0)
        vx[polar] = s[polar] * cos_phi[polar]
        vy[polar] = s[polar] * sin_phi[polar]
        vz[polar] = sign * mu[polar]
    v = np.column_stack([vx, vy, vz])
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return v
