r"""Collision-site physics: nuclide selection and reaction-channel sampling.

At a collision site the transport loop must decide (a) *which nuclide* the
neutron hit — sampled with probability proportional to each nuclide's
contribution :math:`N_i \sigma_{t,i}` to the material total — and (b) *which
channel* fired.  Channel selection follows the paper §II-A2: an absorption
reaction occurs when :math:`\xi\,\sigma_t < \sigma_a` (here expressed with
macroscopic sums), further split into fission vs capture; otherwise the
neutron scatters.

Scalar and bank-vectorized forms are provided; the vectorized channel
selection is branch-free (comparisons produce masks — the bit-controlled
vector operations the paper says replace conditionals).
"""

from __future__ import annotations

import numpy as np

from ..rng.lcg import prn_array
from ..types import CollisionChannel
from .macroxs import MacroXS

__all__ = [
    "select_channel",
    "select_channel_many",
    "sample_nuclide",
    "sample_nuclide_many",
]


def select_channel(xs: MacroXS, xi: float) -> CollisionChannel:
    """Pick scatter/capture/fission from macroscopic components."""
    threshold = xi * xs.total
    if threshold < xs.fission:
        return CollisionChannel.FISSION
    if threshold < xs.fission + xs.capture:
        return CollisionChannel.CAPTURE
    return CollisionChannel.SCATTER


def select_channel_many(
    total: np.ndarray,
    capture: np.ndarray,
    fission: np.ndarray,
    xi: np.ndarray,
) -> np.ndarray:
    """Vectorized, branch-free channel selection.

    Returns an int array of :class:`repro.types.CollisionChannel` values.
    """
    threshold = np.asarray(xi) * np.asarray(total)
    fission = np.asarray(fission)
    capture = np.asarray(capture)
    out = np.full(threshold.shape, int(CollisionChannel.SCATTER), dtype=np.int64)
    is_fission = threshold < fission
    is_capture = (~is_fission) & (threshold < fission + capture)
    out[is_fission] = int(CollisionChannel.FISSION)
    out[is_capture] = int(CollisionChannel.CAPTURE)
    return out


def sample_nuclide(per_nuclide_total: np.ndarray, xi: float) -> int:
    """Index (within the material) of the colliding nuclide.

    ``per_nuclide_total[k]`` is nuclide ``k``'s contribution to the total
    macroscopic cross section (from
    :meth:`repro.physics.macroxs.XSCalculator.scalar`).
    """
    cum = np.cumsum(per_nuclide_total)
    target = xi * cum[-1]
    k = int(np.searchsorted(cum, target, side="right"))
    return min(k, per_nuclide_total.shape[0] - 1)


def sample_nuclide_many(
    per_nuclide_total: np.ndarray, rng_states: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized colliding-nuclide selection over a bank.

    ``per_nuclide_total`` has shape ``(n_nuclides, n_particles)``.  Each
    particle draws one variate from its own stream; the CDF search is the
    branch-free comparison-count form.  Returns ``(indices, new_states)``.
    """
    states, xi = prn_array(rng_states)
    cum = np.cumsum(per_nuclide_total, axis=0)  # (n_nuc, n)
    target = xi * cum[-1]
    # Count of cumulative entries below the target = selected index.
    idx = np.sum(cum < target[None, :], axis=0)
    idx = np.minimum(idx, per_nuclide_total.shape[0] - 1)
    return idx.astype(np.int64), states
