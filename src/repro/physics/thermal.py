r"""Thermal-motion treatments: free-gas scattering and S(alpha, beta) hooks.

Below a few eV, the target nucleus's thermal velocity is comparable to the
neutron's, so target-at-rest kinematics is wrong: neutrons can *up-scatter*.
The paper notes OpenMC handles thermal motion "on the fly"; we implement the
free-gas model directly with explicit velocity vectors:

1. draw the target velocity from a Maxwellian at temperature :math:`T`
   (speed from a :math:`\chi^2_3` energy, direction isotropic);
2. form the center-of-mass velocity, scatter isotropically in the CM frame
   preserving the relative speed, and transform back.

Energies and speeds use the non-relativistic proportionality
:math:`E \propto v^2`, so all mass factors reduce to the atomic weight ratio.
For nuclides with an S(alpha, beta) table (H in water), the bound-scattering
sampler in :mod:`repro.data.sab` supersedes the free-gas model below the
thermal cutoff; the dispatch happens in the collision kernels.
"""

from __future__ import annotations

import numpy as np

from ..constants import K_BOLTZMANN
from ..rng.lcg import RandomStream

__all__ = ["free_gas_scatter", "free_gas_scatter_many", "THERMAL_FREE_GAS_CUTOFF_KT"]

#: Above this many kT, target motion is negligible and target-at-rest
#: kinematics is used instead (the standard 400 kT rule).
THERMAL_FREE_GAS_CUTOFF_KT = 400.0


def _maxwell_speed_squared(kt_over_a: float, xi: tuple[float, float, float]) -> float:
    """Sample v^2 (in energy units) of a Maxwellian target: chi^2 with three
    degrees of freedom, i.e. sum of three squared Gaussians — here via the
    Johnk/Box-Muller-free approach using -ln terms:
    v^2/(kT/A) ~ Gamma(3/2, 1) sampled as  -ln xi1 - ln xi2 * cos^2(pi xi3 / 2).
    """
    x1, x2, x3 = xi
    g = -np.log(max(x1, 1e-300)) - np.log(max(x2, 1e-300)) * np.cos(
        0.5 * np.pi * x3
    ) ** 2
    return kt_over_a * g


def free_gas_scatter(
    energy: float,
    direction: np.ndarray,
    awr: float,
    temperature: float,
    stream: RandomStream,
) -> tuple[float, np.ndarray]:
    """Scalar free-gas elastic scatter: returns (E', new direction)."""
    kt = K_BOLTZMANN * temperature
    # Neutron velocity vector in sqrt-energy units.
    vn = np.sqrt(energy) * np.asarray(direction, dtype=float)
    # Target velocity: Maxwellian speed, isotropic direction.  Plain prn()
    # draws (clipped inside the sampler), so the draw count matches the
    # vectorized path exactly.
    vt2 = _maxwell_speed_squared(
        kt / awr, (stream.prn(), stream.prn(), stream.prn())
    )
    mu_t = 2.0 * stream.prn() - 1.0
    phi_t = 2.0 * np.pi * stream.prn()
    s = np.sqrt(max(0.0, 1.0 - mu_t * mu_t))
    vt = np.sqrt(vt2) * np.array([s * np.cos(phi_t), s * np.sin(phi_t), mu_t])
    # CM transform, isotropic CM scatter, back-transform.
    v_cm = (vn + awr * vt) / (awr + 1.0)
    v_rel = vn - vt
    speed_rel = np.linalg.norm(v_rel)
    mu_c = 2.0 * stream.prn() - 1.0
    phi_c = 2.0 * np.pi * stream.prn()
    sc = np.sqrt(max(0.0, 1.0 - mu_c * mu_c))
    omega = np.array([sc * np.cos(phi_c), sc * np.sin(phi_c), mu_c])
    vn_out = v_cm + (awr / (awr + 1.0)) * speed_rel * omega
    e_out = float(np.dot(vn_out, vn_out))
    norm = np.sqrt(e_out)
    if norm < 1e-30:
        return 1e-30, np.asarray(direction, dtype=float)
    return e_out, vn_out / norm


def free_gas_scatter_many(
    energies: np.ndarray,
    directions: np.ndarray,
    awr: np.ndarray,
    temperature: float,
    xi: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized free-gas scatter over a bank.

    ``xi`` must have shape ``(n, 7)`` (seven uniforms per particle, matching
    the scalar path's draw order: three for the Maxwell speed, two for the
    target direction, two for the CM scatter).
    """
    energies = np.asarray(energies, dtype=np.float64)
    n = energies.shape[0]
    kt = K_BOLTZMANN * temperature
    awr = np.broadcast_to(np.asarray(awr, dtype=np.float64), (n,))

    vn = np.sqrt(energies)[:, None] * np.asarray(directions, dtype=np.float64)
    g = -np.log(np.maximum(xi[:, 0], 1e-300)) - np.log(
        np.maximum(xi[:, 1], 1e-300)
    ) * np.cos(0.5 * np.pi * xi[:, 2]) ** 2
    vt_speed = np.sqrt(kt / awr * g)
    mu_t = 2.0 * xi[:, 3] - 1.0
    phi_t = 2.0 * np.pi * xi[:, 4]
    s = np.sqrt(np.maximum(1.0 - mu_t * mu_t, 0.0))
    vt = vt_speed[:, None] * np.column_stack(
        [s * np.cos(phi_t), s * np.sin(phi_t), mu_t]
    )
    v_cm = (vn + awr[:, None] * vt) / (awr[:, None] + 1.0)
    v_rel = vn - vt
    speed_rel = np.linalg.norm(v_rel, axis=1)
    mu_c = 2.0 * xi[:, 5] - 1.0
    phi_c = 2.0 * np.pi * xi[:, 6]
    sc = np.sqrt(np.maximum(1.0 - mu_c * mu_c, 0.0))
    omega = np.column_stack([sc * np.cos(phi_c), sc * np.sin(phi_c), mu_c])
    vn_out = v_cm + (awr / (awr + 1.0))[:, None] * speed_rel[:, None] * omega
    e_out = np.einsum("ij,ij->i", vn_out, vn_out)
    e_out = np.maximum(e_out, 1e-30)
    dir_out = vn_out / np.sqrt(e_out)[:, None]
    return e_out, dir_out
