r"""Fission sampling: neutron multiplicity and the Watt emission spectrum.

The number of fission neutrons is sampled from the expectation
:math:`\nu(E)` (integer floor plus a Bernoulli remainder, weight-preserving
in expectation).  Outgoing energies follow the Watt spectrum

.. math:: \chi(E) \propto e^{-E/a} \sinh\!\sqrt{b E},

sampled with the standard exact algorithm (Everett & Cashwell, as used by
MCNP/OpenMC): with :math:`K = 1 + ab/8`, :math:`L = a(K + \sqrt{K^2 - 1})`,
:math:`M = L/a - 1`, draw :math:`x = -\ln\xi_1`, :math:`y = -\ln\xi_2` and
accept when :math:`(y - M(x+1))^2 \le b L x`; then :math:`E = Lx`.
"""

from __future__ import annotations

import numpy as np

from ..rng.lcg import RandomStream, prn_array

__all__ = [
    "WATT_A",
    "WATT_B",
    "sample_nu",
    "sample_nu_many",
    "watt_spectrum",
    "watt_spectrum_many",
]

#: Default Watt spectrum parameters (U-235 thermal fission) [MeV], [1/MeV];
#: every library nuclide carries these values.
WATT_A = 0.988
WATT_B = 2.249


def sample_nu(nu_bar: float, k_norm: float, xi: float) -> int:
    """Integer number of fission-source neutrons to bank.

    ``nu_bar / k_norm`` (the eigenvalue normalization keeps the population
    stationary across generations) is split into floor + Bernoulli remainder.
    """
    expected = nu_bar / k_norm
    base = int(expected)
    return base + (1 if xi < (expected - base) else 0)


def sample_nu_many(nu_bar: np.ndarray, k_norm: float, xi: np.ndarray) -> np.ndarray:
    """Vectorized :func:`sample_nu`."""
    expected = np.asarray(nu_bar) / k_norm
    base = np.floor(expected)
    return (base + (np.asarray(xi) < (expected - base))).astype(np.int64)


def watt_spectrum(a: float, b: float, stream: RandomStream) -> float:
    """Sample one Watt-spectrum energy [MeV] (rejection, ~1.1 draws/accept)."""
    k = 1.0 + a * b / 8.0
    ell = a * (k + np.sqrt(k * k - 1.0))
    m = ell / a - 1.0
    while True:
        x = -np.log(stream.prn_nonzero())
        y = -np.log(stream.prn_nonzero())
        if (y - m * (x + 1.0)) ** 2 <= b * ell * x:
            return float(ell * x)


def watt_spectrum_many(
    a: float, b: float, rng_states: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Watt sampling over a bank of per-particle LCG states.

    Rejection is handled with a masked retry loop: all pending particles
    draw in lockstep (the compress/retry pattern of vectorized rejection
    sampling).  Returns ``(energies, updated_states)``; each particle's
    stream advances by exactly the number of draws it personally consumed,
    matching the scalar path.
    """
    states = np.asarray(rng_states, dtype=np.uint64).copy()
    n = states.shape[0]
    k = 1.0 + a * b / 8.0
    ell = a * (k + np.sqrt(k * k - 1.0))
    m = ell / a - 1.0
    out = np.empty(n)
    pending = np.arange(n)
    while pending.size:
        s = states[pending]
        s, xi1 = prn_array(s)
        s, xi2 = prn_array(s)
        states[pending] = s
        x = -np.log(np.maximum(xi1, 1e-300))
        y = -np.log(np.maximum(xi2, 1e-300))
        accept = (y - m * (x + 1.0)) ** 2 <= b * ell * x
        out[pending[accept]] = ell * x[accept]
        pending = pending[~accept]
    return out, states
