r"""Collision-distance sampling: Algorithms 3 and 4 of the paper.

Given a total macroscopic cross section :math:`\Sigma_t`, the distance to the
next collision is sampled by inversion of the exponential CDF
(paper Eq. (1)):

.. math:: d = -\ln(\xi) / \Sigma_t .

Three implementations mirror the three columns of Table I:

* :func:`sample_distance_naive` — per-call scalar RNG (the ``rand_r()``
  analogue) and per-element scalar arithmetic in an interpreted loop;
* :func:`sample_distance_optimized1` — vectorized multi-stream RNG
  (the VSL analogue) with a straightforward NumPy expression for the math;
* :func:`sample_distance_optimized2` — the "vector intrinsics" analogue:
  preallocated buffers, in-place ufuncs (no temporaries), cache-blocked
  chunks (the manual-prefetch stand-in), and optional float32 arithmetic
  (16 lanes x 4 bytes, as in the paper's ``_mm512_*_ps``).

All three produce identical samples given the same seed/partitioning (up to
dtype rounding in the float32 path), so benchmarks compare *performance*
of the same computation, not different computations.
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from ..rng.streams import Partition, ScalarRandR, VectorStreams
from ..work import WorkCounters

__all__ = [
    "sample_distance_naive",
    "sample_distance_optimized1",
    "sample_distance_optimized2",
    "sample_distance_from_uniforms",
]

#: Cache-block size for the optimized-2 kernel [elements]: sized so one
#: block of R, X, D (3 x 8 bytes) fits in a ~256 KiB L2 slice.
L2_BLOCK = 8192


def sample_distance_from_uniforms(xi: np.ndarray, sigma_t: np.ndarray) -> np.ndarray:
    """Reference vector evaluation of Eq. (1): ``d = -log(xi) / sigma_t``."""
    return -np.log(xi) / sigma_t


def sample_distance_naive(
    sigma_t: np.ndarray,
    iters: int,
    seed: int = 1,
    counters: WorkCounters | None = None,
) -> np.ndarray:
    """Algorithm 3: scalar RNG call and scalar arithmetic per particle.

    Deliberately interpreted Python per element — the stand-in for the
    unvectorized ``rand_r()``-based loop whose cost dominates the Naive
    column of Table I.
    """
    n = sigma_t.shape[0]
    gen = ScalarRandR(seed=seed)
    d = np.empty(n)
    for _ in range(iters):
        for j in range(n):
            xi = gen.next()
            d[j] = -np.log(xi) / sigma_t[j]
    if counters:
        counters.rn_draws += n * iters
        counters.flights += n * iters
    return d


def sample_distance_optimized1(
    sigma_t: np.ndarray,
    iters: int,
    nstreams: int = 4,
    seed: int = 1,
    counters: WorkCounters | None = None,
) -> np.ndarray:
    """Algorithm 4 without "intrinsics": VSL-style streams + plain NumPy math.

    The RNG fill is the vectorized multi-stream generator; the math is an
    idiomatic (temporary-allocating) NumPy expression.
    """
    n = sigma_t.shape[0]
    if n % nstreams:
        raise PhysicsError(f"N={n} not divisible by nstreams={nstreams}")
    streams = VectorStreams(
        nstreams=nstreams, seed=seed, partition=Partition.SKIP_AHEAD
    )
    r = np.empty(n)
    d = np.empty(n)
    for _ in range(iters):
        streams.fill(r)
        d[:] = -np.log(r) / sigma_t
    if counters:
        counters.rn_draws += n * iters
        counters.flights += n * iters
    return d


def sample_distance_optimized2(
    sigma_t: np.ndarray,
    iters: int,
    nstreams: int = 4,
    seed: int = 1,
    use_f32: bool = False,
    block: int = L2_BLOCK,
    counters: WorkCounters | None = None,
) -> np.ndarray:
    """Algorithm 4 in full: streams + in-place, cache-blocked vector math.

    Differences from :func:`sample_distance_optimized1`, mirroring the
    paper's manual optimizations:

    * all buffers preallocated; ``log``/``divide``/``negative`` run with
      ``out=`` so no temporaries are allocated per iteration (the register-
      resident ``_mm512`` pipeline analogue);
    * the arrays are walked in L2-sized blocks (the tuned-prefetch analogue);
    * optionally float32, matching the 16-lane single-precision vectors of
      Algorithm 4.
    """
    n = sigma_t.shape[0]
    if n % nstreams:
        raise PhysicsError(f"N={n} not divisible by nstreams={nstreams}")
    dtype = np.float32 if use_f32 else np.float64
    x = np.ascontiguousarray(sigma_t, dtype=dtype)
    streams = VectorStreams(
        nstreams=nstreams, seed=seed, partition=Partition.SKIP_AHEAD
    )
    r64 = np.empty(n)  # stream fill is always f64; cast per block below
    r = np.empty(n, dtype=dtype)
    d = np.empty(n, dtype=dtype)
    for _ in range(iters):
        streams.fill(r64)
        if use_f32:
            np.copyto(r, r64, casting="same_kind")
            src = r
        else:
            src = r64
        for s in range(0, n, block):
            sl = slice(s, min(s + block, n))
            np.log(src[sl], out=d[sl])
            np.divide(d[sl], x[sl], out=d[sl])
            np.negative(d[sl], out=d[sl])
    if counters:
        counters.rn_draws += n * iters
        counters.flights += n * iters
    return d.astype(np.float64, copy=False)
