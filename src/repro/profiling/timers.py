"""TAU-style static timers and routine profiles.

The paper instruments OpenMC with the TAU parallel performance system:
static timers around routines, aggregated into per-routine inclusive time
and call counts, then compared across machines (Fig. 4).  This module gives
the Python implementation the same facility: a registry of named timers
usable as context managers or decorators, producing a :class:`Profile`.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = ["RoutineStats", "Profile", "TimerRegistry"]


@dataclass
class RoutineStats:
    """Aggregated timings of one routine."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


@dataclass
class Profile:
    """A set of routine statistics (one TAU profile)."""

    label: str
    routines: dict[str, RoutineStats] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        stats = self.routines.setdefault(name, RoutineStats(name))
        stats.calls += 1
        stats.total_seconds += seconds

    @property
    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.routines.values())

    def fraction(self, name: str) -> float:
        """Share of profiled time spent in one routine."""
        total = self.total_seconds
        if total == 0.0 or name not in self.routines:
            return 0.0
        return self.routines[name].total_seconds / total

    def top(self, n: int = 5) -> list[RoutineStats]:
        """The n most expensive routines (Fig. 4 shows the top of this list)."""
        return sorted(
            self.routines.values(), key=lambda r: -r.total_seconds
        )[:n]

    # -- Combination and persistence ---------------------------------------------

    def merge(self, other: "Profile", label: str | None = None) -> "Profile":
        """Combine two profiles routine-by-routine (calls and time add).

        The checkpoint/restart path uses this to stitch the pre-crash
        segment's profile onto the resumed segment's, so a recovered run
        reports one contiguous profile.  Neither input is modified.
        """
        out = Profile(label if label is not None else self.label)
        for src in (self, other):
            for name, stats in src.routines.items():
                merged = out.routines.setdefault(name, RoutineStats(name))
                merged.calls += stats.calls
                merged.total_seconds += stats.total_seconds
        return out

    def to_json(self) -> str:
        """Serialize to a JSON string (round-trips via :meth:`from_json`)."""
        return json.dumps(
            {
                "label": self.label,
                "routines": {
                    name: {"calls": r.calls, "total_seconds": r.total_seconds}
                    for name, r in sorted(self.routines.items())
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Profile":
        """Rebuild a profile serialized by :meth:`to_json`."""
        try:
            data = json.loads(text)
            profile = cls(data["label"])
            for name, r in data["routines"].items():
                profile.routines[name] = RoutineStats(
                    name, calls=int(r["calls"]),
                    total_seconds=float(r["total_seconds"]),
                )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed profile JSON: {exc}") from exc
        return profile


class TimerRegistry:
    """Named static timers feeding a :class:`Profile`."""

    def __init__(self, label: str) -> None:
        self.profile = Profile(label)

    @contextmanager
    def timer(self, name: str):
        """Context manager: time a block under a routine name."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.profile.record(name, time.perf_counter() - t0)

    def timed(self, name: str):
        """Decorator form of :meth:`timer`."""

        def wrap(fn):
            def inner(*args, **kwargs):
                with self.timer(name):
                    return fn(*args, **kwargs)

            inner.__name__ = getattr(fn, "__name__", name)
            inner.__doc__ = fn.__doc__
            return inner

        return wrap
