"""TAU-like instrumentation: static timers, profiles, comparison reports."""

from .report import ComparisonRow, compare_profiles, format_comparison
from .timers import Profile, RoutineStats, TimerRegistry

__all__ = [
    "ComparisonRow",
    "compare_profiles",
    "format_comparison",
    "Profile",
    "RoutineStats",
    "TimerRegistry",
]
