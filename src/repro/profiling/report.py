"""Profile comparison reports (the Fig. 4 view).

Fig. 4 places two TAU profiles side by side — host CPU vs MIC native — for
the top routines, showing that the cross-section lookup routines dominate
both and run faster on the MIC.  :func:`compare_profiles` renders exactly
that comparison for any two :class:`~repro.profiling.timers.Profile`
objects (measured) or routine-time dictionaries (modelled).
"""

from __future__ import annotations

from dataclasses import dataclass

from .timers import Profile

__all__ = ["ComparisonRow", "compare_profiles", "format_comparison"]


@dataclass(frozen=True)
class ComparisonRow:
    """One routine's entry in a two-profile comparison."""

    routine: str
    seconds_a: float
    seconds_b: float

    @property
    def speedup(self) -> float:
        """Time A over time B (>1 means B is faster)."""
        return self.seconds_a / self.seconds_b if self.seconds_b else float("inf")


def compare_profiles(
    a: Profile | dict[str, float],
    b: Profile | dict[str, float],
    top: int = 6,
) -> list[ComparisonRow]:
    """Rows for the union of each profile's top routines, sorted by the
    first profile's cost."""
    ta = _as_dict(a)
    tb = _as_dict(b)
    names = sorted(set(ta) | set(tb), key=lambda n: -(ta.get(n, 0.0)))[:top]
    return [
        ComparisonRow(routine=n, seconds_a=ta.get(n, 0.0), seconds_b=tb.get(n, 0.0))
        for n in names
    ]


def _as_dict(p: Profile | dict[str, float]) -> dict[str, float]:
    if isinstance(p, Profile):
        return {name: st.total_seconds for name, st in p.routines.items()}
    return dict(p)


def format_comparison(
    rows: list[ComparisonRow], label_a: str = "A", label_b: str = "B"
) -> str:
    """Human-readable comparison table."""
    out = [f"{'routine':32s} {label_a:>12s} {label_b:>12s} {'A/B':>7s}"]
    for r in rows:
        out.append(
            f"{r.routine:32s} {r.seconds_a:12.4f} {r.seconds_b:12.4f} "
            f"{r.speedup:7.2f}"
        )
    return "\n".join(out)
