"""Seeded chaos schedules: which fault, at which boundary, on whom.

A schedule is a **pure function of its seed** — the same guarantee
:class:`~repro.resilience.faults.FaultPlan` makes one tier down, built
on the same 63-bit LCG as particle transport, so a chaos failure
reproduces from nothing but ``(seed, shape arguments)`` on any platform.

The unit of placement is the **journal boundary**: the gap after write-
ahead journal record ``seq`` (boundary *k* = "the process dies with
record *k* durable and record *k+1* never written").  Gateway kills
target a boundary exactly; the other kinds use the boundary only as a
deterministic draw position.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ChaosError
from ..rng.lcg import RandomStream

__all__ = ["ChaosEvent", "ChaosKind", "ChaosSchedule"]


class ChaosKind(enum.Enum):
    """The process-level failure modes the harness can inject."""

    #: The gateway process dies between journal records ``boundary`` and
    #: ``boundary + 1``; a fresh incarnation recovers from the journal.
    GATEWAY_KILL = "gateway_kill"
    #: One shard drops dead mid-drain (unforwarded results lost); the
    #: gateway quarantines it and re-routes its manifest.
    SHARD_KILL = "shard_kill"
    #: One result-cache disk entry gets a flipped byte.
    DISK_CORRUPT = "disk_corrupt"
    #: One result-cache disk entry is truncated mid-file.
    DISK_TRUNCATE = "disk_truncate"
    #: A torn (partially written) pending file lands in the serve spool.
    SPOOL_PARTIAL = "spool_partial"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled failure.

    ``boundary`` is the journal sequence number after which the fault
    fires (gateway kills) or the deterministic draw position (all other
    kinds); ``shard`` is the victim shard for shard kills (-1 when not
    applicable); ``entry`` selects which cache entry (by sorted index)
    a disk fault damages.
    """

    kind: ChaosKind
    boundary: int
    shard: int = -1
    entry: int = 0


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, queryable schedule of chaos events."""

    seed: int = 0
    events: tuple[ChaosEvent, ...] = field(default_factory=tuple)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_boundaries: int,
        n_shards: int = 2,
        p_gateway_kill: float = 0.0,
        p_shard_kill: float = 0.0,
        p_disk_corrupt: float = 0.0,
        p_disk_truncate: float = 0.0,
        p_spool_partial: float = 0.0,
    ) -> "ChaosSchedule":
        """Sample a schedule: fixed seed, fixed schedule, any platform.

        Each boundary independently draws each fault kind from the
        shared LCG, so the schedule is a pure function of ``seed`` and
        the shape arguments — rerunning with the same seed replays the
        exact same failures in the exact same order.
        """
        for name, p in (
            ("p_gateway_kill", p_gateway_kill),
            ("p_shard_kill", p_shard_kill),
            ("p_disk_corrupt", p_disk_corrupt),
            ("p_disk_truncate", p_disk_truncate),
            ("p_spool_partial", p_spool_partial),
        ):
            if not 0.0 <= p <= 1.0:
                raise ChaosError(f"{name} must be in [0, 1], got {p}")
        if n_boundaries < 0:
            raise ChaosError(
                f"need n_boundaries >= 0, got {n_boundaries}"
            )
        if n_shards < 2:
            # A shard kill needs a survivor to quarantine around, and
            # the single-shard gateway never quarantines its last shard.
            raise ChaosError(f"need n_shards >= 2, got {n_shards}")
        stream = RandomStream(seed=seed)
        events: list[ChaosEvent] = []
        for boundary in range(1, n_boundaries + 1):
            if stream.prn() < p_gateway_kill:
                events.append(
                    ChaosEvent(ChaosKind.GATEWAY_KILL, boundary)
                )
            if stream.prn() < p_shard_kill:
                victim = int(stream.prn() * n_shards)
                events.append(
                    ChaosEvent(
                        ChaosKind.SHARD_KILL, boundary, shard=victim
                    )
                )
            if stream.prn() < p_disk_corrupt:
                events.append(
                    ChaosEvent(
                        ChaosKind.DISK_CORRUPT,
                        boundary,
                        entry=int(stream.prn() * n_boundaries),
                    )
                )
            if stream.prn() < p_disk_truncate:
                events.append(
                    ChaosEvent(
                        ChaosKind.DISK_TRUNCATE,
                        boundary,
                        entry=int(stream.prn() * n_boundaries),
                    )
                )
            if stream.prn() < p_spool_partial:
                events.append(
                    ChaosEvent(ChaosKind.SPOOL_PARTIAL, boundary)
                )
        return cls(seed=seed, events=tuple(events))

    @classmethod
    def kill_every_boundary(cls, n_boundaries: int) -> "ChaosSchedule":
        """The exhaustive sweep: one gateway kill after *every* record.

        This is the strongest statement the harness makes — there is no
        pair of adjacent journal records between which a crash loses
        landed work or double-runs it.
        """
        if n_boundaries < 1:
            raise ChaosError(
                f"need n_boundaries >= 1, got {n_boundaries}"
            )
        return cls(
            seed=0,
            events=tuple(
                ChaosEvent(ChaosKind.GATEWAY_KILL, boundary)
                for boundary in range(1, n_boundaries + 1)
            ),
        )

    # -- Queries -------------------------------------------------------------

    def by_kind(self, kind: ChaosKind) -> list[ChaosEvent]:
        return [e for e in self.events if e.kind == kind]

    def kill_boundaries(self) -> list[int]:
        """The journal boundaries at which the gateway dies, in order."""
        return [
            e.boundary for e in self.by_kind(ChaosKind.GATEWAY_KILL)
        ]

    def __len__(self) -> int:
        return len(self.events)
