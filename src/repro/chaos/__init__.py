"""repro.chaos — deterministic cross-tier chaos harness.

The resilience tier (:mod:`repro.resilience.faults`) injects faults
*inside* one simulation: rank crashes, PCIe stalls, mid-batch kills.
This package injects faults *around* the service stack — the failures a
deployment actually suffers:

* **gateway kill** between any two write-ahead journal records
  (:class:`~repro.gateway.journal.WriteAheadJournal`'s ``on_append``
  tripwire), followed by a cold restart and
  :meth:`~repro.gateway.gateway.Gateway.recover`;
* **shard kill** — a shard process drops dead mid-drain, losing any
  unforwarded results, and the gateway quarantines around it;
* **disk corruption/truncation** of result-cache entries, exercising
  the checksummed quarantine path;
* **spool partial writes** — a torn pending file from a crashed
  submitter.

Everything is seeded: a :class:`~repro.chaos.schedule.ChaosSchedule` is
a pure function of its seed (same 63-bit LCG convention as
:class:`~repro.resilience.faults.FaultPlan`), and the
:class:`~repro.chaos.runner.ChaosRunner` asserts the durability
contract after every cycle — **byte-identical final payloads**,
**at most one journal landing per job**, **no re-routing of landed
work**, and **strictly monotonic journal sequence numbers** — raising a
typed :class:`~repro.errors.ChaosError` on any violation.

Layering: chaos is a roof beside the CLI — it may import the gateway,
serve, resilience, supervise, and scenarios tiers (it kills and
restarts all of them), and nothing imports chaos except the CLI.
"""

from .runner import ChaosReport, ChaosRunner
from .schedule import ChaosEvent, ChaosKind, ChaosSchedule

__all__ = [
    "ChaosEvent",
    "ChaosKind",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSchedule",
]
