"""The chaos runner: kill, restart, recover, and prove nothing changed.

:class:`ChaosRunner` drives one workload (by default the canned
``hm-tiny-sweep`` suite over :class:`~repro.gateway.SyntheticService`
shards) through injected process-level failures and asserts the
durability contract after every cycle:

* **Byte-identity** — the final payload of every job, killed run or
  not, equals the uninterrupted reference run's byte for byte
  (:meth:`~repro.serve.jobs.JobResult.payload_json` equality — the
  physics is a pure function of the spec, and recovery restores landed
  results verbatim).
* **Exactly-once landing** — across all incarnations, the journal
  carries at most one ``completed``/``cache-hit`` record per job, and
  no job is ever routed *after* its landing (landed work is never
  re-simulated).  Work that ran but never journaled a landing is
  at-least-once by design: its payload is a pure function of the spec,
  so the rerun is invisible in the bytes.
* **Monotonic sequence** — journal ``seq`` increases by exactly one
  across the whole file, incarnations included
  (:meth:`~repro.gateway.journal.WriteAheadJournal.scan` enforces it).

Any violation raises a typed :class:`~repro.errors.ChaosError` naming
the kill boundary that produced it — with the schedule's seed, that is
a complete reproduction recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ChaosError
from ..gateway import Gateway, ResultCache, SyntheticService
from ..gateway.journal import JournalScan, WriteAheadJournal
from ..resilience.faults import SimulatedCrash
from ..scenarios import load_suite
from ..serve.jobs import JobSpec
from ..serve.service import (
    read_spool_pending,
    spool_dirs,
    submit_to_spool,
)
from .schedule import ChaosKind, ChaosSchedule

__all__ = ["ChaosReport", "ChaosRunner"]

_LANDING_KINDS = ("completed", "cache-hit")
_DEFAULT_SUITE = "hm-tiny-sweep"


@dataclass
class ChaosReport:
    """The outcome of one chaos campaign."""

    cycles: int = 0
    kill_boundaries: list[int] = field(default_factory=list)
    shard_kills: int = 0
    disk_faults: int = 0
    spool_faults: int = 0
    #: Total journal records replayed across all recoveries.
    replayed: int = 0
    #: Landed results restored from journals instead of re-simulated.
    restored: int = 0

    def to_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "kill_boundaries": list(self.kill_boundaries),
            "shard_kills": self.shard_kills,
            "disk_faults": self.disk_faults,
            "spool_faults": self.spool_faults,
            "replayed": self.replayed,
            "restored": self.restored,
        }


class ChaosRunner:
    """Drive a workload through kill/recover cycles and audit each one."""

    def __init__(
        self,
        specs: list[JobSpec] | None = None,
        *,
        workdir: str | Path,
        n_shards: int = 2,
        workers_per_shard: int = 1,
        service_factory=SyntheticService,
        deadline_s: float = 60.0,
    ) -> None:
        if n_shards < 2:
            raise ChaosError(
                f"chaos needs n_shards >= 2 (a shard kill must leave a "
                f"survivor), got {n_shards}"
            )
        self.specs = (
            list(specs)
            if specs is not None
            else load_suite(_DEFAULT_SUITE).job_specs()
        )
        if not self.specs:
            raise ChaosError("chaos workload is empty")
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.workers_per_shard = workers_per_shard
        self.service_factory = service_factory
        self.deadline_s = deadline_s
        self._reference: dict[str, str] | None = None
        self._reference_records: int = 0
        #: Monotonic cycle counter: every cycle gets a fresh journal
        #: (and spool) path — reusing one would append a second
        #: incarnation's records after the first's and fail the audit.
        self._cycle = 0

    # -- Gateway construction ------------------------------------------------

    def _gateway(
        self,
        journal_path: Path | None = None,
        *,
        result_cache: ResultCache | None = None,
    ) -> Gateway:
        return Gateway(
            self.n_shards,
            workers_per_shard=self.workers_per_shard,
            service_factory=self.service_factory,
            result_cache=result_cache,
            journal_path=journal_path,
        )

    def _run_to_completion(self, gateway: Gateway) -> dict[str, str]:
        """Submit the whole workload and drain it; payloads by job id."""
        for spec in self.specs:
            gateway.submit(spec)
        gateway.drain(deadline_s=self.deadline_s)
        return self._payloads(gateway)

    def _payloads(self, gateway: Gateway) -> dict[str, str]:
        return {
            result.job_id: result.payload_json()
            for result in gateway.ordered_results()
        }

    # -- Reference run -------------------------------------------------------

    def reference(self) -> dict[str, str]:
        """The uninterrupted run every chaos cycle must byte-match.

        Also fixes :attr:`n_boundaries`: the journal record count of a
        clean run, which is deterministic for a given workload (the
        *order* of completion records can vary with thread timing, but
        every run journals the same multiset of transitions).
        """
        if self._reference is not None:
            return self._reference
        journal = self.workdir / "reference.journal"
        gateway = self._gateway(journal)
        try:
            payloads = self._run_to_completion(gateway)
        finally:
            gateway.shutdown(graceful=False)
        scan = WriteAheadJournal.scan(journal)
        self._audit_journal(scan, label="reference")
        self._reference = payloads
        self._reference_records = len(scan.records)
        return payloads

    @property
    def n_boundaries(self) -> int:
        """Journal records in a clean run = kill boundaries to sweep."""
        self.reference()
        return self._reference_records

    # -- Gateway-kill cycle --------------------------------------------------

    def run_kill_cycle(self, boundary: int) -> dict:
        """Kill the gateway after journal record ``boundary``; recover;
        prove the recovered run is indistinguishable from the reference.

        The kill is modelled by raising
        :class:`~repro.resilience.faults.SimulatedCrash` from the
        journal's ``on_append`` hook: record ``boundary`` is durable,
        the in-memory mutation it describes never happens, and nothing
        downstream of the raise runs — exactly a ``kill -9`` between
        two appends.
        """
        reference = self.reference()
        self._cycle += 1
        journal = (
            self.workdir / f"c{self._cycle:04d}-kill-{boundary}.journal"
        )

        first = self._gateway(journal)

        def tripwire(record):
            if record.seq == boundary:
                raise SimulatedCrash(
                    f"chaos: gateway killed after journal seq {boundary}"
                )

        first.journal.on_append = tripwire
        crashed = False
        try:
            first.start()
            for spec in self.specs:
                first.submit(spec)
            first.drain(deadline_s=self.deadline_s)
        except SimulatedCrash:
            crashed = True
        finally:
            first.shutdown(graceful=False)
        if not crashed:
            raise ChaosError(
                f"kill boundary {boundary} was never reached "
                f"(clean run journals {self.n_boundaries} records)"
            )

        second = self._gateway(journal)
        try:
            summary = second.recover()
            for spec in self.specs:
                if not second.has_job(spec.job_id):
                    second.submit(spec)
            second.drain(deadline_s=self.deadline_s)
            payloads = self._payloads(second)
        finally:
            second.shutdown(graceful=False)

        scan = WriteAheadJournal.scan(journal)
        self._audit_journal(scan, label=f"kill@{boundary}")
        self._assert_byte_identical(
            payloads, reference, label=f"kill@{boundary}"
        )
        return {
            "boundary": boundary,
            "replayed": summary["replayed"],
            "restored": summary["restored"],
            "requeued": summary["requeued"],
            "records": len(scan.records),
        }

    def kill_sweep(
        self, boundaries: list[int] | None = None
    ) -> ChaosReport:
        """Kill at every boundary (or the given subset) and audit each."""
        self.reference()
        if boundaries is None:
            boundaries = list(range(1, self.n_boundaries + 1))
        report = ChaosReport()
        for boundary in boundaries:
            if not 1 <= boundary <= self.n_boundaries:
                raise ChaosError(
                    f"kill boundary {boundary} outside [1, "
                    f"{self.n_boundaries}]"
                )
            cycle = self.run_kill_cycle(boundary)
            report.cycles += 1
            report.kill_boundaries.append(boundary)
            report.replayed += cycle["replayed"]
            report.restored += cycle["restored"]
        return report

    # -- Shard-kill cycle ----------------------------------------------------

    def run_shard_kill_cycle(self, victim: int) -> dict:
        """A shard drops dead mid-sweep; the gateway quarantines it and
        the surviving shards finish the work — byte-identically."""
        reference = self.reference()
        if not 0 <= victim < self.n_shards:
            raise ChaosError(
                f"shard {victim} outside [0, {self.n_shards})"
            )
        self._cycle += 1
        journal = (
            self.workdir
            / f"c{self._cycle:04d}-shard-kill-{victim}.journal"
        )
        gateway = self._gateway(journal)
        try:
            for spec in self.specs:
                gateway.submit(spec)
            # The victim dies before the drain starts: any results it
            # finished but never forwarded are lost, its manifest is not.
            gateway.shards[victim].kill()
            if not gateway.quarantine_shard(victim):
                raise ChaosError(
                    f"quarantine of shard {victim} was refused"
                )
            gateway.drain(deadline_s=self.deadline_s)
            payloads = self._payloads(gateway)
        finally:
            gateway.shutdown(graceful=False)
        scan = WriteAheadJournal.scan(journal)
        self._audit_journal(scan, label=f"shard-kill@{victim}")
        self._assert_byte_identical(
            payloads, reference, label=f"shard-kill@{victim}"
        )
        quarantines = scan.by_kind("quarantined")
        if len(quarantines) != 1 or quarantines[0].data["shard"] != victim:
            raise ChaosError(
                f"shard-kill@{victim}: expected exactly one quarantined "
                f"record for shard {victim}, found "
                f"{[q.data for q in quarantines]}"
            )
        return {
            "victim": victim,
            "requeued": len(quarantines[0].data["requeued"]),
            "records": len(scan.records),
        }

    # -- Disk-fault cycles ---------------------------------------------------

    def run_disk_fault_cycle(
        self, *, truncate: bool, entry: int = 0
    ) -> dict:
        """Damage one durable result-cache entry between two runs.

        Run 1 populates the disk tier; the fault flips a byte (or
        truncates) one entry; run 2 must quarantine it (typed
        ``corrupt_entries`` accounting, no exception), recompute that
        one job, serve the rest from disk, and still end byte-identical
        to the reference.
        """
        reference = self.reference()
        self._cycle += 1
        label = "disk-truncate" if truncate else "disk-corrupt"
        cache_dir = self.workdir / f"c{self._cycle:04d}-{label}"

        warm = self._gateway(result_cache=ResultCache(cache_dir))
        try:
            self._run_to_completion(warm)
        finally:
            warm.shutdown(graceful=False)

        entries = sorted(cache_dir.glob("*.json"))
        if not entries:
            raise ChaosError(f"{label}: no disk entries to damage")
        victim = entries[entry % len(entries)]
        data = victim.read_bytes()
        if truncate:
            victim.write_bytes(data[: len(data) // 2])
        else:
            # Flip a *significant* digit of k_effective: the JSON stays
            # valid, so only the content digest can catch it.  (A flip at
            # an arbitrary offset can land in the 17th digit of a float,
            # where the decoded double — and hence the re-serialized
            # digest input — is honestly unchanged: not corruption.)
            flip = data.find(b'"k_effective": ') + len(b'"k_effective": ') + 2
            victim.write_bytes(
                data[:flip] + bytes([data[flip] ^ 0x01]) + data[flip + 1:]
            )

        cache = ResultCache(cache_dir)
        cold = self._gateway(result_cache=cache)
        try:
            payloads = self._run_to_completion(cold)
        finally:
            cold.shutdown(graceful=False)
        self._assert_byte_identical(payloads, reference, label=label)
        if cache.corrupt_entries != 1:
            raise ChaosError(
                f"{label}: expected exactly 1 quarantined entry, "
                f"counted {cache.corrupt_entries}"
            )
        quarantined = list(cache_dir.glob("*.corrupt"))
        if len(quarantined) != 1:
            raise ChaosError(
                f"{label}: expected one *.corrupt file, found "
                f"{[p.name for p in quarantined]}"
            )
        return {
            "kind": label,
            "victim": victim.name,
            "corrupt_entries": cache.corrupt_entries,
            "cache_hits": cold.counters["cache_hits"],
        }

    # -- Spool-fault cycle ---------------------------------------------------

    def run_spool_fault_cycle(self) -> dict:
        """A torn pending file must be quarantined, not drain-fatal."""
        self._cycle += 1
        root = self.workdir / f"c{self._cycle:04d}-spool"
        dirs = spool_dirs(root, create=True)
        torn = dirs["pending"] / "torn-victim.json"
        # A pre-atomic-write submitter died mid-write: half a spec.
        torn.write_text(self.specs[0].to_json()[: 20])
        for spec in self.specs:
            submit_to_spool(root, spec)
        pending = read_spool_pending(root)
        got = {spec.job_id for spec in pending}
        want = {spec.job_id for spec in self.specs}
        if got != want:
            raise ChaosError(
                f"spool-partial: drained {sorted(got)}, "
                f"expected {sorted(want)}"
            )
        if torn.exists() or not torn.with_suffix(".corrupt").exists():
            raise ChaosError(
                "spool-partial: torn file was not quarantined to "
                "*.corrupt"
            )
        return {"kind": "spool-partial", "pending": len(pending)}

    # -- Schedule dispatch ---------------------------------------------------

    def run_schedule(self, schedule: ChaosSchedule) -> ChaosReport:
        """Execute every event in a seeded schedule; audited cycles."""
        report = ChaosReport()
        for event in schedule.events:
            if event.kind is ChaosKind.GATEWAY_KILL:
                boundary = 1 + (event.boundary - 1) % self.n_boundaries
                cycle = self.run_kill_cycle(boundary)
                report.kill_boundaries.append(boundary)
                report.replayed += cycle["replayed"]
                report.restored += cycle["restored"]
            elif event.kind is ChaosKind.SHARD_KILL:
                victim = (
                    event.shard
                    if 0 <= event.shard < self.n_shards
                    else event.boundary % self.n_shards
                )
                self.run_shard_kill_cycle(victim)
                report.shard_kills += 1
            elif event.kind is ChaosKind.DISK_CORRUPT:
                self.run_disk_fault_cycle(
                    truncate=False, entry=event.entry
                )
                report.disk_faults += 1
            elif event.kind is ChaosKind.DISK_TRUNCATE:
                self.run_disk_fault_cycle(
                    truncate=True, entry=event.entry
                )
                report.disk_faults += 1
            elif event.kind is ChaosKind.SPOOL_PARTIAL:
                self.run_spool_fault_cycle()
                report.spool_faults += 1
            report.cycles += 1
        return report

    # -- Audits --------------------------------------------------------------

    def _audit_journal(self, scan: JournalScan, *, label: str) -> None:
        """Exactly-once landings and no routing after a landing.

        Monotonic ``seq`` is already enforced by the scan itself (a
        discontinuity raises :class:`~repro.errors.JournalError` before
        we get here).
        """
        landed: set[str] = set()
        for record in scan.records:
            job_id = record.data.get("job_id")
            if record.kind in _LANDING_KINDS:
                if job_id in landed:
                    raise ChaosError(
                        f"{label}: job {job_id!r} landed twice in the "
                        f"journal (second at seq {record.seq})"
                    )
                landed.add(job_id)
            elif record.kind == "routed" and job_id in landed:
                raise ChaosError(
                    f"{label}: job {job_id!r} routed at seq "
                    f"{record.seq} after its result already landed"
                )

    def _assert_byte_identical(
        self,
        payloads: dict[str, str],
        reference: dict[str, str],
        *,
        label: str,
    ) -> None:
        if set(payloads) != set(reference):
            missing = sorted(set(reference) - set(payloads))
            extra = sorted(set(payloads) - set(reference))
            raise ChaosError(
                f"{label}: result set diverged (missing {missing}, "
                f"extra {extra})"
            )
        diverged = sorted(
            job_id
            for job_id, payload in payloads.items()
            if payload != reference[job_id]
        )
        if diverged:
            raise ChaosError(
                f"{label}: payload bytes diverged from the reference "
                f"run for {diverged}"
            )
