"""Scenario compilation: validated documents → runnable configuration.

:func:`compile_scenario` lowers a :class:`~repro.scenarios.schema.ScenarioSpec`
into the exact objects the rest of the system runs —
:class:`~repro.data.library.LibraryConfig`,
:class:`~repro.transport.simulation.Settings`, a ready
:class:`~repro.transport.simulation.Simulation`, or a self-contained
:class:`~repro.serve.jobs.JobSpec` for the service.  Lowering is pure
translation, never physics: a default-valued scenario compiles to
default-valued ``Settings``, so the canned Hoogenboom-Martin scenario is
*bit-identical* to the historical hard-coded configuration (the test suite
pins this per backend).

The named-pattern rule matters for that guarantee: ``"hm-241"`` lowers to an
*empty* ``core_pattern`` — the geometry builder's own default H.M. footprint
— rather than spelling out 19 rows, so the compiled settings fingerprint
equals the legacy one exactly.

Canned scenarios live as JSON documents under ``repro/scenarios/data/`` and
are addressable by bare name everywhere a path is accepted
(:func:`load_scenario`).  YAML documents load too when PyYAML is installed;
the dependency is optional and gated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from ..data.library import LibraryConfig, NuclideLibrary, build_library
from ..errors import ReproError, ScenarioError
from ..geometry.hoogenboom import CORE_PATTERNS, pattern_to_rows
from ..geometry.materials import fuel_nuclide_names
from ..serve.jobs import JobSpec
from ..transport.simulation import Settings, Simulation
from .schema import ScenarioSpec, validate_scenario

__all__ = [
    "CompiledScenario",
    "compile_scenario",
    "load_scenario",
    "load_scenario_document",
    "canned_scenario_names",
    "canned_scenario_path",
    "DATA_DIR",
]

#: Directory holding the canned scenario/suite documents shipped with the
#: package.
DATA_DIR = Path(__file__).resolve().parent / "data"

#: Settings fields a JobSpec may carry (mirrors ``repro.serve.jobs``).
_JOB_SETTINGS_FIELDS = tuple(
    name for name in Settings.__dataclass_fields__
    if name not in ("checkpoint_every", "checkpoint_dir")
)


def _lower_core_pattern(spec: ScenarioSpec) -> tuple:
    """The ``Settings.core_pattern`` value for a spec.

    ``hm-241`` (and an unset pattern) lower to ``()`` — the builder's own
    default — preserving bit-identity with pre-scenario configurations.
    Other named patterns expand to their row strings; explicit rows pass
    through unchanged.
    """
    if spec.core_pattern_rows:
        return spec.core_pattern_rows
    if spec.core_pattern_name and spec.core_pattern_name != "hm-241":
        return pattern_to_rows(CORE_PATTERNS[spec.core_pattern_name]())
    return ()


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario lowered to runnable configuration.

    ``settings`` is complete — a worker given ``job_spec()`` reconstructs
    it exactly — and ``fingerprint`` is the scenario-document fingerprint
    (:func:`~repro.scenarios.schema.scenario_fingerprint`), stamped into
    every job the scenario produces.
    """

    spec: ScenarioSpec
    settings: Settings
    fingerprint: str

    @property
    def name(self) -> str:
        return self.spec.name

    # -- Library ------------------------------------------------------------

    def library_config(self) -> LibraryConfig:
        config = (
            LibraryConfig.tiny(seed=self._library_seed)
            if self.spec.fidelity == "tiny"
            else LibraryConfig(seed=self._library_seed)
        )
        if self.spec.library_temperature is not None:
            config = replace(
                config, temperature=self.spec.library_temperature
            )
        return config

    @property
    def _library_seed(self) -> int:
        seed = self.spec.library_seed
        return JobSpec.__dataclass_fields__["library_seed"].default \
            if seed is None else seed

    def build_library(self) -> NuclideLibrary:
        return build_library(self.spec.model, self.library_config())

    # -- Direct execution ---------------------------------------------------

    def build_simulation(
        self, library: NuclideLibrary | None = None
    ) -> Simulation:
        """A ready-to-run :class:`Simulation` (building the library if one
        isn't supplied)."""
        if library is None:
            library = self.build_library()
        return Simulation(library, self.settings)

    # -- Service execution --------------------------------------------------

    def job_settings(self) -> dict:
        """The spec's ``Settings`` as a JobSpec-compatible dict.

        Tuple-valued fields are emitted as lists — the JSON-native form —
        so a spec equals its own JSON round trip; ``Settings`` normalizes
        them back on reconstruction.
        """
        out = {}
        for name in _JOB_SETTINGS_FIELDS:
            value = getattr(self.settings, name)
            if isinstance(value, tuple):
                value = [
                    list(v) if isinstance(v, tuple) else v for v in value
                ]
            out[name] = value
        return out

    def job_spec(
        self,
        *,
        job_id: str | None = None,
        case_id: str = "",
        suite_id: str = "",
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> JobSpec:
        """A self-contained service job for this scenario."""
        kwargs = dict(
            model=self.spec.model,
            fidelity=self.spec.fidelity,
            library_seed=self._library_seed,
            library_temperature=self.spec.library_temperature,
            settings=self.job_settings(),
            priority=priority,
            deadline_s=deadline_s,
            case_id=case_id,
            suite_id=suite_id,
            scenario_fingerprint=self.fingerprint,
        )
        if job_id is not None:
            kwargs["job_id"] = job_id
        return JobSpec(**kwargs)


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower a validated spec to runnable configuration.

    Wraps any configuration-layer rejection (``Settings`` cross-checks the
    schema cannot express) into a :class:`ScenarioError` naming the
    scenario.
    """
    if spec.fuel_number_densities:
        # The builder enforces this too, but at library-build time deep in
        # a worker; checking against the model census here turns a bad
        # isotopic into a compile-time error with the scenario's name on it.
        census = set(fuel_nuclide_names(spec.model)) | {"O16"}
        unknown = [
            nuc for nuc, _ in spec.fuel_number_densities
            if nuc not in census
        ]
        if unknown:
            raise ScenarioError(
                f"scenario {spec.name!r}: fuel number_densities name "
                f"nuclides outside the {spec.model!r} census: "
                f"{', '.join(unknown)}",
                errors=tuple(
                    f"materials.fuel.number_densities.{n}: not in census"
                    for n in unknown
                ),
            )
    try:
        settings = Settings(
            n_particles=spec.particles,
            n_inactive=spec.inactive,
            n_active=spec.active,
            seed=spec.seed,
            mode=spec.backend,
            pincell=(spec.geometry_kind == "pincell"),
            use_sab=spec.use_sab,
            use_urr=spec.use_urr,
            use_union_grid=spec.use_union_grid,
            survival_biasing=spec.survival_biasing,
            tally_power="power" in spec.tallies,
            boron_ppm=spec.boron_ppm,
            enrichment_scale=spec.enrichment_scale,
            fuel_overrides=spec.fuel_number_densities,
            core_pattern=_lower_core_pattern(spec),
            source_watt_a=spec.watt_a,
            source_watt_b=spec.watt_b,
        )
    except ScenarioError:
        raise
    except ReproError as exc:
        raise ScenarioError(
            f"scenario {spec.name!r} does not compile: {exc}"
        ) from exc
    return CompiledScenario(
        spec=spec, settings=settings, fingerprint=spec.fingerprint()
    )


# -- Document loading ----------------------------------------------------------


def canned_scenario_names() -> tuple:
    """Names of the scenarios shipped under ``repro/scenarios/data/``."""
    return tuple(
        sorted(p.stem for p in DATA_DIR.glob("*.json")
               if not p.stem.startswith("suite-"))
    )


def canned_scenario_path(name: str) -> Path:
    """Path of a canned scenario by bare name."""
    path = DATA_DIR / f"{name}.json"
    if not path.is_file():
        raise ScenarioError(
            f"unknown canned scenario {name!r}; available: "
            f"{', '.join(canned_scenario_names())}"
        )
    return path


def load_scenario_document(source) -> tuple:
    """Resolve ``source`` (canned name, path, or mapping) to
    ``(document, label)`` without validating it."""
    if isinstance(source, dict):
        return source, "<inline>"
    text_path = Path(str(source))
    if not text_path.suffix and "/" not in str(source):
        text_path = canned_scenario_path(str(source))
    if not text_path.is_file():
        raise ScenarioError(f"scenario file not found: {text_path}")
    text = text_path.read_text()
    if text_path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ScenarioError(
                f"{text_path} is YAML but PyYAML is not installed; "
                "convert the document to JSON"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(
                f"{text_path} is not valid YAML: {exc}"
            ) from exc
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"{text_path} is not valid JSON: {exc}"
            ) from exc
    return data, str(text_path)


def load_scenario(source) -> CompiledScenario:
    """Load, validate, and compile a scenario.

    ``source`` may be a canned scenario name (``"hm-full-core"``), a path
    to a JSON/YAML document, or an already-parsed mapping.
    """
    data, label = load_scenario_document(source)
    return compile_scenario(validate_scenario(data, label=label))
