"""repro.scenarios — declarative blueprints, case suites, canned scenarios.

The scenario system turns a plain JSON/YAML document into everything the
rest of the package runs, in three layers (DESIGN.md §13):

* :mod:`repro.scenarios.schema` — the document schema and total validator
  (every problem reported at once, with document paths), plus the
  canonical-form SHA-256 fingerprint;
* :mod:`repro.scenarios.compiler` — pure lowering into
  ``LibraryConfig``/``Settings``/``Simulation``/``JobSpec``; the canned
  Hoogenboom-Martin scenario compiles bit-identically to the historical
  hard-coded configuration;
* :mod:`repro.scenarios.suite` — parameter sweeps expanding to service
  job batches with stable case IDs in fingerprint-affine order.

Canned documents ship under ``repro/scenarios/data/`` and are addressable
by bare name::

    from repro.scenarios import load_scenario
    result = load_scenario("hm-full-core").build_simulation().run()
"""

from .compiler import (
    DATA_DIR,
    CompiledScenario,
    canned_scenario_names,
    canned_scenario_path,
    compile_scenario,
    load_scenario,
    load_scenario_document,
)
from .schema import (
    GEOMETRY_KINDS,
    SOURCE_KINDS,
    TALLY_KINDS,
    ScenarioSpec,
    scenario_fingerprint,
    validate_scenario,
)
from .suite import (
    SWEEP_AXES,
    Case,
    CaseSuite,
    canned_suite_names,
    load_suite,
)

__all__ = [
    "DATA_DIR",
    "GEOMETRY_KINDS",
    "SOURCE_KINDS",
    "SWEEP_AXES",
    "TALLY_KINDS",
    "Case",
    "CaseSuite",
    "CompiledScenario",
    "ScenarioSpec",
    "canned_scenario_names",
    "canned_scenario_path",
    "canned_suite_names",
    "compile_scenario",
    "load_scenario",
    "load_scenario_document",
    "load_suite",
    "scenario_fingerprint",
    "validate_scenario",
]
