"""Declarative scenario documents: schema, validation, fingerprints.

A *scenario* is a complete, human-writable description of one reactor
calculation — nuclide census, lattice footprint, material isotopics and
temperatures, thermal/unresolved physics flags, source spectrum, tally
requests, and run controls — as a plain JSON/YAML document.  The schema is
deliberately small: every field maps onto a knob the synthetic library
builders and :class:`~repro.transport.simulation.Settings` already expose,
so a validated scenario always compiles (:mod:`repro.scenarios.compiler`)
into the exact configuration objects the rest of the system runs.

Validation is *total*: :func:`validate_scenario` walks the whole document,
collects every finding as a ``"path: message"`` string, and raises one
:class:`~repro.errors.ScenarioError` carrying all of them — a user fixes a
document in one round trip.  Unknown keys are errors (typo safety), and
every value is type- and range-checked before compilation sees it.

The canonical form (:meth:`ScenarioSpec.to_canonical_dict`) makes two
documents that mean the same thing hash the same:
:func:`scenario_fingerprint` is a SHA-256 over that form, and is stamped
into every :class:`~repro.serve.jobs.JobSpec` a scenario produces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from ..errors import ScenarioError
from ..geometry.hoogenboom import CORE_PATTERNS, pattern_from_rows
from ..transport.backends import available_backends

__all__ = [
    "GEOMETRY_KINDS",
    "SOURCE_KINDS",
    "TALLY_KINDS",
    "ScenarioSpec",
    "validate_scenario",
    "scenario_fingerprint",
]

GEOMETRY_KINDS = ("full-core", "pincell")
SOURCE_KINDS = ("watt-fission",)
TALLY_KINDS = ("k-effective", "entropy", "power")
_MODELS = ("hm-small", "hm-large")
_FIDELITIES = ("tiny", "default")


# -- Validation plumbing -------------------------------------------------------


class _Errors:
    """Collects ``path: message`` findings across one validation pass."""

    def __init__(self) -> None:
        self.items: list[str] = []

    def add(self, path: str, message: str) -> None:
        self.items.append(f"{path}: {message}" if path else message)

    def raise_if_any(self, label: str) -> None:
        if self.items:
            raise ScenarioError(
                f"invalid scenario {label}: {len(self.items)} problem(s)\n"
                + "\n".join(f"  - {item}" for item in self.items),
                errors=tuple(self.items),
            )


def _join(path: str, key: str) -> str:
    return f"{path}.{key}" if path else key


class _Section:
    """A mapping view that records unknown keys and typed lookups."""

    def __init__(self, data: dict, path: str, errors: _Errors) -> None:
        self.data = data if isinstance(data, dict) else {}
        self.path = path
        self.errors = errors
        self._seen: set[str] = set()
        if data is not None and not isinstance(data, dict):
            errors.add(path, f"must be a mapping, got {type(data).__name__}")

    def section(self, key: str) -> "_Section":
        self._seen.add(key)
        return _Section(self.data.get(key, {}), _join(self.path, key),
                        self.errors)

    def get(self, key: str, kind, default, *, choices=None, minimum=None,
            exclusive_minimum=None, required=False):
        """Typed scalar lookup; records a finding and returns ``default``
        on any mismatch."""
        self._seen.add(key)
        path = _join(self.path, key)
        if key not in self.data:
            if required:
                self.errors.add(path, "is required")
            return default
        value = self.data[key]
        if kind is float and isinstance(value, int) and not isinstance(
            value, bool
        ):
            value = float(value)
        if kind is int and isinstance(value, bool):
            self.errors.add(path, "must be an integer, got a boolean")
            return default
        if not isinstance(value, kind):
            want = kind.__name__ if not isinstance(kind, tuple) else "/".join(
                k.__name__ for k in kind
            )
            self.errors.add(
                path, f"must be {want}, got {type(value).__name__}"
            )
            return default
        if choices is not None and value not in choices:
            self.errors.add(
                path,
                f"must be one of {', '.join(map(str, choices))}; "
                f"got {value!r}",
            )
            return default
        if minimum is not None and value < minimum:
            self.errors.add(path, f"must be >= {minimum}, got {value}")
            return default
        if exclusive_minimum is not None and value <= exclusive_minimum:
            self.errors.add(
                path, f"must be > {exclusive_minimum}, got {value}"
            )
            return default
        return value

    def raw(self, key: str):
        self._seen.add(key)
        return self.data.get(key)

    def check_unknown(self) -> None:
        for key in sorted(set(self.data) - self._seen):
            self.errors.add(
                _join(self.path, key), "unknown key (typo? see the schema)"
            )


# -- The validated spec --------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully validated scenario document, in canonical form.

    Construction goes through :func:`validate_scenario` (or the
    :func:`~repro.scenarios.compiler.load_scenario` loader); every field
    is normalized, so two specs are equal iff they describe the same
    calculation — and then they share a :func:`scenario_fingerprint`.
    """

    name: str
    title: str = ""
    description: str = ""
    model: str = "hm-small"
    fidelity: str = "default"
    library_seed: int | None = None
    library_temperature: float | None = None
    geometry_kind: str = "full-core"
    #: Named footprint (``hm-241``, ``smr-37``) or empty when explicit
    #: rows (or the default H.M. map) are used.
    core_pattern_name: str = ""
    #: Explicit lattice rows (``F``/``W``); empty means "use the name",
    #: or the canonical H.M. footprint when the name is empty too.
    core_pattern_rows: tuple = ()
    enrichment_scale: float = 1.0
    #: Sorted ``(nuclide, number_density)`` pairs overriding fuel census
    #: densities [atoms/barn-cm].
    fuel_number_densities: tuple = ()
    boron_ppm: float = 600.0
    use_sab: bool = True
    use_urr: bool = True
    use_union_grid: bool = True
    survival_biasing: bool = False
    source_kind: str = "watt-fission"
    watt_a: float = 0.988
    watt_b: float = 2.249
    tallies: tuple = ("k-effective", "entropy")
    particles: int = 500
    inactive: int = 2
    active: int = 5
    seed: int = 1
    backend: str = "event"

    def to_canonical_dict(self) -> dict:
        """JSON-safe canonical form (the fingerprint input)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = [list(v) if isinstance(v, tuple) else v
                         for v in value]
            out[f.name] = value
        return out

    def fingerprint(self) -> str:
        return scenario_fingerprint(self)

    def with_overrides(self, **kw) -> "ScenarioSpec":
        """A copy with dataclass fields replaced (sweep expansion uses
        this); values are re-checked by re-validating the result."""
        import dataclasses

        return dataclasses.replace(self, **kw)


def scenario_fingerprint(spec: ScenarioSpec) -> str:
    """SHA-256 over the canonical scenario form.

    Two documents with the same meaning — regardless of key order,
    JSON vs YAML, or int-vs-float spellings — share a fingerprint.
    """
    blob = json.dumps(spec.to_canonical_dict(), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


# -- The validator -------------------------------------------------------------


def validate_scenario(data: dict, *, label: str = "document") -> ScenarioSpec:
    """Validate a raw scenario document into a :class:`ScenarioSpec`.

    Raises :class:`~repro.errors.ScenarioError` listing *every* finding.
    """
    errors = _Errors()
    if not isinstance(data, dict):
        errors.add("", f"scenario must be a mapping, got "
                       f"{type(data).__name__}")
        errors.raise_if_any(label)

    root = _Section(data, "", errors)

    meta = root.section("scenario")
    name = meta.get("name", str, "", required=True)
    title = meta.get("title", str, "")
    description = meta.get("description", str, "")
    meta.check_unknown()
    if name and not all(
        ch.isalnum() or ch in "-_." for ch in name
    ):
        errors.add("scenario.name",
                   "must use only letters, digits, '-', '_', '.'")

    model = root.get("model", str, "hm-small", choices=_MODELS)
    fidelity = root.get("fidelity", str, "default", choices=_FIDELITIES)

    library = root.section("library")
    library_seed = library.get("seed", int, None, minimum=0)
    library_temperature = library.get(
        "temperature", float, None, exclusive_minimum=0.0
    )
    library.check_unknown()

    geometry = root.section("geometry")
    geometry_kind = geometry.get(
        "kind", str, "full-core", choices=GEOMETRY_KINDS
    )
    pattern_value = geometry.raw("core_pattern")
    core_pattern_name = ""
    core_pattern_rows: tuple = ()
    if pattern_value is not None:
        if geometry_kind == "pincell":
            errors.add("geometry.core_pattern",
                       "does not apply to pincell geometry")
        elif isinstance(pattern_value, str):
            if pattern_value in CORE_PATTERNS:
                core_pattern_name = pattern_value
            else:
                errors.add(
                    "geometry.core_pattern",
                    f"unknown named pattern {pattern_value!r}; available: "
                    f"{', '.join(sorted(CORE_PATTERNS))} (or explicit rows)",
                )
        elif isinstance(pattern_value, list):
            try:
                pattern_from_rows(pattern_value)
            except Exception as exc:
                errors.add("geometry.core_pattern", str(exc))
            else:
                core_pattern_rows = tuple(str(r) for r in pattern_value)
        else:
            errors.add(
                "geometry.core_pattern",
                "must be a pattern name or a list of 'F'/'W' row strings",
            )
    geometry.check_unknown()

    materials = root.section("materials")
    fuel = materials.section("fuel")
    enrichment_scale = fuel.get(
        "enrichment_scale", float, 1.0, exclusive_minimum=0.0
    )
    densities_raw = fuel.raw("number_densities")
    fuel_number_densities: tuple = ()
    if densities_raw is not None:
        if not isinstance(densities_raw, dict):
            errors.add("materials.fuel.number_densities",
                       "must be a mapping of nuclide -> atoms/barn-cm")
        else:
            pairs = []
            for nuc in sorted(densities_raw):
                rho = densities_raw[nuc]
                path = f"materials.fuel.number_densities.{nuc}"
                if isinstance(rho, bool) or not isinstance(
                    rho, (int, float)
                ):
                    errors.add(path, "density must be a number")
                elif not (rho > 0.0):
                    errors.add(path, f"density must be > 0, got {rho}")
                else:
                    pairs.append((str(nuc), float(rho)))
            fuel_number_densities = tuple(pairs)
    fuel.check_unknown()
    moderator = materials.section("moderator")
    boron_ppm = moderator.get("boron_ppm", float, 600.0, minimum=0.0)
    moderator.check_unknown()
    materials.check_unknown()

    physics = root.section("physics")
    use_sab = physics.get("sab", bool, True)
    use_urr = physics.get("urr", bool, True)
    use_union_grid = physics.get("union_grid", bool, True)
    survival_biasing = physics.get("survival_biasing", bool, False)
    physics.check_unknown()

    source = root.section("source")
    source_kind = source.get("kind", str, "watt-fission",
                             choices=SOURCE_KINDS)
    watt_a = source.get("watt_a", float, 0.988, exclusive_minimum=0.0)
    watt_b = source.get("watt_b", float, 2.249, exclusive_minimum=0.0)
    source.check_unknown()

    tallies_raw = root.raw("tallies")
    tallies: tuple = ("k-effective", "entropy")
    if tallies_raw is not None:
        if not isinstance(tallies_raw, list):
            errors.add("tallies", "must be a list of tally names")
        else:
            seen = []
            for i, t in enumerate(tallies_raw):
                if t not in TALLY_KINDS:
                    errors.add(
                        f"tallies[{i}]",
                        f"unknown tally {t!r}; available: "
                        f"{', '.join(TALLY_KINDS)}",
                    )
                elif t not in seen:
                    seen.append(t)
            # k-effective and entropy are always scored; keep a canonical
            # order so equal requests fingerprint equally.
            tallies = tuple(
                t for t in TALLY_KINDS
                if t in ("k-effective", "entropy") or t in seen
            )

    run = root.section("run")
    particles = run.get("particles", int, 500, minimum=1)
    inactive = run.get("inactive", int, 2, minimum=0)
    active = run.get("active", int, 5, minimum=1)
    seed = run.get("seed", int, 1, minimum=0)
    backend = run.get("backend", str, "event")
    run.check_unknown()
    if backend not in available_backends():
        errors.add(
            "run.backend",
            f"unknown transport backend {backend!r}; available: "
            f"{', '.join(available_backends())}",
        )

    root.check_unknown()

    # Cross-field constraints (mirror Settings' own guards, but with
    # document paths and all-at-once reporting).
    if backend == "delta":
        if "power" in tallies:
            errors.add(
                "tallies",
                "the delta backend scores no track-length tallies; drop "
                "'power' or pick the history/event backend",
            )
        if not use_union_grid:
            errors.add("physics.union_grid",
                       "delta tracking requires the union grid")

    errors.raise_if_any(label if not name else f"{label} ({name!r})")
    return ScenarioSpec(
        name=name,
        title=title,
        description=description,
        model=model,
        fidelity=fidelity,
        library_seed=library_seed,
        library_temperature=library_temperature,
        geometry_kind=geometry_kind,
        core_pattern_name=core_pattern_name,
        core_pattern_rows=core_pattern_rows,
        enrichment_scale=enrichment_scale,
        fuel_number_densities=fuel_number_densities,
        boron_ppm=boron_ppm,
        use_sab=use_sab,
        use_urr=use_urr,
        use_union_grid=use_union_grid,
        survival_biasing=survival_biasing,
        source_kind=source_kind,
        watt_a=watt_a,
        watt_b=watt_b,
        tallies=tallies,
        particles=particles,
        inactive=inactive,
        active=active,
        seed=seed,
        backend=backend,
    )
