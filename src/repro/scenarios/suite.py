"""Case suites: parameter sweeps over a base scenario.

A *suite* document names a base scenario and a set of **axes** — named
parameters with a list of values each — and expands to the cartesian
product of those values.  Every case is a full scenario document (the base
with the axis values written into their schema paths), re-validated and
compiled independently, so a case can never reach the service in a state
the scenario schema would have rejected.

Two properties matter downstream:

* **Stable case IDs.**  ``<suite>:<axis>=<value>,...`` with axes in sorted
  name order — independent of axis declaration order, stable across
  re-expansions, and usable verbatim as a service job ID.
* **Fingerprint-affine ordering.**  Expanded cases are grouped by library
  fingerprint (first-occurrence group order, submission order within a
  group), so consecutive submissions hit the service's library cache and
  worker affinity instead of thrashing rebuilds.  Axes that don't touch
  the library (backend, boron, seeds, ...) share one build no matter how
  many cases they span.
"""

from __future__ import annotations

import copy
import itertools
import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import SuiteError
from ..serve.jobs import JobSpec
from .compiler import (
    DATA_DIR,
    CompiledScenario,
    compile_scenario,
    load_scenario_document,
)
from .schema import ScenarioSpec, validate_scenario

__all__ = [
    "SWEEP_AXES",
    "Case",
    "CaseSuite",
    "load_suite",
    "canned_suite_names",
]

#: Sweepable axes: axis name → path into the scenario document.
SWEEP_AXES = {
    "model": ("model",),
    "fidelity": ("fidelity",),
    "temperature": ("library", "temperature"),
    "library_seed": ("library", "seed"),
    "enrichment_scale": ("materials", "fuel", "enrichment_scale"),
    "boron_ppm": ("materials", "moderator", "boron_ppm"),
    "sab": ("physics", "sab"),
    "urr": ("physics", "urr"),
    "survival_biasing": ("physics", "survival_biasing"),
    "backend": ("run", "backend"),
    "particles": ("run", "particles"),
    "inactive": ("run", "inactive"),
    "active": ("run", "active"),
    "seed": ("run", "seed"),
}

#: Expansion guard: a sweep larger than this is almost certainly a typo'd
#: axis, and the service queue should not find out the hard way.
MAX_CASES = 4096

_SUITE_PREFIX = "suite-"


def _slug_value(value) -> str:
    """A filesystem- and queue-safe rendering of one axis value."""
    text = value if isinstance(value, str) else json.dumps(value)
    return "".join(
        ch if (ch.isalnum() or ch in "-_.") else "-" for ch in text
    )


def _set_path(document: dict, path: tuple, value) -> None:
    node = document
    for key in path[:-1]:
        node = node.setdefault(key, {})
        if not isinstance(node, dict):
            raise SuiteError(
                f"cannot override {'.'.join(path)}: "
                f"{key!r} is not a mapping in the base scenario"
            )
    node[path[-1]] = value


@dataclass(frozen=True)
class Case:
    """One expanded case: its identity, axis values, and compiled form."""

    case_id: str
    #: Axis name → value for this case (sorted by axis name).
    overrides: dict
    compiled: CompiledScenario
    job: JobSpec

    @property
    def spec(self) -> ScenarioSpec:
        return self.compiled.spec


class CaseSuite:
    """A validated sweep definition, ready to expand.

    Build one with :func:`load_suite` (canned name, path, or mapping) or
    directly from a parsed document with :meth:`from_document`.
    """

    def __init__(
        self,
        *,
        suite_id: str,
        title: str = "",
        description: str = "",
        base_document: dict,
        axes: dict,
        priority: int = 0,
        label: str = "<inline>",
    ) -> None:
        self.suite_id = suite_id
        self.title = title
        self.description = description
        self.base_document = base_document
        #: Axis name → tuple of values, in document order (expansion
        #: nesting order; case IDs sort axes independently of it).
        self.axes = {k: tuple(v) for k, v in axes.items()}
        self.priority = priority
        self.label = label
        self._validate()

    # -- Validation ----------------------------------------------------------

    def _validate(self) -> None:
        problems = []
        if not self.suite_id:
            problems.append("suite.id: is required")
        elif not all(
            ch.isalnum() or ch in "-_." for ch in self.suite_id
        ):
            problems.append(
                "suite.id: must use only letters, digits, '-', '_', '.'"
            )
        for name, values in self.axes.items():
            if name not in SWEEP_AXES:
                problems.append(
                    f"axes.{name}: unknown axis; sweepable axes are "
                    f"{', '.join(sorted(SWEEP_AXES))}"
                )
                continue
            if not values:
                problems.append(f"axes.{name}: needs at least one value")
            if any(isinstance(v, (dict, list)) for v in values):
                problems.append(f"axes.{name}: values must be scalars")
            if len(set(map(repr, values))) != len(values):
                problems.append(f"axes.{name}: contains duplicate values")
        size = self.n_cases()
        if size > MAX_CASES:
            problems.append(
                f"axes: sweep expands to {size} cases "
                f"(limit {MAX_CASES})"
            )
        if problems:
            raise SuiteError(
                f"invalid suite {self.label}: {len(problems)} problem(s)\n"
                + "\n".join(f"  - {p}" for p in problems),
                errors=tuple(problems),
            )
        # The base document must itself be a valid scenario; axis values
        # are checked per-case at expansion (each case re-validates).
        validate_scenario(
            copy.deepcopy(self.base_document),
            label=f"{self.label} base scenario",
        )

    def n_cases(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= max(len(values), 1)
        return n

    # -- Expansion -----------------------------------------------------------

    def case_id_for(self, overrides: dict) -> str:
        """The stable ID of the case with these axis values."""
        if not overrides:
            return f"{self.suite_id}:base"
        slug = ",".join(
            f"{name}={_slug_value(overrides[name])}"
            for name in sorted(overrides)
        )
        return f"{self.suite_id}:{slug}"

    def expand(self) -> list:
        """All cases, in fingerprint-affine submission order.

        Cases are generated in cartesian-product order (first declared
        axis outermost), then stably regrouped so that cases sharing a
        library fingerprint are consecutive — the order ``submit`` sends
        them to the service.
        """
        names = list(self.axes)
        combos = itertools.product(*(self.axes[n] for n in names)) \
            if names else iter([()])
        cases = []
        for combo in combos:
            overrides = dict(sorted(zip(names, combo)))
            document = copy.deepcopy(self.base_document)
            for name, value in overrides.items():
                _set_path(document, SWEEP_AXES[name], value)
            case_id = self.case_id_for(overrides)
            try:
                compiled = compile_scenario(
                    validate_scenario(document, label=case_id)
                )
            except SuiteError:
                raise
            except Exception as exc:
                raise SuiteError(
                    f"suite {self.suite_id!r}: case {case_id} is "
                    f"invalid: {exc}"
                ) from exc
            job = compiled.job_spec(
                job_id=case_id,
                case_id=case_id,
                suite_id=self.suite_id,
                priority=self.priority,
            )
            cases.append(Case(
                case_id=case_id, overrides=overrides,
                compiled=compiled, job=job,
            ))
        # Stable regroup by library fingerprint: first occurrence fixes
        # the group's position; order within a group is preserved.
        groups: dict = {}
        for case in cases:
            groups.setdefault(case.job.library_fingerprint(), []).append(
                case
            )
        return [case for group in groups.values() for case in group]

    def job_specs(self) -> list:
        return [case.job for case in self.expand()]

    # -- Construction --------------------------------------------------------

    @classmethod
    def from_document(
        cls, data: dict, *, label: str = "<inline>"
    ) -> "CaseSuite":
        if not isinstance(data, dict):
            raise SuiteError(
                f"suite {label}: document must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {"suite", "scenario", "axes", "priority"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SuiteError(
                f"suite {label}: unknown keys {unknown} "
                f"(expected {sorted(known)})"
            )
        meta = data.get("suite", {})
        if not isinstance(meta, dict):
            raise SuiteError(f"suite {label}: 'suite' must be a mapping")
        scenario_ref = data.get("scenario")
        if scenario_ref is None:
            raise SuiteError(f"suite {label}: 'scenario' is required")
        base_document, _ = load_scenario_document(scenario_ref)
        axes = data.get("axes", {})
        if not isinstance(axes, dict) or not all(
            isinstance(v, list) for v in axes.values()
        ):
            raise SuiteError(
                f"suite {label}: 'axes' must map axis names to value lists"
            )
        priority = data.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise SuiteError(f"suite {label}: 'priority' must be an integer")
        return cls(
            suite_id=str(meta.get("id", "")),
            title=str(meta.get("title", "")),
            description=str(meta.get("description", "")),
            base_document=base_document,
            axes=axes,
            priority=priority,
            label=label,
        )


def canned_suite_names() -> tuple:
    """Names of the suites shipped under ``repro/scenarios/data/``."""
    return tuple(sorted(
        p.stem[len(_SUITE_PREFIX):]
        for p in DATA_DIR.glob(f"{_SUITE_PREFIX}*.json")
    ))


def load_suite(source) -> CaseSuite:
    """Load a suite from a canned name, a path, or a parsed mapping."""
    if isinstance(source, dict):
        return CaseSuite.from_document(source)
    path = Path(str(source))
    if not path.suffix and "/" not in str(source):
        canned = DATA_DIR / f"{_SUITE_PREFIX}{source}.json"
        if not canned.is_file():
            raise SuiteError(
                f"unknown canned suite {source!r}; available: "
                f"{', '.join(canned_suite_names())}"
            )
        path = canned
    data, label = load_scenario_document(path)
    return CaseSuite.from_document(data, label=label)
