"""Work counters: the bridge between executed algorithms and the machine model.

The transport loops and kernels *execute* real physics; the Xeon Phi / host /
PCIe devices are *modelled* (DESIGN.md §2).  :class:`WorkCounters` is the
interface between the two: kernels count what they did (lookups, grid
searches, nuclide iterations, flights, collisions, bytes touched) and the
roofline model in :mod:`repro.machine` converts those counts into device
seconds.  Physics code never imports the machine model — the dependency runs
one way.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["WorkCounters"]


@dataclass
class WorkCounters:
    """Additive counters of algorithmic work.

    Attributes
    ----------
    lookups:
        Macroscopic cross-section evaluations (one per particle per segment).
    grid_searches:
        Binary searches of an energy grid (union or per-nuclide).
    nuclide_iterations:
        Inner-loop trips over nuclides (``lookups x nuclides/material``) —
        the paper's vectorization target.
    flights:
        Particle flight segments (moves to collision or surface).
    collisions:
        Collision events processed.
    fissions:
        Fission events processed.
    sab_samples:
        S(alpha, beta) thermal-scattering samples (branchy physics).
    urr_samples:
        URR probability-table samples (branchy physics).
    rn_draws:
        Random variates consumed.
    bytes_read:
        Estimated bytes gathered from cross-section tables (memory-bound
        traffic for the roofline model).
    """

    lookups: int = 0
    grid_searches: int = 0
    nuclide_iterations: int = 0
    flights: int = 0
    collisions: int = 0
    fissions: int = 0
    sab_samples: int = 0
    urr_samples: int = 0
    rn_draws: int = 0
    bytes_read: int = 0

    def __iadd__(self, other: "WorkCounters") -> "WorkCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def __add__(self, other: "WorkCounters") -> "WorkCounters":
        out = WorkCounters()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
