"""Machine model: the simulated Xeon Phi / host / PCIe hardware.

See DESIGN.md §2 — the paper's 2013-era devices are modelled analytically
with constants calibrated once against the paper's anchor measurements
(documented in :mod:`repro.machine.presets` and
:mod:`repro.machine.kernels`) and then held fixed for every experiment.
"""

from .kernels import (
    TransportCostModel,
    WorkPerParticle,
    distance_sampling_time,
    history_nuclide_seconds,
    lookup_rate,
    lookup_time_banked,
    lookup_time_history,
)
from .memory import (
    bank_bytes,
    energy_grid_bytes,
    library_nuclides,
    max_particles,
    particle_record_bytes,
    resident_grid_bytes,
)
from .knl import KNL_PROJECTED, knl_projection
from .occupancy import batch_overhead_s, occupancy_factor, thread_utilization
from .pcie import PCIeLink
from .power import POWER_MODELS, PowerModel, energy_per_particle, power_model_for
from .presets import (
    DEVICE_PRESETS,
    EPYC_HOST,
    GPU_A100,
    GPU_MAX1550,
    GPU_MI250X,
    JLSE_HOST,
    LINK_PRESETS,
    MIC_7120A,
    MIC_SE10P,
    NVLINK3,
    PCIE_GEN2_X16,
    PCIE_GEN4_X16,
    STAMPEDE_HOST,
    XE_LINK,
    available_devices,
    available_links,
    device_by_name,
    fleet_from_names,
    link_by_name,
)
from .roofline import KernelProfile, compute_time, kernel_time, memory_time
from .spec import DeviceSpec

__all__ = [
    "TransportCostModel",
    "WorkPerParticle",
    "distance_sampling_time",
    "history_nuclide_seconds",
    "lookup_rate",
    "lookup_time_banked",
    "lookup_time_history",
    "bank_bytes",
    "energy_grid_bytes",
    "library_nuclides",
    "max_particles",
    "particle_record_bytes",
    "resident_grid_bytes",
    "KNL_PROJECTED",
    "knl_projection",
    "batch_overhead_s",
    "occupancy_factor",
    "thread_utilization",
    "PCIeLink",
    "POWER_MODELS",
    "PowerModel",
    "energy_per_particle",
    "power_model_for",
    "DEVICE_PRESETS",
    "EPYC_HOST",
    "GPU_A100",
    "GPU_MAX1550",
    "GPU_MI250X",
    "JLSE_HOST",
    "LINK_PRESETS",
    "MIC_7120A",
    "MIC_SE10P",
    "NVLINK3",
    "PCIE_GEN2_X16",
    "PCIE_GEN4_X16",
    "STAMPEDE_HOST",
    "XE_LINK",
    "available_devices",
    "available_links",
    "device_by_name",
    "fleet_from_names",
    "link_by_name",
    "KernelProfile",
    "compute_time",
    "kernel_time",
    "memory_time",
    "DeviceSpec",
]
