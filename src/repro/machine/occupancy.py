"""Thread-occupancy model: why rates sag at low particle counts (Fig. 5).

A device with T hardware threads processing N particles per batch suffers
two small-N effects the paper's Fig. 5 shows clearly (and which drive the
1-MIC strong-scaling tail in Fig. 6):

* **quantization/imbalance** — threads receive ``ceil(N/T)`` particles, so
  utilization is ``N / (T * ceil(N/T))``;
* **fixed per-batch overhead** — parallel-region launch, bank
  synchronization, and reduction costs independent of N, much larger on a
  244-thread in-order device than a 32-thread host.

With 244 threads, the MIC needs ~1e4-1e5 particles to reach its asymptotic
rate — exactly the paper's observation that "the highest rates occur with at
least 1e5 particles per node".
"""

from __future__ import annotations

import math

from ..errors import MachineModelError
from .spec import DeviceSpec

__all__ = ["thread_utilization", "batch_overhead_s", "occupancy_factor"]


def thread_utilization(n_items: int, n_threads: int) -> float:
    """Load-balance efficiency of N items over T threads in [0, 1]."""
    if n_items < 0 or n_threads < 1:
        raise MachineModelError("invalid occupancy query")
    if n_items == 0:
        return 0.0
    return n_items / (n_threads * math.ceil(n_items / n_threads))


#: Fixed per-batch cost per hardware thread [s]: thread-team launch + bank
#: sync + local reduction.  In-order cores pay extra; GPUs amortize a
#: single kernel launch over thousands of resident warps, so the per-warp
#: share is microseconds (an A100-class device still pays ~14 ms/batch).
_BATCH_OVERHEAD_PER_THREAD = {
    "ooo": 100.0e-6,
    "in_order": 180.0e-6,
    "gpu": 2.0e-6,
}


def batch_overhead_s(device: DeviceSpec) -> float:
    """Fixed per-batch cost [s]: thread-team launch + bank sync + local
    reduction.  Scales with thread count; in-order cores pay extra."""
    return device.threads * _BATCH_OVERHEAD_PER_THREAD[device.class_key]


def occupancy_factor(device: DeviceSpec, n_particles: int) -> float:
    """Multiplier in (0, 1] on the asymptotic calculation rate.

    Combines thread quantization with a smooth saturation term modelling
    SMT latency hiding only kicking in when every hardware thread has
    enough work to stay busy (several particles in flight per thread).
    """
    util = thread_utilization(n_particles, device.threads)
    per_thread = n_particles / device.threads
    saturation = per_thread / (per_thread + 2.0)
    return util * saturation
