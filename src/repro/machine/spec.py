"""Device specifications for the modelled hardware.

The paper's devices are 2013-era parts we cannot run (repro band 2); per the
substitution rule they are modelled analytically.  A :class:`DeviceSpec`
captures exactly the architectural parameters the paper's performance
arguments rest on: core/thread counts, clock, vector width, memory bandwidth
and capacity, and whether the core is out-of-order (the MIC's in-order
pipeline is why its *scalar* performance is poor and why Knights Landing's
OoO cores are projected to give ~3x in §V).

GPU-era devices map onto the same parameters (the follow-on literature's
fleets of heterogeneous accelerators): ``cores`` are SMs/CUs/Xe-cores,
``threads_per_core`` the resident warps per SM whose oversubscription hides
HBM latency (the occupancy-era analogue of the MIC's 4-way SMT),
``vector_bits`` the warp/wavefront width (32 f64 lanes = 2048 bits), and
``dram_bw_gbps`` the HBM bandwidth.  ``kind = "gpu"`` selects the GPU
column of the kernel-model constants via :attr:`class_key`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError

__all__ = ["DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of one compute device.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cores, threads_per_core:
        Physical cores and hardware threads per core.
    clock_ghz:
        Core clock [GHz].
    vector_bits:
        SIMD register width [bits] (512 for the MIC, 256 for AVX hosts).
    dram_bw_gbps:
        Achievable (STREAM-like) memory bandwidth [GB/s].
    mem_gb:
        Device memory capacity [GB].
    out_of_order:
        Whether cores execute out of order.  In-order cores (Knights
        Corner) stall on every cache miss unless another hardware thread
        can issue — the root of the MIC's poor scalar/latency behaviour.
    issue_width:
        Sustained instructions per cycle per core for vectorizable code.
    gather_efficiency:
        Fraction of peak DRAM bandwidth achieved by gather-dominated
        access (cross-section table lookups), vs unit-stride streams.
    smt_latency_factor:
        Throughput multiplier from filling hardware threads on latency-
        bound code (the MIC *needs* its 4 threads/core; hosts gain ~25%
        from 2-way HT).
    """

    name: str
    cores: int
    threads_per_core: int
    clock_ghz: float
    vector_bits: int
    dram_bw_gbps: float
    mem_gb: float
    out_of_order: bool
    issue_width: float = 2.0
    gather_efficiency: float = 0.5
    smt_latency_factor: float = 1.25
    #: Effective per-thread memory-level parallelism in latency-serialized
    #: (history-mode) lookup chains; None selects the class default
    #: (0.72 OoO / 0.55 in-order / 2.4 GPU) in the kernel model.
    history_mlp: float | None = None
    #: Device class: ``""`` (derive cpu/mic from ``out_of_order``, the
    #: 2013-era behaviour), or an explicit ``"cpu"`` / ``"mic"`` / ``"gpu"``.
    #: GPUs get their own kernel-constant column — in-order per thread but
    #: with massive warp-level latency hiding and HBM streams.
    kind: str = ""

    def __post_init__(self) -> None:
        if self.cores < 1 or self.threads_per_core < 1:
            raise MachineModelError(f"{self.name}: invalid core/thread counts")
        if self.clock_ghz <= 0 or self.dram_bw_gbps <= 0 or self.mem_gb <= 0:
            raise MachineModelError(f"{self.name}: invalid rates/capacities")
        if self.vector_bits not in (128, 256, 512, 1024, 2048):
            raise MachineModelError(f"{self.name}: unsupported vector width")
        if self.kind not in ("", "cpu", "mic", "gpu"):
            raise MachineModelError(f"{self.name}: unknown device kind {self.kind!r}")

    # -- Derived quantities -------------------------------------------------------

    @property
    def class_key(self) -> str:
        """Kernel-constant column: ``"ooo"``, ``"in_order"``, or ``"gpu"``."""
        if self.kind == "gpu":
            return "gpu"
        return "ooo" if self.out_of_order else "in_order"

    @property
    def threads(self) -> int:
        """Total hardware threads (for GPUs: resident warps, the
        latency-hiding occupancy unit)."""
        return self.cores * self.threads_per_core

    def vector_lanes(self, precision: str = "f64") -> int:
        """SIMD lanes for the given precision ('f32' or 'f64')."""
        if precision == "f32":
            return self.vector_bits // 32
        if precision == "f64":
            return self.vector_bits // 64
        raise MachineModelError(f"unknown precision {precision!r}")

    def peak_vector_flops(self, precision: str = "f64") -> float:
        """Peak vector FLOP rate [FLOP/s] (FMA counted as 2)."""
        return (
            self.cores
            * self.clock_ghz
            * 1.0e9
            * self.vector_lanes(precision)
            * self.issue_width
        )

    def peak_scalar_ops(self) -> float:
        """Sustained scalar operation rate [op/s] across all cores.

        Out-of-order cores sustain ~issue_width scalar ops/cycle; in-order
        cores sustain well under 1 (dependences and misses stall the
        pipeline; SMT recovers some throughput via smt_latency_factor
        applied at the kernel level)."""
        per_core = self.issue_width if self.out_of_order else 0.4
        return self.cores * self.clock_ghz * 1.0e9 * per_core

    @property
    def mem_bytes(self) -> float:
        return self.mem_gb * 1.0e9

    def effective_bandwidth(self, gather_fraction: float = 0.0) -> float:
        """Achievable bandwidth [B/s] for a mix of streaming and gathers."""
        if not 0.0 <= gather_fraction <= 1.0:
            raise MachineModelError("gather_fraction must be in [0, 1]")
        eff = 1.0 - gather_fraction * (1.0 - self.gather_efficiency)
        return self.dram_bw_gbps * 1.0e9 * eff
