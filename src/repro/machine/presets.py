"""Calibrated device presets for the paper's test systems.

Parameters come from public spec sheets; the *efficiency* constants
(gather efficiency, SMT factors) are calibrated once so that the transport
cost model (:mod:`repro.machine.kernels`) reproduces the paper's anchor
measurements, and are then held fixed across every experiment:

* Table III: H.M. Large active-batch rates of **4,050 n/s** (JLSE host) and
  **6,641 n/s** (one Xeon Phi 7120a), i.e. alpha = 0.61;
* Fig. 5: alpha stabilizes near 0.62 above ~1e4 particles, and rates sag at
  low particle counts (thread starvation);
* Fig. 6: alpha = 0.42 on Stampede (slower host, slower SE10P MIC);
* Table I: MIC beats host ~1.9x on the fully vectorized distance kernel but
  loses by >10x on the naive scalar kernel.

JLSE nodes: 2 x Xeon E5-2687W (8 cores each, 3.4 GHz, AVX) + 2 x Xeon Phi
7120a (61 cores, 1.238 GHz, 512-bit).  Stampede nodes: 2 x Xeon E5-2680
(2.7 GHz) + Xeon Phi SE10P (61 cores, 1.1 GHz, 8 GB).

The GPU-era presets are *modelled analogues* of published parts
(A100-SXM, MI250X GCD, Data Center GPU Max 1550 stack, dual-socket EPYC
host): core/clock/bandwidth/capacity figures come from spec sheets
(e.g. the A100 preset's peak f64 rate works out to the published
9.7 TFLOP/s), while the per-warp kernel constants are calibrated loosely
so the transport model lands in the literature's ballpark — a modern GPU
several times a modern host on large batches, but starved below ~1e4
particles, reproducing the paper's Fig. 5 crossover shape at today's
scale.  Every preset is reachable by name (plus a short alias) through
:func:`device_by_name`, which lists the live registry on a miss — the
same convention as the transport backend registry.
"""

from __future__ import annotations

from ..errors import MachineModelError
from .pcie import PCIeLink
from .spec import DeviceSpec

__all__ = [
    "JLSE_HOST",
    "MIC_7120A",
    "STAMPEDE_HOST",
    "MIC_SE10P",
    "EPYC_HOST",
    "GPU_A100",
    "GPU_MI250X",
    "GPU_MAX1550",
    "PCIE_GEN2_X16",
    "PCIE_GEN4_X16",
    "NVLINK3",
    "XE_LINK",
    "DEVICE_PRESETS",
    "LINK_PRESETS",
    "device_by_name",
    "available_devices",
    "fleet_from_names",
    "link_by_name",
    "available_links",
]

#: JLSE host: dual-socket E5-2687W — 16 cores / 32 threads, AVX-256,
#: ~102 GB/s aggregate STREAM bandwidth, 64 GB DDR3.
JLSE_HOST = DeviceSpec(
    name="jlse-host-2xE5-2687W",
    cores=16,
    threads_per_core=2,
    clock_ghz=3.4,
    vector_bits=256,
    dram_bw_gbps=102.0,
    mem_gb=64.0,
    out_of_order=True,
    issue_width=2.0,
    gather_efficiency=0.55,
    smt_latency_factor=1.25,
)

#: Xeon Phi 7120a: 61 in-order cores, 4-way SMT, 512-bit vectors, GDDR5.
MIC_7120A = DeviceSpec(
    name="xeon-phi-7120a",
    cores=61,
    threads_per_core=4,
    clock_ghz=1.238,
    vector_bits=512,
    dram_bw_gbps=177.0,
    mem_gb=16.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.38,
    smt_latency_factor=3.2,
)

#: Stampede host: dual-socket E5-2680 at 2.7 GHz, 32 GB.
STAMPEDE_HOST = DeviceSpec(
    name="stampede-host-2xE5-2680",
    cores=16,
    threads_per_core=2,
    clock_ghz=2.7,
    vector_bits=256,
    dram_bw_gbps=76.0,
    mem_gb=32.0,
    out_of_order=True,
    issue_width=2.0,
    gather_efficiency=0.55,
    smt_latency_factor=1.25,
    # Calibrated to the paper's Stampede observation alpha = 0.42: the
    # E5-2680's slower uncore/DDR3-1600 sustains less lookup-chain
    # parallelism than the JLSE host.
    history_mlp=0.42,
)

#: Stampede's Xeon Phi SE10P: 61 cores at 1.1 GHz, 8 GB.
MIC_SE10P = DeviceSpec(
    name="xeon-phi-SE10P",
    cores=61,
    threads_per_core=4,
    clock_ghz=1.1,
    vector_bits=512,
    dram_bw_gbps=160.0,
    mem_gb=8.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.38,
    smt_latency_factor=3.2,
)

# ---------------------------------------------------------------------------
# GPU-era fleet devices (modelled analogues; see module docstring)
# ---------------------------------------------------------------------------

#: Modern dual-socket EPYC-class host: 2 x 64 Zen3 cores, AVX2, 8-channel
#: DDR4-3200 per socket (~410 GB/s aggregate STREAM).
EPYC_HOST = DeviceSpec(
    name="epyc-host-2x7763",
    cores=128,
    threads_per_core=2,
    clock_ghz=2.45,
    vector_bits=256,
    dram_bw_gbps=410.0,
    mem_gb=512.0,
    out_of_order=True,
    issue_width=2.0,
    gather_efficiency=0.55,
    smt_latency_factor=1.25,
    kind="cpu",
)

#: A100-SXM-class GPU: 108 SMs x up to 64 resident warps, 32 f64 lanes per
#: warp (108 * 1.41 GHz * 32 * 2 = the published 9.7 TF f64), HBM2e.
GPU_A100 = DeviceSpec(
    name="gpu-a100-sxm",
    cores=108,
    threads_per_core=64,
    clock_ghz=1.41,
    vector_bits=2048,
    dram_bw_gbps=1555.0,
    mem_gb=40.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.35,
    smt_latency_factor=8.0,
    kind="gpu",
)

#: One MI250X GCD: 110 CUs, 32-wide f64 wavefront math pipes
#: (110 * 1.7 GHz * 32 * 2 ~ the published 23.9 TF / 2 per GCD), HBM2e.
GPU_MI250X = DeviceSpec(
    name="gpu-mi250x-gcd",
    cores=110,
    threads_per_core=32,
    clock_ghz=1.7,
    vector_bits=2048,
    dram_bw_gbps=1638.0,
    mem_gb=64.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.35,
    smt_latency_factor=8.0,
    kind="gpu",
)

#: One Data Center GPU Max 1550 stack: 64 Xe-cores, 64 resident
#: sub-groups each, HBM2e.
GPU_MAX1550 = DeviceSpec(
    name="gpu-max1550-stack",
    cores=64,
    threads_per_core=64,
    clock_ghz=1.3,
    vector_bits=2048,
    dram_bw_gbps=1638.0,
    mem_gb=64.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.35,
    smt_latency_factor=8.0,
    kind="gpu",
)

# ---------------------------------------------------------------------------
# Transfer links
# ---------------------------------------------------------------------------

#: PCIe 2.0 x16 as the offload path sees it.  The *effective* bank-transfer
#: bandwidth is calibrated to Table II (496 MB in 460 ms, 2.84 GB in
#: 2,210 ms -> ~1.3 GB/s including offload runtime overheads); the
#: persistent energy-grid path streams at the paper's quoted "1 second per
#: 5 GB".
PCIE_GEN2_X16 = PCIeLink(
    latency_s=50.0e-6,
    bank_bandwidth_gbps=1.3,
    bulk_bandwidth_gbps=5.0,
    name="pcie-gen2-x16",
)

#: PCIe 4.0 x16: ~32 GB/s raw; effective bank path through a pinned-memory
#: staging runtime, bulk DMA close to wire rate.
PCIE_GEN4_X16 = PCIeLink(
    latency_s=10.0e-6,
    bank_bandwidth_gbps=12.0,
    bulk_bandwidth_gbps=25.0,
    name="pcie-gen4-x16",
)

#: NVLink 3 (A100-class): 12 links x 25 GB/s per direction.
NVLINK3 = PCIeLink(
    latency_s=5.0e-6,
    bank_bandwidth_gbps=80.0,
    bulk_bandwidth_gbps=250.0,
    name="nvlink3",
)

#: Xe Link bridge (Max-series) / Infinity-Fabric-class bridge.
XE_LINK = PCIeLink(
    latency_s=8.0e-6,
    bank_bandwidth_gbps=40.0,
    bulk_bandwidth_gbps=120.0,
    name="xe-link",
)

# ---------------------------------------------------------------------------
# Registries (full names + short aliases)
# ---------------------------------------------------------------------------

_DEVICES = (
    JLSE_HOST,
    MIC_7120A,
    STAMPEDE_HOST,
    MIC_SE10P,
    EPYC_HOST,
    GPU_A100,
    GPU_MI250X,
    GPU_MAX1550,
)

_DEVICE_ALIASES = {
    "jlse-host": JLSE_HOST,
    "mic-7120a": MIC_7120A,
    "stampede-host": STAMPEDE_HOST,
    "mic-se10p": MIC_SE10P,
    "epyc-host": EPYC_HOST,
    "a100": GPU_A100,
    "mi250x": GPU_MI250X,
    "max1550": GPU_MAX1550,
}

#: Every preset device reachable by name: full names plus short aliases.
DEVICE_PRESETS: dict[str, DeviceSpec] = {
    **{d.name: d for d in _DEVICES},
    **_DEVICE_ALIASES,
}

#: Every preset transfer link by name.
LINK_PRESETS: dict[str, PCIeLink] = {
    link.name: link
    for link in (PCIE_GEN2_X16, PCIE_GEN4_X16, NVLINK3, XE_LINK)
}


def available_devices() -> list[str]:
    """Sorted names (and aliases) of every preset device."""
    return sorted(DEVICE_PRESETS)


def device_by_name(name: str) -> DeviceSpec:
    """Look up a preset device by full name or alias.

    Unknown names raise :class:`MachineModelError` listing the live
    registry (the transport backend registry-error convention).
    """
    try:
        return DEVICE_PRESETS[name]
    except KeyError:
        raise MachineModelError(
            f"unknown device {name!r}; available devices: "
            f"{', '.join(available_devices())}"
        ) from None


def fleet_from_names(names: "list[str] | tuple[str, ...]") -> list[DeviceSpec]:
    """Resolve an ordered device fleet from preset names/aliases."""
    return [device_by_name(n) for n in names]


def available_links() -> list[str]:
    """Sorted names of every preset transfer link."""
    return sorted(LINK_PRESETS)


def link_by_name(name: str) -> PCIeLink:
    """Look up a preset transfer link by name (registry-error on a miss)."""
    try:
        return LINK_PRESETS[name]
    except KeyError:
        raise MachineModelError(
            f"unknown link {name!r}; available links: "
            f"{', '.join(available_links())}"
        ) from None
