"""Calibrated device presets for the paper's test systems.

Parameters come from public spec sheets; the *efficiency* constants
(gather efficiency, SMT factors) are calibrated once so that the transport
cost model (:mod:`repro.machine.kernels`) reproduces the paper's anchor
measurements, and are then held fixed across every experiment:

* Table III: H.M. Large active-batch rates of **4,050 n/s** (JLSE host) and
  **6,641 n/s** (one Xeon Phi 7120a), i.e. alpha = 0.61;
* Fig. 5: alpha stabilizes near 0.62 above ~1e4 particles, and rates sag at
  low particle counts (thread starvation);
* Fig. 6: alpha = 0.42 on Stampede (slower host, slower SE10P MIC);
* Table I: MIC beats host ~1.9x on the fully vectorized distance kernel but
  loses by >10x on the naive scalar kernel.

JLSE nodes: 2 x Xeon E5-2687W (8 cores each, 3.4 GHz, AVX) + 2 x Xeon Phi
7120a (61 cores, 1.238 GHz, 512-bit).  Stampede nodes: 2 x Xeon E5-2680
(2.7 GHz) + Xeon Phi SE10P (61 cores, 1.1 GHz, 8 GB).
"""

from __future__ import annotations

from .pcie import PCIeLink
from .spec import DeviceSpec

__all__ = [
    "JLSE_HOST",
    "MIC_7120A",
    "STAMPEDE_HOST",
    "MIC_SE10P",
    "PCIE_GEN2_X16",
    "device_by_name",
]

#: JLSE host: dual-socket E5-2687W — 16 cores / 32 threads, AVX-256,
#: ~102 GB/s aggregate STREAM bandwidth, 64 GB DDR3.
JLSE_HOST = DeviceSpec(
    name="jlse-host-2xE5-2687W",
    cores=16,
    threads_per_core=2,
    clock_ghz=3.4,
    vector_bits=256,
    dram_bw_gbps=102.0,
    mem_gb=64.0,
    out_of_order=True,
    issue_width=2.0,
    gather_efficiency=0.55,
    smt_latency_factor=1.25,
)

#: Xeon Phi 7120a: 61 in-order cores, 4-way SMT, 512-bit vectors, GDDR5.
MIC_7120A = DeviceSpec(
    name="xeon-phi-7120a",
    cores=61,
    threads_per_core=4,
    clock_ghz=1.238,
    vector_bits=512,
    dram_bw_gbps=177.0,
    mem_gb=16.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.38,
    smt_latency_factor=3.2,
)

#: Stampede host: dual-socket E5-2680 at 2.7 GHz, 32 GB.
STAMPEDE_HOST = DeviceSpec(
    name="stampede-host-2xE5-2680",
    cores=16,
    threads_per_core=2,
    clock_ghz=2.7,
    vector_bits=256,
    dram_bw_gbps=76.0,
    mem_gb=32.0,
    out_of_order=True,
    issue_width=2.0,
    gather_efficiency=0.55,
    smt_latency_factor=1.25,
    # Calibrated to the paper's Stampede observation alpha = 0.42: the
    # E5-2680's slower uncore/DDR3-1600 sustains less lookup-chain
    # parallelism than the JLSE host.
    history_mlp=0.42,
)

#: Stampede's Xeon Phi SE10P: 61 cores at 1.1 GHz, 8 GB.
MIC_SE10P = DeviceSpec(
    name="xeon-phi-SE10P",
    cores=61,
    threads_per_core=4,
    clock_ghz=1.1,
    vector_bits=512,
    dram_bw_gbps=160.0,
    mem_gb=8.0,
    out_of_order=False,
    issue_width=2.0,
    gather_efficiency=0.38,
    smt_latency_factor=3.2,
)

#: PCIe 2.0 x16 as the offload path sees it.  The *effective* bank-transfer
#: bandwidth is calibrated to Table II (496 MB in 460 ms, 2.84 GB in
#: 2,210 ms -> ~1.3 GB/s including offload runtime overheads); the
#: persistent energy-grid path streams at the paper's quoted "1 second per
#: 5 GB".
PCIE_GEN2_X16 = PCIeLink(
    latency_s=50.0e-6,
    bank_bandwidth_gbps=1.3,
    bulk_bandwidth_gbps=5.0,
)

_ALL = {d.name: d for d in (JLSE_HOST, MIC_7120A, STAMPEDE_HOST, MIC_SE10P)}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a preset device by its full name."""
    return _ALL[name]
