"""Knights Landing projection (paper §V).

The paper closes by projecting OpenMC onto the then-announced Knights
Landing: up to 72 cores socketed directly (no PCIe), out-of-order execution
("a possible automatic ~3x single thread speedup over Knights Corner"), and
16 GB of on-package memory.  This module encodes that projection as a
device preset plus the consequence analysis:

* **no PCIe** — the offload model's transfer/banking terms vanish; the
  banked method's remaining cost is only the bank reorganization;
* **out-of-order cores** — the history-mode latency serialization relaxes
  toward host-like levels;
* **self-hosted** — symmetric mode's load-balancing problem disappears
  (one device class per node).

The KNL parameters are from Intel's ISC'14 announcement (as the paper cites
it): ~72 cores, ~1.3 GHz, AVX-512, MCDRAM ~400 GB/s.
"""

from __future__ import annotations

from .kernels import TransportCostModel, WorkPerParticle
from .memory import library_nuclides
from .spec import DeviceSpec

__all__ = ["KNL_PROJECTED", "knl_projection"]

#: Projected Knights Landing, per the paper's §V description.
KNL_PROJECTED = DeviceSpec(
    name="knl-projected",
    cores=72,
    threads_per_core=4,
    clock_ghz=1.3,
    vector_bits=512,
    dram_bw_gbps=400.0,  # MCDRAM
    mem_gb=16.0,  # on-package
    out_of_order=True,  # the headline change vs Knights Corner
    issue_width=2.0,
    gather_efficiency=0.45,
    smt_latency_factor=1.6,
)


def knl_projection(
    model: str = "hm-large",
    n_particles: int = 100_000,
    work: WorkPerParticle | None = None,
) -> dict[str, float]:
    """The paper's §V projection, quantified.

    Returns the modelled KNC and KNL history-mode rates, their ratio, and
    the per-thread (single-thread) speedup — to be compared against the
    paper's "possible automatic ~3x single thread speedup".
    """
    from .presets import JLSE_HOST, MIC_7120A

    work = work or WorkPerParticle.hm_reference()
    n_nuc = library_nuclides(model)
    knc = TransportCostModel(MIC_7120A, n_nuc, work)
    knl = TransportCostModel(KNL_PROJECTED, n_nuc, work)
    host = TransportCostModel(JLSE_HOST, n_nuc, work)

    rate_knc = knc.calculation_rate(n_particles)
    rate_knl = knl.calculation_rate(n_particles)
    # Per-thread rate = device rate / hardware threads.
    single_thread_speedup = (rate_knl / KNL_PROJECTED.threads) / (
        rate_knc / MIC_7120A.threads
    )
    return {
        "rate_knc": rate_knc,
        "rate_knl": rate_knl,
        "device_speedup": rate_knl / rate_knc,
        "single_thread_speedup": single_thread_speedup,
        "knl_vs_jlse_host": rate_knl / host.calculation_rate(n_particles),
    }
