"""Memory-footprint models at paper fidelity (Table II, Fig. 5 limits).

Our Python library runs at reduced grid fidelity so tests stay fast; the
*modelled* footprints here use paper-scale constants, back-derived from
Table II's measured sizes:

* **Particle record**: Table II gives 496 MB / 1e5 particles for H.M. Small
  (43 library nuclides) and 2.84 GB / 1e5 for H.M. Large (329 nuclides).
  Solving ``base + per_nuclide * N`` through both points yields **1,434 B
  base + 82 B/nuclide** — consistent with OpenMC's particle: state + RNG +
  tally buffers, plus a ~10-double per-nuclide micro-XS cache.
* **Energy grid**: 1.31 GB (Small) and 8.37 GB (Large) solve to a unionized
  grid of ~**3.4 million points** with an 8-byte index-matrix entry per
  nuclide per point — exactly the Leppänen double-indexing structure of
  :class:`repro.data.unionized.UnionizedGrid`, at evaluated-library
  fidelity.

These feed Table II/Fig. 3 (offload volumes) and Fig. 5 (out-of-memory
limits: between 1e7 and 1e8 particles on 64/16 GB devices; between 1e6 and
1e7 on the 8 GB SE10P — the model reproduces those brackets).
"""

from __future__ import annotations

from ..errors import MachineModelError
from .spec import DeviceSpec

__all__ = [
    "PARTICLE_BASE_BYTES",
    "PARTICLE_PER_NUCLIDE_BYTES",
    "PAPER_UNION_POINTS",
    "UNION_INDEX_ENTRY_BYTES",
    "RESIDENT_SITE_BYTES",
    "SITE_BANKS",
    "library_nuclides",
    "particle_record_bytes",
    "bank_bytes",
    "energy_grid_bytes",
    "resident_grid_bytes",
    "max_particles",
]

#: Per-particle record: base state (position, direction, energy, weight,
#: RNG state, geometry coordinates, tally scratch).
PARTICLE_BASE_BYTES = 1_434

#: Per-nuclide micro-XS cache carried by each particle (~10 doubles).
PARTICLE_PER_NUCLIDE_BYTES = 82

#: Unionized grid points at evaluated-library fidelity.
PAPER_UNION_POINTS = 3.4e6

#: Bytes per (union point, nuclide) index entry.
UNION_INDEX_ENTRY_BYTES = 8

_MODEL_NUCLIDES = {"hm-small": 43, "hm-large": 329}


def library_nuclides(model: str) -> int:
    """Total library nuclides for a model (fuel + cladding + water)."""
    try:
        return _MODEL_NUCLIDES[model]
    except KeyError:
        raise MachineModelError(f"unknown model {model!r}") from None


def particle_record_bytes(model: str) -> int:
    """Modelled bytes per banked particle (Table II layout)."""
    n = library_nuclides(model)
    return PARTICLE_BASE_BYTES + PARTICLE_PER_NUCLIDE_BYTES * n


def bank_bytes(n_particles: int, model: str) -> float:
    """Modelled size of a banked particle population."""
    return float(n_particles) * particle_record_bytes(model)


def energy_grid_bytes(model: str) -> float:
    """Modelled size of the unionized energy grid + index matrix."""
    n = library_nuclides(model)
    return PAPER_UNION_POINTS * (8.0 + UNION_INDEX_ENTRY_BYTES * n)


#: Resident bytes per source/fission site (position, direction, energy,
#: id, weight) times the number of site banks alive at once (source bank,
#: fission bank, sampling scratch).
RESIDENT_SITE_BYTES = 200
SITE_BANKS = 3


def resident_grid_bytes(model: str) -> float:
    """Resident footprint of the unionized grid on a device.

    Smaller than the *transferred* footprint of Table II
    (:func:`energy_grid_bytes`): resident index entries are int32 and the
    pointwise tables are shared read-only, while the offload path ships the
    full 8-byte-entry structure.  This split is what lets the paper run
    H.M. Large on the 8 GB SE10P even though Table II ships 8.37 GB.
    """
    n = library_nuclides(model)
    return PAPER_UNION_POINTS * (8.0 + 4.0 * n)


def max_particles(device: DeviceSpec, model: str) -> int:
    """Largest particle population that fits on a device (Fig. 5 limits).

    History-mode residency: grid + per-particle *site* storage (only
    in-flight particles carry the full Table II record).  Reproduces the
    paper's out-of-memory brackets: 1e7-1e8 on the 64 GB host and 16 GB
    MIC, 1e6-1e7 on the 8 GB SE10P.
    """
    reserve = 1.5e9  # OS + runtime + code + geometry
    available = device.mem_bytes - resident_grid_bytes(model) - reserve
    if available <= 0:
        return 0
    return int(available // (RESIDENT_SITE_BYTES * SITE_BANKS))
