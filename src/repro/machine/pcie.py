"""Transfer-link model for the offload execution path.

Offload costs in the paper (Table II, Fig. 3) are latency + bandwidth
amortization: each offload pays a fixed launch/latency cost plus bytes over
an effective bandwidth.  Two bandwidths are distinguished, as the paper's
measurements imply: the per-iteration *bank* path (particle records through
the offload runtime, ~1.3 GB/s effective) and the *bulk* initialization path
for the persistent energy grid ("approximately 1 second for every 5 GB").

The same latency + two-bandwidth shape covers the GPU-era links
(PCIe Gen4, NVLink, Xe Link): only the constants change, so the fleet
presets in :mod:`repro.machine.presets` reuse :class:`PCIeLink` with a
``name`` for registry lookup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError

__all__ = ["PCIeLink"]


@dataclass(frozen=True)
class PCIeLink:
    """An offload link with latency and two effective bandwidths."""

    latency_s: float
    bank_bandwidth_gbps: float
    bulk_bandwidth_gbps: float
    #: Registry name (``""`` for anonymous links built in tests).
    name: str = ""

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise MachineModelError("negative PCIe latency")
        if self.bank_bandwidth_gbps <= 0 or self.bulk_bandwidth_gbps <= 0:
            raise MachineModelError("non-positive PCIe bandwidth")

    def bank_transfer_time(self, nbytes: float) -> float:
        """Seconds to ship a particle bank (per offload iteration)."""
        return self.latency_s + nbytes / (self.bank_bandwidth_gbps * 1.0e9)

    def bulk_transfer_time(self, nbytes: float) -> float:
        """Seconds to ship bulk initialization data (energy grid);
        paid once and amortized over batches."""
        return self.latency_s + nbytes / (self.bulk_bandwidth_gbps * 1.0e9)
