"""Calibrated cost models for the paper's kernels and full transport.

This module turns *measured* algorithmic work (from
:class:`repro.work.WorkCounters`) into *modelled* device time for the JLSE
and Stampede machines.  Three kernel families cover every experiment:

* **cross-section lookups** — history mode is latency-serialized (dependent
  gathers through derived types per nuclide per particle); banked mode is
  bandwidth-bound (SoA streams + hardware gathers over the whole bank);
* **distance sampling** — Table I's three implementations: a scalar
  per-call path and two stream-bound vector paths;
* **full transport** — per-particle time assembled from lookup, tracking,
  and collision terms, times thread occupancy.

Calibration anchors (values the constants were solved against, all from the
paper): Table III's 4,050 / 6,641 n/s (host / MIC, H.M. Large, 1e5
particles), Fig. 2's ~10x banked-MIC vs history-CPU lookup ratio, Table I's
six timings, and Fig. 6's Stampede alpha = 0.42.  Everything else the model
produces (Figs. 3-7 shapes, crossovers, scaling tails) is *prediction*, not
fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError
from ..work import WorkCounters
from .occupancy import batch_overhead_s, occupancy_factor
from .roofline import KernelProfile, kernel_time
from .spec import DeviceSpec

__all__ = [
    "history_nuclide_seconds",
    "lookup_time_history",
    "lookup_time_banked",
    "lookup_rate",
    "distance_sampling_time",
    "WorkPerParticle",
    "TransportCostModel",
]

# ---------------------------------------------------------------------------
# Cross-section lookups
# ---------------------------------------------------------------------------

#: Dependent cache misses per nuclide per history-mode lookup (grid-point
#: pair + derived-type header).
_MISSES_PER_NUCLIDE = 2.0

#: DRAM access latency [s].  GPUs see full HBM latency (~400 cycles) on
#: every dependent gather — latency hiding comes from warp occupancy, not
#: from the cache hierarchy.
_MISS_LATENCY = {"ooo": 90.0e-9, "in_order": 300.0e-9, "gpu": 350.0e-9}

#: Effective memory-level parallelism per thread in the history-mode nuclide
#: loop (OoO cores overlap a little; in-order cores rely on SMT, already
#: reflected in running 4 threads/core).  Calibrated against Fig. 2's ~10x
#: and Table III's host rate.  The GPU value is per resident *warp*:
#: coalesced 32-lane gathers retire multiple outstanding lines per warp.
_HISTORY_MLP = {"ooo": 0.72, "in_order": 0.55, "gpu": 2.4}

#: Banked-mode lookup profile per (particle, nuclide) iteration: ~10 flops
#: of interpolation against ~80 gathered bytes, >90% vectorized.
_BANKED_FLOPS_PER_NUCLIDE = 10.0
_BANKED_BYTES_PER_NUCLIDE = 80.0


def history_nuclide_seconds(device: DeviceSpec) -> float:
    """Per-thread seconds per (particle, nuclide) history-mode iteration."""
    key = device.class_key
    mlp = device.history_mlp if device.history_mlp is not None else _HISTORY_MLP[key]
    return _MISSES_PER_NUCLIDE * _MISS_LATENCY[key] / mlp


def lookup_time_history(
    device: DeviceSpec, n_lookups: float, n_nuclides: int
) -> float:
    """Device time [s] for history-mode lookups (latency-serialized per
    thread, all hardware threads busy)."""
    per_thread = n_lookups / device.threads
    return per_thread * n_nuclides * history_nuclide_seconds(device)


def lookup_time_banked(
    device: DeviceSpec, n_lookups: float, n_nuclides: int
) -> float:
    """Device time [s] for banked lookups (roofline: stream+gather bound)."""
    profile = KernelProfile(
        name="banked-lookup",
        flops_per_item=_BANKED_FLOPS_PER_NUCLIDE,
        bytes_per_item=_BANKED_BYTES_PER_NUCLIDE,
        vector_fraction=0.92,
        gather_fraction=0.70,
    )
    return kernel_time(device, profile, n_lookups * n_nuclides)


def lookup_rate(
    device: DeviceSpec, mode: str, n_nuclides: int, n_lookups: float = 1.0e6
) -> float:
    """Lookups per second for Fig. 2-style comparisons."""
    if mode == "history":
        t = lookup_time_history(device, n_lookups, n_nuclides)
    elif mode == "banked":
        t = lookup_time_banked(device, n_lookups, n_nuclides)
    else:
        raise MachineModelError(f"unknown lookup mode {mode!r}")
    return n_lookups / t


# ---------------------------------------------------------------------------
# Distance sampling (Table I)
# ---------------------------------------------------------------------------

#: Naive per-sample per-thread seconds: library RNG call + scalar log/div.
#: Calibrated to Table I (CPU: 412 s, MIC: 8,243 s at 1e11 samples).  The
#: GPU figure is per resident warp on a divergent scalar path (SIMT pays
#: the MIC's in-order penalty lane-serialized).
_NAIVE_SAMPLE_SECONDS = {"ooo": 132.0e-9, "in_order": 10.06e-6, "gpu": 2.4e-6}

#: Streamed bytes per sample for the vector implementations (R read + X
#: read + D write, float32 as in Algorithm 4).
_STREAM_BYTES = {"optimized1": 24.0, "optimized2": 21.0}

#: Fraction of STREAM bandwidth the vector loops achieve (optimized2's
#: tuned prefetch buys the bump).
_STREAM_EFFICIENCY = {
    ("ooo", "optimized1"): 0.58,
    ("ooo", "optimized2"): 0.56,
    ("in_order", "optimized1"): 0.645,
    ("in_order", "optimized2"): 0.625,
    # HBM sustains a high fraction of peak on coalesced unit-stride streams.
    ("gpu", "optimized1"): 0.80,
    ("gpu", "optimized2"): 0.78,
}


def distance_sampling_time(
    device: DeviceSpec,
    impl: str,
    n: float = 1.0e7,
    iters: float = 1.0e4,
    threads: int | None = None,
) -> float:
    """Modelled seconds for the Table I micro-benchmark.

    ``threads`` defaults to the paper's configurations (32 on the host,
    122 on the MIC) when left unset and the device matches those classes.
    """
    key = device.class_key
    samples = n * iters
    if impl == "naive":
        if threads is None:
            if key == "gpu":
                threads = device.threads
            else:
                threads = 32 if device.out_of_order else 122
        return samples * _NAIVE_SAMPLE_SECONDS[key] / threads
    if impl in ("optimized1", "optimized2"):
        bw = device.dram_bw_gbps * 1.0e9 * _STREAM_EFFICIENCY[(key, impl)]
        return samples * _STREAM_BYTES[impl] / bw
    raise MachineModelError(f"unknown distance implementation {impl!r}")


# ---------------------------------------------------------------------------
# Full transport
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkPerParticle:
    """Average algorithmic work per particle history.

    Measured by the executable transport loops; the reference values are a
    measurement of the full-core H.M. model with this package's own
    simulator (vacuum-bounded core, full physics).
    """

    lookups: float
    flights: float
    collisions: float

    @classmethod
    def from_counters(cls, counters: WorkCounters, n_particles: int) -> "WorkPerParticle":
        return cls(
            lookups=counters.lookups / n_particles,
            flights=counters.flights / n_particles,
            collisions=counters.collisions / n_particles,
        )

    @classmethod
    def hm_reference(cls) -> "WorkPerParticle":
        """Reference H.M. full-core work (measured with this package:
        ~60 segments per history, ~17 collisions)."""
        return cls(lookups=60.0, flights=60.0, collisions=17.0)


#: Per-flight tracking cost [cycles] per thread: geometry distance search
#: across the nested lattice, movement, RNG, tally scoring (scalar-heavy,
#: branchy).  Cycle counts calibrated with the lookup constants against
#: Table III's anchor rates; converting through each device's clock also
#: captures the Stampede host's slower cores.
#: GPU cycle counts are per resident *warp*: the branchy geometry walk
#: runs lane-divergent (each warp is effectively serialized to its worst
#: lane), so one warp-flight costs far more cycles than one OoO-core
#: flight — throughput comes from thousands of resident warps.
_FLIGHT_CYCLES = {"ooo": 142_800.0, "in_order": 260_000.0, "gpu": 600_000.0}

#: Per-collision physics cost [cycles] per thread (channel/nuclide
#: sampling, kinematics, S(a,b)/URR branches).
_COLLISION_CYCLES = {"ooo": 85_000.0, "in_order": 178_000.0, "gpu": 400_000.0}


def _flight_seconds(device: DeviceSpec) -> float:
    return _FLIGHT_CYCLES[device.class_key] / (device.clock_ghz * 1.0e9)


def _collision_seconds(device: DeviceSpec) -> float:
    return _COLLISION_CYCLES[device.class_key] / (device.clock_ghz * 1.0e9)


@dataclass(frozen=True)
class TransportCostModel:
    """Modelled full-transport performance of a device.

    ``mode`` is ``"history"`` (the paper's native/symmetric runs) or
    ``"banked"`` (the projected fully event-based implementation).
    """

    device: DeviceSpec
    n_nuclides: int
    work: WorkPerParticle
    mode: str = "history"

    def __post_init__(self) -> None:
        if self.mode not in ("history", "banked"):
            raise MachineModelError(f"unknown transport mode {self.mode!r}")

    def _lookup_seconds(self) -> float:
        if self.mode == "history":
            return lookup_time_history(
                self.device, self.work.lookups, self.n_nuclides
            )
        return lookup_time_banked(self.device, self.work.lookups, self.n_nuclides)

    def particle_seconds(self) -> float:
        """Device-seconds per particle at full occupancy (asymptotic)."""
        t_lookup = self._lookup_seconds()
        t_track = self.work.flights * _flight_seconds(self.device) / self.device.threads
        t_coll = (
            self.work.collisions
            * _collision_seconds(self.device)
            / self.device.threads
        )
        return t_lookup + t_track + t_coll

    def lookup_fraction(self) -> float:
        """Share of particle time spent in cross-section lookups (Fig. 4's
        headline observation that the top routines are all XS lookups)."""
        return self._lookup_seconds() / self.particle_seconds()

    def batch_time(self, n_particles: int) -> float:
        """Seconds to transport one batch of ``n_particles``."""
        if n_particles <= 0:
            return batch_overhead_s(self.device)
        asymptotic = n_particles * self.particle_seconds()
        occ = occupancy_factor(self.device, n_particles)
        return asymptotic / max(occ, 1e-12) + batch_overhead_s(self.device)

    def calculation_rate(self, n_particles: int) -> float:
        """Neutrons per second at a given batch size (Fig. 5 / Table III)."""
        t = self.batch_time(n_particles)
        return n_particles / t if t > 0 else 0.0
