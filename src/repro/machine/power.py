"""Energy-to-solution model (paper §V: RAPL / micsmc / micpower).

The paper's final future-work item: compare host and coprocessor *energy*
performance, trading time-to-solution against energy expenditure.  This
module implements that analysis over the calibrated transport cost model:
a two-term device power model (idle + utilization-scaled dynamic power,
the structure RAPL-style measurements expose) integrated over the modelled
batch time.

Public TDP/idle figures for the paper's parts:

* Xeon E5-2687W: 150 W TDP per socket (2 sockets), ~60 W idle/socket;
* Xeon E5-2680: 130 W TDP per socket;
* Xeon Phi 7120a: 300 W TDP, ~100 W idle;
* Xeon Phi SE10P: 300 W TDP.

The paper's expectation — "host-attached devices ... show excellent
performance per watt" — holds at high occupancy and *inverts* at low
particle counts, where the MIC burns near-idle power without delivering
rate; :func:`energy_per_particle` exposes exactly that crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError
from .kernels import TransportCostModel, WorkPerParticle
from .memory import library_nuclides
from .occupancy import occupancy_factor
from .spec import DeviceSpec

__all__ = ["PowerModel", "POWER_MODELS", "energy_per_particle", "power_model_for"]


@dataclass(frozen=True)
class PowerModel:
    """Idle + dynamic power for one device [W]."""

    device_name: str
    idle_w: float
    max_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.max_w <= self.idle_w:
            raise MachineModelError(
                f"{self.device_name}: need 0 <= idle < max power"
            )

    def draw_w(self, utilization: float) -> float:
        """Instantaneous draw at a utilization in [0, 1]."""
        if not 0.0 <= utilization <= 1.0 + 1e-12:
            raise MachineModelError("utilization must be in [0, 1]")
        return self.idle_w + (self.max_w - self.idle_w) * min(utilization, 1.0)

    def energy_j(self, seconds: float, utilization: float) -> float:
        """Joules over an interval at constant utilization."""
        return self.draw_w(utilization) * seconds


#: Calibrated power models keyed by device preset name.
POWER_MODELS: dict[str, PowerModel] = {
    "jlse-host-2xE5-2687W": PowerModel("jlse-host-2xE5-2687W", 120.0, 320.0),
    "stampede-host-2xE5-2680": PowerModel(
        "stampede-host-2xE5-2680", 105.0, 280.0
    ),
    "xeon-phi-7120a": PowerModel("xeon-phi-7120a", 100.0, 300.0),
    "xeon-phi-SE10P": PowerModel("xeon-phi-SE10P", 95.0, 290.0),
}


def power_model_for(device: DeviceSpec) -> PowerModel:
    try:
        return POWER_MODELS[device.name]
    except KeyError:
        raise MachineModelError(
            f"no power model for device {device.name!r}"
        ) from None


def energy_per_particle(
    device: DeviceSpec,
    model: str,
    n_particles: int,
    work: WorkPerParticle | None = None,
) -> float:
    """Joules per simulated neutron at a given batch size.

    Batch energy = device draw (at the occupancy-implied utilization)
    integrated over the modelled batch time, divided by the particle count.
    """
    if n_particles < 1:
        raise MachineModelError("need at least one particle")
    cost = TransportCostModel(
        device, library_nuclides(model), work or WorkPerParticle.hm_reference()
    )
    t = cost.batch_time(n_particles)
    util = occupancy_factor(device, n_particles)
    pm = power_model_for(device)
    return pm.energy_j(t, util) / n_particles
