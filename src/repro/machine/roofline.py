"""Generic roofline helpers: kernel profiles and time estimates.

A kernel is characterized by its per-item arithmetic, memory traffic, how
much of it vectorizes, and how gather-heavy its memory access is.  Time on a
device is the max of the compute estimate (Amdahl split between vector and
scalar pipes) and the memory estimate (effective bandwidth degraded by
gathers) — the standard roofline argument the paper's kernels live on:
cross-section lookups sit on the memory/latency side, distance sampling on
the vector-compute/stream side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MachineModelError
from .spec import DeviceSpec

__all__ = ["KernelProfile", "compute_time", "memory_time", "kernel_time"]


@dataclass(frozen=True)
class KernelProfile:
    """Per-item cost characterization of a kernel."""

    name: str
    flops_per_item: float
    bytes_per_item: float
    vector_fraction: float
    gather_fraction: float = 0.0
    precision: str = "f64"

    def __post_init__(self) -> None:
        if not 0.0 <= self.vector_fraction <= 1.0:
            raise MachineModelError("vector_fraction must be in [0, 1]")
        if not 0.0 <= self.gather_fraction <= 1.0:
            raise MachineModelError("gather_fraction must be in [0, 1]")
        if self.flops_per_item < 0 or self.bytes_per_item < 0:
            raise MachineModelError("negative work per item")


def compute_time(device: DeviceSpec, profile: KernelProfile, n_items: float) -> float:
    """Arithmetic-pipe time [s]: Amdahl split between vector and scalar."""
    flops = n_items * profile.flops_per_item
    vec = profile.vector_fraction
    t_vec = flops * vec / device.peak_vector_flops(profile.precision)
    t_scalar = flops * (1.0 - vec) / device.peak_scalar_ops()
    return t_vec + t_scalar


def memory_time(device: DeviceSpec, profile: KernelProfile, n_items: float) -> float:
    """Memory-pipe time [s] at gather-degraded effective bandwidth."""
    bytes_total = n_items * profile.bytes_per_item
    return bytes_total / device.effective_bandwidth(profile.gather_fraction)


def kernel_time(device: DeviceSpec, profile: KernelProfile, n_items: float) -> float:
    """Roofline estimate: the slower of the two pipes wins."""
    return max(
        compute_time(device, profile, n_items),
        memory_time(device, profile, n_items),
    )
