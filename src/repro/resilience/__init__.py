"""Checkpoint/restart and fault-tolerant recovery for long eigenvalue runs.

The paper's calculation-rate figures assume every generation runs to
completion; production runs do not get that luxury.  This package closes the
operational gap in three layers:

* :mod:`repro.resilience.checkpoint` — versioned, integrity-hashed on-disk
  snapshots of full simulation state, written atomically between batches;
* :mod:`repro.resilience.faults` — a deterministic (seeded) fault-injection
  plan: rank crashes, PCIe transfer stalls, and mid-batch kills;
* :mod:`repro.resilience.recovery` — retry/backoff policies and the
  rank-failure recovery path that redistributes a dead rank's particle
  slice across survivors.

The load-bearing invariant is **bit-identical resume**: because every
particle's RNG stream is keyed by its *global* id
(:mod:`repro.rng.lcg`), and tallies are additive, a run that crashes and
resumes from its latest checkpoint — or loses a rank and redistributes its
slice — produces exactly the batch k-estimates, tallies, and entropy trace
of an uninterrupted run.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    DEFAULT_CADENCE,
    CheckpointState,
    checkpoint_path,
    latest_checkpoint,
    load_checkpoint,
    save_checkpoint,
    settings_fingerprint,
)
from .faults import FaultEvent, FaultKind, FaultPlan, SimulatedCrash
from .recovery import RetryPolicy, redistribute_slice, with_retry

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_CADENCE",
    "CheckpointState",
    "checkpoint_path",
    "latest_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "settings_fingerprint",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SimulatedCrash",
    "RetryPolicy",
    "redistribute_slice",
    "with_retry",
]
