"""Deterministic fault injection: seeded schedules of crashes and stalls.

Resilience code that is only exercised by real failures is untested code.
This module generates a **deterministic fault plan** from a seed — using the
same 63-bit LCG as particle transport, so schedules are reproducible across
platforms and NumPy versions — and the execution layers consult it:

* ``RANK_CRASH`` — a rank dies mid-generation in
  :class:`repro.cluster.distributed.DistributedSimulation`; its batch work
  is lost and its particle slice must be re-run by survivors;
* ``TRANSFER_STALL`` — a PCIe bank shipment in
  :class:`repro.execution.offload.OffloadCostModel` hangs for ``magnitude``
  seconds before the retry policy aborts and re-ships it;
* ``MID_BATCH_KILL`` — the whole (serial) process dies after transporting a
  generation but before recording it, the worst case for checkpoint/restart
  (a full batch of work is lost).

Injected faults are raised as :class:`SimulatedCrash` so tests can treat
them exactly like a process kill: nothing downstream of the raise runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import FaultInjectionError, ReproError
from ..rng.lcg import RandomStream

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "SimulatedCrash"]


class SimulatedCrash(ReproError):
    """An injected failure: treat as a process/rank death, not a bug."""


class FaultKind(enum.Enum):
    """The failure modes the plan can schedule."""

    RANK_CRASH = "rank_crash"
    TRANSFER_STALL = "transfer_stall"
    MID_BATCH_KILL = "mid_batch_kill"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled failure.

    ``batch`` indexes the generation (or offload iteration for stalls);
    ``rank`` is the victim rank for crashes (-1 for serial/global events);
    ``magnitude`` is the stall duration in seconds for transfer stalls.
    """

    kind: FaultKind
    batch: int
    rank: int = -1
    magnitude: float = 0.0


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, queryable schedule of fault events."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    @classmethod
    def generate(
        cls,
        seed: int,
        n_batches: int,
        n_ranks: int = 1,
        p_rank_crash: float = 0.0,
        p_transfer_stall: float = 0.0,
        p_mid_batch_kill: float = 0.0,
        stall_seconds: float = 0.25,
    ) -> "FaultPlan":
        """Sample a schedule: fixed seed, fixed schedule, any platform.

        Each batch independently draws each fault type from the shared LCG
        (so the schedule is a pure function of ``seed`` and the shape
        arguments).  At most one rank crashes per batch, and the victim is
        drawn uniformly from the ranks.
        """
        for name, p in (
            ("p_rank_crash", p_rank_crash),
            ("p_transfer_stall", p_transfer_stall),
            ("p_mid_batch_kill", p_mid_batch_kill),
        ):
            if not 0.0 <= p <= 1.0:
                raise FaultInjectionError(f"{name} must be in [0, 1], got {p}")
        if n_batches < 0 or n_ranks < 1:
            raise FaultInjectionError("need n_batches >= 0 and n_ranks >= 1")
        stream = RandomStream(seed=seed)
        events: list[FaultEvent] = []
        for batch in range(n_batches):
            if stream.prn() < p_rank_crash:
                victim = int(stream.prn() * n_ranks)
                events.append(
                    FaultEvent(FaultKind.RANK_CRASH, batch, rank=victim)
                )
            if stream.prn() < p_transfer_stall:
                events.append(
                    FaultEvent(
                        FaultKind.TRANSFER_STALL,
                        batch,
                        magnitude=stall_seconds * (0.5 + stream.prn()),
                    )
                )
            if stream.prn() < p_mid_batch_kill:
                events.append(FaultEvent(FaultKind.MID_BATCH_KILL, batch))
        return cls(events=tuple(events))

    @classmethod
    def single(
        cls, kind: FaultKind, batch: int, rank: int = -1, magnitude: float = 0.0
    ) -> "FaultPlan":
        """A plan with exactly one event (the common test fixture)."""
        return cls(events=(FaultEvent(kind, batch, rank, magnitude),))

    # -- Queries -----------------------------------------------------------------

    def at(self, batch: int, kind: FaultKind | None = None) -> list[FaultEvent]:
        return [
            e
            for e in self.events
            if e.batch == batch and (kind is None or e.kind == kind)
        ]

    def kills_at(self, batch: int) -> bool:
        """Does the serial process die mid-way through this batch?"""
        return bool(self.at(batch, FaultKind.MID_BATCH_KILL))

    def crashed_rank(self, batch: int) -> int | None:
        """The rank that dies during this batch, or ``None``."""
        crashes = self.at(batch, FaultKind.RANK_CRASH)
        return crashes[0].rank if crashes else None

    def stall_seconds(self, iteration: int) -> float:
        """Total injected PCIe stall time for one offload iteration."""
        return sum(
            e.magnitude for e in self.at(iteration, FaultKind.TRANSFER_STALL)
        )
