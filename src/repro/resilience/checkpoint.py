"""Versioned, integrity-hashed checkpoints of full simulation state.

A checkpoint captures everything the power-iteration driver needs to
continue a run as if it had never stopped: the batch index, the next
generation's source sites, the per-batch estimator and entropy traces, the
source-resampling RNG state, the work counters, the (optional) power-tally
accumulators, and the profiling segment so far.  Per-particle transport RNG
needs **no** state here at all — streams are re-derived from global particle
ids (:mod:`repro.rng.lcg`), which is what makes bit-identical resume cheap.

On-disk format (one file per checkpoint)::

    MAGIC (8 bytes)  "RPRCKPT" + format byte
    meta length (8 bytes, little-endian)
    meta JSON        (version, batch index, RNG state, counters, fingerprint)
    payload          (NumPy .npz archive of the array state)
    SHA-256 digest   (32 bytes, over every preceding byte)

Writes go to a temporary file in the target directory followed by
``os.replace`` — a crash mid-write can never corrupt the latest good
checkpoint, and :func:`latest_checkpoint` never sees partial files.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from io import BytesIO
from pathlib import Path

import numpy as np

from ..errors import CheckpointError

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_CADENCE",
    "CheckpointState",
    "settings_fingerprint",
    "checkpoint_path",
    "latest_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
]

#: Format version; bumped on any incompatible change to meta or payload.
CHECKPOINT_VERSION = 1

#: Default checkpoint cadence (batches between writes) used by the CLI and
#: benchmarks; chosen so write overhead stays well under 5% of batch time.
DEFAULT_CADENCE = 5

_MAGIC = b"RPRCKPT\x01"
_DIGEST_BYTES = 32
_SUFFIX = ".rpk"

#: Settings fields that do not affect the physics trajectory and are
#: therefore excluded from the compatibility fingerprint (a run checkpointed
#: with a different cadence is still bit-identical to one without).
_NON_PHYSICS_FIELDS = frozenset({"checkpoint_every", "checkpoint_dir"})


def settings_fingerprint(settings) -> str:
    """SHA-256 over the physics-relevant fields of a ``Settings`` dataclass.

    Resuming under a different fingerprint would silently break the
    bit-identical guarantee, so :func:`load_checkpoint` can enforce a match.
    """
    import dataclasses

    items = {
        f.name: getattr(settings, f.name)
        for f in dataclasses.fields(settings)
        if f.name not in _NON_PHYSICS_FIELDS
    }
    blob = json.dumps(items, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CheckpointState:
    """Full between-batch simulation state (the payload of one checkpoint)."""

    #: Number of batches fully recorded before this snapshot.
    batches_done: int
    #: Global particle-id offset for the next generation (RNG keying).
    id_offset: int
    n_inactive: int
    #: Compatibility fingerprint of the run's settings.
    fingerprint: str
    #: Next generation's source sites.
    positions: np.ndarray
    energies: np.ndarray
    #: Per-batch estimator and entropy traces so far.
    k_collision: list[float] = field(default_factory=list)
    k_absorption: list[float] = field(default_factory=list)
    k_track: list[float] = field(default_factory=list)
    entropy: list[float] = field(default_factory=list)
    #: ``np.random.Generator`` bit-generator state for source resampling.
    source_rng_state: dict = field(default_factory=dict)
    #: Work-counter values at the snapshot (restored so resumed totals match).
    counters: dict = field(default_factory=dict)
    #: Wall seconds consumed by the pre-crash segment(s).
    elapsed_seconds: float = 0.0
    #: Serialized :class:`repro.profiling.timers.Profile` of prior segments.
    profile_json: str | None = None
    #: Power-tally accumulators (``None`` when the tally is off).
    power: dict | None = None
    version: int = CHECKPOINT_VERSION


def checkpoint_path(directory: str | Path, batches_done: int) -> Path:
    """Canonical file name for a snapshot taken after ``batches_done``."""
    return Path(directory) / f"ckpt-{batches_done:06d}{_SUFFIX}"


def latest_checkpoint(directory: str | Path) -> Path | None:
    """The highest-batch checkpoint in ``directory``, or ``None``."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    found = sorted(directory.glob(f"ckpt-*{_SUFFIX}"))
    return found[-1] if found else None


def _pack(state: CheckpointState) -> bytes:
    arrays: dict[str, np.ndarray] = {
        "positions": np.asarray(state.positions, dtype=np.float64),
        "energies": np.asarray(state.energies, dtype=np.float64),
        "k_collision": np.asarray(state.k_collision, dtype=np.float64),
        "k_absorption": np.asarray(state.k_absorption, dtype=np.float64),
        "k_track": np.asarray(state.k_track, dtype=np.float64),
        "entropy": np.asarray(state.entropy, dtype=np.float64),
    }
    meta = {
        "version": state.version,
        "batches_done": state.batches_done,
        "id_offset": state.id_offset,
        "n_inactive": state.n_inactive,
        "fingerprint": state.fingerprint,
        "source_rng_state": state.source_rng_state,
        "counters": state.counters,
        "elapsed_seconds": state.elapsed_seconds,
        "profile_json": state.profile_json,
        "power": None,
    }
    if state.power is not None:
        arrays["power_sum"] = np.asarray(state.power["sum"], dtype=np.float64)
        arrays["power_sum_sq"] = np.asarray(
            state.power["sum_sq"], dtype=np.float64
        )
        meta["power"] = {
            "shape": list(state.power["shape"]),
            "half_width": state.power["half_width"],
            "n_batches": state.power["n_batches"],
        }
    buf = BytesIO()
    np.savez(buf, **arrays)
    payload = buf.getvalue()
    meta_bytes = json.dumps(meta, sort_keys=True).encode()
    blob = _MAGIC + struct.pack("<Q", len(meta_bytes)) + meta_bytes + payload
    return blob + hashlib.sha256(blob).digest()


def save_checkpoint(
    state: CheckpointState, path: str | Path, timers=None
) -> Path:
    """Atomically write ``state`` to ``path`` (write temp, fsync, rename).

    ``timers`` may be a :class:`repro.profiling.timers.TimerRegistry`; the
    write is then recorded under the ``checkpoint_write`` routine.
    """
    from contextlib import nullcontext

    path = Path(path)
    ctx = timers.timer("checkpoint_write") if timers is not None else nullcontext()
    with ctx:
        data = _pack(state)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    return path


def load_checkpoint(
    path: str | Path, expect_fingerprint: str | None = None, timers=None
) -> CheckpointState:
    """Read, verify, and unpack a checkpoint.

    Raises :class:`repro.errors.CheckpointError` on a missing file, bad
    magic, truncation, digest mismatch, unsupported version, or (when
    ``expect_fingerprint`` is given) a settings mismatch.
    """
    from contextlib import nullcontext

    path = Path(path)
    ctx = (
        timers.timer("checkpoint_restore") if timers is not None else nullcontext()
    )
    with ctx:
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        min_len = len(_MAGIC) + 8 + _DIGEST_BYTES
        if len(data) < min_len:
            raise CheckpointError(f"checkpoint {path} is truncated")
        if not data.startswith(_MAGIC):
            raise CheckpointError(f"checkpoint {path} has bad magic bytes")
        body, digest = data[:-_DIGEST_BYTES], data[-_DIGEST_BYTES:]
        if hashlib.sha256(body).digest() != digest:
            raise CheckpointError(
                f"checkpoint {path} failed integrity check (corrupt file)"
            )
        (meta_len,) = struct.unpack_from("<Q", body, len(_MAGIC))
        meta_start = len(_MAGIC) + 8
        if meta_start + meta_len > len(body):
            raise CheckpointError(f"checkpoint {path} is truncated")
        try:
            meta = json.loads(body[meta_start : meta_start + meta_len])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {path} has unparseable metadata"
            ) from exc
        if meta.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has version {meta.get('version')!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        if (
            expect_fingerprint is not None
            and meta["fingerprint"] != expect_fingerprint
        ):
            raise CheckpointError(
                "checkpoint was written under different settings "
                f"(fingerprint {meta['fingerprint'][:12]}... != "
                f"{expect_fingerprint[:12]}...); bit-identical resume "
                "requires identical physics settings"
            )
        with np.load(BytesIO(body[meta_start + meta_len :])) as npz:
            arrays = {k: npz[k] for k in npz.files}

    power = None
    if meta["power"] is not None:
        power = {
            "shape": tuple(meta["power"]["shape"]),
            "half_width": meta["power"]["half_width"],
            "n_batches": meta["power"]["n_batches"],
            "sum": arrays["power_sum"],
            "sum_sq": arrays["power_sum_sq"],
        }
    return CheckpointState(
        batches_done=meta["batches_done"],
        id_offset=meta["id_offset"],
        n_inactive=meta["n_inactive"],
        fingerprint=meta["fingerprint"],
        positions=arrays["positions"],
        energies=arrays["energies"],
        k_collision=[float(v) for v in arrays["k_collision"]],
        k_absorption=[float(v) for v in arrays["k_absorption"]],
        k_track=[float(v) for v in arrays["k_track"]],
        entropy=[float(v) for v in arrays["entropy"]],
        source_rng_state=meta["source_rng_state"],
        counters=meta["counters"],
        elapsed_seconds=meta["elapsed_seconds"],
        profile_json=meta["profile_json"],
        power=power,
        version=meta["version"],
    )
