"""Recovery policies: retry/backoff and rank-failure slice redistribution.

Two recovery shapes cover the injected fault modes:

* **retry with exponential backoff** (:class:`RetryPolicy`,
  :func:`with_retry`) for transient faults — a stalled PCIe shipment is
  aborted at the policy's stall timeout and re-issued after a
  deterministic backoff delay;
* **slice redistribution** (:func:`redistribute_slice`) for permanent rank
  loss — the dead rank's *global particle-id range* is split contiguously
  across survivors and re-run.  Because every particle's RNG stream is a
  function of its global id alone, the recovered histories are the exact
  histories the dead rank would have produced, and the recovered run stays
  bit-identical to the serial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import ClusterError, ReproError

__all__ = ["RetryPolicy", "with_retry", "redistribute_slice"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff (no jitter — runs must replay)."""

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff_factor: float = 2.0
    #: How long a transfer may hang before the runtime aborts and retries.
    stall_timeout_s: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("RetryPolicy needs max_attempts >= 1")
        if self.base_delay_s < 0 or self.backoff_factor < 1.0:
            raise ReproError(
                "RetryPolicy needs base_delay_s >= 0 and backoff_factor >= 1"
            )

    def delay_s(self, attempt: int) -> float:
        """Backoff delay before retry number ``attempt`` (1-based)."""
        return self.base_delay_s * self.backoff_factor ** (attempt - 1)

    def total_backoff_s(self, n_retries: int) -> float:
        """Sum of the first ``n_retries`` backoff delays."""
        return sum(self.delay_s(a) for a in range(1, n_retries + 1))


def with_retry(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    retry_on: tuple[type[BaseException], ...] = (ReproError,),
) -> tuple[T, int]:
    """Call ``fn(attempt)`` until it succeeds or attempts are exhausted.

    Returns ``(result, attempts_used)``.  Backoff is *accounted*, not slept
    — callers charge :meth:`RetryPolicy.total_backoff_s` to their modelled
    clock, keeping tests fast and replays deterministic.
    """
    last: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(attempt), attempt
        except retry_on as exc:  # noqa: PERF203 — retry loop by design
            last = exc
    raise ReproError(
        f"operation failed after {policy.max_attempts} attempts: {last}"
    ) from last


def redistribute_slice(
    dead: slice, survivors: list[int], weights: "list[float] | None" = None
) -> list[tuple[int, slice]]:
    """Split a released particle slice contiguously across survivors.

    Returns ``(survivor_rank, sub_slice)`` pairs in ascending particle-id
    order, covering ``dead`` exactly once.  With ``weights=None`` (the
    rank-loss recovery path) the split is even, survivors earlier in the
    list receiving the remainder particles — the same static split the
    initial decomposition uses.  With ``weights`` (one non-negative rate
    weight per survivor — the work-stealing rebalance path) the split is
    proportional by largest remainder: floors first, then one extra
    particle per largest fractional part (ties to the earlier survivor);
    zero-weight survivors receive nothing.

    Because every particle's RNG stream is a function of its global id
    alone, either split re-runs the exact histories the releasing rank
    would have produced.
    """
    if not survivors:
        raise ClusterError("no surviving ranks to redistribute onto")
    n = dead.stop - dead.start
    if n < 0:
        raise ClusterError(f"malformed dead slice {dead}")
    if n == 0:
        return []
    k = len(survivors)
    if weights is None:
        base, rem = divmod(n, k)
        counts = [base + (1 if i < rem else 0) for i in range(k)]
    else:
        if len(weights) != k:
            raise ClusterError(
                f"{len(weights)} weights for {k} survivors"
            )
        if any(w < 0 for w in weights):
            raise ClusterError("negative redistribution weight")
        total = 0.0
        for w in weights:
            total += w
        if total <= 0:
            raise ClusterError("need at least one positive weight")
        shares = [n * w / total for w in weights]
        counts = [int(share) for share in shares]
        leftover = n - sum(counts)
        order = sorted(
            (i for i in range(k) if weights[i] > 0),
            key=lambda i: (-(shares[i] - counts[i]), i),
        )
        for i in order[:leftover]:
            counts[i] += 1
    out: list[tuple[int, slice]] = []
    start = dead.start
    for rank, count in zip(survivors, counts):
        if count == 0:
            continue
        out.append((rank, slice(start, start + count)))
        start += count
    return out
