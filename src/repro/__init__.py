"""repro — reproduction of "A Performance Analysis of SIMD Algorithms for
Monte Carlo Simulations of Nuclear Reactor Cores" (Ozog, Malony & Siegel,
IPDPS Workshops 2015).

The package is layered (see DESIGN.md):

* :mod:`repro.rng`, :mod:`repro.data`, :mod:`repro.geometry` — substrates
  (random numbers, synthetic nuclear data, CSG + Hoogenboom-Martin models);
* :mod:`repro.physics`, :mod:`repro.transport` — the Monte Carlo neutron
  transport core, with bit-equivalent history-based and event-based
  (banked) algorithms;
* :mod:`repro.simd`, :mod:`repro.machine` — the SIMD lane machine and the
  calibrated Xeon Phi / host / PCIe performance models;
* :mod:`repro.execution`, :mod:`repro.cluster` — the offload / native /
  symmetric execution models and distributed scaling;
* :mod:`repro.proxy`, :mod:`repro.experiments` — XSBench/RSBench proxies
  and the per-table/figure experiment harness.

Quickstart::

    from repro import build_library, LibraryConfig, Simulation, Settings
    library = build_library("hm-small", LibraryConfig.tiny())
    result = Simulation(library, Settings(n_particles=500, pincell=True,
                                          mode="event")).run()
    print(result.k_effective)

Every error the package raises derives from :class:`ReproError`, and the
full typed hierarchy is importable from here:

======================== =====================================================
Error                    Raised when
======================== =====================================================
``ReproError``           (base class — catch-all for the package)
``GeometryError``        a particle can't be located / model inconsistent
``DataError``            nuclear-data construction or lookup failed
``PhysicsError``         a physics routine received an unphysical state
``MachineModelError``    the device/cost model was misconfigured
``ExecutionError``       an execution model was misconfigured
``ClusterError``         the simulated cluster was used incorrectly
``CommunicationError``   a collective received malformed buffers
``CheckpointError``      a checkpoint failed to write/read/validate
``FaultInjectionError``  a fault plan was configured inconsistently
``SupervisionError``     the supervision layer was misused
``DeadlineExceededError`` an operation overran its deadline/budget
``DegradedRunError``     eviction would drop below the policy's rank floor
``ServeError``           the simulation service was misused
``JobError``             a job spec/result was malformed
``QueueFullError``       the job queue rejected a submission (backpressure)
``WorkerCrashError``     a worker died with a job in flight
``PoisonedJobError``     a job was quarantined by the circuit breaker
``ScenarioError``        a scenario document failed validation/compilation
``GatewayError``         the gateway tier was configured/used incorrectly
``ShardQuarantinedError`` no routable shard remains (all quarantined)
``SuiteError``           a case-suite document was malformed
``JournalError``         the write-ahead journal is corrupt beyond repair
``CorruptEntryError``    a durable-store entry failed its digest check
``ChaosError``           a chaos schedule/invariant was violated
======================== =====================================================
"""

from .data import LibraryConfig, NuclideLibrary, UnionizedGrid, build_library
from .errors import (
    ChaosError,
    CheckpointError,
    ClusterError,
    CommunicationError,
    CorruptEntryError,
    DataError,
    DeadlineExceededError,
    DegradedRunError,
    ExecutionError,
    FaultInjectionError,
    GatewayError,
    GeometryError,
    JobError,
    JournalError,
    MachineModelError,
    PhysicsError,
    PoisonedJobError,
    QueueFullError,
    ReproError,
    ScenarioError,
    ServeError,
    ShardQuarantinedError,
    SuiteError,
    SupervisionError,
    WorkerCrashError,
)
from .geometry import build_hm_geometry, build_pincell_geometry
from .transport import Settings, Simulation, SimulationResult, TransportContext
from .work import WorkCounters

__version__ = "1.0.0"

__all__ = [
    "LibraryConfig",
    "NuclideLibrary",
    "UnionizedGrid",
    "build_library",
    "build_hm_geometry",
    "build_pincell_geometry",
    "Settings",
    "Simulation",
    "SimulationResult",
    "TransportContext",
    "WorkCounters",
    # Typed error hierarchy (see the table in the module docstring).
    "ReproError",
    "GeometryError",
    "DataError",
    "PhysicsError",
    "MachineModelError",
    "ExecutionError",
    "ClusterError",
    "CommunicationError",
    "CheckpointError",
    "FaultInjectionError",
    "SupervisionError",
    "DeadlineExceededError",
    "DegradedRunError",
    "ServeError",
    "JobError",
    "QueueFullError",
    "WorkerCrashError",
    "PoisonedJobError",
    "ScenarioError",
    "SuiteError",
    "GatewayError",
    "ShardQuarantinedError",
    "JournalError",
    "CorruptEntryError",
    "ChaosError",
    "__version__",
]
