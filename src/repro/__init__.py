"""repro — reproduction of "A Performance Analysis of SIMD Algorithms for
Monte Carlo Simulations of Nuclear Reactor Cores" (Ozog, Malony & Siegel,
IPDPS Workshops 2015).

The package is layered (see DESIGN.md):

* :mod:`repro.rng`, :mod:`repro.data`, :mod:`repro.geometry` — substrates
  (random numbers, synthetic nuclear data, CSG + Hoogenboom-Martin models);
* :mod:`repro.physics`, :mod:`repro.transport` — the Monte Carlo neutron
  transport core, with bit-equivalent history-based and event-based
  (banked) algorithms;
* :mod:`repro.simd`, :mod:`repro.machine` — the SIMD lane machine and the
  calibrated Xeon Phi / host / PCIe performance models;
* :mod:`repro.execution`, :mod:`repro.cluster` — the offload / native /
  symmetric execution models and distributed scaling;
* :mod:`repro.proxy`, :mod:`repro.experiments` — XSBench/RSBench proxies
  and the per-table/figure experiment harness.

Quickstart::

    from repro import build_library, LibraryConfig, Simulation, Settings
    library = build_library("hm-small", LibraryConfig.tiny())
    result = Simulation(library, Settings(n_particles=500, pincell=True,
                                          mode="event")).run()
    print(result.k_effective)
"""

from .data import LibraryConfig, NuclideLibrary, UnionizedGrid, build_library
from .geometry import build_hm_geometry, build_pincell_geometry
from .transport import Settings, Simulation, SimulationResult, TransportContext
from .work import WorkCounters

__version__ = "1.0.0"

__all__ = [
    "LibraryConfig",
    "NuclideLibrary",
    "UnionizedGrid",
    "build_library",
    "build_hm_geometry",
    "build_pincell_geometry",
    "Settings",
    "Simulation",
    "SimulationResult",
    "TransportContext",
    "WorkCounters",
    "__version__",
]
