"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """A particle could not be located, or a model is inconsistent."""


class DataError(ReproError):
    """Nuclear-data construction or lookup failed."""


class PhysicsError(ReproError):
    """A physics routine received an unphysical state."""


class MachineModelError(ReproError):
    """The device/cost model was configured or queried inconsistently."""


class ExecutionError(ReproError):
    """An execution model (offload/native/symmetric) was misconfigured."""


class ClusterError(ReproError):
    """The simulated cluster/communicator was used incorrectly."""


class CommunicationError(ClusterError):
    """A collective received malformed buffers (shape/count/value)."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated."""


class FaultInjectionError(ReproError):
    """A fault-injection plan was configured or queried inconsistently."""


class ServeError(ReproError):
    """The simulation service was configured or used incorrectly."""


class JobError(ServeError):
    """A job specification or result was malformed."""


class QueueFullError(ServeError):
    """The job queue is at capacity; retry after ``retry_after_s`` seconds.

    Backpressure is a *typed* rejection, not a silent drop: callers receive
    an estimate of when capacity should free up (derived from the service's
    recent drain rate) and are expected to resubmit.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class WorkerCrashError(ServeError):
    """A worker process died while a job was in flight."""
