"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """A particle could not be located, or a model is inconsistent."""


class DataError(ReproError):
    """Nuclear-data construction or lookup failed."""


class PhysicsError(ReproError):
    """A physics routine received an unphysical state."""


class MachineModelError(ReproError):
    """The device/cost model was configured or queried inconsistently."""


class ExecutionError(ReproError):
    """An execution model (offload/native/symmetric) was misconfigured."""


class ClusterError(ReproError):
    """The simulated cluster/communicator was used incorrectly."""


class CommunicationError(ClusterError):
    """A collective received malformed buffers (shape/count/value)."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated."""


class FaultInjectionError(ReproError):
    """A fault-injection plan was configured or queried inconsistently."""


class SupervisionError(ReproError):
    """The supervision layer was misconfigured or misused (bad policy
    thresholds, evicting an unknown rank, negative budget spend)."""


class DeadlineExceededError(SupervisionError):
    """An operation overran its deadline or exhausted its time budget.

    Raised by :class:`repro.supervise.Deadline`/:class:`~repro.supervise.
    Budget` and by the layers they wrap: simulated-fabric collectives, PCIe
    bank shipments aborted at the retry policy's stall timeout, and the
    serve drain loop.  ``deadline_s`` is the allowance that was exceeded and
    ``elapsed_s`` the time actually consumed (when known).
    """

    def __init__(
        self,
        message: str,
        *,
        deadline_s: float | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class DegradedRunError(SupervisionError):
    """Graceful degradation hit its floor: evicting one more rank would
    leave fewer survivors than the supervision policy's ``min_ranks``."""


class ServeError(ReproError):
    """The simulation service was configured or used incorrectly."""


class JobError(ServeError):
    """A job specification or result was malformed."""


class QueueFullError(ServeError):
    """The job queue is at capacity; retry after ``retry_after_s`` seconds.

    Backpressure is a *typed* rejection, not a silent drop: callers receive
    an estimate of when capacity should free up (derived from the service's
    recent drain rate) and are expected to resubmit.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class WorkerCrashError(ServeError):
    """A worker process died while a job was in flight."""


class PoisonedJobError(ServeError):
    """A job crashed its worker on every attempt and has been quarantined.

    The circuit breaker trips after ``crashes`` consecutive worker deaths
    with this job in flight; the pool stops respawning workers *for this
    job* (the pool itself stays healthy) and the service records the
    quarantine as a typed failure in the :class:`~repro.serve.jobs.
    JobResult`.
    """

    def __init__(self, message: str, *, job_id: str = "", crashes: int = 0) -> None:
        super().__init__(message)
        self.job_id = job_id
        self.crashes = int(crashes)


class GatewayError(ReproError):
    """The gateway tier was configured or used incorrectly (no routable
    shard, duplicate submission, submitting to a stopped gateway)."""


class JournalError(GatewayError):
    """The write-ahead journal is unusable: wrong version header, a
    sequence-number discontinuity (valid frames spliced or replayed out of
    order), or an append against a closed journal.

    A *torn tail* — a partially written final record after a crash — is
    NOT an error: the scan detects it by frame checksum and truncates it.
    ``JournalError`` marks corruption the framing cannot repair.
    """


class CorruptEntryError(ReproError):
    """A durable store entry failed its content-digest check on read.

    Raised (and caught) internally by the hardened disk tiers — the
    gateway result cache and the serve library cache — which respond by
    *quarantining* the entry (rename to ``*.corrupt``) and counting it,
    never by crashing a reader.  ``path`` is the offending file.
    """

    def __init__(self, message: str, *, path: str = "") -> None:
        super().__init__(message)
        self.path = str(path)


class ChaosError(ReproError):
    """A chaos schedule/runner was misconfigured, or a chaos invariant
    (byte-identical recovery, exactly-once landing, monotonic journal
    sequence) was violated during a run."""


class ShardQuarantinedError(GatewayError):
    """A shard was quarantined (sick-shard circuit tripped or an operator
    eviction) while work was being routed to it.

    Routing never raises this for *new* work — the consistent-hash ring
    deterministically remaps around quarantined shards — but it surfaces
    when quarantine would leave the gateway with no shard at all.
    """

    def __init__(self, message: str, *, shard_id: int = -1) -> None:
        super().__init__(message)
        self.shard_id = int(shard_id)


class ScenarioError(ReproError):
    """A scenario document failed validation or compilation.

    ``errors`` carries every individual finding as a ``"path: message"``
    string (e.g. ``"materials.fuel.enrichment_scale: must be > 0"``), so a
    user fixes a whole document in one round trip instead of one field per
    run.
    """

    def __init__(self, message: str, *, errors: tuple = ()) -> None:
        super().__init__(message)
        self.errors = tuple(errors)


class SuiteError(ScenarioError):
    """A case-suite document (sweep axes, base scenario) was malformed."""
