"""Exception hierarchy for the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GeometryError(ReproError):
    """A particle could not be located, or a model is inconsistent."""


class DataError(ReproError):
    """Nuclear-data construction or lookup failed."""


class PhysicsError(ReproError):
    """A physics routine received an unphysical state."""


class MachineModelError(ReproError):
    """The device/cost model was configured or queried inconsistently."""


class ExecutionError(ReproError):
    """An execution model (offload/native/symmetric) was misconfigured."""


class ClusterError(ReproError):
    """The simulated cluster/communicator was used incorrectly."""


class CommunicationError(ClusterError):
    """A collective received malformed buffers (shape/count/value)."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, read, or validated."""


class FaultInjectionError(ReproError):
    """A fault-injection plan was configured or queried inconsistently."""
