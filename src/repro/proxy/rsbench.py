"""RSBench: the multipole cross-section proxy (paper §IV-B, Fig. 8).

RSBench (Tramm & Siegel) times the windowed-multipole lookup kernel — the
compute-bound alternative to pointwise tables.  The paper compares the
*original* code (data-dependent poles-per-window loop bounds, which defeat
vectorization) against a *vectorized* variant that fixes the number of
poles per window.  Both variants are implemented executably here on the
synthetic multipole library:

* ``original``  — scalar window loop per lookup
  (:meth:`repro.data.multipole.MultipoleData.evaluate`);
* ``vectorized`` — padded rectangular windows, one batched Faddeeva call
  per lookup bank (:meth:`~repro.data.multipole.MultipoleData.evaluate_many`).

Both produce identical cross sections; Fig. 8's shape (vectorized strictly
faster, on both architectures) comes from their wall-clock ratio plus the
machine model for the device axes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.multipole import MultipoleData, build_multipole
from ..data.resonance import sample_ladder
from ..errors import ExecutionError

__all__ = ["RSBenchConfig", "RSBench"]


@dataclass(frozen=True)
class RSBenchConfig:
    """Workload parameters (scaled-down defaults; RSBench's 'large' uses
    hundreds of poles per nuclide)."""

    n_nuclides: int = 8
    resonances_per_nuclide: int = 40
    n_windows: int = 24
    temperature: float = 293.6
    seed: int = 20150525


class RSBench:
    """The multipole lookup benchmark over a synthetic nuclide set."""

    def __init__(self, config: RSBenchConfig | None = None) -> None:
        self.config = config or RSBenchConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.nuclides: list[MultipoleData] = []
        for i in range(cfg.n_nuclides):
            ladder = sample_ladder(
                rng,
                fissionable=(i % 3 == 0),
                n_resonances=cfg.resonances_per_nuclide,
            )
            self.nuclides.append(
                build_multipole(
                    f"MP{i:02d}",
                    ladder,
                    awr=230.0 + i,
                    n_windows=cfg.n_windows,
                    fit_temperature=cfg.temperature,
                )
            )
        # Padded tables precomputed once, as a real implementation would.
        self._tables = [mp.padded_tables() for mp in self.nuclides]

    def generate_lookups(self, n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
        """(nuclide index, energy) pairs, log-uniform within each nuclide's
        represented range."""
        rng = np.random.default_rng(seed)
        which = rng.integers(0, len(self.nuclides), size=n)
        energies = np.empty(n)
        for i, mp in enumerate(self.nuclides):
            mask = which == i
            energies[mask] = np.exp(
                rng.uniform(
                    np.log(mp.emin * 1.001), np.log(mp.emax * 0.999), int(mask.sum())
                )
            )
        return which.astype(np.int64), energies

    # -- Implementations --------------------------------------------------------

    def run_original(
        self, which: np.ndarray, energies: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Scalar, ragged-window kernel (one pole loop per lookup)."""
        t0 = time.perf_counter()
        out = np.empty(energies.shape[0])
        temp = self.config.temperature
        for j in range(energies.shape[0]):
            mp = self.nuclides[int(which[j])]
            out[j] = mp.evaluate(float(energies[j]), temp)[0]
        return time.perf_counter() - t0, out

    def run_vectorized(
        self, which: np.ndarray, energies: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Fixed-poles-per-window kernel: batched Faddeeva per nuclide bank."""
        t0 = time.perf_counter()
        out = np.empty(energies.shape[0])
        temp = self.config.temperature
        for i, mp in enumerate(self.nuclides):
            mask = which == i
            if mask.any():
                sig = mp.evaluate_many(
                    energies[mask], temp, tables=self._tables[i]
                )
                out[mask] = sig[0]
        return time.perf_counter() - t0, out

    def run(self, impl: str, which: np.ndarray, energies: np.ndarray):
        if impl == "original":
            return self.run_original(which, energies)
        if impl == "vectorized":
            return self.run_vectorized(which, energies)
        raise ExecutionError(f"unknown implementation {impl!r}")

    def verify(self, n: int = 200) -> float:
        """Max |vectorized - original| / original over a sample."""
        which, energies = self.generate_lookups(n, seed=99)
        _, a = self.run_original(which, energies)
        _, b = self.run_vectorized(which, energies)
        denom = np.maximum(np.abs(a), 1e-12)
        return float(np.max(np.abs(a - b) / denom))

    @property
    def nbytes(self) -> int:
        """Multipole data footprint — the 'reduced data movement' headline."""
        return sum(mp.nbytes for mp in self.nuclides)
