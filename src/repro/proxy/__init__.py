"""Proxy applications: XSBench-style lookups and RSBench multipole kernels."""

from .rsbench import RSBench, RSBenchConfig
from .xsbench import LookupSample, XSBench

__all__ = ["RSBench", "RSBenchConfig", "LookupSample", "XSBench"]
