"""XSBench-style cross-section lookup micro-benchmark (paper §III-A1).

Reproduces the structure of micro-benchmark #1: initialize the data, bank a
population of (material, energy) lookup requests, and time the macroscopic
cross-section kernel over the bank.  As in the paper, the S(alpha, beta)
and URR blocks are removed by default ("it was also necessary to remove the
blocks ... to achieve vectorization"), and lookups are distributed over the
model's materials with fuel dominating (where the hundreds-of-nuclides
inner loop lives).

Two executable implementations are timed:

* ``history`` — one scalar `calculate_xs` call per lookup (the baseline);
* ``banked``  — the vectorized bank kernel (inner nuclide loop, particles
  across lanes), in SoA or AoS layout;
* ``banked-outer`` — the paper's rejected alternative (vectorize across
  nuclides per particle).

Wall-clock ratios of these Python implementations give the *measured*
vector-vs-scalar contrast; device rates for Fig. 2's axes come from the
calibrated machine model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.library import NuclideLibrary
from ..data.unionized import UnionizedGrid
from ..errors import ExecutionError
from ..geometry.materials import Material, make_cladding, make_fuel, make_water
from ..physics.macroxs import XSCalculator
from ..rng.lcg import RandomStream
from ..work import WorkCounters

__all__ = ["LookupSample", "XSBench"]

#: Fraction of lookups landing in each material, mirroring XSBench's
#: fuel-heavy distribution for a PWR.
_MATERIAL_WEIGHTS = {"fuel": 0.60, "water": 0.33, "clad": 0.07}


@dataclass
class LookupSample:
    """A banked population of lookup requests."""

    material_ids: np.ndarray
    energies: np.ndarray

    @property
    def n(self) -> int:
        return int(self.energies.shape[0])


class XSBench:
    """The lookup micro-benchmark bound to a library."""

    def __init__(
        self,
        library: NuclideLibrary,
        union: UnionizedGrid | None = None,
        *,
        use_sab: bool = False,
        use_urr: bool = False,
        layout: str = "soa",
    ) -> None:
        self.library = library
        self.union = union if union is not None else UnionizedGrid(library)
        self.calculator = XSCalculator(
            library, self.union, use_sab=use_sab, use_urr=use_urr, layout=layout
        )
        self.materials: list[Material] = [
            make_fuel(library.model),
            make_water(),
            make_cladding(),
        ]
        self._weights = np.array(
            [
                _MATERIAL_WEIGHTS["fuel"],
                _MATERIAL_WEIGHTS["water"],
                _MATERIAL_WEIGHTS["clad"],
            ]
        )

    def generate_lookups(self, n: int, seed: int = 42) -> LookupSample:
        """Bank ``n`` lookup requests: log-uniform energies, fuel-weighted
        materials (deterministic in the seed)."""
        rng = np.random.default_rng(seed)
        mats = rng.choice(3, size=n, p=self._weights)
        energies = np.exp(rng.uniform(np.log(1.0e-11), np.log(19.0), n))
        return LookupSample(material_ids=mats.astype(np.int64), energies=energies)

    # -- Implementations ------------------------------------------------------

    def run_history(self, sample: LookupSample) -> tuple[float, WorkCounters]:
        """Scalar path: one calculate_xs call per banked request."""
        counters = WorkCounters()
        stream = RandomStream(seed=1)
        t0 = time.perf_counter()
        for j in range(sample.n):
            mat = self.materials[sample.material_ids[j]]
            self.calculator.scalar(
                mat, float(sample.energies[j]), stream, counters
            )
        return time.perf_counter() - t0, counters

    def run_banked(self, sample: LookupSample) -> tuple[float, WorkCounters]:
        """Vectorized path: per-material banked kernels over the sample."""
        counters = WorkCounters()
        t0 = time.perf_counter()
        for mid in np.unique(sample.material_ids):
            mask = sample.material_ids == mid
            self.calculator.banked(
                self.materials[int(mid)],
                sample.energies[mask],
                counters=counters,
            )
        return time.perf_counter() - t0, counters

    def run_banked_outer(self, sample: LookupSample) -> tuple[float, WorkCounters]:
        """The outer-loop (per-particle) vectorization the paper rejected."""
        counters = WorkCounters()
        t0 = time.perf_counter()
        for mid in np.unique(sample.material_ids):
            mask = sample.material_ids == mid
            self.calculator.banked_outer(
                self.materials[int(mid)],
                sample.energies[mask],
                counters=counters,
            )
        return time.perf_counter() - t0, counters

    def run(self, impl: str, sample: LookupSample) -> tuple[float, WorkCounters]:
        """Dispatch by implementation name."""
        if impl == "history":
            return self.run_history(sample)
        if impl == "banked":
            return self.run_banked(sample)
        if impl == "banked-outer":
            return self.run_banked_outer(sample)
        raise ExecutionError(f"unknown implementation {impl!r}")

    def verify(self, sample: LookupSample) -> float:
        """Max relative deviation between the history and banked totals
        (must be ~machine epsilon: same game, different control flow)."""
        stream = RandomStream(seed=1)
        scalar_tot = np.empty(sample.n)
        for j in range(sample.n):
            mat = self.materials[sample.material_ids[j]]
            scalar_tot[j] = self.calculator.scalar(
                mat, float(sample.energies[j]), stream
            ).total
        banked_tot = np.empty(sample.n)
        for mid in np.unique(sample.material_ids):
            mask = sample.material_ids == mid
            res = self.calculator.banked(
                self.materials[int(mid)], sample.energies[mask]
            )
            banked_tot[mask] = res["total"]
        return float(np.max(np.abs(banked_tot - scalar_tot) / scalar_tot))
