"""Physical constants and shared numeric conventions.

All energies are in MeV, lengths in cm, times in seconds, cross sections in
barns (microscopic) or 1/cm (macroscopic), and temperatures in Kelvin, matching
the conventions of continuous-energy Monte Carlo neutron transport codes such
as OpenMC.
"""

from __future__ import annotations

import numpy as np

# --- Fundamental constants -------------------------------------------------

#: Boltzmann constant [MeV / K].
K_BOLTZMANN = 8.617333262e-11

#: Neutron mass [amu].
NEUTRON_MASS_AMU = 1.00866491588

#: Neutron rest-mass energy [MeV].
NEUTRON_MASS_MEV = 939.56542052

#: Speed of light [cm / s].
SPEED_OF_LIGHT = 2.99792458e10

#: Avogadro's number [1 / mol], scaled so that
#: ``atom_density [atom/b-cm] = density [g/cm^3] * N_AVOGADRO / A [g/mol]``.
N_AVOGADRO = 0.602214076

# --- Energy-domain conventions ----------------------------------------------

#: Lowest tabulated neutron energy [MeV] (1e-11 MeV = 1e-5 eV).
ENERGY_MIN = 1.0e-11

#: Highest tabulated neutron energy [MeV].
ENERGY_MAX = 20.0

#: Thermal cutoff below which S(alpha, beta) / free-gas treatments apply [MeV].
#: 4 eV, the usual ACE thermal cutoff.
THERMAL_CUTOFF = 4.0e-6

#: Room temperature [K] used as the default material temperature.
ROOM_TEMPERATURE = 293.6

#: kT at room temperature [MeV].
KT_ROOM = K_BOLTZMANN * ROOM_TEMPERATURE

# --- Numeric conventions ----------------------------------------------------

#: Default floating dtype for cross-section and particle data.
F64 = np.float64

#: Single-precision dtype used by the SIMD lane machine (16 lanes x 4 bytes
#: mirrors the Xeon Phi's 512-bit vector registers).
F32 = np.float32

#: Default integer dtype for indices.
I64 = np.int64

#: Geometry tolerance [cm]: particles are nudged by this amount across
#: surfaces to avoid re-detecting the surface just crossed.
SURFACE_NUDGE = 1.0e-8

#: A distance treated as infinite by the tracking routines [cm].
INFINITY = 1.0e30
