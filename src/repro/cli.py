"""``repro-sim``: run eigenvalue simulations from the command line.

Examples::

    repro-sim --pincell --particles 500 --mode event
    repro-sim --model hm-large --particles 200 --batches 3 --inactive 1 \
              --survival-biasing --tally-power
    repro-sim --pincell --save-library lib.npz
    repro-sim --pincell --library lib.npz     # reuse a saved library
"""

from __future__ import annotations

import argparse
import sys

from .data import LibraryConfig, build_library
from .data.io import load_library, save_library
from .transport import Settings, Simulation

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-sim",
        description="Monte Carlo eigenvalue simulation (history or "
        "event/banked transport) on the Hoogenboom-Martin models.",
    )
    p.add_argument("--model", default="hm-small",
                   choices=["hm-small", "hm-large"])
    p.add_argument("--pincell", action="store_true",
                   help="reflected pin cell instead of the full core")
    p.add_argument("--mode", default="event",
                   choices=["history", "event", "delta"],
                   help="transport algorithm: scalar history loop, "
                   "vectorized event loop, or Woodcock delta tracking")
    p.add_argument("--particles", type=int, default=500)
    p.add_argument("--batches", type=int, default=5,
                   help="active batches")
    p.add_argument("--inactive", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fidelity", default="tiny", choices=["tiny", "default"],
                   help="synthetic library fidelity")
    p.add_argument("--survival-biasing", action="store_true")
    p.add_argument("--tally-power", action="store_true",
                   help="accumulate the 17x17 assembly power map")
    p.add_argument("--no-sab", action="store_true",
                   help="strip S(alpha,beta) (paper's vectorized config)")
    p.add_argument("--no-urr", action="store_true",
                   help="strip URR probability tables")
    p.add_argument("--library", metavar="NPZ",
                   help="load a saved library instead of building one")
    p.add_argument("--save-library", metavar="NPZ",
                   help="save the built library and exit")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.library:
        library = load_library(args.library)
        print(f"loaded library: {library.model}, {len(library)} nuclides")
    else:
        config = (
            LibraryConfig.tiny()
            if args.fidelity == "tiny"
            else LibraryConfig()
        )
        library = build_library(args.model, config)
        print(
            f"built library: {library.model}, {len(library)} nuclides, "
            f"{library.nbytes / 1e6:.1f} MB"
        )
    if args.save_library:
        save_library(library, args.save_library)
        print(f"saved to {args.save_library}")
        return 0

    settings = Settings(
        n_particles=args.particles,
        n_inactive=args.inactive,
        n_active=args.batches,
        seed=args.seed,
        mode=args.mode,
        pincell=args.pincell,
        use_sab=not args.no_sab,
        use_urr=not args.no_urr,
        survival_biasing=args.survival_biasing,
        tally_power=args.tally_power,
    )
    sim = Simulation(library, settings)
    result = sim.run()

    print(f"\nmode: {result.mode}  "
          f"({'pin cell' if args.pincell else 'full core'}, "
          f"{result.n_batches} batches x {result.n_particles} particles)")
    print(f"k-effective (combined)  = {result.k_effective}")
    print(f"k (collision)           = {result.statistics.result_collision()}")
    print(f"k (absorption)          = {result.statistics.result_absorption()}")
    print(f"k (track-length)        = {result.statistics.result_track()}")
    print(f"calculation rate        = {result.calculation_rate:,.0f} n/s")
    print(f"entropy trace           = "
          + " ".join(f"{e:.3f}" for e in result.entropy_trace))
    c = result.counters
    print(f"work: {c.lookups:,} lookups, {c.collisions:,} collisions, "
          f"{c.fissions:,} fissions, {c.urr_samples:,} URR samples, "
          f"{c.sab_samples:,} S(a,b) samples")
    if result.power is not None:
        norm = result.power.normalized_power()
        print(f"assembly power peaking factor = {norm.max():.2f} "
              f"({result.power.n_batches} active batches)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
