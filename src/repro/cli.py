"""``repro-sim``: run eigenvalue simulations from the command line.

Subcommands::

    repro-sim run --pincell --particles 500 --mode event
    repro-sim checkpoint --pincell --dir ckpts --every 2   # checkpointed run
    repro-sim resume --pincell --dir ckpts                 # continue latest
    repro-sim submit --spool jobs/ --pincell --particles 500
    repro-sim serve --spool jobs/ --workers 4 --cache xs-cache/
    repro-sim status --spool jobs/
    repro-sim scenario validate --all          # check every canned document
    repro-sim scenario run hm-full-core        # canned name or a JSON path
    repro-sim suite expand hm-tiny-sweep --json | repro-sim serve --jobs -
    repro-sim suite expand hm-tiny-sweep --json \
        | repro-sim gateway submit --jobs - --shards 2
    repro-sim gateway serve --spool jobs/ --shards 2
    repro-sim gateway serve --spool jobs/ --journal jobs/gateway.journal
    repro-sim gateway status --spool jobs/
    repro-sim chaos run --sweep                # kill at every boundary
    repro-sim chaos run --seed 42 --json       # seeded fault schedule

The bare legacy form (``repro-sim --pincell ...``) still works and is
equivalent to ``repro-sim run ...``.  ``resume`` must be given the same
physics flags as the original run — checkpoints carry a settings
fingerprint and refuse to resume under different physics (the
bit-identical-resume guarantee would silently break otherwise).

``scenario`` and ``suite`` drive the declarative layer
(:mod:`repro.scenarios`): ``scenario validate|compile|run`` check, lower,
and execute one document (canned scenarios are addressable by bare name);
``suite expand`` prints a sweep's job specs (``--json`` emits JSON lines
that pipe straight into ``serve --jobs -``) and ``suite submit`` spools
them for a later ``serve``.

``gateway`` is the sharded front tier (:mod:`repro.gateway`): ``gateway
serve``/``gateway submit`` drain jobs through N node-local services with
fingerprint-affine routing, admission control, and a result cache
(``--result-cache DIR`` persists it, so resubmitting an identical sweep
is answered without running a single simulation); ``gateway status``
reports the tier's counters, cache economics, and per-shard health from
the state document a previous drain wrote.  ``--journal PATH``
write-ahead journals every gateway transition: restarting the same
command after a kill replays the journal, restores landed results
byte-identically, and finishes only the unfinished work.

``chaos`` is the deterministic chaos harness (:mod:`repro.chaos`):
``chaos run`` drives the canned ``hm-tiny-sweep`` through seeded
kill/recover cycles — gateway kills at journal boundaries, shard
kills, disk corruption, torn spool writes — and audits every cycle for
byte-identical payloads and exactly-once journal landings.

The service trio works against a file spool: ``submit`` drops a
:class:`~repro.serve.jobs.JobSpec` into ``SPOOL/pending``, ``serve`` drains
pending jobs through a multi-worker :class:`~repro.serve.SimulationService`
(results land in ``done``/``failed``, metrics in ``metrics.json``), and
``status`` reports progress.  ``serve --jobs FILE`` (or ``-`` for stdin)
runs a one-shot batch without a spool.

Examples::

    repro-sim run --model hm-large --particles 200 --batches 3 --inactive 1 \
              --survival-biasing --tally-power
    repro-sim run --pincell --save-library lib.npz
    repro-sim run --pincell --library lib.npz     # reuse a saved library
    repro-sim run --pincell --library-cache xs-cache/   # fingerprint cache
    repro-sim run --pincell --json                # machine-readable result
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .data import LibraryConfig, build_library
from .data.io import load_library, save_library
from .errors import (
    CheckpointError,
    DeadlineExceededError,
    JobError,
    QueueFullError,
)
from .resilience.checkpoint import DEFAULT_CADENCE, latest_checkpoint
from .resilience.recovery import RetryPolicy
from .transport import Settings, Simulation, available_backends

__all__ = ["main"]

_SUBCOMMANDS = ("run", "checkpoint", "resume", "serve", "submit", "status",
                "scenario", "suite", "gateway", "fleet", "chaos")


def _backend_name(value: str) -> str:
    """Argparse type for ``--mode``/``--backend``: validate against the
    live backend registry so the error names what is actually available."""
    if value not in available_backends():
        raise argparse.ArgumentTypeError(
            f"unknown transport backend {value!r}; available backends: "
            f"{', '.join(available_backends())}"
        )
    return value


def _device_list(value: str) -> list[str]:
    """Argparse type for ``--devices``: comma-separated preset device
    names (or one fleet preset name), validated against the live device
    registry so the error names what is actually available."""
    from .cluster.topology import FLEET_PRESETS
    from .machine.presets import DEVICE_PRESETS, available_devices

    names = [v.strip() for v in value.split(",") if v.strip()]
    if len(names) == 1 and names[0] in FLEET_PRESETS:
        return list(FLEET_PRESETS[names[0]])
    unknown = [n for n in names if n not in DEVICE_PRESETS]
    if not names or unknown:
        bad = unknown[0] if unknown else value
        raise argparse.ArgumentTypeError(
            f"unknown device {bad!r}; available devices: "
            f"{', '.join(available_devices())}; fleet presets: "
            f"{', '.join(sorted(FLEET_PRESETS))}"
        )
    return names


def _simulation_args() -> argparse.ArgumentParser:
    """Shared simulation flags (parent parser for every run-like command)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--model", default="hm-small",
                   choices=["hm-small", "hm-large"])
    p.add_argument("--pincell", action="store_true",
                   help="reflected pin cell instead of the full core")
    p.add_argument("--mode", "--backend", dest="mode", default="event",
                   type=_backend_name, metavar="BACKEND",
                   help="transport backend from the registry "
                   "(e.g. scalar history loop, vectorized event loop, "
                   "Woodcock delta tracking; --backend is an alias)")
    p.add_argument("--particles", type=int, default=500)
    p.add_argument("--batches", type=int, default=5,
                   help="active batches")
    p.add_argument("--inactive", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fidelity", default="tiny", choices=["tiny", "default"],
                   help="synthetic library fidelity")
    p.add_argument("--survival-biasing", action="store_true")
    p.add_argument("--tally-power", action="store_true",
                   help="accumulate the 17x17 assembly power map")
    p.add_argument("--no-sab", action="store_true",
                   help="strip S(alpha,beta) (paper's vectorized config)")
    p.add_argument("--no-urr", action="store_true",
                   help="strip URR probability tables")
    p.add_argument("--supervise", action="store_true",
                   help="attach an in-flight supervisor: per-batch health "
                   "observations and a supervision report at the end")
    p.add_argument("--batch-deadline-s", type=float, default=None,
                   metavar="S", dest="batch_deadline_s",
                   help="abort (typed, exit 1) if any single batch takes "
                   "longer than S seconds (implies --supervise)")
    return p


def build_parser() -> argparse.ArgumentParser:
    shared = _simulation_args()
    p = argparse.ArgumentParser(
        prog="repro-sim",
        description="Monte Carlo eigenvalue simulation (history or "
        "event/banked transport) on the Hoogenboom-Martin models.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", parents=[shared],
                         help="run a simulation start to finish")
    run.add_argument("--library", metavar="NPZ",
                     help="load a saved library instead of building one")
    run.add_argument("--save-library", metavar="NPZ",
                     help="save the built library and exit")
    run.add_argument("--library-cache", metavar="DIR",
                     help="fingerprint-keyed library cache directory: "
                     "repeat runs with the same model/fidelity skip "
                     "library construction")
    run.add_argument("--json", action="store_true", dest="json_output",
                     help="emit the result as JSON (the JobResult payload)")
    run.add_argument("--devices", type=_device_list, default=None,
                     metavar="DEV[,DEV...]",
                     help="project the run onto a heterogeneous device "
                     "fleet (preset device names or one fleet preset): "
                     "prints per-device modelled rates and the equal vs "
                     "rate-balanced node rates after the run")

    ck = sub.add_parser("checkpoint", parents=[shared],
                        help="run with periodic checkpoints")
    ck.add_argument("--dir", required=True, dest="checkpoint_dir",
                    help="directory receiving checkpoint files")
    ck.add_argument("--every", type=int, default=DEFAULT_CADENCE,
                    dest="checkpoint_every", metavar="N",
                    help=f"batches between checkpoints "
                    f"(default {DEFAULT_CADENCE})")
    rs = sub.add_parser("resume", parents=[shared],
                        help="resume an interrupted run from its latest "
                        "checkpoint (bit-identical to an uninterrupted run)")
    rs.add_argument("--dir", required=True, dest="checkpoint_dir",
                    help="directory holding the run's checkpoints")
    rs.add_argument("--every", type=int, default=DEFAULT_CADENCE,
                    dest="checkpoint_every", metavar="N",
                    help="keep checkpointing every N batches while resumed")

    sm = sub.add_parser("submit", parents=[shared],
                        help="spool one job for a later (or running) "
                        "'serve' to execute")
    sm.add_argument("--spool", required=True, metavar="DIR",
                    help="spool directory (pending/done/failed)")
    sm.add_argument("--priority", type=int, default=0,
                    help="higher priority dispatches first")
    sm.add_argument("--deadline", type=float, default=None, metavar="S",
                    help="expire the job if still queued after S seconds")
    sm.add_argument("--job-id", default=None,
                    help="explicit job id (default: generated)")

    sv = sub.add_parser("serve",
                        help="drain a batch of jobs through a multi-worker "
                        "service")
    src = sv.add_mutually_exclusive_group(required=True)
    src.add_argument("--spool", metavar="DIR",
                     help="process the spool's pending jobs; file results "
                     "back into it")
    src.add_argument("--jobs", metavar="FILE",
                     help="JSON-lines (or JSON array) of job specs; '-' "
                     "reads stdin")
    sv.add_argument("--workers", type=int, default=2)
    sv.add_argument("--cache", metavar="DIR", default=None,
                    help="shared on-disk library cache directory")
    sv.add_argument("--capacity", type=int, default=256,
                    help="queue capacity (jobs beyond it are fed as the "
                    "queue drains)")
    sv.add_argument("--max-attempts", type=int, default=3,
                    help="attempts per job across worker crashes")
    sv.add_argument("--drain-deadline-s", type=float, default=None,
                    metavar="S", dest="drain_deadline_s",
                    help="abort (typed, exit 1) if the drain is still "
                    "running after S seconds")
    sv.add_argument("--json", action="store_true", dest="json_output",
                    help="emit all results + metrics as one JSON document")

    st = sub.add_parser("status", help="report a spool's progress")
    st.add_argument("--spool", required=True, metavar="DIR")
    st.add_argument("--json", action="store_true", dest="json_output")

    sc = sub.add_parser("scenario",
                        help="validate / compile / run a declarative "
                        "scenario document")
    scsub = sc.add_subparsers(dest="scenario_command", required=True)
    scv = scsub.add_parser("validate",
                           help="schema-check a document (all findings "
                           "at once)")
    scv.add_argument("source", nargs="?", metavar="NAME_OR_PATH",
                     help="canned scenario name or JSON/YAML path")
    scv.add_argument("--all", action="store_true", dest="validate_all",
                     help="validate every canned scenario and suite")
    scc = scsub.add_parser("compile",
                           help="lower a document to its runnable "
                           "configuration")
    scc.add_argument("source", metavar="NAME_OR_PATH")
    scc.add_argument("--json", action="store_true", dest="json_output",
                     help="emit the compiled job spec as JSON")
    scr = scsub.add_parser("run", help="compile and run a scenario")
    scr.add_argument("source", metavar="NAME_OR_PATH")
    scr.add_argument("--fidelity", default=None,
                     choices=["tiny", "default"],
                     help="override the document's library fidelity")
    scr.add_argument("--particles", type=int, default=None)
    scr.add_argument("--batches", type=int, default=None,
                     help="override active batches")
    scr.add_argument("--inactive", type=int, default=None)
    scr.add_argument("--seed", type=int, default=None)
    scr.add_argument("--backend", default=None, type=_backend_name,
                     metavar="BACKEND",
                     help="override the document's transport backend")
    scr.add_argument("--json", action="store_true", dest="json_output",
                     help="emit the result as JSON (the JobResult payload)")

    su = sub.add_parser("suite",
                        help="expand / submit a case-suite sweep")
    susub = su.add_subparsers(dest="suite_command", required=True)
    sue = susub.add_parser("expand",
                           help="expand a sweep to its cases "
                           "(fingerprint-affine order)")
    sue.add_argument("source", metavar="NAME_OR_PATH",
                     help="canned suite name or JSON/YAML path")
    sue.add_argument("--json", action="store_true", dest="json_output",
                     help="emit job specs as JSON lines "
                     "(pipe into 'serve --jobs -')")
    sus = susub.add_parser("submit",
                           help="spool every case of a sweep")
    sus.add_argument("source", metavar="NAME_OR_PATH")
    sus.add_argument("--spool", required=True, metavar="DIR")

    gw = sub.add_parser("gateway",
                        help="drain jobs through the sharded service tier "
                        "(admission control, fingerprint-affine routing, "
                        "result cache)")
    gwsub = gw.add_subparsers(dest="gateway_command", required=True)

    def _gateway_opts(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--shards", type=int, default=2,
                            help="node-local service shards")
        parser.add_argument("--workers-per-shard", type=int, default=1,
                            dest="workers_per_shard")
        parser.add_argument("--cache", metavar="DIR", default=None,
                            help="library cache root (one subtree per "
                            "shard)")
        parser.add_argument("--result-cache", metavar="DIR", default=None,
                            dest="result_cache",
                            help="persist the result cache on disk: "
                            "identical resubmissions are answered without "
                            "simulating")
        parser.add_argument("--capacity", type=int, default=256,
                            help="gateway-wide in-flight admission bound")
        parser.add_argument("--max-class-share", type=float, default=0.5,
                            dest="max_class_share", metavar="FRAC",
                            help="fairness cap: one priority class may "
                            "hold at most FRAC of capacity")
        parser.add_argument("--journal", metavar="PATH", default=None,
                            help="write-ahead journal every state "
                            "transition to PATH; if PATH already holds "
                            "records, recover from them first (landed "
                            "results restore without re-simulating)")
        parser.add_argument("--deadline-s", type=float, default=None,
                            metavar="S", dest="deadline_s",
                            help="abort (typed, exit 1) if the drain "
                            "overruns S seconds")
        parser.add_argument("--stream", action="store_true",
                            help="print per-batch progress events to "
                            "stderr as they arrive")
        parser.add_argument("--json", action="store_true",
                            dest="json_output",
                            help="emit results + gateway metrics as one "
                            "JSON document")

    gws = gwsub.add_parser("serve",
                           help="drain a spool (or a jobs file) through "
                           "the gateway; file results back")
    gwsrc = gws.add_mutually_exclusive_group(required=True)
    gwsrc.add_argument("--spool", metavar="DIR",
                       help="process the spool's pending jobs; results "
                       "and gateway.json land back in it")
    gwsrc.add_argument("--jobs", metavar="FILE",
                       help="JSON-lines (or JSON array) of job specs; "
                       "'-' reads stdin")
    _gateway_opts(gws)

    gwm = gwsub.add_parser("submit",
                           help="one-shot: run a jobs file through the "
                           "gateway and print the results")
    gwm.add_argument("--jobs", required=True, metavar="FILE",
                     help="JSON-lines (or JSON array) of job specs; '-' "
                     "reads stdin")
    _gateway_opts(gwm)

    gwt = gwsub.add_parser("status",
                           help="report gateway state from a spool's "
                           "gateway.json")
    gwt.add_argument("--spool", required=True, metavar="DIR")
    gwt.add_argument("--json", action="store_true", dest="json_output")

    ch = sub.add_parser("chaos",
                        help="deterministic chaos harness: kill/recover "
                        "the service stack and prove byte-identity")
    chsub = ch.add_subparsers(dest="chaos_command", required=True)
    chr_ = chsub.add_parser("run",
                            help="drive the canned hm-tiny-sweep through "
                            "seeded kill/recover cycles and audit each")
    chr_.add_argument("--seed", type=int, default=0,
                      help="chaos schedule seed (pure function of it)")
    chr_.add_argument("--shards", type=int, default=2)
    chr_.add_argument("--boundaries", type=int, default=8,
                      help="journal boundaries the seeded schedule draws "
                      "faults over")
    chr_.add_argument("--sweep", action="store_true",
                      help="ignore the seed: kill the gateway at EVERY "
                      "journal boundary of a clean run")
    chr_.add_argument("--workdir", metavar="DIR", default=None,
                      help="keep journals/caches here (default: a "
                      "temporary directory)")
    chr_.add_argument("--json", action="store_true", dest="json_output")

    fl = sub.add_parser("fleet",
                        help="heterogeneous device fleets: list presets, "
                        "model a fleet's load balance")
    flsub = fl.add_subparsers(dest="fleet_command", required=True)
    flsub.add_parser("devices",
                     help="list the preset device registry")
    flr = flsub.add_parser("report",
                           help="modelled fleet report: per-device rates, "
                           "equal vs rate-balanced split")
    flr.add_argument("--devices", type=_device_list, required=True,
                     metavar="DEV[,DEV...]",
                     help="preset device names (or one fleet preset name)")
    flr.add_argument("--model", default="hm-large",
                     choices=["hm-small", "hm-large"])
    flr.add_argument("--particles", type=int, default=100_000)
    flr.add_argument("--json", action="store_true", dest="json_output")
    return p


def _build_settings(args: argparse.Namespace) -> Settings:
    return Settings(**_job_settings(args),
                    checkpoint_every=getattr(args, "checkpoint_every", 0),
                    checkpoint_dir=getattr(args, "checkpoint_dir", None))


def _job_settings(args: argparse.Namespace) -> dict:
    """The physics settings of a run as JobSpec-compatible kwargs."""
    return {
        "n_particles": args.particles,
        "n_inactive": args.inactive,
        "n_active": args.batches,
        "seed": args.seed,
        "mode": args.mode,
        "pincell": args.pincell,
        "use_sab": not args.no_sab,
        "use_urr": not args.no_urr,
        "survival_biasing": args.survival_biasing,
        "tally_power": args.tally_power,
    }


def _library_config(args: argparse.Namespace) -> LibraryConfig:
    return (
        LibraryConfig.tiny() if args.fidelity == "tiny" else LibraryConfig()
    )


# -- run / checkpoint / resume ------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    json_output = getattr(args, "json_output", False)
    quiet = json_output

    build_seconds = 0.0
    if getattr(args, "library", None):
        library = load_library(args.library)
        library_source = "loaded"
        if not quiet:
            print(f"loaded library: {library.model}, "
                  f"{len(library)} nuclides")
    elif getattr(args, "library_cache", None):
        from .serve.cache import LibraryCache

        cache = LibraryCache(args.library_cache)
        library, outcome = cache.get_or_build(
            args.model, _library_config(args)
        )
        library_source = outcome.source
        build_seconds = outcome.build_seconds
        if not quiet:
            verb = ("built and cached" if outcome.source == "built"
                    else "cache hit")
            print(f"{verb}: {library.model}, {len(library)} nuclides "
                  f"({cache.path_for(outcome.fingerprint).name})")
    else:
        config = _library_config(args)
        library = build_library(args.model, config)
        library_source = "built"
        if not quiet:
            print(
                f"built library: {library.model}, {len(library)} nuclides, "
                f"{library.nbytes / 1e6:.1f} MB"
            )
    if getattr(args, "save_library", None):
        save_library(library, args.save_library)
        if not quiet:
            print(f"saved to {args.save_library}")
        return 0

    settings = _build_settings(args)
    sim = Simulation(library, settings)

    supervisor = None
    if getattr(args, "supervise", False) or (
        getattr(args, "batch_deadline_s", None) is not None
    ):
        from .supervise import SupervisionPolicy, Supervisor

        supervisor = Supervisor(
            n_ranks=1,
            policy=SupervisionPolicy(
                batch_deadline_s=args.batch_deadline_s
            ),
        )

    try:
        on_batch = (
            supervisor.batch_callback() if supervisor is not None else None
        )
        if args.command == "resume":
            ckpt = latest_checkpoint(args.checkpoint_dir)
            if ckpt is None:
                print(f"no checkpoint found in {args.checkpoint_dir}",
                      file=sys.stderr)
                return 1
            if not quiet:
                print(f"resuming from {ckpt}")
            result = sim.run(resume_from=ckpt, on_batch=on_batch)
        else:
            result = sim.run(on_batch=on_batch)
    except CheckpointError as exc:
        # Most commonly: resuming under different physics flags — the
        # settings fingerprint refuses rather than silently diverging.
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 1
    except DeadlineExceededError as exc:
        # A batch overran --batch-deadline-s: a typed abort, not a hang.
        print(f"deadline exceeded: {exc}", file=sys.stderr)
        return 1

    if json_output:
        from .serve.jobs import JobResult, JobSpec

        spec = JobSpec(
            job_id=f"run-seed{args.seed}",
            model=args.model,
            fidelity=args.fidelity,
            settings=_job_settings(args),
        )
        payload = JobResult.from_simulation(
            spec, result,
            build_seconds=build_seconds, library_source=library_source,
        )
        print(payload.to_json(indent=2))
        return 0

    print(f"\nmode: {result.mode}  "
          f"({'pin cell' if args.pincell else 'full core'}, "
          f"{result.n_batches} batches x {result.n_particles} particles)")
    print(f"k-effective (combined)  = {result.k_effective}")
    print(f"k (collision)           = {result.statistics.result_collision()}")
    print(f"k (absorption)          = {result.statistics.result_absorption()}")
    print(f"k (track-length)        = {result.statistics.result_track()}")
    print(f"calculation rate        = {result.calculation_rate:,.0f} n/s")
    print("entropy trace           = "
          + " ".join(f"{e:.3f}" for e in result.entropy_trace))
    c = result.counters
    print(f"work: {c.lookups:,} lookups, {c.collisions:,} collisions, "
          f"{c.fissions:,} fissions, {c.urr_samples:,} URR samples, "
          f"{c.sab_samples:,} S(a,b) samples")
    if supervisor is not None:
        report = supervisor.report()
        health = report["health"][0]
        rate = health["rate"]
        print(f"supervision: {report['batches']} batches observed, "
              f"status {health['status']}"
              + (f", smoothed rate {rate:,.0f} n/s" if rate else "")
              + f", {report['retries']} retries, "
              f"{len(report['evicted'])} evictions")
    if result.power is not None:
        norm = result.power.normalized_power()
        print(f"assembly power peaking factor = {norm.max():.2f} "
              f"({result.power.n_batches} active batches)")
    if args.command in ("checkpoint", "resume") and result.profile is not None:
        ck_stats = result.profile.routines.get("checkpoint_write")
        if ck_stats is not None:
            print(f"checkpoints: {ck_stats.calls} written, "
                  f"{ck_stats.total_seconds * 1e3:.1f} ms total "
                  f"({100 * result.profile.fraction('checkpoint_write'):.2f}% "
                  f"of profiled time)")
    if getattr(args, "devices", None):
        _print_fleet_projection(
            _fleet_projection(args.devices, args.model, args.particles)
        )
    return 0


# -- submit / serve / status --------------------------------------------------


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.jobs import JobSpec
    from .serve.service import submit_to_spool

    kwargs = {
        "model": args.model,
        "fidelity": args.fidelity,
        "settings": _job_settings(args),
        "priority": args.priority,
        "deadline_s": args.deadline,
    }
    if args.job_id:
        kwargs["job_id"] = args.job_id
    try:
        spec = JobSpec(**kwargs)
        path = submit_to_spool(args.spool, spec)
    except JobError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {spec.job_id} -> {path}")
    return 0


def _read_job_specs(source: str) -> list:
    from .serve.jobs import JobSpec

    text = sys.stdin.read() if source == "-" else Path(source).read_text()
    text = text.strip()
    if not text:
        return []
    if text.startswith("["):
        return [JobSpec.from_dict(item) for item in json.loads(text)]
    return [
        JobSpec.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.service import (
        SimulationService,
        atomic_write_text,
        read_spool_pending,
        write_spool_result,
    )

    if args.spool:
        specs = read_spool_pending(args.spool)
    else:
        try:
            specs = _read_job_specs(args.jobs)
        except (OSError, json.JSONDecodeError, JobError) as exc:
            print(f"cannot read jobs: {exc}", file=sys.stderr)
            return 1
    if not specs:
        print("no jobs to serve", file=sys.stderr)
        return 1

    service = SimulationService(
        n_workers=args.workers,
        cache_dir=args.cache,
        capacity=args.capacity,
        retry_policy=RetryPolicy(max_attempts=args.max_attempts),
        drain_deadline_s=args.drain_deadline_s,
    )
    try:
        results = service.run(specs)
    except QueueFullError as exc:  # pragma: no cover - run() feeds politely
        print(f"queue rejected jobs: {exc}", file=sys.stderr)
        return 1
    except DeadlineExceededError as exc:
        print(f"drain deadline exceeded: {exc}", file=sys.stderr)
        return 1
    finally:
        service.shutdown()
    summary = service.metrics_summary()

    if args.spool:
        for result in results:
            write_spool_result(args.spool, result)
        atomic_write_text(
            Path(args.spool) / "metrics.json",
            json.dumps(summary, indent=2, default=str),
        )

    failed = [r for r in results if r.status != "done"]
    if args.json_output:
        print(json.dumps(
            {
                "results": [r.to_dict() for r in results],
                "metrics": summary["metrics"],
                "workers": summary["workers"],
            },
            indent=2,
        ))
    else:
        for r in results:
            line = (f"{r.job_id}: {r.status}  worker={r.worker_id} "
                    f"attempts={r.attempts} library={r.library_source or '-'}")
            if r.status == "done":
                line += (f"  k-eff={r.k_effective:.5f}"
                         f" +/- {r.k_std_err:.5f}")
            else:
                line += f"  error={r.error}"
            print(line)
        metrics = summary["metrics"]["metrics"]
        hit_rate = metrics["cache_hit_rate"]["value"]
        crashes = metrics["worker_crashes"]["value"]
        print(f"\nserved {len(results)} jobs on {args.workers} workers: "
              f"{len(results) - len(failed)} done, {len(failed)} "
              f"failed/expired, library cache hit rate "
              f"{100 * hit_rate:.0f}%, {crashes} worker crashes recovered")
    return 1 if failed else 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .serve.service import spool_status

    status = spool_status(args.spool)
    if args.json_output:
        print(json.dumps(status, indent=2, default=str))
        return 0
    counts = status["counts"]
    print(f"spool {status['root']}: {counts['pending']} pending, "
          f"{counts['done']} done, {counts['failed']} failed")
    for r in status["results"]:
        line = (f"  {r['job_id']}: k-eff={r['k_effective']:.5f} "
                f"+/- {r['k_std_err']:.5f}  worker={r['worker_id']} "
                f"attempts={r['attempts']} library={r['library_source']}")
        if r.get("suite_id"):
            line += f"  suite={r['suite_id']} case={r['case_id']}"
        print(line)
    metrics = status.get("metrics")
    if metrics:
        m = metrics["metrics"]["metrics"]
        line = (f"last service: {m['jobs_completed']['value']} completed, "
                f"cache hit rate {100 * m['cache_hit_rate']['value']:.0f}%, "
                f"{m['worker_crashes']['value']} crashes recovered")
        if "retry_after_s" in status:
            line += f", retry-after hint {status['retry_after_s']:.2f}s"
        print(line)
    return 0


# -- gateway ------------------------------------------------------------------


def _cmd_gateway_status(args: argparse.Namespace) -> int:
    path = Path(args.spool) / "gateway.json"
    if not path.exists():
        print(f"no gateway state at {path}", file=sys.stderr)
        return 1
    doc = json.loads(path.read_text())
    if args.json_output:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    g = doc["gateway"]
    agg = doc["aggregate"]
    c = g["counters"]
    quarantined = g["quarantined"]
    print(f"gateway: {g['n_shards']} shard(s) x "
          f"{g['workers_per_shard']} worker(s), quarantined "
          f"{quarantined if quarantined else 'none'}")
    print(f"jobs: {c['submitted']} submitted, {c['completed']} completed "
          f"({c['cache_hits']} from result cache), {c['failed']} failed, "
          f"{c['poisoned']} poisoned, {c['requeued']} requeued"
          + (f", {c['recovered']} recovered from journal"
             if c.get("recovered") else ""))
    breaker = g.get("breaker", {})
    open_keys = breaker.get("open", [])
    if open_keys or c.get("quarantines") or c.get("quarantines_skipped"):
        print(f"supervision: sick shards "
              f"{open_keys if open_keys else 'none'}, "
              f"{c.get('quarantines', 0)} quarantine(s) "
              f"({c.get('quarantines_skipped', 0)} refused at the "
              f"last-shard floor), {agg['jobs_requeued']} shard-level "
              f"requeue(s), {agg['worker_crashes']} worker crash(es)")
    for key, circuit in sorted(breaker.get("keys", {}).items()):
        if circuit["consecutive_failures"] or circuit["state"] == "open":
            print(f"  {key}: {circuit['state']}, "
                  f"{circuit['consecutive_failures']} consecutive "
                  f"poison verdict(s) (threshold "
                  f"{breaker.get('threshold')})")
    rc = g["result_cache"]
    print(f"result cache: {rc['entries']} entries, {rc['hits']} hits / "
          f"{rc['misses']} misses ({100 * rc['hit_rate']:.0f}%)"
          + (f", {rc['corrupt_entries']} corrupt entr"
             f"{'y' if rc['corrupt_entries'] == 1 else 'ies'} "
             f"quarantined" if rc.get("corrupt_entries") else ""))
    journal = g.get("journal")
    if journal:
        print(f"journal: {journal['path']} ({journal['appended']} "
              f"record(s) appended, next seq {journal['next_seq']}, "
              f"fsync {'on' if journal['fsync'] else 'off'})")
    print(f"libraries: {agg['library_builds']} built, "
          f"{agg['library_disk_hits']} disk hits, "
          f"{agg['library_memory_hits']} memory hits")
    print(f"dispatch overhead: "
          f"{100 * agg['dispatch_overhead_fraction']:.2f}% of service time")
    print(f"admission: retry-after hint "
          f"{g['admission']['retry_after_s']:.2f}s")
    for shard_id, health in sorted(g["health"].items(),
                                   key=lambda kv: int(kv[0])):
        rate = health["rate"]
        print(f"  shard {shard_id}: {health['status']}, "
              f"{health['batches']} batches observed"
              + (f", {rate:,.0f} n/s smoothed" if rate else ""))
    return 0


def _cmd_gateway(args: argparse.Namespace) -> int:
    if args.gateway_command == "status":
        return _cmd_gateway_status(args)

    import asyncio

    from .gateway import Gateway, ResultCache
    from .serve.service import (
        atomic_write_text,
        read_spool_pending,
        write_spool_result,
    )

    spool = getattr(args, "spool", None)
    if spool:
        specs = read_spool_pending(spool)
    else:
        try:
            specs = _read_job_specs(args.jobs)
        except (OSError, json.JSONDecodeError, JobError) as exc:
            print(f"cannot read jobs: {exc}", file=sys.stderr)
            return 1

    journal = getattr(args, "journal", None)
    gateway = Gateway(
        args.shards,
        workers_per_shard=args.workers_per_shard,
        capacity=args.capacity,
        max_class_share=args.max_class_share,
        cache_dir=args.cache,
        result_cache=(
            ResultCache(args.result_cache) if args.result_cache else None
        ),
        journal_path=journal,
        # The CLI is the operator durability surface: a journal asked
        # for here must survive a host power cut, not just a SIGKILL.
        journal_fsync=True,
    )

    recovery = None
    if journal is not None:
        path = Path(journal)
        if path.exists() and path.stat().st_size > 0:
            # A previous incarnation died here: replay its journal,
            # restore every landed result verbatim, and re-admit the
            # unfinished work before accepting anything new.
            recovery = gateway.recover()
            print(f"recovered from {journal}: "
                  f"{recovery['replayed']} record(s) replayed, "
                  f"{recovery['restored']} result(s) restored, "
                  f"{recovery['requeued']} job(s) requeued"
                  + (f", {recovery['truncated_bytes']} torn byte(s) "
                     f"trimmed" if recovery["truncated_bytes"] else ""),
                  file=sys.stderr)
            specs = [s for s in specs if not gateway.has_job(s.job_id)]
    if not specs and recovery is None:
        print("no jobs for the gateway", file=sys.stderr)
        return 1

    async def _drain() -> None:
        async for event in gateway.stream(specs,
                                          deadline_s=args.deadline_s):
            if args.stream and event["kind"] == "progress":
                print(f"progress shard={event['shard']} "
                      f"job={event['job_id']} batch={event['batch']} "
                      f"({event['n_particles']} particles in "
                      f"{event['seconds']:.3f}s)", file=sys.stderr)

    try:
        with gateway:
            asyncio.run(_drain())
            # Recovered jobs are not in this invocation's spec list;
            # the stream does not wait on them, so drain explicitly.
            gateway.drain(deadline_s=args.deadline_s)
    except DeadlineExceededError as exc:
        print(f"drain deadline exceeded: {exc}", file=sys.stderr)
        return 1
    results = gateway.ordered_results()
    summary = gateway.metrics_summary()

    if spool:
        for result in results:
            write_spool_result(spool, result)
        atomic_write_text(
            Path(spool) / "gateway.json",
            json.dumps(summary, indent=2, sort_keys=True, default=str),
        )

    failed = [r for r in results if r.status != "done"]
    if args.json_output:
        print(json.dumps(
            {
                "results": [r.to_dict() for r in results],
                "gateway": summary,
            },
            indent=2, sort_keys=True, default=str,
        ))
        return 1 if failed else 0
    for r in results:
        shard = gateway._job_shard.get(r.job_id, -1)
        source = r.library_source or "-"
        line = (f"{r.job_id}: {r.status}  shard="
                f"{'cache' if source == 'result-cache' else shard} "
                f"library={source}")
        if r.status == "done":
            line += f"  k-eff={r.k_effective:.5f} +/- {r.k_std_err:.5f}"
        else:
            line += f"  error={r.error}"
        print(line)
    c = gateway.counters
    rc = summary["gateway"]["result_cache"]
    print(f"\ngateway: {len(results)} jobs over {args.shards} shard(s), "
          f"{c['completed']} done ({c['cache_hits']} from result cache, "
          f"{100 * rc['hit_rate']:.0f}% hit rate), "
          f"{c['failed'] + c['poisoned']} failed/poisoned, "
          f"{c['quarantines']} shard quarantine(s), "
          f"{summary['aggregate']['library_builds']} library build(s)")
    return 1 if failed else 0


# -- chaos --------------------------------------------------------------------


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .chaos import ChaosRunner, ChaosSchedule
    from .errors import ChaosError, JournalError

    def _campaign(workdir: str) -> dict:
        runner = ChaosRunner(workdir=workdir, n_shards=args.shards)
        runner.reference()
        if args.sweep:
            schedule = ChaosSchedule.kill_every_boundary(
                runner.n_boundaries
            )
        else:
            schedule = ChaosSchedule.generate(
                args.seed,
                args.boundaries,
                n_shards=args.shards,
                p_gateway_kill=0.4,
                p_shard_kill=0.2,
                p_disk_corrupt=0.15,
                p_disk_truncate=0.1,
                p_spool_partial=0.1,
            )
        report = runner.run_schedule(schedule)
        return {
            "seed": args.seed,
            "sweep": bool(args.sweep),
            "boundaries": runner.n_boundaries,
            "events": len(schedule),
            "report": report.to_dict(),
        }

    try:
        if args.workdir:
            doc = _campaign(args.workdir)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                doc = _campaign(tmp)
    except (ChaosError, JournalError) as exc:
        print(f"chaos invariant violated: {exc}", file=sys.stderr)
        return 1
    if args.json_output:
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    r = doc["report"]
    mode = ("exhaustive kill sweep" if doc["sweep"]
            else f"seeded schedule (seed {doc['seed']})")
    print(f"chaos: {mode}, {r['cycles']} cycle(s) over "
          f"{doc['boundaries']} journal boundaries — all audits passed")
    print(f"  gateway kills: {len(r['kill_boundaries'])} "
          f"({r['replayed']} record(s) replayed, {r['restored']} "
          f"result(s) restored without re-simulation)")
    print(f"  shard kills: {r['shard_kills']}, disk faults: "
          f"{r['disk_faults']}, spool faults: {r['spool_faults']}")
    print("  every cycle ended byte-identical to the uninterrupted "
          "reference run")
    return 0


# -- scenario / suite ---------------------------------------------------------


def _cmd_scenario(args: argparse.Namespace) -> int:
    from .errors import ScenarioError
    from .scenarios import (
        canned_scenario_names,
        canned_suite_names,
        compile_scenario,
        load_scenario,
        load_suite,
    )

    if args.scenario_command == "validate":
        if not args.validate_all and not args.source:
            print("scenario validate: give a NAME_OR_PATH or --all",
                  file=sys.stderr)
            return 2
        failures = 0
        sources = ([args.source] if args.source else
                   list(canned_scenario_names()))
        for source in sources:
            try:
                compiled = load_scenario(source)
            except ScenarioError as exc:
                print(f"FAIL {source}\n{exc}", file=sys.stderr)
                failures += 1
            else:
                print(f"ok   {compiled.name}  "
                      f"fingerprint={compiled.fingerprint[:16]}")
        if args.validate_all:
            for name in canned_suite_names():
                try:
                    suite = load_suite(name)
                except ScenarioError as exc:
                    print(f"FAIL suite {name}\n{exc}", file=sys.stderr)
                    failures += 1
                else:
                    print(f"ok   suite {suite.suite_id}  "
                          f"cases={suite.n_cases()}")
        return 1 if failures else 0

    try:
        compiled = load_scenario(args.source)
    except ScenarioError as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 1

    if args.scenario_command == "run":
        overrides = {
            key: value for key, value in (
                ("fidelity", args.fidelity),
                ("particles", args.particles),
                ("active", args.batches),
                ("inactive", args.inactive),
                ("seed", args.seed),
                ("backend", args.backend),
            ) if value is not None
        }
        if overrides:
            try:
                compiled = compile_scenario(
                    compiled.spec.with_overrides(**overrides)
                )
            except ScenarioError as exc:
                print(f"scenario error: {exc}", file=sys.stderr)
                return 1

    if args.scenario_command == "compile":
        spec = compiled.job_spec(job_id=f"scenario-{compiled.name}")
        if args.json_output:
            print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
            return 0
        s = compiled.settings
        config = compiled.library_config()
        print(f"scenario {compiled.name}  "
              f"fingerprint={compiled.fingerprint}")
        print(f"library: model={compiled.spec.model} "
              f"fidelity={compiled.spec.fidelity} seed={config.seed} "
              f"temperature={config.temperature} K")
        print(f"geometry: "
              f"{'pin cell' if s.pincell else 'full core'}"
              + (f", {len(s.core_pattern)}x{len(s.core_pattern)} "
                 f"custom footprint" if s.core_pattern else "")
              + f", boron {s.boron_ppm} ppm")
        print(f"run: {s.n_inactive}+{s.n_active} batches x "
              f"{s.n_particles} particles, seed {s.seed}, "
              f"backend {s.mode}")
        print(f"physics: sab={s.use_sab} urr={s.use_urr} "
              f"union_grid={s.use_union_grid} "
              f"survival_biasing={s.survival_biasing} "
              f"tally_power={s.tally_power}")
        if s.fuel_overrides:
            print(f"fuel overrides: {len(s.fuel_overrides)} nuclides "
                  "(explicit isotopics)")
        return 0

    # scenario run
    quiet = args.json_output
    library = compiled.build_library()
    if not quiet:
        print(f"scenario {compiled.name}: built library "
              f"{library.model} ({len(library)} nuclides)")
    result = compiled.build_simulation(library).run()
    if args.json_output:
        from .serve.jobs import JobResult

        spec = compiled.job_spec(job_id=f"scenario-{compiled.name}")
        print(JobResult.from_simulation(spec, result).to_json(indent=2))
        return 0
    print(f"mode: {result.mode}  ({result.n_batches} batches x "
          f"{result.n_particles} particles)")
    print(f"k-effective (combined)  = {result.k_effective}")
    print(f"calculation rate        = {result.calculation_rate:,.0f} n/s")
    if result.power is not None:
        norm = result.power.normalized_power()
        print(f"assembly power peaking factor = {norm.max():.2f}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from .errors import ScenarioError
    from .scenarios import load_suite

    try:
        suite = load_suite(args.source)
        cases = suite.expand()
    except ScenarioError as exc:
        print(f"suite error: {exc}", file=sys.stderr)
        return 1

    if args.suite_command == "expand":
        if args.json_output:
            for case in cases:
                print(case.job.to_json())
            return 0
        print(f"suite {suite.suite_id}: {len(cases)} cases over axes "
              f"{', '.join(suite.axes) or '(none)'}")
        last_fp = None
        for case in cases:
            fp = case.job.library_fingerprint()
            marker = "* " if fp != last_fp else "  "
            print(f"  {marker}{case.case_id}  library={fp[:12]}")
            last_fp = fp
        n_groups = len({c.job.library_fingerprint() for c in cases})
        print(f"{n_groups} distinct library build(s) "
              "(* marks each group; order is cache-affine)")
        return 0

    # suite submit
    from .serve.service import submit_to_spool

    try:
        for case in cases:
            submit_to_spool(args.spool, case.job)
    except JobError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {len(cases)} cases of suite {suite.suite_id} "
          f"-> {args.spool}")
    return 0


# -- fleet --------------------------------------------------------------------


def _fleet_projection(device_names: list[str], model: str,
                      n_particles: int) -> dict:
    """Modelled fleet load-balance document for ``fleet report`` and the
    ``run --devices`` trailer."""
    from .execution.symmetric import FleetNode
    from .machine.presets import fleet_from_names

    fleet = FleetNode(fleet_from_names(device_names), model)
    rates = fleet.device_rates(n_particles)
    equal = fleet.calculation_rate(n_particles, "equal")
    balanced = fleet.calculation_rate(n_particles, "rate")
    counts = fleet.fleet_counts(n_particles, "rate")
    return {
        "devices": [
            {
                "name": d.name,
                "class": d.class_key,
                "rate": rate,
                "balanced_share": count,
            }
            for d, rate, count in zip(fleet.devices, rates, counts)
        ],
        "particles": n_particles,
        "model": model,
        "equal_rate": equal,
        "balanced_rate": balanced,
        "ideal_rate": fleet.ideal_rate(n_particles),
        "speedup": balanced / equal if equal > 0 else None,
    }


def _print_fleet_projection(doc: dict) -> None:
    print(f"\nfleet projection ({doc['model']}, "
          f"{doc['particles']:,} particles/batch):")
    for dev in doc["devices"]:
        print(f"  {dev['name']:24s} [{dev['class']:8s}] "
              f"{dev['rate']:12,.0f} n/s  "
              f"balanced share {dev['balanced_share']:,}")
    print(f"  equal split     = {doc['equal_rate']:12,.0f} n/s")
    print(f"  rate balanced   = {doc['balanced_rate']:12,.0f} n/s "
          f"({doc['speedup']:.2f}x equal)")
    print(f"  ideal (no sync) = {doc['ideal_rate']:12,.0f} n/s")


def _cmd_fleet(args: argparse.Namespace) -> int:
    from .machine.presets import DEVICE_PRESETS, available_devices

    if args.fleet_command == "devices":
        seen = {}
        for name in available_devices():
            dev = DEVICE_PRESETS[name]
            seen.setdefault(dev.name, []).append(name)
        for full_name, names in sorted(seen.items()):
            dev = DEVICE_PRESETS[full_name]
            aliases = [n for n in names if n != full_name]
            alias = f" (alias: {', '.join(aliases)})" if aliases else ""
            print(f"{full_name:24s} [{dev.class_key:8s}] "
                  f"{dev.cores:4d} cores x {dev.threads_per_core:3d} thr, "
                  f"{dev.dram_bw_gbps:7.1f} GB/s, "
                  f"{dev.mem_gb:6.1f} GB{alias}")
        return 0
    doc = _fleet_projection(args.devices, args.model, args.particles)
    if getattr(args, "json_output", False):
        print(json.dumps(doc, indent=2))
    else:
        _print_fleet_projection(doc)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy flat form: "repro-sim --pincell ..." means "run".
    if not argv or (argv[0] not in _SUBCOMMANDS
                    and argv[0] not in ("-h", "--help")):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)

    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "suite":
        return _cmd_suite(args)
    if args.command == "gateway":
        return _cmd_gateway(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
