"""``repro-sim``: run eigenvalue simulations from the command line.

Subcommands::

    repro-sim run --pincell --particles 500 --mode event
    repro-sim checkpoint --pincell --dir ckpts --every 2   # checkpointed run
    repro-sim resume --pincell --dir ckpts                 # continue latest

The bare legacy form (``repro-sim --pincell ...``) still works and is
equivalent to ``repro-sim run ...``.  ``resume`` must be given the same
physics flags as the original run — checkpoints carry a settings
fingerprint and refuse to resume under different physics (the
bit-identical-resume guarantee would silently break otherwise).

Examples::

    repro-sim run --model hm-large --particles 200 --batches 3 --inactive 1 \
              --survival-biasing --tally-power
    repro-sim run --pincell --save-library lib.npz
    repro-sim run --pincell --library lib.npz     # reuse a saved library
"""

from __future__ import annotations

import argparse
import sys

from .data import LibraryConfig, build_library
from .data.io import load_library, save_library
from .resilience.checkpoint import DEFAULT_CADENCE, latest_checkpoint
from .transport import Settings, Simulation

__all__ = ["main"]

_SUBCOMMANDS = ("run", "checkpoint", "resume")


def _simulation_args() -> argparse.ArgumentParser:
    """Shared simulation flags (parent parser for every subcommand)."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--model", default="hm-small",
                   choices=["hm-small", "hm-large"])
    p.add_argument("--pincell", action="store_true",
                   help="reflected pin cell instead of the full core")
    p.add_argument("--mode", default="event",
                   choices=["history", "event", "delta"],
                   help="transport algorithm: scalar history loop, "
                   "vectorized event loop, or Woodcock delta tracking")
    p.add_argument("--particles", type=int, default=500)
    p.add_argument("--batches", type=int, default=5,
                   help="active batches")
    p.add_argument("--inactive", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--fidelity", default="tiny", choices=["tiny", "default"],
                   help="synthetic library fidelity")
    p.add_argument("--survival-biasing", action="store_true")
    p.add_argument("--tally-power", action="store_true",
                   help="accumulate the 17x17 assembly power map")
    p.add_argument("--no-sab", action="store_true",
                   help="strip S(alpha,beta) (paper's vectorized config)")
    p.add_argument("--no-urr", action="store_true",
                   help="strip URR probability tables")
    p.add_argument("--library", metavar="NPZ",
                   help="load a saved library instead of building one")
    p.add_argument("--save-library", metavar="NPZ",
                   help="save the built library and exit")
    return p


def build_parser() -> argparse.ArgumentParser:
    shared = _simulation_args()
    p = argparse.ArgumentParser(
        prog="repro-sim",
        description="Monte Carlo eigenvalue simulation (history or "
        "event/banked transport) on the Hoogenboom-Martin models.",
    )
    sub = p.add_subparsers(dest="command", required=True)
    sub.add_parser("run", parents=[shared],
                   help="run a simulation start to finish")
    ck = sub.add_parser("checkpoint", parents=[shared],
                        help="run with periodic checkpoints")
    ck.add_argument("--dir", required=True, dest="checkpoint_dir",
                    help="directory receiving checkpoint files")
    ck.add_argument("--every", type=int, default=DEFAULT_CADENCE,
                    dest="checkpoint_every", metavar="N",
                    help=f"batches between checkpoints "
                    f"(default {DEFAULT_CADENCE})")
    rs = sub.add_parser("resume", parents=[shared],
                        help="resume an interrupted run from its latest "
                        "checkpoint (bit-identical to an uninterrupted run)")
    rs.add_argument("--dir", required=True, dest="checkpoint_dir",
                    help="directory holding the run's checkpoints")
    rs.add_argument("--every", type=int, default=DEFAULT_CADENCE,
                    dest="checkpoint_every", metavar="N",
                    help="keep checkpointing every N batches while resumed")
    return p


def _build_settings(args: argparse.Namespace) -> Settings:
    return Settings(
        n_particles=args.particles,
        n_inactive=args.inactive,
        n_active=args.batches,
        seed=args.seed,
        mode=args.mode,
        pincell=args.pincell,
        use_sab=not args.no_sab,
        use_urr=not args.no_urr,
        survival_biasing=args.survival_biasing,
        tally_power=args.tally_power,
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
    )


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy flat form: "repro-sim --pincell ..." means "run".
    if not argv or (argv[0] not in _SUBCOMMANDS
                    and argv[0] not in ("-h", "--help")):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)

    if args.library:
        library = load_library(args.library)
        print(f"loaded library: {library.model}, {len(library)} nuclides")
    else:
        config = (
            LibraryConfig.tiny()
            if args.fidelity == "tiny"
            else LibraryConfig()
        )
        library = build_library(args.model, config)
        print(
            f"built library: {library.model}, {len(library)} nuclides, "
            f"{library.nbytes / 1e6:.1f} MB"
        )
    if args.save_library:
        save_library(library, args.save_library)
        print(f"saved to {args.save_library}")
        return 0

    settings = _build_settings(args)
    sim = Simulation(library, settings)

    if args.command == "resume":
        ckpt = latest_checkpoint(args.checkpoint_dir)
        if ckpt is None:
            print(f"no checkpoint found in {args.checkpoint_dir}",
                  file=sys.stderr)
            return 1
        print(f"resuming from {ckpt}")
        result = sim.run(resume_from=ckpt)
    else:
        result = sim.run()

    print(f"\nmode: {result.mode}  "
          f"({'pin cell' if args.pincell else 'full core'}, "
          f"{result.n_batches} batches x {result.n_particles} particles)")
    print(f"k-effective (combined)  = {result.k_effective}")
    print(f"k (collision)           = {result.statistics.result_collision()}")
    print(f"k (absorption)          = {result.statistics.result_absorption()}")
    print(f"k (track-length)        = {result.statistics.result_track()}")
    print(f"calculation rate        = {result.calculation_rate:,.0f} n/s")
    print("entropy trace           = "
          + " ".join(f"{e:.3f}" for e in result.entropy_trace))
    c = result.counters
    print(f"work: {c.lookups:,} lookups, {c.collisions:,} collisions, "
          f"{c.fissions:,} fissions, {c.urr_samples:,} URR samples, "
          f"{c.sab_samples:,} S(a,b) samples")
    if result.power is not None:
        norm = result.power.normalized_power()
        print(f"assembly power peaking factor = {norm.max():.2f} "
              f"({result.power.n_batches} active batches)")
    if args.command in ("checkpoint", "resume") and result.profile is not None:
        ck_stats = result.profile.routines.get("checkpoint_write")
        if ck_stats is not None:
            print(f"checkpoints: {ck_stats.calls} written, "
                  f"{ck_stats.total_seconds * 1e3:.1f} ms total "
                  f"({100 * result.profile.fraction('checkpoint_write'):.2f}% "
                  f"of profiled time)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
