"""Random-number generation substrate.

Scalar per-particle streams over OpenMC's 63-bit LCG (:mod:`repro.rng.lcg`)
and vectorized multi-stream generation mirroring Intel MKL/VSL
(:mod:`repro.rng.streams`).
"""

from .lcg import (
    DEFAULT_SEED,
    LCG_MASK,
    LCG_MULT,
    STREAM_STRIDE,
    RandomStream,
    lcg_next,
    particle_seeds,
    prn_array,
    skip_ahead,
    skip_ahead_array,
)
from .sampling import sample_index, sample_index_many
from .streams import Partition, ScalarRandR, VectorStreams, fill_uniform

__all__ = [
    "sample_index",
    "sample_index_many",
    "DEFAULT_SEED",
    "LCG_MASK",
    "LCG_MULT",
    "STREAM_STRIDE",
    "RandomStream",
    "lcg_next",
    "particle_seeds",
    "prn_array",
    "skip_ahead",
    "skip_ahead_array",
    "Partition",
    "ScalarRandR",
    "VectorStreams",
    "fill_uniform",
]
