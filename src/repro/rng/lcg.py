"""The 63-bit linear congruential generator used by OpenMC.

The generator is ``seed' = (g * seed + c) mod 2**63`` with the L'Ecuyer
multiplier ``g = 2806196910506780709`` and increment ``c = 1``.  Its two key
features for Monte Carlo transport are

* **O(log n) skip-ahead** — jump an arbitrary number of steps in the sequence
  without generating intermediate values, which gives every particle history a
  deterministic, reproducible stream regardless of how histories are scheduled
  across threads or ranks; and
* **vectorized state advance** — the same skip-ahead recurrence applied to an
  *array* of step counts yields the initial states of many particle streams at
  once, the building block of the banked (event-based) algorithm's RNG.

The scalar API mirrors OpenMC (``prn``, ``set_particle_seed``); the array API
(:func:`skip_ahead_array`, :func:`prn_array`) is the NumPy-vectorized
equivalent used by the SoA kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LCG_MULT",
    "LCG_INC",
    "LCG_MOD_BITS",
    "LCG_MASK",
    "STREAM_STRIDE",
    "DEFAULT_SEED",
    "lcg_next",
    "skip_ahead",
    "skip_ahead_array",
    "particle_seeds",
    "prn_array",
    "RandomStream",
]

#: L'Ecuyer's 63-bit LCG multiplier (the one OpenMC uses).
LCG_MULT = 2806196910506780709

#: Additive increment.
LCG_INC = 1

#: Modulus is 2**LCG_MOD_BITS.
LCG_MOD_BITS = 63

#: Bit mask implementing ``mod 2**63``.
LCG_MASK = (1 << LCG_MOD_BITS) - 1

#: Number of sequence positions reserved per particle history.  Matches
#: OpenMC's stride so that particle ``i`` draws from positions
#: ``[i * STREAM_STRIDE, (i + 1) * STREAM_STRIDE)`` of the master sequence.
STREAM_STRIDE = 152_917

#: Default master seed.
DEFAULT_SEED = 1

_NORM = 1.0 / float(1 << LCG_MOD_BITS)

_U64_MASK = np.uint64(LCG_MASK)
_U64_MULT = np.uint64(LCG_MULT)
_U64_INC = np.uint64(LCG_INC)


def lcg_next(seed: int) -> int:
    """Advance a scalar LCG state by one step."""
    return (LCG_MULT * seed + LCG_INC) & LCG_MASK


def skip_ahead(seed: int, n: int) -> int:
    """Return the LCG state ``n`` steps ahead of ``seed`` in O(log n) time.

    Uses the standard doubling decomposition: if one step maps ``s`` to
    ``g*s + c``, then ``n`` steps map ``s`` to ``G*s + C`` where ``G = g**n``
    and ``C = c*(g**n - 1)/(g - 1)``, both computed mod ``2**63`` by repeated
    squaring.  Negative ``n`` jumps backward via the period ``2**63``.
    """
    n = n & LCG_MASK  # period is 2**63, so reduce (handles negative n too)
    g, c = LCG_MULT, LCG_INC
    g_new, c_new = 1, 0
    while n > 0:
        if n & 1:
            g_new = (g_new * g) & LCG_MASK
            c_new = (c_new * g + c) & LCG_MASK
        c = (c * (g + 1)) & LCG_MASK
        g = (g * g) & LCG_MASK
        n >>= 1
    return (g_new * seed + c_new) & LCG_MASK


def skip_ahead_array(seed: int, n: np.ndarray) -> np.ndarray:
    """Vectorized :func:`skip_ahead` for an array of step counts.

    Computes, for every element of ``n``, the LCG state that many steps ahead
    of the common ``seed``.  All arithmetic is uint64 with wraparound; since
    ``2**63`` divides ``2**64``, reducing the 64-bit products with
    ``& LCG_MASK`` yields the exact mod-``2**63`` result.

    Parameters
    ----------
    seed:
        Common starting state.
    n:
        Integer array of step counts (non-negative).

    Returns
    -------
    np.ndarray
        uint64 array of advanced states, same shape as ``n``.
    """
    n = np.asarray(n, dtype=np.uint64)
    g = np.uint64(LCG_MULT)
    c = np.uint64(LCG_INC)
    one = np.uint64(1)
    g_new = np.full(n.shape, one, dtype=np.uint64)
    c_new = np.zeros(n.shape, dtype=np.uint64)
    remaining = n.copy()
    # 63 doubling rounds cover the full period; early-exit when all bits used.
    # uint64 wraparound is the intended mod-2**64 arithmetic (then masked to
    # mod 2**63), so overflow warnings are suppressed.
    with np.errstate(over="ignore"):
        for _ in range(LCG_MOD_BITS):
            if not remaining.any():
                break
            odd = (remaining & one).astype(bool)
            if odd.any():
                g_new[odd] = (g_new[odd] * g) & _U64_MASK
                c_new[odd] = (c_new[odd] * g + c) & _U64_MASK
            c = (c * (g + one)) & _U64_MASK
            g = (g * g) & _U64_MASK
            remaining >>= one
        return (g_new * np.uint64(seed & LCG_MASK) + c_new) & _U64_MASK


def skip_coefficients(n: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Affine coefficients of the n-step jump: ``state_n = A*s + C mod 2^63``.

    For an array of step counts, returns ``(A, C)`` (uint64) such that
    advancing any state ``s`` by ``n[j]`` steps equals
    ``(A[j] * s + C[j]) & LCG_MASK``.  Precomputing these turns block
    generation into one fused multiply-add per element — the structure of
    VSL's vectorized LCG generators.
    """
    n = np.asarray(n, dtype=np.uint64)
    g = np.uint64(LCG_MULT)
    c = np.uint64(LCG_INC)
    one = np.uint64(1)
    a_out = np.full(n.shape, one, dtype=np.uint64)
    c_out = np.zeros(n.shape, dtype=np.uint64)
    remaining = n.copy()
    with np.errstate(over="ignore"):
        for _ in range(LCG_MOD_BITS):
            if not remaining.any():
                break
            odd = (remaining & one).astype(bool)
            a_out = np.where(odd, (a_out * g) & _U64_MASK, a_out)
            c_out = np.where(odd, (c_out * g + c) & _U64_MASK, c_out)
            c = (c * (g + one)) & _U64_MASK
            g = (g * g) & _U64_MASK
            remaining = remaining >> one
    return a_out, c_out


def particle_seeds(master_seed: int, particle_ids: np.ndarray) -> np.ndarray:
    """Return the stream state for each particle id under the stride scheme.

    Particle ``i``'s stream starts ``i * STREAM_STRIDE`` positions into the
    master sequence, exactly as OpenMC's ``set_particle_seed``.
    """
    ids = np.asarray(particle_ids, dtype=np.uint64)
    return skip_ahead_array(master_seed, ids * np.uint64(STREAM_STRIDE))


def prn_array(states: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Advance an array of LCG states one step and return uniforms in [0, 1).

    Returns ``(new_states, uniforms)``; ``states`` is not modified.
    """
    states = np.asarray(states, dtype=np.uint64)
    # uint64 *array* arithmetic wraps silently in NumPy (only scalar ops
    # warn), so no errstate guard is needed on this hot path.
    new = (_U64_MULT * states + _U64_INC) & _U64_MASK
    return new, new.astype(np.float64) * _NORM


@dataclass
class RandomStream:
    """A scalar random-number stream over the shared LCG sequence.

    This is the per-particle generator used by the history-based transport
    loop.  It mirrors OpenMC's interface: ``prn()`` returns the next uniform
    variate, and :meth:`set_particle` repositions the stream at the start of a
    given particle history so that results are independent of scheduling.
    """

    seed: int = DEFAULT_SEED
    #: Number of variates drawn since construction (diagnostics only).
    draws: int = 0

    def prn(self) -> float:
        """Return the next uniform variate in [0, 1)."""
        self.seed = lcg_next(self.seed)
        self.draws += 1
        return self.seed * _NORM

    def prn_nonzero(self) -> float:
        """Return a uniform variate in (0, 1), never exactly zero.

        Sampling ``-log(xi)`` requires ``xi > 0``; the LCG emits 0 only for
        state 0, but we guard anyway.
        """
        value = self.prn()
        while value == 0.0:
            value = self.prn()
        return value

    def set_particle(self, master_seed: int, particle_id: int) -> None:
        """Position this stream at the start of ``particle_id``'s history."""
        self.seed = skip_ahead(master_seed, particle_id * STREAM_STRIDE)

    def skip(self, n: int) -> None:
        """Jump ``n`` positions ahead in the sequence."""
        self.seed = skip_ahead(self.seed, n)

    def spawn(self, offset: int) -> "RandomStream":
        """Return an independent stream ``offset`` strides ahead of this one."""
        return RandomStream(seed=skip_ahead(self.seed, offset * STREAM_STRIDE))
