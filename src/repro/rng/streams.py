"""Vectorized multi-stream random-number generation (the MKL/VSL analogue).

The paper's optimized distance-sampling kernel (Algorithm 4) replaces per-call
``rand_r()`` with Intel VSL *streams*: each OpenMP thread owns an independent
stream and fills its block of a shared output array with a vectorized
generator.  VSL offers two stream-partitioning disciplines:

* **skip-ahead (block splitting)** — stream ``k`` of ``K`` starts ``k * B``
  positions into the master sequence and emits ``B`` consecutive values;
* **leapfrog** — stream ``k`` emits positions ``k, k+K, k+2K, ...`` of the
  master sequence.

Both are reproduced here on top of the 63-bit LCG from :mod:`repro.rng.lcg`.
The *fill* itself is NumPy-vectorized: all stream states advance in lockstep,
one fused update per emitted column, which is the Python analogue of VSL's
SIMD generator loops.  A deliberately scalar generator
(:class:`ScalarRandR`, the ``rand_r()`` analogue) is provided so benchmarks
can reproduce the Naive column of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from .lcg import (
    DEFAULT_SEED,
    LCG_INC,
    LCG_MASK,
    LCG_MULT,
    lcg_next,
    prn_array,
    skip_ahead_array,
    skip_coefficients,
)

__all__ = [
    "Partition",
    "VectorStreams",
    "fill_uniform",
    "ScalarRandR",
]

_NORM = 1.0 / float(1 << 63)


class Partition(Enum):
    """Stream-partitioning discipline, mirroring VSL's options."""

    SKIP_AHEAD = "skip-ahead"
    LEAPFROG = "leapfrog"


@dataclass
class VectorStreams:
    """A set of parallel RNG streams advanced in SIMD lockstep.

    Parameters
    ----------
    nstreams:
        Number of independent streams (one per "thread" in the paper's
        Algorithm 4).
    seed:
        Master seed shared by all streams.
    partition:
        How the master sequence is split among streams.
    block:
        For :attr:`Partition.SKIP_AHEAD`, the number of consecutive positions
        reserved per stream (must be at least the number of values any single
        stream will ever emit).
    """

    nstreams: int
    seed: int = DEFAULT_SEED
    partition: Partition = Partition.SKIP_AHEAD
    block: int = 1 << 40
    states: np.ndarray = field(init=False, repr=False)
    #: Stride (in master-sequence positions) between successive draws of one
    #: stream: 1 for skip-ahead partitioning, ``nstreams`` for leapfrog.
    step: int = field(init=False)

    def __post_init__(self) -> None:
        if self.nstreams < 1:
            raise ValueError("nstreams must be >= 1")
        k = np.arange(self.nstreams, dtype=np.uint64)
        if self.partition is Partition.SKIP_AHEAD:
            offsets = k * np.uint64(self.block)
            self.step = 1
        else:
            offsets = k
            self.step = self.nstreams
        self.states = skip_ahead_array(self.seed, offsets)
        #: Draws already emitted per stream (identical for all streams).
        self._drawn = 0
        #: Cached (per, step) -> affine jump coefficients for fill().
        self._coeff_cache: tuple = (None, None)

    def uniform_block(self, count: int) -> np.ndarray:
        """Emit ``count`` uniforms from *each* stream, advancing the streams
        in lockstep, one vectorized LCG update per column — the SIMD
        execution pattern of VSL's block generators.

        Returns shape ``(nstreams, count)``; row ``k`` holds the next
        ``count`` variates of stream ``k``.
        """
        out = np.empty((self.nstreams, count), dtype=np.float64)
        states = self.states
        if self.step == 1:
            for j in range(count):
                states, out[:, j] = prn_array(states)
        else:
            # Leapfrog: each draw of a stream is `nstreams` master positions
            # later; skip the stride remainder after every draw so the
            # streams stay ready for the next call.
            stride = np.full(self.nstreams, self.step - 1, dtype=np.uint64)
            for j in range(count):
                states, out[:, j] = prn_array(states)
                if j != count - 1:
                    states = skip_ahead_array_states(states, stride)
        self._finish_block(states, count)
        return out

    def fill(self, out: np.ndarray) -> None:
        """Fill a flat float64 array with uniforms, one block per stream.

        This is the exact work distribution of Algorithm 4 lines 5-8: stream
        ``k`` initializes ``out[k * N/K : (k+1) * N/K]``; ``len(out)`` must
        be divisible by ``nstreams``.

        Unlike :meth:`uniform_block` (lockstep, one column at a time), the
        whole block is generated in one shot by applying the O(log n)
        skip-ahead to the matrix of master-sequence positions — the same
        trick VSL's vectorized generators use, and the mechanism behind
        Table I's Naive -> Optimized-1 leap.  Values and post-fill stream
        states are identical to :meth:`uniform_block`.
        """
        n = out.shape[0]
        if n % self.nstreams:
            raise ValueError(
                f"array length {n} not divisible by nstreams {self.nstreams}"
            )
        per = n // self.nstreams
        # Affine jump coefficients for draw j relative to each stream's
        # ready state (offset j*step + 1); identical for every stream, so
        # they are computed once per block shape and cached.  The fill is
        # then one fused multiply-add per element.
        key = (per, self.step)
        if self._coeff_cache[0] != key:
            j = np.arange(per, dtype=np.uint64)
            deltas = j * np.uint64(self.step) + np.uint64(1)
            self._coeff_cache = (key, skip_coefficients(deltas))
        a, c = self._coeff_cache[1]
        with np.errstate(over="ignore"):
            states = (a[None, :] * self.states[:, None] + c[None, :]) & np.uint64(
                LCG_MASK
            )
        out.reshape(self.nstreams, per)[:, :] = states.astype(np.float64) * _NORM
        self._finish_block(states[:, -1].copy(), per)

    def _finish_block(self, last_states: np.ndarray, count: int) -> None:
        """Advance bookkeeping after emitting ``count`` draws per stream.

        ``last_states`` are the states of each stream's final emitted value;
        the stored state is positioned so the next single-step advance lands
        on the next draw (for leapfrog that means pre-skipping the stride
        remainder)."""
        self._drawn += count
        if self.step == 1:
            self.states = last_states
        else:
            stride = np.full(self.nstreams, self.step - 1, dtype=np.uint64)
            self.states = skip_ahead_array_states(last_states, stride)


def skip_ahead_array_states(states: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Advance each state in ``states`` by the matching count in ``n``.

    Unlike :func:`repro.rng.lcg.skip_ahead_array`, the starting states differ
    per element.  Used by leapfrog partitioning.
    """
    states = np.asarray(states, dtype=np.uint64)
    n = np.asarray(n, dtype=np.uint64)
    g = np.uint64(LCG_MULT)
    c = np.uint64(LCG_INC)
    one = np.uint64(1)
    mask = np.uint64(LCG_MASK)
    g_new = np.full(states.shape, one, dtype=np.uint64)
    c_new = np.zeros(states.shape, dtype=np.uint64)
    remaining = n.copy()
    # Wraparound is intended (mod 2**64 arithmetic masked to mod 2**63).
    # Branch-free per round (np.where instead of fancy indexing) keeps the
    # doubling loop fully vectorized.
    with np.errstate(over="ignore"):
        for _ in range(63):
            if not remaining.any():
                break
            odd = (remaining & one).astype(bool)
            g_new = np.where(odd, (g_new * g) & mask, g_new)
            c_new = np.where(odd, (c_new * g + c) & mask, c_new)
            c = (c * (g + one)) & mask
            g = (g * g) & mask
            remaining = remaining >> one
        return (g_new * states + c_new) & mask


def fill_uniform(
    n: int,
    nstreams: int,
    seed: int = DEFAULT_SEED,
    partition: Partition = Partition.SKIP_AHEAD,
) -> np.ndarray:
    """Convenience wrapper: return ``n`` uniforms generated by ``nstreams``
    parallel streams (``n`` must be divisible by ``nstreams``)."""
    streams = VectorStreams(nstreams=nstreams, seed=seed, partition=partition)
    out = np.empty(n, dtype=np.float64)
    streams.fill(out)
    return out


@dataclass
class ScalarRandR:
    """Deliberately scalar per-call generator — the ``rand_r()`` analogue.

    One Python-level LCG step per variate.  Used by the Naive implementation
    of the distance-sampling micro-benchmark (Table I) to reproduce the cost
    of unvectorized per-call RNG.
    """

    seed: int = DEFAULT_SEED

    def next(self) -> float:
        """Return the next uniform variate in [0, 1)."""
        self.seed = lcg_next(self.seed)
        return self.seed * _NORM

    def fill(self, out: np.ndarray) -> None:
        """Fill ``out`` one scalar call at a time (intentionally slow)."""
        seed = self.seed
        for i in range(out.shape[0]):
            seed = (LCG_MULT * seed + LCG_INC) & LCG_MASK
            out[i] = seed * _NORM
        self.seed = seed
