"""Discrete CDF sampling with scalar and banked entry points.

Both transport schedules pick a nuclide from unnormalized attribution
weights the same way: build the cumulative sum and locate one uniform
variate in it.  The history path does this one particle at a time
(:func:`sample_index`); the event path does it for a whole bank at once
(:func:`sample_index_many`).  Keeping the two entry points side by side in
one module is what guarantees they implement the *same* discrete
distribution — any change to the tie-breaking or degenerate-weight rules
lands in both schedules simultaneously.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_index", "sample_index_many"]


def sample_index(weights: np.ndarray, xi: float) -> int:
    """CDF-sample an index from unnormalized ``weights`` (scalar path)."""
    cum = np.cumsum(weights)
    if cum[-1] <= 0.0:
        return int(np.argmax(weights))
    k = int(np.searchsorted(cum, xi * cum[-1], side="right"))
    return min(k, weights.shape[0] - 1)


def sample_index_many(weights: np.ndarray, xi: np.ndarray) -> np.ndarray:
    """Vectorized CDF sampling (banked path).

    ``weights`` is ``(n_choices, n_particles)``; ``xi`` is one uniform per
    particle.  Index ``j`` of the result is distributed exactly as
    ``sample_index(weights[:, j], xi[j])`` for positive total weight.
    """
    cum = np.cumsum(weights, axis=0)
    target = xi * cum[-1]
    idx = np.sum(cum <= target[None, :], axis=0)
    return np.minimum(idx, weights.shape[0] - 1)
