"""Per-nuclide continuous-energy cross-section tables.

A :class:`Nuclide` owns its private energy grid (as in ACE data, grids differ
per nuclide) and a dense ``(N_REACTIONS, n_points)`` cross-section matrix —
the struct-of-arrays layout the paper's AoS→SoA optimization produces.
Lookups are linear-linear interpolations after a binary grid search; both a
scalar path (history-based transport) and a vectorized path (banked kernels)
are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..types import N_REACTIONS, Reaction

__all__ = ["Nuclide", "NU_THERMAL_SLOPE"]

#: Slope of the (linearized) fission neutron multiplicity nu(E) = nu0 + k*E.
NU_THERMAL_SLOPE = 0.1


@dataclass
class Nuclide:
    """Continuous-energy data for one nuclide.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"U238"``.
    awr:
        Atomic weight ratio (target mass / neutron mass); drives elastic
        kinematics and Doppler width.
    energy:
        Strictly increasing grid [MeV], shape ``(n_points,)``.
    xs:
        Cross sections [barns], shape ``(N_REACTIONS, n_points)``; rows are
        indexed by :class:`repro.types.Reaction`.
    fissionable:
        Whether the fission channel is active.
    nu0:
        Fission multiplicity at thermal energy; ``nu(E) = nu0 +
        NU_THERMAL_SLOPE * E`` [per MeV].
    watt_a, watt_b:
        Watt fission-spectrum parameters [MeV], [1/MeV].
    has_urr, urr_emin, urr_emax:
        Unresolved-resonance-range flag and bounds [MeV]; probability tables
        live in the library's URR registry.
    has_sab:
        Whether an S(alpha, beta) thermal table overrides free-gas scattering
        below the thermal cutoff (e.g. H in H2O).
    """

    name: str
    awr: float
    energy: np.ndarray
    xs: np.ndarray
    fissionable: bool = False
    nu0: float = 2.43
    watt_a: float = 0.988
    watt_b: float = 2.249
    has_urr: bool = False
    urr_emin: float = 0.0
    urr_emax: float = 0.0
    has_sab: bool = False

    def __post_init__(self) -> None:
        self.energy = np.ascontiguousarray(self.energy, dtype=np.float64)
        self.xs = np.ascontiguousarray(self.xs, dtype=np.float64)
        if self.energy.ndim != 1 or self.energy.size < 2:
            raise DataError(f"{self.name}: energy grid needs >= 2 points")
        if np.any(np.diff(self.energy) <= 0):
            raise DataError(f"{self.name}: energy grid must be strictly increasing")
        if self.xs.shape != (N_REACTIONS, self.energy.size):
            raise DataError(
                f"{self.name}: xs shape {self.xs.shape} != "
                f"({N_REACTIONS}, {self.energy.size})"
            )
        if not np.all(np.isfinite(self.xs)):
            raise DataError(f"{self.name}: non-finite cross section")
        if not np.all(np.isfinite(self.energy)):
            raise DataError(f"{self.name}: non-finite energy grid")
        if np.any(self.xs < 0):
            raise DataError(f"{self.name}: negative cross section")

    # -- Introspection --------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of energy grid points."""
        return int(self.energy.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the grid + XS matrix (memory-model input)."""
        return int(self.energy.nbytes + self.xs.nbytes)

    def nu(self, energy: np.ndarray | float) -> np.ndarray | float:
        """Fission neutron multiplicity at the given energy [MeV]."""
        return self.nu0 + NU_THERMAL_SLOPE * np.asarray(energy)

    # -- Grid search -----------------------------------------------------

    def find_index(self, energy: float) -> int:
        """Binary-search the grid: index ``i`` with ``E[i] <= energy < E[i+1]``.

        Energies outside the grid clamp to the first/last interval, as
        production MC codes do.
        """
        i = int(np.searchsorted(self.energy, energy, side="right")) - 1
        return min(max(i, 0), self.n_points - 2)

    def find_index_many(self, energies: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`find_index`."""
        idx = np.searchsorted(self.energy, energies, side="right") - 1
        return np.clip(idx, 0, self.n_points - 2)

    # -- Lookups ----------------------------------------------------------

    def micro_xs(self, energy: float, index: int | None = None) -> np.ndarray:
        """All reaction cross sections at one energy [barns].

        ``index`` may carry a precomputed grid index (e.g. from a unionized
        grid) to skip the binary search — the optimization the unionized
        energy grid exists to enable.
        """
        i = self.find_index(energy) if index is None else index
        e0, e1 = self.energy[i], self.energy[i + 1]
        f = (energy - e0) / (e1 - e0)
        f = min(max(f, 0.0), 1.0)
        return (1.0 - f) * self.xs[:, i] + f * self.xs[:, i + 1]

    def micro_xs_many(
        self,
        energies: np.ndarray,
        indices: np.ndarray | None = None,
        reactions: tuple[Reaction, ...] | None = None,
    ) -> np.ndarray:
        """Vectorized lookup: shape ``(n_reactions_selected, len(energies))``.

        This is the SoA kernel: one fused interpolation across all requested
        energies, with gather indexing standing in for the hardware
        gather instructions the MIC implementation relies on.
        """
        energies = np.asarray(energies, dtype=np.float64)
        idx = self.find_index_many(energies) if indices is None else indices
        e0 = self.energy[idx]
        e1 = self.energy[idx + 1]
        f = np.clip((energies - e0) / (e1 - e0), 0.0, 1.0)
        rows = (
            slice(None)
            if reactions is None
            else np.array([int(r) for r in reactions])
        )
        lo = self.xs[rows][:, idx]
        hi = self.xs[rows][:, idx + 1]
        return (1.0 - f) * lo + f * hi

    def total_xs(self, energy: float) -> float:
        """Total microscopic cross section at one energy [barns]."""
        return float(self.micro_xs(energy)[Reaction.TOTAL])
