r"""Few-group cross-section condensation and infinite-medium eigenvalues.

The classic bridge from continuous-energy Monte Carlo to deterministic
reactor analysis: collapse a material's continuous-energy data onto a group
structure with a weighting spectrum,

.. math::

    \Sigma_{x,g} = \frac{\int_g \Sigma_x(E)\,\phi(E)\,dE}
                        {\int_g \phi(E)\,dE},

build the elastic transfer matrix from target-at-rest slowing-down
kinematics (outgoing energy uniform on :math:`[\alpha E, E]` for isotropic
CM scattering), and the fission spectrum :math:`\chi_g` from the Watt
distribution.  The infinite-medium multigroup balance

.. math::

    \left(\mathrm{diag}(\Sigma_{t,g}) - S^T\right)\phi =
    \frac{1}{k_\infty}\,\chi\,(\nu\Sigma_f)^T \phi

is solved as a generalized eigenproblem.  For flat cross sections the
group-collapsed :math:`k_\infty` equals the continuous-energy value exactly
(a test anchor); for real spectra the comparison against the Monte Carlo
eigenvalue quantifies group-structure adequacy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import ENERGY_MAX, ENERGY_MIN
from ..errors import DataError
from ..physics.fission import WATT_A, WATT_B
from ..types import Reaction
from .library import NuclideLibrary

__all__ = ["GroupStructure", "MultigroupXS", "condense"]


@dataclass(frozen=True)
class GroupStructure:
    """Energy-group boundaries [MeV], ascending; group 0 is the *fastest*
    (reactor convention), i.e. group g spans ``edges[G-g-1] .. edges[G-g]``."""

    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.size < 2 or np.any(np.diff(edges) <= 0):
            raise DataError("group edges must be ascending, >= 2 entries")
        object.__setattr__(self, "edges", edges)

    @property
    def n_groups(self) -> int:
        return int(self.edges.size - 1)

    def bounds(self, g: int) -> tuple[float, float]:
        """(low, high) energy bounds [MeV] of group ``g`` (0 = fastest)."""
        i = self.n_groups - g - 1
        return float(self.edges[i]), float(self.edges[i + 1])

    def group_of(self, energy: float) -> int:
        i = int(np.clip(
            np.searchsorted(self.edges, energy, side="right") - 1,
            0, self.n_groups - 1,
        ))
        return self.n_groups - i - 1

    @classmethod
    def two_group(cls, thermal_cut: float = 6.25e-7) -> "GroupStructure":
        """The standard fast/thermal split at 0.625 eV."""
        return cls(np.array([ENERGY_MIN, thermal_cut, ENERGY_MAX]))

    @classmethod
    def equal_lethargy(cls, n_groups: int) -> "GroupStructure":
        """n groups of equal lethargy width across the full range."""
        return cls(np.geomspace(ENERGY_MIN, ENERGY_MAX, n_groups + 1))


@dataclass
class MultigroupXS:
    """Condensed group constants for one material (macroscopic, 1/cm)."""

    structure: GroupStructure
    sigma_t: np.ndarray
    sigma_a: np.ndarray
    nu_sigma_f: np.ndarray
    #: Elastic transfer matrix: ``scatter[g, g']`` is the g -> g' macroscopic
    #: scattering cross section.
    scatter: np.ndarray
    #: Fission emission spectrum per group (sums to 1 when fissionable).
    chi: np.ndarray

    def __post_init__(self) -> None:
        g = self.structure.n_groups
        for name in ("sigma_t", "sigma_a", "nu_sigma_f", "chi"):
            if getattr(self, name).shape != (g,):
                raise DataError(f"{name} must have shape ({g},)")
        if self.scatter.shape != (g, g):
            raise DataError("scatter matrix shape mismatch")

    @property
    def n_groups(self) -> int:
        return self.structure.n_groups

    def balance_residual(self) -> np.ndarray:
        """Per-group |sigma_t - (sigma_a + total outscatter)| — zero up to
        condensation consistency (a validation diagnostic)."""
        return np.abs(self.sigma_t - (self.sigma_a + self.scatter.sum(axis=1)))

    def k_infinity(self) -> float:
        r"""Largest eigenvalue of the infinite-medium multigroup balance."""
        a = np.diag(self.sigma_t) - self.scatter.T
        b = np.outer(self.chi, self.nu_sigma_f)
        if self.nu_sigma_f.max() == 0.0:
            return 0.0
        vals = np.linalg.eigvals(np.linalg.solve(a, b))
        return float(np.max(vals.real))

    def flux(self) -> np.ndarray:
        """The fundamental-mode group flux (normalized to unit sum)."""
        a = np.diag(self.sigma_t) - self.scatter.T
        b = np.outer(self.chi, self.nu_sigma_f)
        vals, vecs = np.linalg.eig(np.linalg.solve(a, b))
        phi = np.abs(vecs[:, np.argmax(vals.real)].real)
        return phi / phi.sum()


def _watt_pdf(e: np.ndarray) -> np.ndarray:
    return np.exp(-e / WATT_A) * np.sinh(np.sqrt(WATT_B * e))


def condense(
    library: NuclideLibrary,
    material,
    structure: GroupStructure,
    weighting=None,
    points_per_group: int = 300,
) -> MultigroupXS:
    """Collapse a material onto a group structure.

    Parameters
    ----------
    weighting:
        Scalar-flux weighting spectrum ``phi(E)`` as a callable over energy
        arrays.  Default: the canonical ``1/E`` slowing-down spectrum.
        Pass e.g. ``spectrum_tally_weight(tally)`` for an MC-measured one.
    points_per_group:
        Quadrature points per group (log-spaced).
    """
    if weighting is None:
        weighting = lambda e: 1.0 / e  # noqa: E731 (canonical 1/E)
    ids, rho = material.resolve(library)
    g_count = structure.n_groups

    sigma_t = np.zeros(g_count)
    sigma_a = np.zeros(g_count)
    nu_sigma_f = np.zeros(g_count)
    sigma_el_by_nuc = np.zeros((len(ids), g_count))
    scatter = np.zeros((g_count, g_count))
    chi = np.zeros(g_count)

    for g in range(g_count):
        lo, hi = structure.bounds(g)
        e = np.geomspace(lo, hi, points_per_group)
        w = weighting(e)
        norm = np.trapezoid(w, e)
        if norm <= 0:
            raise DataError("weighting spectrum must be positive")
        # chi from the Watt pdf (unnormalized; normalized below).
        chi[g] = np.trapezoid(_watt_pdf(e), e)

        # Destination-group bounds as arrays (for the transfer kernel).
        lo_p = np.array([structure.bounds(gp)[0] for gp in range(g_count)])
        hi_p = np.array([structure.bounds(gp)[1] for gp in range(g_count)])

        for k, nid in enumerate(ids):
            nuc = library[int(nid)]
            micro = nuc.micro_xs_many(e)
            micro_el = micro[Reaction.ELASTIC]
            el = np.trapezoid(micro_el * w, e) / norm
            cap = np.trapezoid(micro[Reaction.CAPTURE] * w, e) / norm
            fis = np.trapezoid(micro[Reaction.FISSION] * w, e) / norm
            sigma_el_by_nuc[k, g] = rho[k] * el
            sigma_a[g] += rho[k] * (cap + fis)
            if nuc.fissionable:
                nu_vals = nuc.nu(e)
                nu_sigma_f[g] += (
                    rho[k]
                    * np.trapezoid(micro[Reaction.FISSION] * nu_vals * w, e)
                    / norm
                )

            # Elastic transfer: outgoing energy uniform on [alpha E, E];
            # fraction of scatters from each quadrature point landing in
            # each destination group (vectorized over destinations).
            awr = nuc.awr
            alpha = ((awr - 1.0) / (awr + 1.0)) ** 2
            span = (1.0 - alpha) * e
            overlap = np.clip(
                np.minimum(e[:, None], hi_p[None, :])
                - np.maximum(alpha * e[:, None], lo_p[None, :]),
                0.0,
                None,
            )
            frac = np.where(span[:, None] > 0, overlap / span[:, None], 0.0)
            # Self-scatter absorbs any clipped remainder (energies below
            # the group structure stay in the lowest group).
            frac[:, g_count - 1] += np.clip(1.0 - frac.sum(axis=1), 0.0, None)
            scatter[g] += rho[k] * np.trapezoid(
                (micro_el * w)[:, None] * frac, e, axis=0
            ) / norm
        sigma_t[g] = sigma_a[g] + sigma_el_by_nuc[:, g].sum()

    if chi.sum() > 0 and nu_sigma_f.max() > 0:
        chi /= chi.sum()
    else:
        chi[:] = 0.0
    return MultigroupXS(
        structure=structure,
        sigma_t=sigma_t,
        sigma_a=sigma_a,
        nu_sigma_f=nu_sigma_f,
        scatter=scatter,
        chi=chi,
    )
