r"""Doppler broadening of Breit-Wigner resonances via the |psi|-|chi| method.

At temperature :math:`T`, a single-level Breit-Wigner resonance line shape is
broadened by the thermal motion of the target nucleus.  With the dimensionless
offset :math:`x = 2 (E - E_0) / \Gamma` and Doppler parameter
:math:`\zeta = \Gamma \sqrt{A / (4 k T E_0)}`, the symmetric and antisymmetric
broadened profiles are

.. math::

    \psi(\zeta, x) = \frac{\zeta \sqrt{\pi}}{2}
        \,\mathrm{Re}\, w\!\left(\frac{\zeta x}{2} + i \frac{\zeta}{2}\right),
    \qquad
    \chi(\zeta, x) = \zeta \sqrt{\pi}
        \,\mathrm{Im}\, w\!\left(\frac{\zeta x}{2} + i \frac{\zeta}{2}\right),

where :math:`w` is the Faddeeva function (``scipy.special.wofz``).  In the
zero-temperature limit (:math:`\zeta \to \infty`) these reduce to the natural
line shapes :math:`1/(1+x^2)` and :math:`2x/(1+x^2)`.

This module is shared by the pointwise data generator
(:mod:`repro.data.resonance`) and by the multipole representation
(:mod:`repro.data.multipole`), which evaluates the same Faddeeva function per
pole — the compute kernel of RSBench (paper Fig. 8).
"""

from __future__ import annotations

import numpy as np
from scipy.special import wofz

from ..constants import K_BOLTZMANN

__all__ = ["doppler_zeta", "psi_chi", "psi", "chi", "faddeeva"]


def faddeeva(z: np.ndarray) -> np.ndarray:
    """The Faddeeva function ``w(z) = exp(-z^2) erfc(-iz)``.

    Thin wrapper over :func:`scipy.special.wofz`, named for parity with the
    paper's multipole discussion.  Accepts real or complex array input.
    """
    return wofz(z)


def doppler_zeta(
    gamma: np.ndarray | float,
    e0: np.ndarray | float,
    awr: float,
    temperature: float,
) -> np.ndarray | float:
    r"""Dimensionless Doppler parameter :math:`\zeta` for a resonance.

    Parameters
    ----------
    gamma:
        Total resonance width :math:`\Gamma` [MeV].
    e0:
        Resonance energy :math:`E_0` [MeV].
    awr:
        Atomic weight ratio of the target (mass / neutron mass).
    temperature:
        Material temperature [K].  ``temperature=0`` returns ``inf``
        (natural, unbroadened line shape).
    """
    if temperature <= 0.0:
        return np.inf * np.ones_like(np.asarray(gamma, dtype=float)) if np.ndim(
            gamma
        ) else np.inf
    kt = K_BOLTZMANN * temperature
    return np.asarray(gamma) * np.sqrt(awr / (4.0 * kt * np.asarray(e0)))


def psi_chi(
    zeta: np.ndarray | float, x: np.ndarray | float
) -> tuple[np.ndarray, np.ndarray]:
    r"""Evaluate :math:`\psi(\zeta, x)` and :math:`\chi(\zeta, x)` together.

    Both profiles share one Faddeeva evaluation, so computing them jointly
    halves the work — the same economy the multipole method exploits.
    Handles the :math:`\zeta = \infty` (0 K) limit exactly.
    """
    zeta = np.asarray(zeta, dtype=float)
    x = np.asarray(x, dtype=float)
    zeta_b, x_b = np.broadcast_arrays(zeta, x)
    psi_out = np.empty(zeta_b.shape, dtype=float)
    chi_out = np.empty(zeta_b.shape, dtype=float)

    cold = ~np.isfinite(zeta_b)
    if cold.any():
        denom = 1.0 + x_b[cold] ** 2
        psi_out[cold] = 1.0 / denom
        chi_out[cold] = 2.0 * x_b[cold] / denom
    warm = ~cold
    if warm.any():
        z = 0.5 * zeta_b[warm] * (x_b[warm] + 1j)
        w = wofz(z)
        root_pi = np.sqrt(np.pi)
        psi_out[warm] = 0.5 * zeta_b[warm] * root_pi * w.real
        chi_out[warm] = zeta_b[warm] * root_pi * w.imag
    if psi_out.ndim == 0:
        return float(psi_out), float(chi_out)
    return psi_out, chi_out


def psi(zeta: np.ndarray | float, x: np.ndarray | float) -> np.ndarray:
    r"""Symmetric broadened profile :math:`\psi` (capture/fission shape)."""
    return psi_chi(zeta, x)[0]


def chi(zeta: np.ndarray | float, x: np.ndarray | float) -> np.ndarray:
    r"""Antisymmetric broadened profile :math:`\chi` (interference shape)."""
    return psi_chi(zeta, x)[1]
