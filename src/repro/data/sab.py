"""S(alpha, beta) thermal-scattering tables.

Below a few eV, neutrons scatter off nuclei *bound* in molecules or crystals
(H in water, C in graphite, ...), not off free targets.  ACE-format thermal
tables provide an incoherent-inelastic cross section plus, for each incident
energy, a tabulated distribution of outgoing energies and a small set of
discrete scattering cosines per outgoing energy.

Sampling is intensely branchy — locate the incident-energy row, CDF-search
the outgoing energy, then pick a discrete cosine — which is why the paper had
to remove the S(alpha, beta) blocks to vectorize its micro-benchmarks.  Both
a scalar sampler and a gather-based vectorized sampler are provided here so
that cost can be measured rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import K_BOLTZMANN, THERMAL_CUTOFF
from ..errors import DataError

__all__ = ["SabTable", "build_sab_table"]


@dataclass
class SabTable:
    """Incoherent-inelastic thermal scattering data for one nuclide.

    Attributes
    ----------
    e_in:
        Incident energy grid [MeV], increasing, spanning the thermal range up
        to the cutoff.
    xs:
        Inelastic thermal cross section [barns] at each incident energy; it
        *replaces* the free elastic cross section below the cutoff.
    e_out:
        Outgoing-energy table, shape ``(n_in, n_out)``; row ``i`` holds the
        equiprobable outgoing energies for incident energy ``e_in[i]``.
    mu:
        Discrete scattering cosines, shape ``(n_in, n_out, n_mu)``;
        equiprobable within each (incident, outgoing) cell.
    """

    e_in: np.ndarray
    xs: np.ndarray
    e_out: np.ndarray
    mu: np.ndarray

    def __post_init__(self) -> None:
        self.e_in = np.asarray(self.e_in, dtype=np.float64)
        self.xs = np.asarray(self.xs, dtype=np.float64)
        self.e_out = np.asarray(self.e_out, dtype=np.float64)
        self.mu = np.asarray(self.mu, dtype=np.float64)
        n_in = self.e_in.size
        if n_in < 2 or np.any(np.diff(self.e_in) <= 0):
            raise DataError("S(a,b) incident grid must be increasing, >= 2 points")
        if self.xs.shape != (n_in,):
            raise DataError("S(a,b) xs must match incident grid")
        if self.e_out.ndim != 2 or self.e_out.shape[0] != n_in:
            raise DataError("S(a,b) e_out must be (n_in, n_out)")
        if self.mu.shape[:2] != self.e_out.shape:
            raise DataError("S(a,b) mu must be (n_in, n_out, n_mu)")
        if np.any(self.e_out <= 0):
            raise DataError("S(a,b) outgoing energies must be positive")
        if np.any(np.abs(self.mu) > 1.0):
            raise DataError("S(a,b) cosines must lie in [-1, 1]")

    @property
    def cutoff(self) -> float:
        """Upper energy bound of the thermal treatment [MeV]."""
        return float(self.e_in[-1])

    @property
    def n_out(self) -> int:
        return int(self.e_out.shape[1])

    @property
    def n_mu(self) -> int:
        return int(self.mu.shape[2])

    @property
    def nbytes(self) -> int:
        """Bytes held by the tables (memory-model input)."""
        return int(
            self.e_in.nbytes + self.xs.nbytes + self.e_out.nbytes + self.mu.nbytes
        )

    def thermal_xs(self, energy: np.ndarray | float) -> np.ndarray | float:
        """Interpolated inelastic thermal cross section [barns]."""
        return np.interp(energy, self.e_in, self.xs)

    # -- Sampling ----------------------------------------------------------

    def sample(self, energy: float, xi1: float, xi2: float) -> tuple[float, float]:
        """Scalar sampler: return (outgoing energy, scattering cosine).

        Three data-dependent selections (row, outgoing bin, cosine bin) —
        the control-flow divergence the paper calls out.
        """
        row = int(np.searchsorted(self.e_in, energy, side="right")) - 1
        row = min(max(row, 0), self.e_in.size - 1)
        j = min(int(xi1 * self.n_out), self.n_out - 1)
        k = min(int(xi2 * self.n_mu), self.n_mu - 1)
        return float(self.e_out[row, j]), float(self.mu[row, j, k])

    def sample_many(
        self, energies: np.ndarray, xi1: np.ndarray, xi2: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized sampler over a bank of particles.

        The row/bin selections become integer gathers into the 3-D table —
        exactly the gather/scatter transformation the banking method requires
        for branchy physics.
        """
        energies = np.asarray(energies, dtype=np.float64)
        rows = np.searchsorted(self.e_in, energies, side="right") - 1
        np.minimum(rows, self.e_in.size - 1, out=rows)
        np.maximum(rows, 0, out=rows)
        j = np.minimum((np.asarray(xi1) * self.n_out).astype(np.int64), self.n_out - 1)
        k = np.minimum((np.asarray(xi2) * self.n_mu).astype(np.int64), self.n_mu - 1)
        return self.e_out[rows, j], self.mu[rows, j, k]


def build_sab_table(
    rng: np.random.Generator,
    *,
    temperature: float,
    free_xs: float = 20.0,
    n_in: int = 24,
    n_out: int = 16,
    n_mu: int = 4,
    cutoff: float = THERMAL_CUTOFF,
) -> SabTable:
    """Generate a synthetic bound-scatterer table (H-in-H2O-like).

    The inelastic cross section rises above the free-atom value toward low
    energy (bound enhancement ~ (1 + 1/A)^2 with molecular effects), and the
    outgoing spectrum relaxes toward a Maxwellian at the material
    temperature with increasing upscatter probability at low incident energy.
    """
    kt = K_BOLTZMANN * temperature
    e_in = np.geomspace(1.0e-11, cutoff, n_in)
    # Bound enhancement decays smoothly to the free value at the cutoff.
    enhancement = 1.0 + 3.0 / (1.0 + (e_in / kt) ** 0.8)
    xs = free_xs * enhancement

    # Outgoing energies: equiprobable points of a Maxwellian-relaxed
    # distribution centered between E_in and kT.
    quantiles = (np.arange(n_out) + 0.5) / n_out
    e_out = np.empty((n_in, n_out))
    for i, e in enumerate(e_in):
        relax = 0.6  # fraction of the way toward thermal equilibrium
        center = (1.0 - relax) * e + relax * kt
        width = 0.8 * center
        # Equiprobable bins of a shifted gamma-like spectrum (always > 0).
        raw = center + width * np.log(quantiles / (1.0 - quantiles + 1e-12))
        e_out[i] = np.clip(np.sort(raw), 1e-12, None)

    # Discrete cosines: mildly forward-biased, jittered per cell, sorted so
    # each cell's cosines are equiprobable and increasing.
    base = np.linspace(-0.9, 0.9, n_mu)
    mu = base[None, None, :] + 0.08 * rng.standard_normal((n_in, n_out, n_mu))
    mu = np.clip(np.sort(mu, axis=2), -1.0, 1.0)
    return SabTable(e_in=e_in, xs=xs, e_out=e_out, mu=mu)
