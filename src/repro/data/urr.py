"""Unresolved-resonance-range (URR) probability tables (Levitt's method).

In the unresolved range, individual resonances cannot be measured, so
continuous-energy MC codes sample the cross section from *probability
tables*: for each energy band, a small table of cumulative probabilities and
cross-section multipliers per reaction.  A lookup draws one random number,
binary-searches the band's CDF, and scales the smooth cross sections by the
selected column's factors.

This is one of the two "branchy" physics treatments (with S(alpha, beta))
that the paper had to strip out of its banked micro-benchmarks to achieve
vectorization — the per-particle band search and CDF search diverge across a
bank.  We implement both a scalar path and a gather-based vectorized path so
the cost of that divergence is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..types import N_REACTIONS, Reaction

__all__ = ["URRTable", "build_urr_table"]


@dataclass
class URRTable:
    """Probability tables for one nuclide's unresolved range.

    Attributes
    ----------
    band_edges:
        Energy band boundaries [MeV], shape ``(n_bands + 1,)``, increasing.
    cdf:
        Cumulative probabilities per band, shape ``(n_bands, n_cols)``;
        each row increases to exactly 1.
    factors:
        Cross-section multipliers, shape ``(N_REACTIONS, n_bands, n_cols)``.
        Each band's mean factor is ~1 so URR sampling is unbiased relative
        to the smooth cross section.
    """

    band_edges: np.ndarray
    cdf: np.ndarray
    factors: np.ndarray

    def __post_init__(self) -> None:
        self.band_edges = np.asarray(self.band_edges, dtype=np.float64)
        self.cdf = np.asarray(self.cdf, dtype=np.float64)
        self.factors = np.asarray(self.factors, dtype=np.float64)
        nb = self.band_edges.size - 1
        if nb < 1:
            raise DataError("URR table needs at least one band")
        if np.any(np.diff(self.band_edges) <= 0):
            raise DataError("URR band edges must increase")
        if self.cdf.shape[0] != nb:
            raise DataError("cdf rows must match number of bands")
        if self.factors.shape != (N_REACTIONS, nb, self.cdf.shape[1]):
            raise DataError("factors shape mismatch")
        if not np.allclose(self.cdf[:, -1], 1.0):
            raise DataError("each CDF row must end at 1")
        if np.any(np.diff(self.cdf, axis=1) < 0):
            raise DataError("CDF rows must be non-decreasing")

    @property
    def emin(self) -> float:
        """Lower bound of the unresolved range [MeV]."""
        return float(self.band_edges[0])

    @property
    def emax(self) -> float:
        """Upper bound of the unresolved range [MeV]."""
        return float(self.band_edges[-1])

    @property
    def n_bands(self) -> int:
        return int(self.band_edges.size - 1)

    @property
    def n_cols(self) -> int:
        return int(self.cdf.shape[1])

    def contains(self, energy: np.ndarray | float) -> np.ndarray | bool:
        """Whether the energy lies in the unresolved range."""
        e = np.asarray(energy)
        result = (e >= self.emin) & (e < self.emax)
        return bool(result) if result.ndim == 0 else result

    def band_index(self, energy: float) -> int:
        """Band containing ``energy`` (clamped to valid range)."""
        i = int(np.searchsorted(self.band_edges, energy, side="right")) - 1
        return min(max(i, 0), self.n_bands - 1)

    # -- Sampling ----------------------------------------------------------

    def sample_factors(self, energy: float, xi: float) -> np.ndarray:
        """Scalar path: multipliers for all reactions at one lookup.

        Two data-dependent searches (band, then CDF column) — the control
        divergence that resists SIMD.
        """
        band = self.band_index(energy)
        col = int(np.searchsorted(self.cdf[band], xi, side="right"))
        col = min(col, self.n_cols - 1)
        return self.factors[:, band, col]

    def sample_factors_many(
        self, energies: np.ndarray, xis: np.ndarray
    ) -> np.ndarray:
        """Vectorized path: shape ``(N_REACTIONS, n)`` multipliers.

        The searches become gathers: a vectorized band search plus a
        per-particle CDF search implemented as a comparison-count — the
        gather/compress pattern the paper says replaces conditionals.
        """
        energies = np.asarray(energies, dtype=np.float64)
        xis = np.asarray(xis, dtype=np.float64)
        cdf = self.cdf
        bands = self.band_edges.searchsorted(energies, side="right") - 1
        np.minimum(bands, cdf.shape[0] - 1, out=bands)
        np.maximum(bands, 0, out=bands)
        # Column = count of CDF entries <= xi, computed branch-free.
        row_cdf = cdf[bands]  # (n, n_cols) gather
        cols = np.add.reduce(row_cdf < xis[:, None], axis=1, dtype=np.intp)
        np.minimum(cols, cdf.shape[1] - 1, out=cols)
        return self.factors[:, bands, cols]

    @property
    def nbytes(self) -> int:
        """Bytes held by the tables (memory-model input)."""
        return int(self.band_edges.nbytes + self.cdf.nbytes + self.factors.nbytes)


def build_urr_table(
    rng: np.random.Generator,
    *,
    emin: float,
    emax: float,
    n_bands: int = 16,
    n_cols: int = 20,
    spread: float = 0.6,
    fissionable: bool = False,
) -> URRTable:
    """Generate a synthetic probability table.

    Factors are lognormal with unit mean (so the expected sampled cross
    section equals the smooth one) and the spread controls how violently the
    unresolved fluctuations swing — larger for low bands, shrinking toward
    the smooth limit at the top of the range, as real tables do.
    """
    if emax <= emin:
        raise DataError("URR range must have emax > emin")
    band_edges = np.geomspace(emin, emax, n_bands + 1)
    # Random but normalized CDF per band.
    pdf = 0.2 + rng.random((n_bands, n_cols))
    cdf = np.cumsum(pdf, axis=1)
    cdf /= cdf[:, -1:]
    cdf[:, -1] = 1.0

    factors = np.empty((N_REACTIONS, n_bands, n_cols))
    taper = np.linspace(1.0, 0.25, n_bands)[None, :, None]
    sigma = spread * taper
    raw = rng.lognormal(mean=0.0, sigma=spread, size=(N_REACTIONS, n_bands, n_cols))
    # Blend toward 1 with the taper, then normalize each band's probability-
    # weighted mean factor to exactly 1 (unbiased sampling).
    factors = 1.0 + (raw - 1.0) * (sigma / spread)
    pdf_norm = np.diff(np.concatenate([np.zeros((n_bands, 1)), cdf], axis=1), axis=1)
    mean = np.sum(factors * pdf_norm[None], axis=2, keepdims=True)
    factors /= mean
    np.maximum(factors, 1e-3, out=factors)
    if not fissionable:
        factors[Reaction.FISSION] = 1.0
    # TOTAL must stay consistent: recompute below in the lookup layer; here
    # we simply reuse the elastic factor pattern for TOTAL so the table is
    # self-consistent for direct total lookups.
    return URRTable(band_edges=band_edges, cdf=cdf, factors=factors)
