r"""Synthetic resonance ladders and pointwise cross-section reconstruction.

The paper evaluates on ENDF-derived ACE libraries, which we do not have
offline.  The performance-relevant properties of that data are structural —
thousands of energy points per nuclide, sharp resonances that force fine local
grids, per-nuclide grids that force repeated grid searches — so we generate
statistically realistic ladders instead:

* resonance energies follow the **Wigner surmise** for level spacings,
* neutron widths follow a **Porter-Thomas** (chi-squared, 1 dof) distribution,
* line shapes are **single-level Breit-Wigner**, Doppler-broadened with the
  :math:`\psi`-:math:`\chi` profiles of :mod:`repro.data.doppler`,
* thermal capture follows the usual :math:`1/v` law, and elastic scattering
  tends to the potential-scattering cross section between resonances.

Every ladder is produced deterministically from the nuclide's name and a
library seed, so libraries are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import ENERGY_MAX, ENERGY_MIN
from ..errors import DataError
from .doppler import doppler_zeta, psi_chi

__all__ = ["ResonanceLadder", "sample_ladder", "reconstruct_xs", "build_energy_grid"]

#: Peak-cross-section prefactor :math:`4\pi\lambda\!\!\bar{}^2 = 2.608\times
#: 10^6 / E[\mathrm{eV}]` barns, i.e. ``2.608 barn-MeV`` with energies in MeV
#: (the textbook SLBW constant; statistical factor g folded into the widths).
SIGMA0_CONST_BARN_MEV = 2.608

#: Gaussian taper half-width (in line half-widths x) applied to the
#: interference term so its 1/x tails do not swamp potential scattering far
#: from resonance — multi-level evaluations cancel those tails physically.
_INTERFERENCE_TAPER = 30.0


@dataclass
class ResonanceLadder:
    """Resonance parameters for one nuclide.

    Arrays are aligned: entry ``j`` describes resonance ``j``.
    All widths and energies are in MeV.
    """

    #: Resonance energies :math:`E_0` [MeV], strictly increasing.
    e0: np.ndarray
    #: Neutron (elastic) widths :math:`\Gamma_n` [MeV].
    gamma_n: np.ndarray
    #: Radiative capture widths :math:`\Gamma_\gamma` [MeV].
    gamma_g: np.ndarray
    #: Fission widths :math:`\Gamma_f` [MeV] (zeros for non-fissionable).
    gamma_f: np.ndarray
    #: Potential-scattering cross section [barns].
    sigma_pot: float
    #: Thermal (2200 m/s) capture cross section [barns] for the 1/v component.
    sigma_thermal_capture: float
    #: Thermal fission cross section [barns] for the 1/v component.
    sigma_thermal_fission: float = 0.0

    def __post_init__(self) -> None:
        n = self.e0.shape[0]
        for name in ("gamma_n", "gamma_g", "gamma_f"):
            if getattr(self, name).shape[0] != n:
                raise DataError(f"ladder array {name!r} length mismatch")
        if n and np.any(np.diff(self.e0) <= 0):
            raise DataError("resonance energies must be strictly increasing")

    @property
    def n_resonances(self) -> int:
        return int(self.e0.shape[0])

    @property
    def gamma_total(self) -> np.ndarray:
        """Total widths :math:`\\Gamma = \\Gamma_n+\\Gamma_\\gamma+\\Gamma_f`."""
        return self.gamma_n + self.gamma_g + self.gamma_f


def sample_ladder(
    rng: np.random.Generator,
    *,
    fissionable: bool,
    n_resonances: int,
    e_first: float = 5.0e-6,
    mean_spacing: float = 20.0e-6,
    mean_gamma_n: float = 2.0e-9,
    mean_gamma_g: float = 23.0e-9,
    mean_gamma_f: float = 50.0e-9,
    sigma_pot: float = 11.3,
    sigma_thermal_capture: float = 2.7,
    sigma_thermal_fission: float = 0.0,
) -> ResonanceLadder:
    """Draw a statistically realistic resonance ladder.

    Defaults are loosely modelled on U-238's resolved range (first resonance
    near 6.7 eV, ~20 eV mean spacing, meV-scale widths).

    Parameters
    ----------
    rng:
        NumPy generator; pass a seeded generator for reproducibility.
    fissionable:
        If true, fission widths are drawn (Porter-Thomas); otherwise zero.
    n_resonances:
        Number of resonances in the resolved range.
    e_first, mean_spacing:
        Energy of the first resonance and the mean level spacing [MeV].
    mean_gamma_n, mean_gamma_g, mean_gamma_f:
        Mean partial widths [MeV].
    """
    if n_resonances < 0:
        raise DataError("n_resonances must be non-negative")
    # Wigner surmise: P(s) ~ (pi s / 2 D^2) exp(-pi s^2 / 4 D^2);
    # inverse-CDF sampling gives s = D * sqrt(-(4/pi) ln(1 - xi)).
    xi = rng.random(n_resonances)
    spacings = mean_spacing * np.sqrt(-(4.0 / np.pi) * np.log1p(-xi))
    if n_resonances:
        e0 = e_first + np.concatenate([[0.0], np.cumsum(spacings[:-1])])
    else:
        e0 = np.empty(0)
    # Porter-Thomas (chi^2, 1 dof): width = mean * z^2 with z ~ N(0,1).
    gamma_n = mean_gamma_n * rng.standard_normal(n_resonances) ** 2
    # Capture widths have many exit channels -> nearly constant.
    gamma_g = mean_gamma_g * (0.8 + 0.4 * rng.random(n_resonances))
    if fissionable:
        gamma_f = mean_gamma_f * rng.standard_normal(n_resonances) ** 2
    else:
        gamma_f = np.zeros(n_resonances)
    # Floor the neutron width so no resonance degenerates to zero strength.
    gamma_n = np.maximum(gamma_n, 1e-3 * mean_gamma_n)
    return ResonanceLadder(
        e0=e0,
        gamma_n=gamma_n,
        gamma_g=gamma_g,
        gamma_f=gamma_f,
        sigma_pot=sigma_pot,
        sigma_thermal_capture=sigma_thermal_capture,
        sigma_thermal_fission=sigma_thermal_fission,
    )


def build_energy_grid(
    ladder: ResonanceLadder,
    *,
    n_base: int = 600,
    points_per_resonance: int = 12,
    e_min: float = ENERGY_MIN,
    e_max: float = ENERGY_MAX,
) -> np.ndarray:
    """Union energy grid: a log-spaced backbone plus clusters at resonances.

    Real evaluated data concentrates grid points where the cross section
    varies fastest; we mirror that by inserting ``points_per_resonance``
    points across ±12 total widths of every resonance, spaced by ``tanh`` so
    density peaks at the line center.
    """
    base = np.geomspace(e_min, e_max, n_base)
    if ladder.n_resonances == 0 or points_per_resonance <= 0:
        return base
    gamma = ladder.gamma_total
    # tanh spacing in [-1, 1] concentrates points near 0 (the peak).
    t = np.linspace(-1.0, 1.0, points_per_resonance)
    offsets = np.tanh(2.0 * t) / np.tanh(2.0)  # still in [-1, 1]
    local = ladder.e0[:, None] + 12.0 * gamma[:, None] * offsets[None, :]
    # Always tabulate the exact peak energies.
    grid = np.unique(np.concatenate([base, local.ravel(), ladder.e0]))
    return grid[(grid >= e_min) & (grid <= e_max)]


def reconstruct_xs(
    ladder: ResonanceLadder,
    energies: np.ndarray,
    *,
    awr: float,
    temperature: float,
    wofz_window: float = 50.0,
) -> dict[str, np.ndarray]:
    r"""Evaluate SLBW pointwise cross sections on an energy grid.

    Returns a dict with keys ``"elastic"``, ``"capture"``, ``"fission"`` and
    ``"total"`` (barns).  Components:

    * capture/fission: :math:`\sigma_0 (\Gamma_x/\Gamma) \sqrt{E_0/E}\,
      \psi(\zeta, x)` summed over resonances, plus a :math:`1/v` thermal tail;
    * elastic: potential scattering plus the resonance term
      :math:`\sigma_0 [ (\Gamma_n/\Gamma) \psi + (R/\lambda\!\!\bar{})
      \chi ]` (interference approximated with a fixed ratio);
    * total: the sum.

    The evaluation cost is O(n_resonances × n_energies) — batched over
    energies with NumPy, which is itself an instance of the paper's theme
    (vectorize the inner loop).  The Faddeeva function is only evaluated
    within ``wofz_window`` half-widths of each line center; beyond that,
    Doppler broadening is negligible and the cheap natural (0 K) Lorentzian
    shape is used, keeping library construction fast for 320-nuclide models.
    """
    energies = np.asarray(energies, dtype=float)
    if np.any(energies <= 0):
        raise DataError("energies must be positive")
    n_e = energies.shape[0]
    elastic = np.full(n_e, ladder.sigma_pot, dtype=float)
    capture = np.zeros(n_e, dtype=float)
    fission = np.zeros(n_e, dtype=float)

    # 1/v thermal components, normalized at 0.0253 eV.
    e_thermal = 2.53e-8  # MeV
    inv_v = np.sqrt(e_thermal / energies)
    capture += ladder.sigma_thermal_capture * inv_v
    fission += ladder.sigma_thermal_fission * inv_v

    if ladder.n_resonances:
        gamma = ladder.gamma_total
        # Peak cross section sigma_0 = 4 pi lambda-bar^2 Gamma_n / Gamma.
        sigma0 = SIGMA0_CONST_BARN_MEV / ladder.e0 * (ladder.gamma_n / gamma)
        zeta = doppler_zeta(gamma, ladder.e0, awr, temperature)
        # Resonance-potential interference amplitude: sqrt(sigma0 * sigma_pot).
        interference = np.sqrt(sigma0 * ladder.sigma_pot)

        # Chunk over resonances to bound the temporary (n_res, n_e) arrays.
        chunk = max(1, int(4.0e6 // max(n_e, 1)))
        zeta_arr = np.atleast_1d(np.asarray(zeta, dtype=float))
        for start in range(0, ladder.n_resonances, chunk):
            sl = slice(start, start + chunk)
            x = 2.0 * (energies[None, :] - ladder.e0[sl, None]) / gamma[sl, None]
            # Far wings: natural Lorentzian shapes (Doppler negligible there).
            denom = 1.0 + x * x
            psi_v = 1.0 / denom
            chi_v = 2.0 * x / denom
            near = np.abs(x) <= wofz_window
            if near.any():
                zeta_b = np.broadcast_to(zeta_arr[sl, None], x.shape)
                psi_n, chi_n = psi_chi(zeta_b[near], x[near])
                psi_v[near] = psi_n
                chi_v[near] = chi_n
            sqrt_ratio = np.sqrt(ladder.e0[sl, None] / energies[None, :])
            strength = sigma0[sl, None] * sqrt_ratio
            capture += np.sum(
                strength * (ladder.gamma_g[sl, None] / gamma[sl, None]) * psi_v,
                axis=0,
            )
            fission += np.sum(
                strength * (ladder.gamma_f[sl, None] / gamma[sl, None]) * psi_v,
                axis=0,
            )
            taper = np.exp(-((x / _INTERFERENCE_TAPER) ** 2))
            elastic += np.sum(
                strength * (ladder.gamma_n[sl, None] / gamma[sl, None]) * psi_v
                + interference[sl, None]
                * np.sqrt(ladder.e0[sl, None] / energies[None, :])
                * chi_v
                * taper,
                axis=0,
            )

    # Interference can drive SLBW elastic slightly negative between
    # resonances; clamp as evaluated libraries do.
    np.clip(elastic, 0.0, None, out=elastic)
    total = elastic + capture + fission
    return {
        "elastic": elastic,
        "capture": capture,
        "fission": fission,
        "total": total,
    }
