"""Unionized energy grid (Leppänen's double-indexing method).

The dominant cost of the macroscopic cross-section kernel is the per-nuclide
binary search of each nuclide's private energy grid.  Leppänen's unionized
grid replaces those searches with **one** search of a global grid (the union
of all nuclide grids) plus a precomputed index matrix mapping every union
point to the enclosing interval of every nuclide grid — turning O(nuclides ×
log points) searches into O(log union) + O(nuclides) gathers.

The price is memory: the index matrix is ``n_nuclides × n_union`` entries,
which is why Table II's "energy grid size transferred" reaches 8.37 GB for
H.M. Large at paper fidelity.  :meth:`UnionizedGrid.nbytes` feeds the machine
memory model; ``max_points`` optionally thins the union grid (a standard
fidelity/memory trade-off, also from Leppänen's paper).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .library import NuclideLibrary

__all__ = ["UnionizedGrid"]


class UnionizedGrid:
    """Union grid + per-nuclide index matrix over a library.

    Attributes
    ----------
    energy:
        The union grid [MeV], strictly increasing, shape ``(n_union,)``.
    indices:
        ``int32`` matrix of shape ``(n_nuclides, n_union)``; entry ``[i, u]``
        is the interval index ``j`` of nuclide ``i`` such that
        ``nuc.energy[j] <= energy[u] < nuc.energy[j+1]`` (clamped at the
        ends).  A union search plus this gather replaces each nuclide's
        binary search.
    """

    def __init__(self, library: NuclideLibrary, max_points: int | None = None):
        self.library = library
        grids = [n.energy for n in library]
        union = np.unique(np.concatenate(grids))
        if max_points is not None and union.size > max_points:
            if max_points < 2:
                raise DataError("max_points must be >= 2")
            # Thin by rank, always keeping the end points.
            pick = np.linspace(0, union.size - 1, max_points).round().astype(int)
            union = union[np.unique(pick)]
        self.energy = np.ascontiguousarray(union)
        n_union = self.energy.size
        self.indices = np.empty((len(library), n_union), dtype=np.int32)
        for i, nuc in enumerate(library):
            idx = np.searchsorted(nuc.energy, self.energy, side="right") - 1
            np.clip(idx, 0, nuc.n_points - 2, out=idx)
            self.indices[i] = idx

    # -- Introspection --------------------------------------------------------

    @property
    def n_union(self) -> int:
        """Number of union grid points."""
        return int(self.energy.size)

    @property
    def nbytes(self) -> int:
        """Bytes of the union grid + index matrix (memory-model input)."""
        return int(self.energy.nbytes + self.indices.nbytes)

    # -- Searches ---------------------------------------------------------------

    def search(self, energy: float) -> int:
        """Single binary search of the union grid."""
        u = int(np.searchsorted(self.energy, energy, side="right")) - 1
        return min(max(u, 0), self.n_union - 2)

    def search_many(self, energies: np.ndarray) -> np.ndarray:
        """Vectorized union-grid search for a bank of energies."""
        u = self.energy.searchsorted(energies, side="right") - 1
        np.minimum(u, self.energy.size - 2, out=u)
        np.maximum(u, 0, out=u)
        return u

    def nuclide_index(self, nuclide_id: int, union_index: int) -> int:
        """Gather the precomputed per-nuclide interval for a union point."""
        return int(self.indices[nuclide_id, union_index])

    def nuclide_indices(
        self, nuclide_id: int, union_indices: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`nuclide_index` over a bank."""
        return self.indices[nuclide_id, union_indices]
