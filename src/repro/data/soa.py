"""Struct-of-arrays and array-of-structs library layouts.

The paper's single most important optimization for the banked kernels was the
**AoS -> SoA transformation** of the Fortran derived-type cross-section data.
This module provides both layouts over the same library so the effect is
measurable (the paper's design-choice ablation #1):

* :class:`SoALibrary` — all nuclide grids concatenated into flat contiguous
  arrays (one per quantity) with per-nuclide offsets.  Vectorized lookups
  become pure gathers: unit-stride within a quantity, SIMD-friendly.
* :class:`AoSLibrary` — one interleaved structured-dtype record array per
  nuclide (energy and the four cross sections adjacent in memory per point).
  Field access is strided (stride = record size), the layout compilers get
  from arrays of structs, which defeats unit-stride vector loads.
"""

from __future__ import annotations

import numpy as np

from ..types import N_REACTIONS, Reaction
from .library import NuclideLibrary

__all__ = ["SoALibrary", "AoSLibrary"]

#: Interleaved per-point record: the AoS layout.
AOS_DTYPE = np.dtype(
    [
        ("energy", np.float64),
        ("total", np.float64),
        ("elastic", np.float64),
        ("capture", np.float64),
        ("fission", np.float64),
    ]
)

_FIELD_BY_REACTION = {
    Reaction.TOTAL: "total",
    Reaction.ELASTIC: "elastic",
    Reaction.CAPTURE: "capture",
    Reaction.FISSION: "fission",
}


class SoALibrary:
    """Flat struct-of-arrays view of a :class:`NuclideLibrary`.

    Attributes
    ----------
    offsets:
        ``(n_nuclides + 1,)`` start offsets of each nuclide's grid within the
        flat arrays; nuclide ``i`` owns ``[offsets[i], offsets[i+1])``.
    energy:
        All grids concatenated, shape ``(total_points,)``.
    xs:
        All cross sections concatenated, shape ``(N_REACTIONS, total_points)``.
    awr, nu0, fissionable:
        Per-nuclide scalars as dense arrays.
    has_sab, sab_cutoff, watt_a, watt_b, has_urr, urr_emin, urr_emax:
        Per-nuclide metadata side-tables.  The event loop's collision stages
        index these with *arrays of chosen nuclide ids*, so per-particle
        questions like "does my target have an S(alpha, beta) table, and am I
        below its cutoff?" are single gathers instead of Python loops over
        the library.
    sab_tables:
        Per-nuclide S(alpha, beta) table references (``None`` where absent),
        so kernels can reach a table by dense id without name lookups.
    """

    def __init__(self, library: NuclideLibrary) -> None:
        self.library = library
        sizes = np.array([n.n_points for n in library], dtype=np.int64)
        self.offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.energy = np.concatenate([n.energy for n in library])
        self.xs = np.concatenate([n.xs for n in library], axis=1)
        self.awr = np.array([n.awr for n in library])
        self.nu0 = np.array([n.nu0 for n in library])
        self.fissionable = np.array([n.fissionable for n in library])
        self.has_sab = np.array([n.has_sab for n in library], dtype=bool)
        self.sab_tables = [
            library.sab[n.name] if n.has_sab else None for n in library
        ]
        self.sab_cutoff = np.array(
            [
                library.sab[n.name].cutoff if n.has_sab else 0.0
                for n in library
            ]
        )
        self.watt_a = np.array([n.watt_a for n in library])
        self.watt_b = np.array([n.watt_b for n in library])
        self.has_urr = np.array([n.has_urr for n in library], dtype=bool)
        self.urr_emin = np.array([n.urr_emin for n in library])
        self.urr_emax = np.array([n.urr_emax for n in library])

    @property
    def n_nuclides(self) -> int:
        return len(self.library)

    @property
    def total_points(self) -> int:
        return int(self.offsets[-1])

    @property
    def nbytes(self) -> int:
        return int(
            self.offsets.nbytes
            + self.energy.nbytes
            + self.xs.nbytes
            + self.awr.nbytes
            + self.nu0.nbytes
            + self.fissionable.nbytes
            + self.has_sab.nbytes
            + self.sab_cutoff.nbytes
            + self.watt_a.nbytes
            + self.watt_b.nbytes
            + self.has_urr.nbytes
            + self.urr_emin.nbytes
            + self.urr_emax.nbytes
        )

    def micro_xs_gather(
        self,
        nuclide_id: int,
        energies: np.ndarray,
        local_indices: np.ndarray,
    ) -> np.ndarray:
        """Vectorized micro-XS for one nuclide across a bank.

        ``local_indices`` are interval indices within the nuclide's own grid
        (e.g. from the unionized index matrix).  Returns
        ``(N_REACTIONS, n)``.  Unit-stride loads within each reaction row —
        the SoA payoff.
        """
        base = self.offsets[nuclide_id]
        idx = base + np.asarray(local_indices, dtype=np.int64)
        e0 = self.energy[idx]
        e1 = self.energy[idx + 1]
        f = np.clip((energies - e0) / (e1 - e0), 0.0, 1.0)
        return (1.0 - f) * self.xs[:, idx] + f * self.xs[:, idx + 1]

    def micro_total_across_nuclides(
        self, energy: float, local_indices: np.ndarray
    ) -> np.ndarray:
        """Total micro-XS of *every* nuclide at one energy.

        ``local_indices`` is a column of the unionized index matrix (one
        interval index per nuclide).  This is the gather pattern of
        vectorizing the *outer* (particle) loop transposed: one particle,
        all nuclides at once.
        """
        idx = self.offsets[:-1] + np.asarray(local_indices, dtype=np.int64)
        e0 = self.energy[idx]
        e1 = self.energy[idx + 1]
        f = np.clip((energy - e0) / (e1 - e0), 0.0, 1.0)
        row = self.xs[Reaction.TOTAL]
        return (1.0 - f) * row[idx] + f * row[idx + 1]


class AoSLibrary:
    """Interleaved array-of-structs layout (the ablation baseline).

    Per-nuclide record arrays with dtype :data:`AOS_DTYPE`; every lookup
    touches one 40-byte record, and vector lookups over a bank become
    strided/gathered field accesses.
    """

    def __init__(self, library: NuclideLibrary) -> None:
        self.library = library
        self.records: list[np.ndarray] = []
        for nuc in library:
            rec = np.empty(nuc.n_points, dtype=AOS_DTYPE)
            rec["energy"] = nuc.energy
            rec["total"] = nuc.xs[Reaction.TOTAL]
            rec["elastic"] = nuc.xs[Reaction.ELASTIC]
            rec["capture"] = nuc.xs[Reaction.CAPTURE]
            rec["fission"] = nuc.xs[Reaction.FISSION]
            self.records.append(rec)

    @property
    def n_nuclides(self) -> int:
        return len(self.records)

    @property
    def nbytes(self) -> int:
        return int(sum(rec.nbytes for rec in self.records))

    def micro_xs_gather(
        self,
        nuclide_id: int,
        energies: np.ndarray,
        local_indices: np.ndarray,
    ) -> np.ndarray:
        """Same contract as :meth:`SoALibrary.micro_xs_gather`, but every
        field access is a strided gather out of interleaved records."""
        rec = self.records[nuclide_id]
        idx = np.asarray(local_indices, dtype=np.int64)
        e0 = rec["energy"][idx]
        e1 = rec["energy"][idx + 1]
        f = np.clip((energies - e0) / (e1 - e0), 0.0, 1.0)
        out = np.empty((N_REACTIONS, energies.shape[0]))
        for r, field in _FIELD_BY_REACTION.items():
            out[r] = (1.0 - f) * rec[field][idx] + f * rec[field][idx + 1]
        return out
