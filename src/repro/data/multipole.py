r"""Windowed multipole cross-section representation (the RSBench kernel).

The multipole method (Hwang; Forget, Xu & Smith) rewrites resonance cross
sections as a sum over complex poles :math:`p_j` in :math:`u = \sqrt{E}`
space.  Doppler broadening at temperature :math:`T` turns each pole term into
one Faddeeva-function evaluation:

.. math::

    \sigma_x(E, T) = \frac{\sqrt{\pi}}{\Delta E}
        \sum_j \mathrm{Re}\left[ r_{x,j}\, w\!\left(\frac{u - p_j}{\Delta}
        \right)\right] + \mathrm{fit}_x(u),
    \qquad \Delta = \sqrt{kT / A},

which trades the enormous pointwise tables for a compute-bound kernel — the
motivation of RSBench and of the paper's Fig. 8.  The *windowed* variant
partitions the energy range and keeps only nearby poles per window, with a
polynomial curve fit absorbing the far-pole background.

Two structural variants matter for SIMD (and are both implemented):

* **ragged windows** (original RSBench): each window has its own pole count,
  so the pole loop has data-dependent bounds — poison for vectorization;
* **fixed poles per window** (the paper's "assuring vectorization ... fixing
  the number of poles per window"): windows are padded with zero-residue
  poles into a rectangular array, enabling one batched Faddeeva evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import K_BOLTZMANN
from ..errors import DataError
from ..types import N_REACTIONS
from .doppler import faddeeva
from .resonance import ResonanceLadder, reconstruct_xs

__all__ = ["MultipoleData", "build_multipole"]

_SQRT_PI = np.sqrt(np.pi)


@dataclass
class MultipoleData:
    """Windowed multipole data for one nuclide.

    Attributes
    ----------
    awr:
        Atomic weight ratio (drives the Doppler width).
    poles:
        Complex poles in :math:`\\sqrt{E}` space, shape ``(n_poles,)``,
        sorted by real part.
    residues:
        Complex residues per reaction, shape ``(N_REACTIONS, n_poles)``.
    window_edges:
        Window boundaries in :math:`\\sqrt{E}` space, ``(n_windows + 1,)``.
    window_start, window_count:
        Pole range ``[start, start+count)`` owned by each window (ragged).
    curvefit:
        Background polynomial coefficients in ``u``, shape
        ``(n_windows, N_REACTIONS, order + 1)``, highest power first (as
        :func:`numpy.polyval` expects).
    """

    name: str
    awr: float
    poles: np.ndarray
    residues: np.ndarray
    window_edges: np.ndarray
    window_start: np.ndarray
    window_count: np.ndarray
    curvefit: np.ndarray

    def __post_init__(self) -> None:
        if self.residues.shape != (N_REACTIONS, self.poles.size):
            raise DataError("residues shape mismatch")
        if self.window_start.size != self.n_windows or (
            self.window_count.size != self.n_windows
        ):
            raise DataError("window table shape mismatch")

    @property
    def n_poles(self) -> int:
        return int(self.poles.size)

    @property
    def n_windows(self) -> int:
        return int(self.window_edges.size - 1)

    @property
    def max_poles_per_window(self) -> int:
        return int(self.window_count.max()) if self.n_windows else 0

    @property
    def emin(self) -> float:
        """Lower bound of the representation [MeV]."""
        return float(self.window_edges[0] ** 2)

    @property
    def emax(self) -> float:
        """Upper bound of the representation [MeV]."""
        return float(self.window_edges[-1] ** 2)

    @property
    def nbytes(self) -> int:
        """Bytes of poles + residues + windows + fits (memory-model input).

        The point of the multipole method: orders of magnitude below the
        pointwise tables of :class:`repro.data.nuclide.Nuclide`.
        """
        return int(
            self.poles.nbytes
            + self.residues.nbytes
            + self.window_edges.nbytes
            + self.window_start.nbytes
            + self.window_count.nbytes
            + self.curvefit.nbytes
        )

    # -- Window search -------------------------------------------------------

    def window_of(self, energy: np.ndarray | float) -> np.ndarray | int:
        """Window index containing each energy (clamped)."""
        u = np.sqrt(np.asarray(energy, dtype=float))
        w = np.searchsorted(self.window_edges, u, side="right") - 1
        w = np.clip(w, 0, self.n_windows - 1)
        return int(w) if w.ndim == 0 else w

    def doppler_width(self, temperature: float) -> float:
        r""":math:`\Delta = \sqrt{kT / A}` in :math:`\sqrt{E}` units."""
        if temperature < 0:
            raise DataError("temperature must be non-negative")
        return float(np.sqrt(K_BOLTZMANN * temperature / self.awr))

    # -- Evaluation: scalar / ragged (original RSBench) -----------------------

    def evaluate(self, energy: float, temperature: float) -> np.ndarray:
        """One lookup, scalar pole loop with ragged window bounds.

        This is the *original* RSBench structure: the inner loop bound
        (``window_count[w]``) is data-dependent, which defeats compiler
        vectorization on real hardware and is deliberately kept as an
        interpreted Python loop here.
        """
        u = np.sqrt(energy)
        w = self.window_of(energy)
        delta = self.doppler_width(temperature)
        sig = np.array(
            [np.polyval(self.curvefit[w, r], u) for r in range(N_REACTIONS)]
        )
        start = int(self.window_start[w])
        count = int(self.window_count[w])
        for j in range(start, start + count):
            if temperature > 0.0:
                z = (u - self.poles[j]) / delta
                wval = faddeeva(z)
                term = (_SQRT_PI / (delta * energy)) * (self.residues[:, j] * wval)
            else:
                term = (1j * self.residues[:, j] / (u - self.poles[j])) / energy
            sig += term.real
        return np.clip(sig, 0.0, None)

    # -- Evaluation: vectorized, fixed poles per window ------------------------

    def padded_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Rectangular (padded) pole/residue tables for vectorized lookup.

        Returns ``(poles_rect, residues_rect)`` with shapes
        ``(n_windows, P)`` and ``(n_windows, N_REACTIONS, P)`` where ``P`` is
        the max poles per window; padding poles sit far outside the real axis
        with zero residues, so they contribute exactly nothing.
        """
        p = max(self.max_poles_per_window, 1)
        poles_rect = np.full((self.n_windows, p), 1.0e6 + 0j, dtype=complex)
        residues_rect = np.zeros((self.n_windows, N_REACTIONS, p), dtype=complex)
        for w in range(self.n_windows):
            s, c = int(self.window_start[w]), int(self.window_count[w])
            poles_rect[w, :c] = self.poles[s : s + c]
            residues_rect[w, :, :c] = self.residues[:, s : s + c]
        return poles_rect, residues_rect

    def evaluate_many(
        self,
        energies: np.ndarray,
        temperature: float,
        tables: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Vectorized lookup across a bank of energies.

        Uses the fixed-poles-per-window tables: one gather of each energy's
        window row, then a single batched Faddeeva evaluation over the
        rectangular ``(n_lookups, P)`` array — the vectorized RSBench variant
        of Fig. 8.  Returns shape ``(N_REACTIONS, n_lookups)``.
        """
        energies = np.asarray(energies, dtype=float)
        u = np.sqrt(energies)
        wins = np.asarray(self.window_of(energies))
        poles_rect, residues_rect = (
            self.padded_tables() if tables is None else tables
        )
        gathered_poles = poles_rect[wins]  # (n, P)
        gathered_res = residues_rect[wins]  # (n, N_REACTIONS, P)

        # Background polynomials, evaluated per window row (Horner).
        sig = np.empty((N_REACTIONS, energies.size))
        coeffs = self.curvefit[wins]  # (n, N_REACTIONS, order+1)
        order = coeffs.shape[2]
        acc = np.zeros((energies.size, N_REACTIONS))
        for k in range(order):
            acc = acc * u[:, None] + coeffs[:, :, k]
        sig[:] = acc.T

        if temperature > 0.0:
            delta = self.doppler_width(temperature)
            z = (u[:, None] - gathered_poles) / delta
            wvals = faddeeva(z)  # (n, P): ONE batched Faddeeva call
            scale = _SQRT_PI / (delta * energies)
            contrib = np.einsum("nrp,np->rn", gathered_res, wvals).real
            sig += contrib * scale[None, :]
        else:
            inv = 1j / (u[:, None] - gathered_poles)
            contrib = np.einsum("nrp,np->rn", gathered_res, inv).real
            sig += contrib / energies[None, :]
        return np.clip(sig, 0.0, None)


def build_multipole(
    name: str,
    ladder: ResonanceLadder,
    *,
    awr: float,
    emin: float = 1.0e-6,
    emax: float | None = None,
    n_windows: int = 32,
    fit_order: int = 2,
    fit_temperature: float = 293.6,
    fit_samples_per_window: int = 12,
) -> MultipoleData:
    """Convert a resonance ladder into windowed multipole form.

    Poles and residues follow from the SLBW parameters (see module docs);
    each window's polynomial background is least-squares fitted against the
    pointwise reconstruction *minus* the window's own pole contribution, so
    the representation reproduces the pointwise data within fit error.
    """
    if emax is None:
        emax = float(ladder.e0[-1] * 1.3) if ladder.n_resonances else 1.0e-2
    if emax <= emin:
        raise DataError("multipole range must have emax > emin")
    in_range = (ladder.e0 >= emin) & (ladder.e0 <= emax)
    e0 = ladder.e0[in_range]
    gn = ladder.gamma_n[in_range]
    gg = ladder.gamma_g[in_range]
    gf = ladder.gamma_f[in_range]
    gt = gn + gg + gf
    u0 = np.sqrt(e0)

    # sigma_0 = 4 pi lambda-bar^2 (gamma_n / gamma): peak total XS [barns];
    # constants must match repro.data.resonance exactly so the multipole form
    # reproduces the pointwise reconstruction.
    from .resonance import SIGMA0_CONST_BARN_MEV

    sigma0 = SIGMA0_CONST_BARN_MEV / e0 * (gn / gt)
    poles = u0 - 1j * gt / (4.0 * u0)
    res_capture = sigma0 * gg * u0 / 4.0 + 0j
    res_fission = sigma0 * gf * u0 / 4.0 + 0j
    interference = np.sqrt(sigma0 * ladder.sigma_pot)
    res_elastic = sigma0 * gn * u0 / 4.0 - 1j * interference * gt * u0 / 2.0
    res_total = res_elastic + res_capture + res_fission
    residues = np.stack([res_total, res_elastic, res_capture, res_fission])

    # Windows: equal width in u-space; poles are sorted, so each window's
    # pole set is a contiguous [start, start+count) slice.  A window also
    # *evaluates* the poles of its two neighbours — resonances near a window
    # edge would otherwise fall to the polynomial background, which cannot
    # represent a sharp line.
    window_edges = np.linspace(np.sqrt(emin), np.sqrt(emax), n_windows + 1)
    owner = np.clip(
        np.searchsorted(window_edges, u0, side="right") - 1, 0, n_windows - 1
    )
    window_start = np.zeros(n_windows, dtype=np.int64)
    window_count = np.zeros(n_windows, dtype=np.int64)
    for w in range(n_windows):
        idx = np.nonzero((owner >= w - 1) & (owner <= w + 1))[0]
        window_start[w] = idx[0] if idx.size else 0
        window_count[w] = idx.size

    data = MultipoleData(
        name=name,
        awr=awr,
        poles=poles,
        residues=residues,
        window_edges=window_edges,
        window_start=window_start,
        window_count=window_count,
        curvefit=np.zeros((n_windows, N_REACTIONS, fit_order + 1)),
    )

    # Fit the background: pointwise truth minus this window's poles.
    for w in range(n_windows):
        u_lo, u_hi = window_edges[w], window_edges[w + 1]
        us = np.linspace(u_lo, u_hi, fit_samples_per_window)
        es = us**2
        truth = reconstruct_xs(
            ladder, es, awr=awr, temperature=fit_temperature
        )
        truth_mat = np.stack(
            [truth["total"], truth["elastic"], truth["capture"], truth["fission"]]
        )
        pole_part = np.zeros_like(truth_mat)
        s, c = int(window_start[w]), int(window_count[w])
        if c and fit_temperature > 0:
            delta = data.doppler_width(fit_temperature)
            z = (us[:, None] - poles[s : s + c][None, :]) / delta
            wvals = faddeeva(z)
            scale = _SQRT_PI / (delta * es)
            pole_part = (
                np.einsum("rp,np->rn", residues[:, s : s + c], wvals).real
                * scale[None, :]
            )
        resid = truth_mat - pole_part
        for r in range(N_REACTIONS):
            data.curvefit[w, r] = np.polyfit(us, resid[r], fit_order)
    return data
