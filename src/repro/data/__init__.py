"""Nuclear-data substrate: synthetic continuous-energy libraries.

Replaces the ENDF/ACE data the paper used (see DESIGN.md §2) with
statistically realistic synthetic equivalents: resonance ladders
(:mod:`~repro.data.resonance`), Doppler broadening
(:mod:`~repro.data.doppler`), per-nuclide tables
(:mod:`~repro.data.nuclide`), Hoogenboom-Martin libraries
(:mod:`~repro.data.library`), the unionized energy grid
(:mod:`~repro.data.unionized`), URR probability tables
(:mod:`~repro.data.urr`), S(alpha, beta) thermal tables
(:mod:`~repro.data.sab`), the windowed multipole representation
(:mod:`~repro.data.multipole`), few-group condensation
(:mod:`~repro.data.multigroup`), and ``.npz`` serialization
(:mod:`~repro.data.io`).
"""

from .doppler import chi, doppler_zeta, faddeeva, psi, psi_chi
from .library import (
    CLAD_NUCLIDES,
    HM_SMALL_FUEL,
    WATER_NUCLIDES,
    LibraryConfig,
    NuclideLibrary,
    build_library,
    build_nuclide,
    fuel_nuclide_names,
    library_fingerprint,
)
from .io import load_library, save_library
from .multigroup import GroupStructure, MultigroupXS, condense
from .multipole import MultipoleData, build_multipole
from .nuclide import Nuclide
from .resonance import (
    ResonanceLadder,
    build_energy_grid,
    reconstruct_xs,
    sample_ladder,
)
from .sab import SabTable, build_sab_table
from .unionized import UnionizedGrid
from .urr import URRTable, build_urr_table

__all__ = [
    "chi",
    "doppler_zeta",
    "faddeeva",
    "psi",
    "psi_chi",
    "CLAD_NUCLIDES",
    "HM_SMALL_FUEL",
    "WATER_NUCLIDES",
    "LibraryConfig",
    "NuclideLibrary",
    "build_library",
    "build_nuclide",
    "fuel_nuclide_names",
    "library_fingerprint",
    "load_library",
    "save_library",
    "GroupStructure",
    "MultigroupXS",
    "condense",
    "MultipoleData",
    "build_multipole",
    "Nuclide",
    "ResonanceLadder",
    "build_energy_grid",
    "reconstruct_xs",
    "sample_ladder",
    "SabTable",
    "build_sab_table",
    "UnionizedGrid",
    "URRTable",
    "build_urr_table",
]
