"""Assembly of full nuclide libraries for the Hoogenboom-Martin models.

The paper uses two data sets:

* **H.M. Small** — the original Hoogenboom-Martin fuel with 34 nuclides (a
  mix of actinides, minor actinides, and key fission products);
* **H.M. Large** — a higher-fidelity fuel with 320 nuclides.

Both also need moderator (H, O, B) and cladding (natural Zr) nuclides.  The
library builder draws each nuclide's resonance ladder deterministically from
the library seed and the nuclide name, reconstructs pointwise cross sections,
and attaches URR probability tables (actinides) and an S(alpha, beta) thermal
table (H-1 in water).

:class:`LibraryConfig` controls the data volume: the ``tiny`` preset keeps
unit tests in the millisecond range, while the ``default`` preset produces
paper-shaped grids (thousands of points per nuclide).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import asdict, dataclass, replace

import numpy as np

from ..errors import DataError
from .nuclide import Nuclide
from .resonance import build_energy_grid, reconstruct_xs, sample_ladder
from .sab import SabTable, build_sab_table
from .urr import URRTable, build_urr_table

__all__ = [
    "LibraryConfig",
    "NuclideLibrary",
    "build_library",
    "build_nuclide",
    "fuel_nuclide_names",
    "library_fingerprint",
    "HM_SMALL_FUEL",
    "CLAD_NUCLIDES",
    "WATER_NUCLIDES",
]

#: The 34-nuclide Hoogenboom-Martin fuel: 18 actinides + 16 key fission
#: products.
HM_SMALL_FUEL: tuple[str, ...] = (
    "U234", "U235", "U236", "U238",
    "Np237",
    "Pu238", "Pu239", "Pu240", "Pu241", "Pu242",
    "Am241", "Am242", "Am243",
    "Cm242", "Cm243", "Cm244", "Cm245", "Cm246",
    "Mo95", "Tc99", "Ru101", "Rh103", "Ag109", "Cs133",
    "Nd143", "Nd145",
    "Sm147", "Sm149", "Sm150", "Sm151", "Sm152",
    "Eu153", "Gd155", "Xe135",
)

#: Natural zirconium cladding isotopes.
CLAD_NUCLIDES: tuple[str, ...] = ("Zr90", "Zr91", "Zr92", "Zr94", "Zr96")

#: Borated light-water moderator nuclides.
WATER_NUCLIDES: tuple[str, ...] = ("H1", "O16", "B10", "B11")

#: Nuclides with a thermal fission cross section (fissile).
_FISSILE: frozenset[str] = frozenset(
    {"U233", "U235", "Pu239", "Pu241", "Am242", "Cm243", "Cm245"}
)

_N_LARGE_FUEL = 320


def fuel_nuclide_names(model: str) -> tuple[str, ...]:
    """Fuel nuclide names for ``"hm-small"`` (34) or ``"hm-large"`` (320).

    The large model extends the small fuel with synthetic fission-product
    nuclides ``FP000``-``FP285`` whose mass numbers cycle through the
    fission-product mass range — the paper's "more accurate representation
    of fuel containing 320 different nuclides".
    """
    if model == "hm-small":
        return HM_SMALL_FUEL
    if model == "hm-large":
        extra = tuple(f"FP{i:03d}" for i in range(_N_LARGE_FUEL - len(HM_SMALL_FUEL)))
        return HM_SMALL_FUEL + extra
    raise DataError(f"unknown model {model!r} (want 'hm-small' or 'hm-large')")


@dataclass(frozen=True)
class LibraryConfig:
    """Knobs controlling library size and fidelity.

    The defaults produce grids of a few thousand points per heavy nuclide —
    the same order as evaluated libraries after unionization thinning.  Use
    :meth:`tiny` in unit tests.
    """

    seed: int = 20150525  # IPDPS 2015 conference date
    temperature: float = 293.6
    n_base_points: int = 600
    points_per_resonance: int = 12
    heavy_resonances: int = 150
    medium_resonances: int = 60
    zr_resonances: int = 20
    urr_bands: int = 16
    urr_cols: int = 20
    sab_n_in: int = 24
    sab_n_out: int = 16
    sab_n_mu: int = 4

    @classmethod
    def tiny(cls, seed: int = 20150525) -> "LibraryConfig":
        """Millisecond-scale configuration for unit tests."""
        return cls(
            seed=seed,
            n_base_points=80,
            points_per_resonance=6,
            heavy_resonances=8,
            medium_resonances=4,
            zr_resonances=2,
            urr_bands=4,
            urr_cols=6,
            sab_n_in=8,
            sab_n_out=6,
            sab_n_mu=3,
        )

    def with_seed(self, seed: int) -> "LibraryConfig":
        return replace(self, seed=seed)


def library_fingerprint(model: str, config: LibraryConfig) -> str:
    """SHA-256 over everything that determines a built library's content.

    ``build_library`` is deterministic in ``(model, config)``, so two equal
    fingerprints guarantee bit-identical libraries.  The service layer keys
    its on-disk cache and its worker-affinity batching on this value.
    """
    blob = json.dumps(
        {"model": model, "config": asdict(config)}, sort_keys=True
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def _nuclide_rng(config: LibraryConfig, name: str) -> np.random.Generator:
    """Deterministic per-nuclide generator (seed, name) -> stream."""
    return np.random.default_rng([config.seed, zlib.crc32(name.encode())])


def _mass_number(name: str) -> int:
    digits = "".join(ch for ch in name if ch.isdigit())
    if not digits:
        raise DataError(f"cannot parse mass number from {name!r}")
    a = int(digits)
    if name.startswith("FP"):
        # Synthetic fission products: cycle A through 70..170.
        a = 70 + (a * 7) % 101
    return a


def build_nuclide(
    name: str, config: LibraryConfig
) -> tuple[Nuclide, URRTable | None, SabTable | None]:
    """Build one nuclide (and its URR/S(a,b) attachments) deterministically."""
    rng = _nuclide_rng(config, name)
    a = _mass_number(name)
    awr = 0.99917 * a if a > 1 else 0.99917
    fissionable = a >= 225  # actinides carry a fission channel
    fissile = name in _FISSILE

    if a >= 225:  # actinide: dense resolved range + URR
        ladder = sample_ladder(
            rng,
            fissionable=fissionable,
            n_resonances=config.heavy_resonances,
            e_first=5.0e-6 * (0.8 + 0.4 * rng.random()),
            mean_spacing=20.0e-6,
            mean_gamma_n=2.0e-9,
            mean_gamma_g=23.0e-9,
            mean_gamma_f=60.0e-9 if fissile else 1.0e-9,
            sigma_pot=10.0 + 3.0 * rng.random(),
            sigma_thermal_capture=2.7 if not fissile else 90.0,
            sigma_thermal_fission=(500.0 if fissile else 0.0),
        )
    elif name.startswith("Zr"):  # cladding: sparse, weak absorber
        ladder = sample_ladder(
            rng,
            fissionable=False,
            n_resonances=config.zr_resonances,
            e_first=1.0e-4,
            mean_spacing=5.0e-4,
            mean_gamma_n=50.0e-9,
            mean_gamma_g=15.0e-9,
            sigma_pot=6.4,
            sigma_thermal_capture=0.18,
        )
    elif a >= 60:  # fission products: medium density
        absorber = name in {"Xe135", "Sm149", "Gd155"}
        ladder = sample_ladder(
            rng,
            fissionable=False,
            n_resonances=config.medium_resonances,
            e_first=2.0e-6 * (0.5 + rng.random()),
            mean_spacing=100.0e-6,
            mean_gamma_n=30.0e-9,
            mean_gamma_g=40.0e-9,
            sigma_pot=5.0 + 3.0 * rng.random(),
            sigma_thermal_capture=(2.0e4 if absorber else 5.0 + 20.0 * rng.random()),
        )
    elif name == "H1":
        ladder = sample_ladder(
            rng, fissionable=False, n_resonances=0,
            sigma_pot=20.4, sigma_thermal_capture=0.332,
        )
    elif name == "O16":
        ladder = sample_ladder(
            rng,
            fissionable=False,
            n_resonances=3,
            e_first=0.43,
            mean_spacing=0.4,
            mean_gamma_n=40.0e-6,  # wide MeV-range resonances
            mean_gamma_g=1.0e-9,
            sigma_pot=3.9,
            sigma_thermal_capture=1.9e-4,
        )
    elif name in ("B10", "B11"):
        ladder = sample_ladder(
            rng, fissionable=False, n_resonances=0,
            sigma_pot=2.2,
            sigma_thermal_capture=(3837.0 if name == "B10" else 0.005),
        )
    else:  # generic light nuclide
        ladder = sample_ladder(
            rng, fissionable=False, n_resonances=2,
            e_first=0.1, mean_spacing=0.5,
            mean_gamma_n=10.0e-6, mean_gamma_g=1.0e-9,
            sigma_pot=4.0, sigma_thermal_capture=0.1,
        )

    grid = build_energy_grid(
        ladder,
        n_base=config.n_base_points,
        points_per_resonance=config.points_per_resonance,
    )
    parts = reconstruct_xs(
        ladder, grid, awr=awr, temperature=config.temperature
    )
    xs = np.stack(
        [parts["total"], parts["elastic"], parts["capture"], parts["fission"]]
    )

    urr: URRTable | None = None
    has_urr = a >= 225
    urr_emin = urr_emax = 0.0
    if has_urr:
        # Unresolved range starts where the resolved ladder ends.
        resolved_top = float(ladder.e0[-1]) if ladder.n_resonances else 3.0e-3
        urr_emin = resolved_top * 1.05
        urr_emax = 3.0e-2  # ~10^-2 MeV, as in the paper's Fig. 1 remark
        urr = build_urr_table(
            rng,
            emin=urr_emin,
            emax=urr_emax,
            n_bands=config.urr_bands,
            n_cols=config.urr_cols,
            fissionable=fissionable,
        )

    sab: SabTable | None = None
    if name == "H1":
        sab = build_sab_table(
            rng,
            temperature=config.temperature,
            free_xs=20.4,
            n_in=config.sab_n_in,
            n_out=config.sab_n_out,
            n_mu=config.sab_n_mu,
        )

    nuclide = Nuclide(
        name=name,
        awr=awr,
        energy=grid,
        xs=xs,
        fissionable=fissionable,
        nu0=2.43 if fissile else 2.8,
        has_urr=has_urr,
        urr_emin=urr_emin,
        urr_emax=urr_emax,
        has_sab=sab is not None,
    )
    return nuclide, urr, sab


class NuclideLibrary:
    """An ordered collection of nuclides plus their URR/S(a,b) attachments.

    Nuclide order is stable and indexable (``library.index(name)``) because
    the SoA transport kernels address nuclides by dense integer id.
    """

    def __init__(
        self,
        nuclides: list[Nuclide],
        urr: dict[str, URRTable],
        sab: dict[str, SabTable],
        config: LibraryConfig,
        model: str,
    ) -> None:
        self._nuclides = list(nuclides)
        self._by_name = {n.name: n for n in self._nuclides}
        if len(self._by_name) != len(self._nuclides):
            raise DataError("duplicate nuclide names in library")
        self._index = {n.name: i for i, n in enumerate(self._nuclides)}
        self.urr = dict(urr)
        self.sab = dict(sab)
        self.config = config
        self.model = model

    # -- Container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._nuclides)

    def __iter__(self):
        return iter(self._nuclides)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, key: str | int) -> Nuclide:
        if isinstance(key, str):
            return self._by_name[key]
        return self._nuclides[key]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self._nuclides)

    def index(self, name: str) -> int:
        """Dense integer id of a nuclide (stable across the library's life)."""
        return self._index[name]

    # -- Memory accounting ----------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes of pointwise data + URR + S(a,b) tables."""
        total = sum(n.nbytes for n in self._nuclides)
        total += sum(t.nbytes for t in self.urr.values())
        total += sum(t.nbytes for t in self.sab.values())
        return total

    def fission_q(self, name: str) -> float:
        """Energy per fission [MeV] (constant; kept for tally normalization)."""
        return 200.0


def build_library(
    model: str = "hm-small", config: LibraryConfig | None = None
) -> NuclideLibrary:
    """Build the full library for a Hoogenboom-Martin model.

    Includes the fuel nuclides plus moderator and cladding nuclides; the
    result is deterministic in ``config.seed``.
    """
    config = config or LibraryConfig()
    names = fuel_nuclide_names(model) + CLAD_NUCLIDES + WATER_NUCLIDES
    nuclides: list[Nuclide] = []
    urr: dict[str, URRTable] = {}
    sab: dict[str, SabTable] = {}
    for name in names:
        nuc, u, s = build_nuclide(name, config)
        nuclides.append(nuc)
        if u is not None:
            urr[name] = u
        if s is not None:
            sab[name] = s
    return NuclideLibrary(nuclides, urr, sab, config, model)
