"""Library serialization: save/load synthetic libraries as ``.npz`` files.

Building a paper-fidelity H.M. Large library takes seconds; repeated
benchmark sessions (and downstream users who want a *fixed* data file
rather than a generator) benefit from caching the built arrays.  The format
is a single compressed ``.npz`` holding every nuclide's grid/XS plus the
URR and S(alpha, beta) attachments, with a schema version for forward
compatibility.  Loaded libraries compare exactly equal to the originals.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import DataError
from .library import LibraryConfig, NuclideLibrary
from .nuclide import Nuclide
from .sab import SabTable
from .urr import URRTable

__all__ = ["save_library", "load_library"]

_SCHEMA_VERSION = 1


def save_library(library: NuclideLibrary, path: str | Path) -> None:
    """Write a library to a compressed ``.npz`` file."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    meta: dict = {
        "schema": _SCHEMA_VERSION,
        "model": library.model,
        "config": asdict(library.config),
        "nuclides": [],
        "urr": sorted(library.urr),
        "sab": sorted(library.sab),
    }
    for nuc in library:
        meta["nuclides"].append(
            {
                "name": nuc.name,
                "awr": nuc.awr,
                "fissionable": nuc.fissionable,
                "nu0": nuc.nu0,
                "watt_a": nuc.watt_a,
                "watt_b": nuc.watt_b,
                "has_urr": nuc.has_urr,
                "urr_emin": nuc.urr_emin,
                "urr_emax": nuc.urr_emax,
                "has_sab": nuc.has_sab,
            }
        )
        arrays[f"nuc/{nuc.name}/energy"] = nuc.energy
        arrays[f"nuc/{nuc.name}/xs"] = nuc.xs
    for name, table in library.urr.items():
        arrays[f"urr/{name}/band_edges"] = table.band_edges
        arrays[f"urr/{name}/cdf"] = table.cdf
        arrays[f"urr/{name}/factors"] = table.factors
    for name, table in library.sab.items():
        arrays[f"sab/{name}/e_in"] = table.e_in
        arrays[f"sab/{name}/xs"] = table.xs
        arrays[f"sab/{name}/e_out"] = table.e_out
        arrays[f"sab/{name}/mu"] = table.mu
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_library(path: str | Path) -> NuclideLibrary:
    """Read a library written by :func:`save_library`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"no library file at {path}")
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["__meta__"]).decode())
        except KeyError:
            raise DataError(f"{path} is not a repro library file") from None
        if meta.get("schema") != _SCHEMA_VERSION:
            raise DataError(
                f"{path}: unsupported schema {meta.get('schema')!r} "
                f"(expected {_SCHEMA_VERSION})"
            )
        nuclides = []
        for info in meta["nuclides"]:
            name = info["name"]
            nuclides.append(
                Nuclide(
                    name=name,
                    awr=info["awr"],
                    energy=data[f"nuc/{name}/energy"],
                    xs=data[f"nuc/{name}/xs"],
                    fissionable=info["fissionable"],
                    nu0=info["nu0"],
                    watt_a=info["watt_a"],
                    watt_b=info["watt_b"],
                    has_urr=info["has_urr"],
                    urr_emin=info["urr_emin"],
                    urr_emax=info["urr_emax"],
                    has_sab=info["has_sab"],
                )
            )
        urr = {
            name: URRTable(
                band_edges=data[f"urr/{name}/band_edges"],
                cdf=data[f"urr/{name}/cdf"],
                factors=data[f"urr/{name}/factors"],
            )
            for name in meta["urr"]
        }
        sab = {
            name: SabTable(
                e_in=data[f"sab/{name}/e_in"],
                xs=data[f"sab/{name}/xs"],
                e_out=data[f"sab/{name}/e_out"],
                mu=data[f"sab/{name}/mu"],
            )
            for name in meta["sab"]
        }
    config = LibraryConfig(**meta["config"])
    return NuclideLibrary(nuclides, urr, sab, config, meta["model"])
