"""The native execution model: the whole application runs on one device.

The MIC boots Linux and runs the full history-based OpenMC; no PCIe traffic
after startup, but the application must fit in device memory and live with
the in-order cores' serial performance (paper §II-B, §III-B1).  This model
produces Fig. 5's calculation-rate curves (inactive vs active batches) and
Fig. 4's CPU-vs-MIC comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..machine.kernels import TransportCostModel, WorkPerParticle
from ..machine.memory import library_nuclides, max_particles
from ..machine.spec import DeviceSpec

if TYPE_CHECKING:
    from .context import ExecutionContext

__all__ = ["NativeModel", "NativeScheduler", "alpha"]

#: Active batches also score tallies at every collision/flight; with only
#: the default global tallies this is a small surcharge (the paper finds
#: "little distinction" on the default benchmark).
ACTIVE_TALLY_SURCHARGE = 0.015


@dataclass
class NativeModel:
    """Native-mode performance of one device on one H.M. model."""

    device: DeviceSpec
    model: str
    work: WorkPerParticle | None = None

    def __post_init__(self) -> None:
        if self.work is None:
            self.work = WorkPerParticle.hm_reference()
        self._cost = TransportCostModel(
            self.device, library_nuclides(self.model), self.work
        )

    def fits(self, n_particles: int) -> bool:
        """Whether the population fits in device memory (Fig. 5 cutoffs)."""
        return n_particles <= max_particles(self.device, self.model)

    def calculation_rate(self, n_particles: int, active: bool = False) -> float:
        """Neutrons per second for a batch of ``n`` particles.

        Returns 0 for populations that exceed device memory.  ``active``
        batches pay the tally surcharge.
        """
        if not self.fits(n_particles):
            return 0.0
        rate = self._cost.calculation_rate(n_particles)
        if active:
            rate /= 1.0 + ACTIVE_TALLY_SURCHARGE
        return rate

    def batch_time(self, n_particles: int, active: bool = False) -> float:
        t = self._cost.batch_time(n_particles)
        if active:
            t *= 1.0 + ACTIVE_TALLY_SURCHARGE
        return t

    def total_time(
        self, n_particles: int, n_inactive: int, n_active: int
    ) -> float:
        """Wall time of a full simulation (Fig. 4's 96 vs 65 minutes)."""
        return n_inactive * self.batch_time(n_particles) + n_active * (
            self.batch_time(n_particles, active=True)
        )

    def lookup_fraction(self) -> float:
        return self._cost.lookup_fraction()


@dataclass
class NativeScheduler:
    """Native-mode scheduler: the whole generation runs on one device.

    The thinnest possible schedule — one backend call through the
    :class:`~repro.execution.context.ExecutionContext` — with the optional
    :class:`NativeModel` attached purely to *price* what was run.  No
    transport imports: the backend arrives inside the context.
    """

    model: NativeModel | None = None

    def run_generation(
        self,
        ec: "ExecutionContext",
        positions,
        energies,
        tallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        power=None,
        spectrum=None,
    ):
        """Transport one generation on the single device.

        With a supervisor on the context, the generation is observed as
        rank 0 (there is only the one device) and checked against the
        policy's batch deadline — native mode has nothing to degrade *to*,
        so supervision here is monitoring plus a typed abort."""
        supervisor = getattr(ec, "supervisor", None)
        if supervisor is None:
            return ec.run_generation(
                positions, energies, tallies, k_norm, first_id,
                power=power, spectrum=spectrum,
            )
        from time import perf_counter

        batch = supervisor.begin_batch()
        t0 = perf_counter()
        bank = ec.run_generation(
            positions, energies, tallies, k_norm, first_id,
            power=power, spectrum=spectrum,
        )
        seconds = perf_counter() - t0
        supervisor.observe_batch(0, batch, seconds, positions.shape[0])
        supervisor.enforce_deadline(seconds, what=f"native batch {batch}")
        supervisor.finish_batch(batch)
        return bank

    def modelled_batch_time(
        self, n_particles: int, active: bool = False
    ) -> float | None:
        """Cost-model batch time for what was just executed (None without
        a model)."""
        if self.model is None:
            return None
        return self.model.batch_time(n_particles, active)


def alpha(
    host: DeviceSpec,
    mic: DeviceSpec,
    model: str,
    n_particles: int,
    active: bool = False,
    work: WorkPerParticle | None = None,
) -> float:
    """The paper's Eq. (2): CPU calculation rate / MIC calculation rate."""
    h = NativeModel(host, model, work)
    m = NativeModel(mic, model, work)
    rm = m.calculation_rate(n_particles, active)
    if rm == 0.0:
        return float("inf")
    return h.calculation_rate(n_particles, active) / rm
