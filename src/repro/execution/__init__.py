"""Execution models: offload, native, and symmetric (paper §II-B)."""

from .loadbalance import AdaptiveAlphaController, alpha_split, equal_split
from .native import ACTIVE_TALLY_SURCHARGE, NativeModel, alpha
from .offload import OFFLOAD_FIXED_S, OffloadCostModel
from .symmetric import NODE_SYNC_S, SymmetricNode
from .trace import OffloadTrace, trace_offload

__all__ = [
    "AdaptiveAlphaController",
    "alpha_split",
    "equal_split",
    "ACTIVE_TALLY_SURCHARGE",
    "NativeModel",
    "alpha",
    "OFFLOAD_FIXED_S",
    "OffloadCostModel",
    "NODE_SYNC_S",
    "SymmetricNode",
    "OffloadTrace",
    "trace_offload",
]
