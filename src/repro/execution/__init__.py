"""Execution models: offload, native, and symmetric (paper §II-B).

Each model is a cost model (pricing) plus a scheduler (execution): the
schedulers receive an :class:`~repro.execution.context.ExecutionContext`
carrying a transport backend selected by name from the registry, so no
execution model imports transport loop functions.
"""

from .context import ExecutionContext
from .loadbalance import (
    AdaptiveAlphaController,
    alpha_split,
    alpha_split_counts,
    equal_split,
    fleet_split,
)
from .native import ACTIVE_TALLY_SURCHARGE, NativeModel, NativeScheduler, alpha
from .offload import OFFLOAD_FIXED_S, OffloadCostModel, OffloadScheduler
from .rebalance import StealEvent, WorkStealingRebalancer
from .symmetric import NODE_SYNC_S, FleetNode, SymmetricNode, SymmetricScheduler
from .trace import OffloadTrace, trace_offload

__all__ = [
    "ExecutionContext",
    "AdaptiveAlphaController",
    "alpha_split",
    "alpha_split_counts",
    "equal_split",
    "fleet_split",
    "StealEvent",
    "WorkStealingRebalancer",
    "FleetNode",
    "ACTIVE_TALLY_SURCHARGE",
    "NativeModel",
    "NativeScheduler",
    "alpha",
    "OFFLOAD_FIXED_S",
    "OffloadCostModel",
    "OffloadScheduler",
    "NODE_SYNC_S",
    "SymmetricNode",
    "SymmetricScheduler",
    "OffloadTrace",
    "trace_offload",
]
