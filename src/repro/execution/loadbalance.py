r"""Static and adaptive load balancing for symmetric mode (paper §III-B3, §V).

With host and MIC ranks running the same binary, OpenMC's default static
split (equal particles per rank) leaves the faster device idle at the batch
barrier.  The paper's fix solves

.. math::

    p_{mic} n_{mic} + p_{cpu} n_{cpu} = n_{total}, \qquad
    n_{cpu} / n_{mic} = \alpha

for the per-rank particle counts (Eq. 3):

.. math::

    n_{mic} = \frac{n_{total}}{p_{mic} + p_{cpu}\alpha}, \qquad
    n_{cpu} = \frac{\alpha\, n_{total}}{p_{mic} + p_{cpu}\alpha}.

§V sketches the runtime-adaptive variant — start at :math:`\alpha = 1/p`
equivalently an equal split, measure each rank's rate on the first batch,
and rebalance — implemented here as :class:`AdaptiveAlphaController`.

:func:`fleet_split` generalizes Eq. 3 to an ordered fleet of N
heterogeneous devices: rank :math:`i` with rate weight :math:`w_i`
receives :math:`n_i = \mathrm{round}(n\, w_i / \sum_j w_j)`, with the
first positive-weight rank absorbing the rounding remainder.  Eq. 3 is
the N=2 special case: for weights ``[1.0, alpha]`` the denominator
accumulates to exactly ``1 + alpha`` and the two counts are bit-identical
to :func:`alpha_split`'s ``(n_mic, n_cpu)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ExecutionError

__all__ = [
    "alpha_split",
    "alpha_split_counts",
    "equal_split",
    "fleet_split",
    "AdaptiveAlphaController",
]


def equal_split(n_total: int, p: int) -> list[int]:
    """OpenMC's default static assignment: ``n_total / p`` each (remainder
    to the first ranks)."""
    if p < 1:
        raise ExecutionError("need at least one rank")
    base = n_total // p
    rem = n_total % p
    return [base + (1 if r < rem else 0) for r in range(p)]


def alpha_split(
    n_total: int, p_mic: int, p_cpu: int, alpha: float
) -> tuple[int, int]:
    """Eq. (3): particles per MIC rank and per CPU rank.

    Counts are rounded; the MIC ranks absorb the rounding remainder so the
    total is exact.  For the paper's example (1e7 particles, 1 MIC + 1 CPU,
    alpha = 0.62) this returns (6,172,840, 3,827,160).
    """
    if p_mic < 0 or p_cpu < 0 or p_mic + p_cpu == 0:
        raise ExecutionError("invalid rank counts")
    if alpha <= 0:
        raise ExecutionError("alpha must be positive")
    if p_mic == 0:
        # Degenerate CPU-only split: first-rank count of the equal split
        # (ceil rather than the old silent floor, so no rank sits idle on
        # a dropped remainder).
        return 0, equal_split(n_total, p_cpu)[0]
    if p_cpu == 0:
        return equal_split(n_total, p_mic)[0], 0
    denom = p_mic + p_cpu * alpha
    n_cpu = int(round(n_total * alpha / denom))
    # Rounding can overshoot the population when alpha is extreme and
    # p_cpu large; clamp so no count goes negative.
    n_cpu = min(n_cpu, n_total // p_cpu)
    # MIC ranks take exactly the rest (integer-exact total).
    n_mic = (n_total - p_cpu * n_cpu) // p_mic
    return n_mic, n_cpu


def alpha_split_counts(
    n_total: int, p_mic: int, p_cpu: int, alpha: float
) -> tuple[list[int], list[int]]:
    """Eq. (3) with explicit per-rank counts that sum *exactly* to
    ``n_total``.

    The scalar :func:`alpha_split` returns one count per device class and
    (for ``p_mic > 1``) floors away the remainder; this variant keeps the
    same CPU count (bit-identical to :func:`alpha_split`'s general branch)
    and spreads the exact MIC-side remainder over the MIC ranks
    equal-split style.  Degenerate classes (``p_mic == 0`` or
    ``p_cpu == 0``) fall back to :func:`equal_split` of the live class.
    Returns ``(mic_counts, cpu_counts)``.
    """
    if p_mic < 0 or p_cpu < 0 or p_mic + p_cpu == 0:
        raise ExecutionError("invalid rank counts")
    if alpha <= 0:
        raise ExecutionError("alpha must be positive")
    if p_mic == 0:
        return [], equal_split(n_total, p_cpu)
    if p_cpu == 0:
        return equal_split(n_total, p_mic), []
    _, n_cpu = alpha_split(n_total, p_mic, p_cpu, alpha)
    return equal_split(n_total - p_cpu * n_cpu, p_mic), [n_cpu] * p_cpu


def fleet_split(n_total: int, weights: Sequence[float]) -> list[int]:
    """Rate-proportional split of ``n_total`` particles over an ordered
    fleet (Eq. 3 generalized to N heterogeneous devices).

    ``weights`` are per-rank calculation rates (any positive scale);
    zero-weight ranks receive zero particles.  Counts are non-negative and
    sum exactly to ``n_total``: every rank except the *anchor* (the first
    positive-weight rank) gets ``round(n_total * w_i / sum(w))`` and the
    anchor absorbs the remainder — for two ranks with weights
    ``[1.0, alpha]`` this reproduces :func:`alpha_split`'s
    ``(n_mic, n_cpu)`` bit-for-bit (same float expression, same rounding).
    If rounding overshoots, counts are decremented deterministically
    (largest count first, ties to the lowest rank) until the anchor is
    whole.
    """
    if n_total < 0:
        raise ExecutionError("negative particle count")
    if not weights:
        raise ExecutionError("need at least one rank")
    if any(w < 0 for w in weights):
        raise ExecutionError("negative rate weight")
    total = 0.0
    for w in weights:
        total += w
    if total <= 0:
        raise ExecutionError("need at least one positive rate weight")
    anchor = next(i for i, w in enumerate(weights) if w > 0)
    counts = [0] * len(weights)
    assigned = 0
    for i, w in enumerate(weights):
        if i == anchor or w == 0:
            continue
        counts[i] = int(round(n_total * w / total))
        assigned += counts[i]
    counts[anchor] = n_total - assigned
    while counts[anchor] < 0:
        donor = max(
            (i for i in range(len(counts)) if i != anchor and counts[i] > 0),
            key=lambda i: (counts[i], -i),
        )
        counts[donor] -= 1
        counts[anchor] += 1
    return counts


@dataclass
class AdaptiveAlphaController:
    """Runtime alpha estimation from measured batch rates (paper §V).

    Start with an equal split; after each batch, update alpha from the
    measured CPU and MIC calculation rates (exponentially smoothed, since
    the paper observes the rate "varies little between batches").
    """

    p_mic: int
    p_cpu: int
    smoothing: float = 0.5
    alpha: float | None = None
    history: list[float] = field(default_factory=list)
    #: A measured ratio this far from the smoothed alpha (either direction)
    #: is a *regime change* — a device throttled, was evicted-and-replaced,
    #: or lost a co-tenant — not batch noise.  The EMA would take
    #: ~log2(shift)/smoothing batches to catch up; snapping to the measured
    #: ratio re-converges the split within two batches instead.
    shift_factor: float = 2.0

    def split(self, n_total: int) -> tuple[int, int]:
        """Current per-rank assignment (equal until a measurement lands)."""
        if self.alpha is None:
            per = equal_split(n_total, self.p_mic + self.p_cpu)
            return per[0], per[-1]
        return alpha_split(n_total, self.p_mic, self.p_cpu, self.alpha)

    def observe(self, cpu_rate: float, mic_rate: float) -> float:
        """Feed one batch's measured rates; returns the updated alpha."""
        if cpu_rate <= 0 or mic_rate <= 0:
            raise ExecutionError("rates must be positive")
        measured = cpu_rate / mic_rate
        if self.alpha is None:
            self.alpha = measured
        elif (
            self.shift_factor > 1.0
            and not (
                self.alpha / self.shift_factor
                <= measured
                <= self.alpha * self.shift_factor
            )
        ):
            self.alpha = measured
        else:
            self.alpha = (
                self.smoothing * measured + (1.0 - self.smoothing) * self.alpha
            )
        self.history.append(self.alpha)
        return self.alpha
