"""Work-stealing rebalancing at batch barriers (ROADMAP item 4).

The paper's symmetric mode fixes the split once (Eq. 3's static alpha);
the supervision layer (PR 5) already *measures* who is slow — per-rank
EMA calculation rates in :class:`repro.supervise.HealthMonitor` — but
could only evict.  :class:`WorkStealingRebalancer` closes the loop: at
each batch barrier it re-plans the assignment from the measured rates,
keeping the head of every rank's equal-split slice in place and moving
*tail* sub-slices from stragglers (donors) to fast devices (receivers)
through :func:`repro.resilience.recovery.redistribute_slice` — the same
global-particle-id primitive rank-loss recovery uses.

Determinism contract (DESIGN.md §16): the plan is a pure function of
``(n, alive, rates)``.  Because every moved slice keeps its *global*
first id, a rebalanced run transports exactly the histories a static run
of the same final assignment would: fission banks and work counters stay
bit-identical, and tallies agree to summation-order tolerance (per-rank
partial sums merge in a different association).  When the rates are equal
the plan *is* the equal split and the whole run is bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import ExecutionError
from ..resilience.recovery import redistribute_slice
from .loadbalance import equal_split, fleet_split

__all__ = ["StealEvent", "WorkStealingRebalancer"]


@dataclass(frozen=True)
class StealEvent:
    """One tail sub-slice moved from a straggler to a faster rank."""

    batch: int
    donor: int
    receiver: int
    start: int
    count: int


@dataclass
class WorkStealingRebalancer:
    """Plans per-batch ``(rank, slice)`` assignments from measured rates.

    Each batch starts from the contiguous equal split over the alive
    ranks (what the static scheduler would run) and steals tail
    sub-slices until the assignment matches the rate-proportional
    :func:`~repro.execution.loadbalance.fleet_split` targets.  Stateless
    across batches: the EMA rates carry the history, so the plan
    converges as the monitor's rates do.
    """

    #: Skip rebalancing when fewer than this fraction of the batch would
    #: move — sub-percent imbalance is barrier noise, not signal.
    min_move_fraction: float = 0.02
    #: Optional override returning a rank's rate (tests and couplings like
    #: the alpha controller); ``None`` falls back to the health monitor.
    rate_source: Callable[[int], "float | None"] | None = None
    #: Audit trail of every steal, in plan order.
    events: list[StealEvent] = field(default_factory=list)

    def resolve_rates(
        self, alive: Sequence[int], monitor=None
    ) -> "list[float] | None":
        """Per-rank rates in ``alive`` order, or ``None`` until every
        alive rank has a positive measurement (first batch runs equal)."""
        rates: list[float] = []
        for rank in alive:
            rate = (
                self.rate_source(rank)
                if self.rate_source is not None
                else (monitor.rate(rank) if monitor is not None else None)
            )
            if rate is None or rate <= 0:
                return None
            rates.append(rate)
        return rates

    def plan(
        self,
        batch: int,
        n: int,
        alive: Sequence[int],
        rates: "Sequence[float] | None",
    ) -> list[tuple[int, slice]]:
        """Assignment for one batch: equal-split base, tails stolen to
        match the rate-proportional targets.

        Returns ``(rank, slice)`` pairs covering ``[0, n)`` exactly once.
        """
        if not alive:
            raise ExecutionError("no alive ranks to plan over")
        base = equal_split(n, len(alive))
        starts: list[int] = []
        pos = 0
        for count in base:
            starts.append(pos)
            pos += count
        if rates is None:
            return [
                (rank, slice(start, start + count))
                for rank, start, count in zip(alive, starts, base)
            ]
        targets = fleet_split(n, list(rates))
        moved = sum(max(b - t, 0) for b, t in zip(base, targets))
        if moved == 0 or moved < self.min_move_fraction * n:
            return [
                (rank, slice(start, start + count))
                for rank, start, count in zip(alive, starts, base)
            ]
        assignments: list[tuple[int, slice]] = []
        released: list[tuple[int, slice]] = []
        deficits = [max(t - b, 0) for b, t in zip(base, targets)]
        for i, rank in enumerate(alive):
            keep = min(base[i], targets[i])
            if keep > 0:
                assignments.append((rank, slice(starts[i], starts[i] + keep)))
            if base[i] > targets[i]:
                released.append(
                    (rank, slice(starts[i] + keep, starts[i] + base[i]))
                )
        receivers = [
            alive[i] for i in range(len(alive)) if deficits[i] > 0
        ]
        remaining = {
            alive[i]: deficits[i] for i in range(len(alive)) if deficits[i] > 0
        }
        for donor, sl in released:
            weights = [float(remaining[r]) for r in receivers]
            if sum(weights) <= 0:
                # Float rounding in a prior range over-satisfied every
                # deficit; hand the leftover back evenly.
                pieces = redistribute_slice(sl, list(receivers))
            else:
                pieces = redistribute_slice(sl, list(receivers), weights)
            for rank, piece in pieces:
                assignments.append((rank, piece))
                remaining[rank] = max(
                    remaining[rank] - (piece.stop - piece.start), 0
                )
                self.events.append(
                    StealEvent(
                        batch=batch,
                        donor=donor,
                        receiver=rank,
                        start=piece.start,
                        count=piece.stop - piece.start,
                    )
                )
        assignments.sort(key=lambda pair: pair[1].start)
        return assignments

    def summary(self) -> dict:
        """Steal-traffic report: totals and per-(donor, receiver) counts."""
        pairs: dict[tuple[int, int], int] = {}
        for ev in self.events:
            pairs[(ev.donor, ev.receiver)] = (
                pairs.get((ev.donor, ev.receiver), 0) + ev.count
            )
        return {
            "steals": len(self.events),
            "particles_moved": sum(ev.count for ev in self.events),
            "batches": len({ev.batch for ev in self.events}),
            "pairs": {
                f"{donor}->{receiver}": count
                for (donor, receiver), count in sorted(pairs.items())
            },
        }
