"""ExecutionContext: the one object an execution model needs to run transport.

Before this layer existed, each execution model wired itself into transport
with bespoke glue: the offload model threaded its own ``fault_plan`` /
``retry_policy`` fields, the trace module imported the event loop's stats
class directly, and the cluster driver picked ``run_generation_*``
functions by hand.  :class:`ExecutionContext` replaces that ad-hoc
threading with a single bundle carrying

* the **transport context** (geometry + physics + RNG master seed),
* the **backend** — a :class:`~repro.transport.backends.TransportBackend`
  selected by registry name, so no execution code imports transport loop
  functions,
* **profiling timers** (every generation is timed under
  ``"transport_generation"``),
* the **machine cost model** for the chosen execution model (native /
  offload / symmetric) used to *price* what the run *measures*,
* **resilience hooks** (fault plan, retry policy), injected into cost
  models that price them, and
* an optional :class:`~repro.transport.stats.TransportStats` recorder
  feeding the lane-utilization and offload-trace analyses.

The schedulers in :mod:`repro.execution.native`, ``.offload``, and
``.symmetric`` receive an ``ExecutionContext`` and are thereby backend-
agnostic: the same scheduler runs the history, event, or delta schedule,
and the bit-identity contract between schedules carries through every
scheduler (enforced by ``tests/execution/test_schedulers.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..profiling.timers import TimerRegistry
from ..resilience.faults import FaultPlan
from ..resilience.recovery import RetryPolicy
from ..transport.backends import TransportBackend, get_backend
from ..transport.context import TransportContext
from ..transport.particle import FissionBank
from ..transport.stats import TransportStats
from ..transport.tally import GlobalTallies

__all__ = ["ExecutionContext"]


@dataclass
class ExecutionContext:
    """Everything a scheduler needs: transport, backend, timers, cost model,
    resilience hooks, and stats — one bundle instead of per-model glue."""

    transport: TransportContext
    backend: TransportBackend
    timers: TimerRegistry = field(
        default_factory=lambda: TimerRegistry("execution")
    )
    #: Machine cost model for the active execution model (NativeModel,
    #: OffloadCostModel, SymmetricNode) — pricing only, never control flow.
    cost_model: object | None = None
    fault_plan: FaultPlan | None = None
    retry_policy: RetryPolicy | None = None
    #: When present, every generation records per-dispatch stage counts.
    stats: TransportStats | None = None
    #: In-flight watchdog (:class:`repro.supervise.Supervisor`).  Schedulers
    #: feed it per-rank batch observations and honour its evictions; ``None``
    #: means unsupervised (the historical behaviour, zero overhead).
    supervisor: object | None = None
    #: Work-stealing rebalancer
    #: (:class:`repro.execution.rebalance.WorkStealingRebalancer`).  Only
    #: consulted on the supervised path: each batch's assignment is
    #: re-planned from the supervisor's per-rank EMA rates; ``None`` keeps
    #: the static split.
    rebalancer: object | None = None

    @classmethod
    def create(
        cls,
        library=None,
        *,
        backend: "TransportBackend | str" = "history",
        transport: TransportContext | None = None,
        timers: TimerRegistry | None = None,
        cost_model: object | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        record_stats: bool = False,
        supervisor: object | None = None,
        rebalancer: object | None = None,
        **transport_kwargs,
    ) -> "ExecutionContext":
        """Build a context from a library (or an existing transport context)
        and a backend name.

        Resilience hooks given here are injected into a cost model that
        prices them (the offload model's stall/retry accounting) unless the
        model already carries its own — the hooks live in one place.
        """
        if transport is None:
            if library is None:
                raise ValueError("need a library or a transport context")
            transport = TransportContext.create(library, **transport_kwargs)
        if isinstance(backend, str):
            backend = get_backend(backend)
        if cost_model is not None:
            if fault_plan is not None and getattr(
                cost_model, "fault_plan", fault_plan
            ) is None:
                cost_model.fault_plan = fault_plan
            if retry_policy is not None and getattr(
                cost_model, "retry_policy", retry_policy
            ) is None:
                cost_model.retry_policy = retry_policy
        return cls(
            transport=transport,
            backend=backend,
            timers=timers or TimerRegistry("execution"),
            cost_model=cost_model,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            stats=TransportStats() if record_stats else None,
            supervisor=supervisor,
            rebalancer=rebalancer,
        )

    # -- Transport ---------------------------------------------------------------

    def run_generation(
        self,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        """Run one generation through the backend, timed and (optionally)
        stats-recorded."""
        with self.timers.timer("transport_generation"):
            return self.backend.run_generation(
                self.transport,
                positions,
                energies,
                tallies,
                k_norm,
                first_id,
                stats=self.stats,
                power=power,
                spectrum=spectrum,
            )

    # -- Reduction primitives -----------------------------------------------------

    def new_tallies(self) -> GlobalTallies:
        """A fresh per-rank/per-slice tally buffer."""
        return GlobalTallies()

    def new_bank(self) -> FissionBank:
        """A fresh fission bank to absorb per-rank banks into."""
        return FissionBank()

    def merge_tallies(
        self, target: GlobalTallies, parts: "list[GlobalTallies]"
    ) -> GlobalTallies:
        """Accumulate partial tallies into ``target`` in the given (rank)
        order and return it."""
        for part in parts:
            target.merge_from(part)
        return target

    def merge_banks(self, banks: "list[FissionBank]") -> FissionBank:
        """Merge per-rank banks; the canonical ``(parent, seq)`` ordering
        over global particle ids makes the result identical to the serial
        run's bank regardless of how work was split."""
        merged = FissionBank()
        for bank in banks:
            merged.absorb(bank)
        return merged

    # -- Pricing ------------------------------------------------------------------

    def offload_trace(self, model: object | None = None):
        """Price the recorded queue trace through an offload cost model
        (``model`` overrides :attr:`cost_model`).

        This is the supported route to :func:`repro.execution.trace
        .trace_offload` — schedulers and drivers no longer reach into
        transport internals for the stats object.
        """
        from .trace import trace_offload

        model = model if model is not None else self.cost_model
        if model is None:
            raise ValueError("offload pricing needs an OffloadCostModel")
        if self.stats is None:
            raise ValueError(
                "no stats recorded — create the ExecutionContext with "
                "record_stats=True"
            )
        return trace_offload(self.stats, model)
