"""The offload execution model: bank on the host, compute on the MIC.

Models the paper's §III-A3 pipeline per generation iteration:

1. **banking** — particles are written into the contiguous bank (host or
   MIC side; Table II measures both);
2. **transfer** — the bank crosses PCIe (the energy grid crossed once at
   initialization and is amortized);
3. **compute** — the MIC performs the banked cross-section lookups, filling
   each particle's per-nuclide micro-XS cache.

Calibration notes (all against Table II at 1e5 particles):

* host banking writes only the 1,434-byte base state (4 ms for both models
  -> ~36 GB/s streaming writes);
* MIC banking shows a base cost plus a per-nuclide slope (21 -> 34 ms from
  Small to Large);
* the MIC compute time equals the *full bank size* over ~28.5 GB/s — i.e.
  the kernel is bound by writing the per-nuclide micro-XS caches
  (496 MB / 17 ms and 2.84 GB / 101 ms both give the same bandwidth, which
  is the model's consistency check);
* a fixed per-offload runtime overhead is calibrated so that offloading
  beats host-side lookups above ~1e4 particles — Fig. 3's crossover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ExecutionError
from ..machine.kernels import TransportCostModel, WorkPerParticle
from ..machine.memory import (
    PARTICLE_BASE_BYTES,
    bank_bytes,
    energy_grid_bytes,
    library_nuclides,
)
from ..machine.pcie import PCIeLink
from ..machine.spec import DeviceSpec

if TYPE_CHECKING:
    from ..resilience.faults import FaultPlan
    from ..resilience.recovery import RetryPolicy
    from .context import ExecutionContext

__all__ = ["OffloadCostModel", "OffloadScheduler"]

#: Host-side streaming-write bandwidth for banking base state [B/s].
_HOST_BANK_WRITE_BW = 36.0e9

#: MIC-side banking: base-state write bandwidth and per-(particle, nuclide)
#: record-setup time.
_MIC_BANK_WRITE_BW = 8.0e9
_MIC_BANK_PER_NUCLIDE_S = 4.7e-10

#: Effective MIC bandwidth for filling the bank's micro-XS caches [B/s]
#: (write-bound banked lookup; the Table II consistency bandwidth).
_MIC_XS_FILL_BW = 28.5e9

#: Fixed per-offload runtime overhead [s] (buffer registration, kernel
#: launch through the early MPSS offload stack); sets Fig. 3's ~1e4
#: particle profitability crossover.
OFFLOAD_FIXED_S = 0.16


@dataclass
class OffloadCostModel:
    """Per-iteration offload costs for a (host, MIC, link, model) setup."""

    host: DeviceSpec
    mic: DeviceSpec
    link: PCIeLink
    model: str
    work: WorkPerParticle | None = None
    #: Optional deterministic fault schedule; ``TRANSFER_STALL`` events hang
    #: the PCIe bank shipment of their iteration (see :meth:`transfer_time`).
    fault_plan: "FaultPlan | None" = None
    #: Retry/backoff policy pricing stalled-transfer recovery.
    retry_policy: "RetryPolicy | None" = None

    def __post_init__(self) -> None:
        if self.mic.out_of_order:
            raise ExecutionError("offload target should be the coprocessor")
        self.n_nuclides = library_nuclides(self.model)
        if self.work is None:
            self.work = WorkPerParticle.hm_reference()

    # -- Table II components ------------------------------------------------------

    def banking_time_host(self, n_particles: int) -> float:
        """Seconds to bank ``n`` particles on the host (base state only)."""
        return n_particles * PARTICLE_BASE_BYTES / _HOST_BANK_WRITE_BW

    def banking_time_mic(self, n_particles: int) -> float:
        """Seconds to bank ``n`` particles on the MIC."""
        base = n_particles * PARTICLE_BASE_BYTES / _MIC_BANK_WRITE_BW
        slope = n_particles * self.n_nuclides * _MIC_BANK_PER_NUCLIDE_S
        return base + slope

    def transfer_time(self, n_particles: int, iteration: int | None = None) -> float:
        """Seconds to ship the bank over PCIe (per iteration).

        When an ``iteration`` index is given and the model carries a
        :class:`~repro.resilience.faults.FaultPlan`, any ``TRANSFER_STALL``
        scheduled for that iteration is charged on top of the clean
        shipment: without a retry policy the transfer simply hangs for the
        stall duration; with one, the runtime aborts at the policy's stall
        timeout, backs off, and re-ships — the deterministic recovery cost.
        """
        clean = self.link.bank_transfer_time(bank_bytes(n_particles, self.model))
        if iteration is None or self.fault_plan is None:
            return clean
        stall = self.fault_plan.stall_seconds(iteration)
        if stall <= 0.0:
            return clean
        if self.retry_policy is None:
            return clean + stall
        policy = self.retry_policy
        timeout = min(stall, policy.stall_timeout_s)
        return timeout + policy.delay_s(1) + clean

    def grid_transfer_time(self) -> float:
        """One-time energy-grid shipment (amortized over batches)."""
        return self.link.bulk_transfer_time(energy_grid_bytes(self.model))

    def mic_compute_time(self, n_particles: int) -> float:
        """Seconds for the MIC to fill the bank's micro-XS caches (the pure
        kernel time Table II reports)."""
        return bank_bytes(n_particles, self.model) / _MIC_XS_FILL_BW

    def mic_launch_overhead(self) -> float:
        """Per-offload kernel-launch / thread-team wakeup cost on the MIC —
        why the compute component's *relative* cost falls as N grows
        (Fig. 3)."""
        from ..machine.occupancy import batch_overhead_s

        return batch_overhead_s(self.mic)

    # -- Host-side reference -------------------------------------------------------

    def host_generation_time(self, n_particles: int) -> float:
        """Host time to simulate all histories (the Fig. 3 normalizer)."""
        host_model = TransportCostModel(self.host, self.n_nuclides, self.work)
        return host_model.batch_time(n_particles)

    def host_lookup_time(self, n_particles: int) -> float:
        """Host time spent in cross-section lookups only (what offload
        would replace).  Excludes the batch-fixed overhead, so its share of
        the generation time *rises* with N as overheads amortize — Fig. 3's
        'calculating cross sections on the host increases'."""
        from ..machine.occupancy import batch_overhead_s

        host_model = TransportCostModel(self.host, self.n_nuclides, self.work)
        compute = host_model.batch_time(n_particles) - batch_overhead_s(self.host)
        return compute * host_model.lookup_fraction()

    # -- Composite ------------------------------------------------------------------

    def offload_time(self, n_particles: int, iteration: int | None = None) -> float:
        """Total per-iteration offload cost (banking + transfer + compute +
        fixed runtime overhead), without overlap.  With ``iteration`` and a
        fault plan, injected transfer stalls (and their retry recovery) are
        included."""
        return (
            OFFLOAD_FIXED_S
            + self.banking_time_host(n_particles)
            + self.transfer_time(n_particles, iteration)
            + self.mic_compute_time(n_particles)
            + self.mic_launch_overhead()
        )

    def profitable(self, n_particles: int) -> bool:
        """Whether offloading the lookups beats doing them on the host."""
        return self.offload_time(n_particles) < self.host_lookup_time(n_particles)

    def crossover_particles(self) -> int:
        """Smallest bank size (log-spaced search) where offload wins —
        the paper's 'above 10,000 particles'."""
        lo, hi = 1, 1
        for exp in range(2, 9):
            hi = 10**exp
            if self.profitable(hi):
                break
            lo = hi
        else:
            raise ExecutionError("offload never profitable in search range")
        # Bisect between lo and hi.
        while hi - lo > max(1, lo // 100):
            mid = (lo + hi) // 2
            if self.profitable(mid):
                hi = mid
            else:
                lo = mid
        return hi

    def priced_trace(self, ec: "ExecutionContext"):
        """Price the context's recorded queue trace through this model —
        the per-iteration offload costs the generation just executed would
        have paid on real hardware (see :mod:`repro.execution.trace`)."""
        return ec.offload_trace(self)

    def normalized_ratios(self, n_particles: int) -> dict[str, float]:
        """Fig. 3's quantities: each cost over the host generation time."""
        gen = self.host_generation_time(n_particles)
        return {
            "bank_host": self.banking_time_host(n_particles) / gen,
            "bank_mic": self.banking_time_mic(n_particles) / gen,
            "transfer": (
                OFFLOAD_FIXED_S + self.transfer_time(n_particles)
            ) / gen,
            "mic_compute": (
                self.mic_compute_time(n_particles) + self.mic_launch_overhead()
            ) / gen,
            "host_xs_compute": self.host_lookup_time(n_particles) / gen,
        }


@dataclass
class OffloadScheduler:
    """Offload-mode scheduler: bank on the host, compute on the device.

    Execution-wise the banked backend *is* the offload pipeline — each
    event cycle's lookup queue is one bank shipment — so the schedule is a
    single backend call through the
    :class:`~repro.execution.context.ExecutionContext`; with stats
    recording enabled, the run leaves behind the queue trace that
    :meth:`priced_trace` prices through the attached
    :class:`OffloadCostModel` (including the fault plan / retry policy the
    context injected).  No transport imports.
    """

    model: OffloadCostModel | None = None
    #: Offload iteration counter — indexes ``TRANSFER_STALL`` events in the
    #: context's fault plan (one generation = one bank shipment here).
    iteration: int = 0

    def run_generation(
        self,
        ec: "ExecutionContext",
        positions,
        energies,
        tallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        power=None,
        spectrum=None,
    ):
        """Transport one generation through the backend.

        When the context carries a fault plan scheduling a ``TRANSFER_STALL``
        for this offload iteration *and* a retry policy, the shipment is
        aborted at the policy's stall timeout **before any transport runs**
        and re-issued under :func:`~repro.resilience.recovery.with_retry`:
        exactly one attempt executes real transport, so the retried
        generation is bit-identical to an unstalled one.  The re-issue count
        lands in :attr:`TransportStats.retries <repro.transport.stats.
        TransportStats.retries>` (and the supervisor's tally, if one is
        attached); the recovery *cost* stays where it always was, priced by
        :meth:`OffloadCostModel.transfer_time`.
        """
        iteration = self.iteration
        self.iteration += 1
        stall = (
            ec.fault_plan.stall_seconds(iteration)
            if ec.fault_plan is not None
            else 0.0
        )
        if stall <= 0.0 or ec.retry_policy is None:
            return ec.run_generation(
                positions, energies, tallies, k_norm, first_id,
                power=power, spectrum=spectrum,
            )

        from ..errors import DeadlineExceededError
        from ..resilience.recovery import with_retry

        policy = ec.retry_policy

        def ship(attempt: int):
            if attempt == 1:
                # The stalled shipment hangs past the policy's stall
                # timeout and is aborted before the device sees the bank —
                # no transport ran, so the retry replays nothing.
                raise DeadlineExceededError(
                    f"bank shipment stalled {stall:g}s on offload "
                    f"iteration {iteration}, aborted at the "
                    f"{policy.stall_timeout_s:g}s stall timeout",
                    deadline_s=policy.stall_timeout_s,
                    elapsed_s=min(stall, policy.stall_timeout_s),
                )
            return ec.run_generation(
                positions, energies, tallies, k_norm, first_id,
                power=power, spectrum=spectrum,
            )

        # Retry only the aborted shipment — a transport error must surface,
        # not replay histories into already-merged tallies.
        bank, attempts = with_retry(
            ship, policy, retry_on=(DeadlineExceededError,)
        )
        if ec.stats is not None:
            ec.stats.record_retries(attempts - 1)
        supervisor = getattr(ec, "supervisor", None)
        if supervisor is not None:
            supervisor.note_retry(attempts - 1)
        return bank

    def priced_trace(self, ec: "ExecutionContext"):
        """Offload pricing for the generations recorded so far (uses the
        scheduler's model, falling back to the context's cost model)."""
        return ec.offload_trace(self.model)
