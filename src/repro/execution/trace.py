"""Offload pipeline traces: measured bank structure x modelled device costs.

The analytic offload model (:mod:`repro.execution.offload`) prices a bank of
N particles; the *executable* event loop tells us what N actually is on
every iteration of a real generation (banks shrink as histories die — the
:class:`repro.transport.stats.TransportStats` queue trace).  This module
joins the two: replaying a measured queue trace through the offload cost
model yields the per-iteration and total offload costs a real
bank-and-offload implementation of that generation would have paid,
including the fixed-overhead amplification caused by shrinking banks — the
effect behind Fig. 3's "bank at least 10,000 particles" advice.

The stats object is duck-typed (``iterations`` + ``lookup_counts``), so
this module has **no transport imports** — the supported route here is
:meth:`repro.execution.context.ExecutionContext.offload_trace`, which
hands over the trace its own backend recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ExecutionError
from .offload import OFFLOAD_FIXED_S, OffloadCostModel

if TYPE_CHECKING:
    from ..transport.stats import TransportStats

__all__ = ["OffloadTrace", "trace_offload"]


@dataclass
class OffloadTrace:
    """Per-iteration offload costs for one generation's queue trace."""

    bank_sizes: list[int]
    banking_s: list[float]
    transfer_s: list[float]
    compute_s: list[float]
    fixed_s: list[float]

    @property
    def n_iterations(self) -> int:
        return len(self.bank_sizes)

    @property
    def total_s(self) -> float:
        return (
            sum(self.banking_s)
            + sum(self.transfer_s)
            + sum(self.compute_s)
            + sum(self.fixed_s)
        )

    @property
    def fixed_fraction(self) -> float:
        """Share of total cost that is per-offload fixed overhead — rises
        as banks shrink (the late-generation tail)."""
        total = self.total_s
        return sum(self.fixed_s) / total if total else 0.0

    def per_particle_cost(self) -> list[float]:
        """Offload seconds per banked particle, per iteration.

        Monotone-increasing toward the generation's tail: the measured form
        of Fig. 3's amortization argument.
        """
        out = []
        for i, n in enumerate(self.bank_sizes):
            cost = (
                self.banking_s[i]
                + self.transfer_s[i]
                + self.compute_s[i]
                + self.fixed_s[i]
            )
            out.append(cost / n if n else float("inf"))
        return out


def trace_offload(
    stats: "TransportStats", model: OffloadCostModel
) -> OffloadTrace:
    """Price a measured queue trace through the offload model.

    Each recorded dispatch's lookup queue is one offload: the bank is
    written on the host, shipped over PCIe, and computed on the MIC, plus
    the fixed per-offload runtime overhead.  ``stats`` is any object with
    ``iterations`` and ``lookup_counts`` (a
    :class:`~repro.transport.stats.TransportStats` from either backend).
    """
    if stats.iterations == 0:
        raise ExecutionError("empty queue trace — run a generation first")
    trace = OffloadTrace(
        bank_sizes=[int(v) for v in stats.lookup_counts],
        banking_s=[], transfer_s=[], compute_s=[], fixed_s=[],
    )
    for n in trace.bank_sizes:
        trace.banking_s.append(model.banking_time_host(n))
        trace.transfer_s.append(model.transfer_time(n))
        trace.compute_s.append(model.mic_compute_time(n))
        trace.fixed_s.append(OFFLOAD_FIXED_S + model.mic_launch_overhead())
    return trace
