"""The symmetric execution model: an ordered device fleet under MPI.

One binary per architecture, launched together; work is split across the
fleet.  The batch barrier means the node's batch time is the *maximum*
over its ranks — the load-imbalance mechanism behind Table III's
"Original" column — plus a per-batch synchronization/reduction cost.

:class:`FleetNode` is the general form (N heterogeneous devices, equal /
rate-proportional / explicit-weight splits); :class:`SymmetricNode` keeps
the paper's host+MICs view on top of it (Eq. 3's two-class alpha split,
bit-identical to the pre-fleet implementation).  This model produces
Table III directly and is the per-node building block of the
cluster-scaling experiments (Figs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

from ..errors import ExecutionError
from ..machine.kernels import TransportCostModel, WorkPerParticle
from ..machine.memory import library_nuclides
from ..machine.spec import DeviceSpec
from ..resilience.recovery import redistribute_slice
from .loadbalance import (
    AdaptiveAlphaController,
    alpha_split_counts,
    equal_split,
    fleet_split,
)

if TYPE_CHECKING:
    from .context import ExecutionContext

__all__ = ["FleetNode", "SymmetricNode", "SymmetricScheduler"]

#: Per-batch synchronization + tally-reduction cost within a node [s].
NODE_SYNC_S = 0.1


@dataclass
class FleetNode:
    """One compute node running symmetric mode over an ordered fleet of
    N heterogeneous devices.

    Split strategies: ``"equal"`` (OpenMC default), ``"rate"``
    (rate-proportional :func:`~repro.execution.loadbalance.fleet_split`
    over each device's modelled rate at its equal share — Eq. 3
    generalized), or ``"weights"`` (explicit rate weights).
    """

    devices: list[DeviceSpec]
    model: str
    work: WorkPerParticle | None = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise ExecutionError("fleet needs at least one device")
        if self.work is None:
            self.work = WorkPerParticle.hm_reference()
        n_nuc = library_nuclides(self.model)
        self._costs = [
            TransportCostModel(d, n_nuc, self.work) for d in self.devices
        ]

    @property
    def n_ranks(self) -> int:
        return len(self.devices)

    # -- Assignments ----------------------------------------------------------------

    def device_rates(self, n_particles: int) -> list[float]:
        """Modelled per-device rates at an equal share of ``n_particles``
        (occupancy effects included) — the ``"rate"`` strategy's weights."""
        per = max(n_particles // self.n_ranks, 1)
        return [cost.calculation_rate(per) for cost in self._costs]

    def _counts(
        self,
        n_particles: int,
        strategy: str,
        alpha: float | None = None,
        weights: "list[float] | None" = None,
    ) -> list[int]:
        """Per-rank particle counts in fleet order."""
        if strategy == "equal":
            return equal_split(n_particles, self.n_ranks)
        if strategy == "rate":
            return fleet_split(n_particles, self.device_rates(n_particles))
        if strategy == "weights":
            if weights is None:
                raise ExecutionError("weights strategy requires weights")
            return fleet_split(n_particles, weights)
        raise ExecutionError(f"unknown split strategy {strategy!r}")

    def fleet_counts(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
        weights: "list[float] | None" = None,
    ) -> list[int]:
        """Public per-rank assignment in fleet order."""
        return self._counts(n_particles, strategy, alpha, weights)

    # -- Timing ---------------------------------------------------------------------

    def batch_time(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
        weights: "list[float] | None" = None,
    ) -> float:
        """Node batch time: barrier max over ranks, plus node sync."""
        counts = self._counts(n_particles, strategy, alpha, weights)
        times = [
            cost.batch_time(count)
            for cost, count in zip(self._costs, counts)
            if count > 0
        ]
        if not times:
            times = [self._costs[0].batch_time(0)]
        return max(times) + NODE_SYNC_S

    def calculation_rate(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
        weights: "list[float] | None" = None,
    ) -> float:
        """Node calculation rate [n/s] (Table III's entries)."""
        t = self.batch_time(n_particles, strategy, alpha, weights)
        return n_particles / t if t > 0 else 0.0

    def ideal_rate(self, n_particles: int) -> float:
        """Sum of isolated device rates — the paper's 'ideal' reference."""
        per = n_particles // self.n_ranks
        return sum(cost.calculation_rate(per) for cost in self._costs)


class SymmetricNode(FleetNode):
    """The paper's host+MICs node as a two-class view of a fleet.

    ``mics`` may be empty (CPU-only node), hold one MIC (most Stampede
    nodes) or two (JLSE and 384 Stampede nodes).  Fleet rank order is
    ``[*mics, host]`` — MIC ranks first, host last, matching the
    historical split shapes.
    """

    def __init__(
        self,
        host: DeviceSpec,
        mics: list[DeviceSpec],
        model: str,
        work: WorkPerParticle | None = None,
    ) -> None:
        self.host = host
        self.mics = list(mics)
        super().__init__([*self.mics, host], model, work)

    @property
    def _host_cost(self) -> TransportCostModel:
        return self._costs[-1]

    @property
    def _mic_costs(self) -> list[TransportCostModel]:
        return self._costs[:-1]

    # -- Assignments ----------------------------------------------------------------

    def split(
        self, n_particles: int, strategy: str, alpha: float | None = None
    ) -> tuple[list[int], int]:
        """Per-MIC and host particle assignments.

        ``strategy`` is ``"equal"`` (OpenMC default) or ``"alpha"``
        (Eq. 3 static balancing, requires ``alpha``).
        Returns ``(per_mic_counts, host_count)``.
        """
        counts = self._counts(n_particles, strategy, alpha)
        return counts[:-1], counts[-1]

    def _counts(
        self,
        n_particles: int,
        strategy: str,
        alpha: float | None = None,
        weights: "list[float] | None" = None,
    ) -> list[int]:
        if strategy == "alpha":
            if alpha is None:
                raise ExecutionError("alpha strategy requires alpha")
            mic_counts, cpu_counts = alpha_split_counts(
                n_particles, len(self.mics), 1, alpha
            )
            return [*mic_counts, cpu_counts[0]]
        return super()._counts(n_particles, strategy, alpha, weights)


@dataclass
class SymmetricScheduler:
    """Symmetric-mode scheduler: the generation is split across the
    node's ranks, each rank transports its contiguous slice through the
    backend, and per-rank tallies and banks are reduced at the batch
    barrier.

    Because particle RNG streams are keyed by *global* particle id
    (``first_id`` + slice offset) and the fission bank's canonical
    ``(parent, seq)`` ordering is split-invariant, the merged bank and
    work counters are bit-identical to an unsplit run of the same
    backend; tally floats agree to summation-order tolerance (per-rank
    partial sums are merged at the barrier) — Table III's execution
    model without giving up the equivalence contract.  No transport
    imports: slices run and merge through the
    :class:`~repro.execution.context.ExecutionContext`.

    With a supervisor *and* a work-stealing rebalancer on the context,
    each batch's assignment is re-planned from the health monitor's EMA
    rates (see :mod:`repro.execution.rebalance`); slices keep their
    global ids, so the bit-identity contract above carries over to
    rebalanced runs versus a static run of the same final assignment.
    """

    node: FleetNode | None = None
    #: Rank count when no :class:`FleetNode` cost model is attached.
    n_ranks: int = 2
    #: When supervised and exactly two ranks survive, the split follows the
    #: controller's measured alpha instead of the equal split, so the load
    #: balance re-converges after an eviction or a mid-run rate shift.
    alpha_controller: AdaptiveAlphaController | None = None

    @property
    def ranks(self) -> int:
        return self.node.n_ranks if self.node is not None else self.n_ranks

    def run_generation(
        self,
        ec: "ExecutionContext",
        positions,
        energies,
        tallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        power=None,
        spectrum=None,
    ):
        """Transport one generation split across the node's ranks; merge
        per-rank tallies (in rank order) and banks into the caller's.

        With a supervisor on the context, the split covers only the alive
        ranks, an injected rank crash triggers in-batch eviction and slice
        redistribution, and chronic stragglers are evicted between batches
        (see :meth:`_run_supervised`).
        """
        if self.ranks < 1:
            raise ExecutionError("symmetric scheduler needs >= 1 rank")
        if getattr(ec, "supervisor", None) is not None:
            return self._run_supervised(
                ec, positions, energies, tallies, k_norm, first_id,
                power, spectrum,
            )
        n = positions.shape[0]
        merged_bank = ec.new_bank()
        parts = []
        start = 0
        for count in equal_split(n, self.ranks):
            sl = slice(start, start + count)
            start += count
            if count == 0:
                continue
            rank_tallies = ec.new_tallies()
            bank = ec.run_generation(
                positions[sl], energies[sl], rank_tallies,
                k_norm, first_id + sl.start,
                power=power, spectrum=spectrum,
            )
            parts.append(rank_tallies)
            merged_bank.absorb(bank)
        ec.merge_tallies(tallies, parts)
        return merged_bank

    # -- Supervised path ---------------------------------------------------------

    def _alive_split(self, n: int, alive: list[int]) -> list[int]:
        """Particle counts per alive rank, in ``alive`` order."""
        if self.alpha_controller is not None and len(alive) == 2:
            n_mic, n_cpu = self.alpha_controller.split(n)
            return [n_mic, n_cpu]
        return equal_split(n, len(alive))

    def _plan_assignments(
        self, ec, batch: int, n: int, alive: list[int]
    ) -> list[tuple[int, slice]]:
        """Per-batch ``(rank, slice)`` assignment: the work-stealing plan
        when a rebalancer rides on the context, else the static split."""
        rebal = getattr(ec, "rebalancer", None)
        if rebal is not None:
            monitor = getattr(ec.supervisor, "monitor", None)
            rates = rebal.resolve_rates(alive, monitor)
            return rebal.plan(batch, n, alive, rates)
        assignments: list[tuple[int, slice]] = []
        start = 0
        for rank, count in zip(alive, self._alive_split(n, alive)):
            assignments.append((rank, slice(start, start + count)))
            start += count
        return assignments

    def _run_supervised(
        self, ec, positions, energies, tallies, k_norm, first_id,
        power, spectrum,
    ):
        """One supervised generation: split over the alive ranks, evict an
        injected crash victim mid-batch and redistribute its global-id
        slice over the survivors, observe per-rank rates, and evict
        chronic stragglers for subsequent batches.

        Every slice keeps its *global* first id, so the histories run are
        exactly the fault-free run's histories regardless of which rank
        transports them: banks and work counters stay bit-identical to a
        fault-free run of the surviving topology.  Sub-slices are sorted
        by global start before the merge so a given run's reduction order
        is itself deterministic.
        """
        sup = ec.supervisor
        batch = sup.begin_batch()
        alive = sup.alive
        n = positions.shape[0]
        assignments = self._plan_assignments(ec, batch, n, alive)
        victim = (
            ec.fault_plan.crashed_rank(batch)
            if ec.fault_plan is not None
            else None
        )
        if victim is not None and victim in alive:
            survivors = sup.evict(victim, batch=batch, reason="crash")
            dead = [sl for r, sl in assignments if r == victim]
            assignments = [(r, sl) for r, sl in assignments if r != victim]
            for dead_slice in dead:
                assignments.extend(redistribute_slice(dead_slice, survivors))
        assignments.sort(key=lambda pair: pair[1].start)

        merged_bank = ec.new_bank()
        parts = []
        per_rank: dict[int, list] = {}
        batch_t0 = perf_counter()
        for rank, sl in assignments:
            count = sl.stop - sl.start
            if count == 0:
                continue
            rank_tallies = ec.new_tallies()
            t0 = perf_counter()
            bank = ec.run_generation(
                positions[sl], energies[sl], rank_tallies,
                k_norm, first_id + sl.start,
                power=power, spectrum=spectrum,
            )
            seconds = perf_counter() - t0
            parts.append(rank_tallies)
            merged_bank.absorb(bank)
            acc = per_rank.setdefault(rank, [0.0, 0])
            acc[0] += seconds
            acc[1] += count
        for rank in sorted(per_rank):
            seconds, count = per_rank[rank]
            sup.observe_batch(rank, batch, seconds, count)
        self._refit_alpha(sup.alive, per_rank)
        sup.enforce_deadline(
            perf_counter() - batch_t0, what=f"symmetric batch {batch}"
        )
        sup.finish_batch(batch)
        ec.merge_tallies(tallies, parts)
        return merged_bank

    def _refit_alpha(self, alive: list[int], per_rank: dict) -> None:
        """Feed measured per-rank rates into the alpha controller (two
        surviving ranks only — alpha is a MIC/CPU pair ratio)."""
        if self.alpha_controller is None or len(alive) != 2:
            return
        mic, cpu = alive
        if mic not in per_rank or cpu not in per_rank:
            return
        mic_s, mic_n = per_rank[mic]
        cpu_s, cpu_n = per_rank[cpu]
        if mic_s <= 0 or cpu_s <= 0 or mic_n == 0 or cpu_n == 0:
            return
        self.alpha_controller.observe(cpu_n / cpu_s, mic_n / mic_s)

    def modelled_batch_time(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
    ) -> float | None:
        """Cost-model node batch time for what was just executed (None
        without a :class:`FleetNode`)."""
        if self.node is None:
            return None
        return self.node.batch_time(n_particles, strategy, alpha)
