"""The symmetric execution model: host + MIC ranks under MPI.

One binary per architecture, launched together; work is split statically.
The batch barrier means the node's batch time is the *maximum* over its
ranks — the load-imbalance mechanism behind Table III's "Original" column —
plus a per-batch synchronization/reduction cost.

This model produces Table III directly and is the per-node building block
of the cluster-scaling experiments (Figs. 6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING

from ..errors import ExecutionError
from ..machine.kernels import TransportCostModel, WorkPerParticle
from ..machine.memory import library_nuclides
from ..machine.spec import DeviceSpec
from ..resilience.recovery import redistribute_slice
from .loadbalance import AdaptiveAlphaController, alpha_split, equal_split

if TYPE_CHECKING:
    from .context import ExecutionContext

__all__ = ["SymmetricNode", "SymmetricScheduler"]

#: Per-batch synchronization + tally-reduction cost within a node [s].
NODE_SYNC_S = 0.1


@dataclass
class SymmetricNode:
    """One compute node running symmetric mode.

    ``mics`` may be empty (CPU-only node), hold one MIC (most Stampede
    nodes) or two (JLSE and 384 Stampede nodes).
    """

    host: DeviceSpec
    mics: list[DeviceSpec]
    model: str
    work: WorkPerParticle | None = None

    def __post_init__(self) -> None:
        if self.work is None:
            self.work = WorkPerParticle.hm_reference()
        n_nuc = library_nuclides(self.model)
        self._host_cost = TransportCostModel(self.host, n_nuc, self.work)
        self._mic_costs = [
            TransportCostModel(m, n_nuc, self.work) for m in self.mics
        ]

    @property
    def n_ranks(self) -> int:
        return 1 + len(self.mics)

    # -- Assignments ----------------------------------------------------------------

    def split(
        self, n_particles: int, strategy: str, alpha: float | None = None
    ) -> tuple[list[int], int]:
        """Per-MIC and host particle assignments.

        ``strategy`` is ``"equal"`` (OpenMC default) or ``"alpha"``
        (Eq. 3 static balancing, requires ``alpha``).
        Returns ``(per_mic_counts, host_count)``.
        """
        if strategy == "equal":
            parts = equal_split(n_particles, self.n_ranks)
            return parts[: len(self.mics)], parts[-1]
        if strategy == "alpha":
            if alpha is None:
                raise ExecutionError("alpha strategy requires alpha")
            n_mic, n_cpu = alpha_split(
                n_particles, len(self.mics), 1, alpha
            )
            return [n_mic] * len(self.mics), n_cpu
        raise ExecutionError(f"unknown split strategy {strategy!r}")

    # -- Timing ---------------------------------------------------------------------

    def batch_time(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
    ) -> float:
        """Node batch time: barrier max over ranks, plus node sync."""
        if not self.mics:
            return self._host_cost.batch_time(n_particles) + NODE_SYNC_S
        mic_counts, host_count = self.split(n_particles, strategy, alpha)
        times = [self._host_cost.batch_time(host_count)]
        times += [
            cost.batch_time(n)
            for cost, n in zip(self._mic_costs, mic_counts)
        ]
        return max(times) + NODE_SYNC_S

    def calculation_rate(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
    ) -> float:
        """Node calculation rate [n/s] (Table III's entries)."""
        t = self.batch_time(n_particles, strategy, alpha)
        return n_particles / t if t > 0 else 0.0

    def ideal_rate(self, n_particles: int) -> float:
        """Sum of isolated device rates — the paper's 'ideal' reference."""
        per = n_particles // self.n_ranks
        rate = self._host_cost.calculation_rate(per)
        for cost in self._mic_costs:
            rate += cost.calculation_rate(per)
        return rate


@dataclass
class SymmetricScheduler:
    """Symmetric-mode scheduler: the generation is split statically across
    the node's ranks (host + MICs), each rank transports its contiguous
    slice through the backend, and per-rank tallies and banks are reduced
    at the batch barrier.

    Because particle RNG streams are keyed by *global* particle id
    (``first_id`` + slice offset) and the fission bank's canonical
    ``(parent, seq)`` ordering is split-invariant, the merged bank and
    work counters are bit-identical to an unsplit run of the same
    backend; tally floats agree to summation-order tolerance (per-rank
    partial sums are merged at the barrier) — Table III's execution
    model without giving up the equivalence contract.  No transport
    imports: slices run and merge through the
    :class:`~repro.execution.context.ExecutionContext`.
    """

    node: SymmetricNode | None = None
    #: Rank count when no :class:`SymmetricNode` cost model is attached.
    n_ranks: int = 2
    #: When supervised and exactly two ranks survive, the split follows the
    #: controller's measured alpha instead of the equal split, so the load
    #: balance re-converges after an eviction or a mid-run rate shift.
    alpha_controller: AdaptiveAlphaController | None = None

    @property
    def ranks(self) -> int:
        return self.node.n_ranks if self.node is not None else self.n_ranks

    def run_generation(
        self,
        ec: "ExecutionContext",
        positions,
        energies,
        tallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        power=None,
        spectrum=None,
    ):
        """Transport one generation split across the node's ranks; merge
        per-rank tallies (in rank order) and banks into the caller's.

        With a supervisor on the context, the split covers only the alive
        ranks, an injected rank crash triggers in-batch eviction and slice
        redistribution, and chronic stragglers are evicted between batches
        (see :meth:`_run_supervised`).
        """
        if self.ranks < 1:
            raise ExecutionError("symmetric scheduler needs >= 1 rank")
        if getattr(ec, "supervisor", None) is not None:
            return self._run_supervised(
                ec, positions, energies, tallies, k_norm, first_id,
                power, spectrum,
            )
        n = positions.shape[0]
        merged_bank = ec.new_bank()
        parts = []
        start = 0
        for count in equal_split(n, self.ranks):
            sl = slice(start, start + count)
            start += count
            if count == 0:
                continue
            rank_tallies = ec.new_tallies()
            bank = ec.run_generation(
                positions[sl], energies[sl], rank_tallies,
                k_norm, first_id + sl.start,
                power=power, spectrum=spectrum,
            )
            parts.append(rank_tallies)
            merged_bank.absorb(bank)
        ec.merge_tallies(tallies, parts)
        return merged_bank

    # -- Supervised path ---------------------------------------------------------

    def _alive_split(self, n: int, alive: list[int]) -> list[int]:
        """Particle counts per alive rank, in ``alive`` order."""
        if self.alpha_controller is not None and len(alive) == 2:
            n_mic, n_cpu = self.alpha_controller.split(n)
            return [n_mic, n_cpu]
        return equal_split(n, len(alive))

    def _run_supervised(
        self, ec, positions, energies, tallies, k_norm, first_id,
        power, spectrum,
    ):
        """One supervised generation: split over the alive ranks, evict an
        injected crash victim mid-batch and redistribute its global-id
        slice over the survivors, observe per-rank rates, and evict
        chronic stragglers for subsequent batches.

        Every slice keeps its *global* first id, so the histories run are
        exactly the fault-free run's histories regardless of which rank
        transports them: banks and work counters stay bit-identical to a
        fault-free run of the surviving topology.  Sub-slices are sorted
        by global start before the merge so a given run's reduction order
        is itself deterministic.
        """
        sup = ec.supervisor
        batch = sup.begin_batch()
        alive = sup.alive
        n = positions.shape[0]
        assignments: list[tuple[int, slice]] = []
        start = 0
        for rank, count in zip(alive, self._alive_split(n, alive)):
            assignments.append((rank, slice(start, start + count)))
            start += count
        victim = (
            ec.fault_plan.crashed_rank(batch)
            if ec.fault_plan is not None
            else None
        )
        if victim is not None and victim in alive:
            survivors = sup.evict(victim, batch=batch, reason="crash")
            dead = [sl for r, sl in assignments if r == victim]
            assignments = [(r, sl) for r, sl in assignments if r != victim]
            for dead_slice in dead:
                assignments.extend(redistribute_slice(dead_slice, survivors))
        assignments.sort(key=lambda pair: pair[1].start)

        merged_bank = ec.new_bank()
        parts = []
        per_rank: dict[int, list] = {}
        batch_t0 = perf_counter()
        for rank, sl in assignments:
            count = sl.stop - sl.start
            if count == 0:
                continue
            rank_tallies = ec.new_tallies()
            t0 = perf_counter()
            bank = ec.run_generation(
                positions[sl], energies[sl], rank_tallies,
                k_norm, first_id + sl.start,
                power=power, spectrum=spectrum,
            )
            seconds = perf_counter() - t0
            parts.append(rank_tallies)
            merged_bank.absorb(bank)
            acc = per_rank.setdefault(rank, [0.0, 0])
            acc[0] += seconds
            acc[1] += count
        for rank in sorted(per_rank):
            seconds, count = per_rank[rank]
            sup.observe_batch(rank, batch, seconds, count)
        self._refit_alpha(sup.alive, per_rank)
        sup.enforce_deadline(
            perf_counter() - batch_t0, what=f"symmetric batch {batch}"
        )
        sup.finish_batch(batch)
        ec.merge_tallies(tallies, parts)
        return merged_bank

    def _refit_alpha(self, alive: list[int], per_rank: dict) -> None:
        """Feed measured per-rank rates into the alpha controller (two
        surviving ranks only — alpha is a MIC/CPU pair ratio)."""
        if self.alpha_controller is None or len(alive) != 2:
            return
        mic, cpu = alive
        if mic not in per_rank or cpu not in per_rank:
            return
        mic_s, mic_n = per_rank[mic]
        cpu_s, cpu_n = per_rank[cpu]
        if mic_s <= 0 or cpu_s <= 0 or mic_n == 0 or cpu_n == 0:
            return
        self.alpha_controller.observe(cpu_n / cpu_s, mic_n / mic_s)

    def modelled_batch_time(
        self,
        n_particles: int,
        strategy: str = "equal",
        alpha: float | None = None,
    ) -> float | None:
        """Cost-model node batch time for what was just executed (None
        without a :class:`SymmetricNode`)."""
        if self.node is None:
            return None
        return self.node.batch_time(n_particles, strategy, alpha)
