"""On-disk cross-section library cache keyed by content fingerprint.

Library construction is the service's dominant *fixed* cost — the job-level
analogue of the paper's PCIe offload overhead: a price paid once that must
be amortized over as much work as possible.  The cache turns N jobs sharing
one :func:`~repro.data.library.library_fingerprint` into exactly one build:
the first worker to need a library builds it and publishes the ``.npz``
atomically (temp file + ``os.replace``); everyone else loads it.

Cross-process single-build is enforced with an ``O_CREAT | O_EXCL``
lockfile: one builder wins the lock, the rest wait for the published file
to appear.  A stale lock (builder died mid-build) is bounded by
``build_timeout_s`` — waiters fall back to building locally rather than
hanging, trading one redundant build for liveness.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..data.io import load_library, save_library
from ..data.library import (
    LibraryConfig,
    NuclideLibrary,
    build_library,
    library_fingerprint,
)
from ..errors import DataError, ServeError

__all__ = ["CacheOutcome", "LibraryCache"]

_SUFFIX = ".npz"


@dataclass(frozen=True)
class CacheOutcome:
    """How one library was obtained (feeds the service's cache metrics)."""

    fingerprint: str
    #: ``built`` (cache miss), ``disk-cache`` (hit), or ``memory``
    #: (worker-local hit; stamped by the worker, never by this module).
    source: str
    build_seconds: float = 0.0
    load_seconds: float = 0.0


class LibraryCache:
    """Fingerprint-keyed directory of built libraries."""

    def __init__(
        self, directory: str | Path, *, build_timeout_s: float = 120.0
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if build_timeout_s <= 0:
            raise ServeError("build_timeout_s must be positive")
        self.build_timeout_s = build_timeout_s

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"lib-{fingerprint[:24]}{_SUFFIX}"

    def _lock_for(self, fingerprint: str) -> Path:
        return self.directory / f"lib-{fingerprint[:24]}.lock"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def get_or_build(
        self, model: str, config: LibraryConfig
    ) -> tuple[NuclideLibrary, CacheOutcome]:
        """Return the library for ``(model, config)``, building at most once
        across all processes sharing this cache directory (stale-lock
        fallback excepted)."""
        fp = library_fingerprint(model, config)
        path = self.path_for(fp)

        hit = self._try_load(path, fp)
        if hit is not None:
            return hit

        lock = self._lock_for(fp)
        deadline = time.monotonic() + self.build_timeout_s
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                # Another process is building; wait for it to publish.
                time.sleep(0.02)
                hit = self._try_load(path, fp)
                if hit is not None:
                    return hit
                if time.monotonic() > deadline:
                    # Stale lock: the builder died.  Build locally.
                    return self._build_and_publish(model, config, fp, path)
                continue
            os.close(fd)
            try:
                # Re-check under the lock: the previous holder may have
                # published between our miss and our acquisition.
                hit = self._try_load(path, fp)
                if hit is not None:
                    return hit
                return self._build_and_publish(model, config, fp, path)
            finally:
                try:
                    os.unlink(lock)
                except FileNotFoundError:
                    pass

    # -- Internals -----------------------------------------------------------

    def _try_load(
        self, path: Path, fp: str
    ) -> tuple[NuclideLibrary, CacheOutcome] | None:
        if not path.exists():
            return None
        t0 = time.perf_counter()
        try:
            library = load_library(path)
        except (DataError, OSError, ValueError):
            # Corrupt or partial file (should be impossible given the atomic
            # publish, but a cache must never be a source of failure).
            try:
                path.unlink()
            except OSError:
                pass
            return None
        dt = time.perf_counter() - t0
        return library, CacheOutcome(fp, "disk-cache", load_seconds=dt)

    def _build_and_publish(
        self, model: str, config: LibraryConfig, fp: str, path: Path
    ) -> tuple[NuclideLibrary, CacheOutcome]:
        t0 = time.perf_counter()
        library = build_library(model, config)
        build_s = time.perf_counter() - t0
        # The temp name must keep the .npz suffix or numpy appends one and
        # the final os.replace would miss the actual file written.
        tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}{_SUFFIX}")
        try:
            save_library(library, tmp)
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
        return library, CacheOutcome(fp, "built", build_seconds=build_s)
