"""On-disk cross-section library cache keyed by content fingerprint.

Library construction is the service's dominant *fixed* cost — the job-level
analogue of the paper's PCIe offload overhead: a price paid once that must
be amortized over as much work as possible.  The cache turns N jobs sharing
one :func:`~repro.data.library.library_fingerprint` into exactly one build:
the first worker to need a library builds it and publishes the ``.npz``
atomically (temp file + ``os.replace``); everyone else loads it.

Cross-process single-build is enforced with an ``O_CREAT | O_EXCL``
lockfile: one builder wins the lock, the rest wait for the published file
to appear.  A stale lock (builder died mid-build) is bounded by
``build_timeout_s`` — waiters fall back to building locally rather than
hanging, trading one redundant build for liveness.

Reads are **digest-verified** (PR 10): the publisher writes a
``.sha256`` sidecar over the npz bytes *before* the npz lands, and every
load re-hashes the file against it.  A mismatch — bit rot, a tampered
file, a torn write that still unpickles — is **quarantined** (npz
renamed to ``.corrupt``, sidecar removed, counted through a typed
:class:`~repro.errors.CorruptEntryError`) and the library is rebuilt;
readers never crash and never compute on damaged data.  Entries without
a sidecar (legacy, or the rare sidecar/npz publish race) fall back to
the unverified load, whose own failure path also quarantines.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path

from ..data.io import load_library, save_library
from ..data.library import (
    LibraryConfig,
    NuclideLibrary,
    build_library,
    library_fingerprint,
)
from ..errors import CorruptEntryError, DataError, ServeError

__all__ = ["CacheOutcome", "LibraryCache"]

_SUFFIX = ".npz"
_DIGEST_SUFFIX = ".sha256"


@dataclass(frozen=True)
class CacheOutcome:
    """How one library was obtained (feeds the service's cache metrics)."""

    fingerprint: str
    #: ``built`` (cache miss), ``disk-cache`` (hit), or ``memory``
    #: (worker-local hit; stamped by the worker, never by this module).
    source: str
    build_seconds: float = 0.0
    load_seconds: float = 0.0


class LibraryCache:
    """Fingerprint-keyed directory of built libraries."""

    def __init__(
        self, directory: str | Path, *, build_timeout_s: float = 120.0
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if build_timeout_s <= 0:
            raise ServeError("build_timeout_s must be positive")
        self.build_timeout_s = build_timeout_s
        #: Cache files that failed digest verification (or failed to
        #: load at all) and were quarantined instead of used.
        self.corrupt_entries = 0

    def path_for(self, fingerprint: str) -> Path:
        return self.directory / f"lib-{fingerprint[:24]}{_SUFFIX}"

    def digest_path_for(self, fingerprint_or_path) -> Path:
        path = (
            fingerprint_or_path
            if isinstance(fingerprint_or_path, Path)
            else self.path_for(fingerprint_or_path)
        )
        return path.with_suffix(_DIGEST_SUFFIX)

    def _lock_for(self, fingerprint: str) -> Path:
        return self.directory / f"lib-{fingerprint[:24]}.lock"

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def get_or_build(
        self, model: str, config: LibraryConfig
    ) -> tuple[NuclideLibrary, CacheOutcome]:
        """Return the library for ``(model, config)``, building at most once
        across all processes sharing this cache directory (stale-lock
        fallback excepted)."""
        fp = library_fingerprint(model, config)
        path = self.path_for(fp)

        hit = self._try_load(path, fp)
        if hit is not None:
            return hit

        lock = self._lock_for(fp)
        deadline = time.monotonic() + self.build_timeout_s
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                # Another process is building; wait for it to publish.
                time.sleep(0.02)
                hit = self._try_load(path, fp)
                if hit is not None:
                    return hit
                if time.monotonic() > deadline:
                    # Stale lock: the builder died.  Build locally.
                    return self._build_and_publish(model, config, fp, path)
                continue
            os.close(fd)
            try:
                # Re-check under the lock: the previous holder may have
                # published between our miss and our acquisition.
                hit = self._try_load(path, fp)
                if hit is not None:
                    return hit
                return self._build_and_publish(model, config, fp, path)
            finally:
                try:
                    os.unlink(lock)
                except FileNotFoundError:
                    pass

    # -- Internals -----------------------------------------------------------

    def _try_load(
        self, path: Path, fp: str
    ) -> tuple[NuclideLibrary, CacheOutcome] | None:
        if not path.exists():
            return None
        t0 = time.perf_counter()
        try:
            self._verify_digest(path)
            library = load_library(path)
        except CorruptEntryError:
            self._quarantine(path)
            return None
        except (DataError, OSError, ValueError):
            # The file loads past the digest check but not as a library
            # (legacy entry with no sidecar, or a sidecar-matching write
            # of garbage).  Same response: quarantine and rebuild — a
            # cache must never be a source of failure.
            self._quarantine(path)
            return None
        dt = time.perf_counter() - t0
        return library, CacheOutcome(fp, "disk-cache", load_seconds=dt)

    def _verify_digest(self, path: Path) -> None:
        """Check ``path`` against its ``.sha256`` sidecar, if present.

        No sidecar = legacy entry (or the publish raced between sidecar
        and npz): fall through to the load, which has its own failure
        quarantine.  A present-but-wrong sidecar is typed corruption.
        """
        sidecar = self.digest_path_for(path)
        try:
            expected = sidecar.read_text().strip()
        except OSError:
            return
        try:
            actual = hashlib.sha256(path.read_bytes()).hexdigest()
        except OSError as exc:
            raise CorruptEntryError(
                f"cache entry unreadable: {exc}", path=str(path)
            ) from None
        if actual != expected:
            raise CorruptEntryError(
                f"library cache digest mismatch: sidecar {expected[:16]}…,"
                f" content {actual[:16]}…",
                path=str(path),
            )

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry out of the cache namespace (keeping the
        bytes for forensics) so the caller rebuilds."""
        self.corrupt_entries += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass  # racing reader already quarantined it
        try:
            self.digest_path_for(path).unlink()
        except OSError:
            pass

    def _build_and_publish(
        self, model: str, config: LibraryConfig, fp: str, path: Path
    ) -> tuple[NuclideLibrary, CacheOutcome]:
        t0 = time.perf_counter()
        library = build_library(model, config)
        build_s = time.perf_counter() - t0
        # The temp name must keep the .npz suffix or numpy appends one and
        # the final os.replace would miss the actual file written.
        tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}{_SUFFIX}")
        try:
            save_library(library, tmp)
            # Sidecar first (intent), npz last (commit): a crash between
            # the two leaves a sidecar with no npz — a miss, not a lie.
            self._publish_digest(path, tmp)
            with open(tmp, "rb") as fh:
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            try:
                tmp.unlink()
            except FileNotFoundError:
                pass
        return library, CacheOutcome(fp, "built", build_seconds=build_s)

    def _publish_digest(self, path: Path, tmp: Path) -> None:
        digest = hashlib.sha256(tmp.read_bytes()).hexdigest()
        sidecar = self.digest_path_for(path)
        sidecar_tmp = sidecar.with_name(
            f".{sidecar.name}.tmp-{os.getpid()}"
        )
        with open(sidecar_tmp, "w") as fh:
            fh.write(digest + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(sidecar_tmp, sidecar)

    # -- Observability --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "entries": len(list(self.directory.glob(f"*{_SUFFIX}"))),
            "corrupt_entries": self.corrupt_entries,
        }
