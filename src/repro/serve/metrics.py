"""Structured service metrics: counters, gauges, latency histograms.

The registry is the service's observable surface — queue depth, wait time,
service time, cache hit rate, worker utilization — exported as one JSON
document (``as_dict``/``to_json``, round-tripping via ``from_json``) and
convertible to a :class:`repro.profiling.Profile` so service-level timings
merge into the same TAU-style reports the transport layer produces
(``Histogram`` observations map onto routine call counts and inclusive
seconds).

All mutation goes through one registry lock: the service thread, the
submission path, and any scraper thread may touch the same registry
concurrently.  Histograms use fixed upper-bound buckets (Prometheus-style,
with a ``+Inf`` overflow) so concurrent observation never reallocates.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

from ..errors import ServeError
from ..profiling.timers import Profile

__all__ = ["Counter", "Gauge", "Histogram", "Info", "MetricsRegistry",
           "DEFAULT_LATENCY_BUCKETS"]

#: Upper bounds (seconds) spanning IPC dispatch (~ms) to multi-minute jobs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """Monotone event count."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ServeError(f"counter {self.name}: negative increment {n}")
        with self._lock:
            self.value += n

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Point-in-time level (queue depth, workers alive, hit rate)."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket latency histogram with sum/count/min/max."""

    def __init__(
        self,
        name: str,
        lock: threading.Lock,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ServeError(f"histogram {name}: buckets must be ascending")
        self.name = name
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.sum += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile from bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ServeError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bound, n in zip(self.buckets, self.counts):
            cumulative += n
            if cumulative >= rank:
                return bound
        return self.max

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {
                str(b): n for b, n in zip(self.buckets, self.counts)
            } | {"+Inf": self.counts[-1]},
        }


class Info:
    """Structured non-numeric state (Prometheus info-metric style).

    Carries a JSON-serializable document — the circuit breaker's per-job
    quarantine state, build metadata — that counters and gauges cannot
    express.  ``set`` replaces the whole document atomically; scrapers get
    a deep copy so registry state cannot be mutated from outside."""

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value: dict = {}

    def set(self, value: dict) -> None:
        try:
            encoded = json.dumps(value)
        except (TypeError, ValueError) as exc:
            raise ServeError(
                f"info {self.name}: value is not JSON-serializable: {exc}"
            ) from exc
        with self._lock:
            self._value = json.loads(encoded)

    @property
    def value(self) -> dict:
        # ``set`` replaces the document reference atomically, so a lockless
        # read is safe — and the registry's ``as_dict`` calls this while
        # already holding the shared (non-reentrant) lock.
        return json.loads(json.dumps(self._value))

    def as_dict(self) -> dict:
        return {"type": "info", "value": self.value}


class MetricsRegistry:
    """Named metrics with get-or-create semantics and JSON export."""

    def __init__(self, label: str = "serve") -> None:
        self.label = label
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, self._lock, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ServeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def info(self, name: str) -> Info:
        return self._get_or_create(name, Info)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "label": self.label,
                "metrics": {
                    name: m.as_dict()
                    for name, m in sorted(self._metrics.items())
                },
            }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MetricsRegistry":
        """Rebuild a registry exported by :meth:`to_json` (scrape-side)."""
        try:
            data = json.loads(text)
            registry = cls(data["label"])
            for name, m in data["metrics"].items():
                if m["type"] == "counter":
                    registry.counter(name).value = int(m["value"])
                elif m["type"] == "gauge":
                    registry.gauge(name).set(m["value"])
                elif m["type"] == "info":
                    registry.info(name).set(m["value"])
                elif m["type"] == "histogram":
                    bounds = tuple(
                        float(b) for b in m["buckets"] if b != "+Inf"
                    )
                    hist = registry.histogram(name, bounds or
                                              DEFAULT_LATENCY_BUCKETS)
                    hist.counts = [m["buckets"][str(b)] for b in hist.buckets]
                    hist.counts.append(m["buckets"]["+Inf"])
                    hist.count = int(m["count"])
                    hist.sum = float(m["sum"])
                    hist.min = float(m["min"])
                    hist.max = float(m["max"])
                else:
                    raise ServeError(f"unknown metric type {m['type']!r}")
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"malformed metrics JSON: {exc}") from exc
        return registry

    def to_profile(self, label: str | None = None) -> Profile:
        """Project latency histograms onto a TAU-style routine profile.

        Every histogram whose name ends in ``_seconds`` becomes a routine
        (calls = observation count, inclusive time = observation sum), so
        service overheads sit next to ``transport_generation`` in one
        merged report.
        """
        from ..profiling.timers import RoutineStats

        profile = Profile(label if label is not None else self.label)
        with self._lock:
            for name, m in sorted(self._metrics.items()):
                if isinstance(m, Histogram) and name.endswith("_seconds"):
                    if m.count == 0:
                        continue
                    routine = name[: -len("_seconds")]
                    profile.routines[routine] = RoutineStats(
                        routine, calls=m.count, total_seconds=m.sum
                    )
        return profile
