"""The service loop: queue -> batcher -> pool, with metrics and recovery.

:class:`SimulationService` ties the subsystem together.  Jobs enter through
:meth:`submit` (bounded, typed backpressure), stage into the
fingerprint-affinity :class:`~repro.serve.batching.Batcher`, and dispatch
to idle :class:`~repro.serve.pool.WorkerPool` workers.  Completions,
job-level errors, and worker crashes come back as pool events; crashes
requeue the in-flight job at the front of its priority class under the
service's :class:`~repro.resilience.recovery.RetryPolicy` — the same
attempt-bounded recovery the cluster layer applies to rank loss.

Nothing in this loop can perturb physics: a job's result is a pure
function of its spec, so scheduling order, batching decisions, and crash
reruns are all invisible in the payload (the bit-identical service
guarantee, tested end to end).

The module also provides the file spool used by the ``repro-sim
serve/submit/status`` subcommands: ``pending/`` holds submitted specs,
``done/``/``failed/`` hold results, ``metrics.json`` the last service
export — a filesystem contract simple enough to drive from a shell.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

from ..errors import (
    JobError,
    PoisonedJobError,
    QueueFullError,
    ServeError,
)
from ..resilience.recovery import RetryPolicy
from ..supervise.deadline import Deadline
from .batching import Batcher
from .jobs import JobResult, JobSpec
from .metrics import MetricsRegistry
from .pool import PoolEvent, WorkerPool
from .queue import JobQueue, QueuedJob

__all__ = [
    "SimulationService",
    "atomic_write_text",
    "read_spool_pending",
    "spool_dirs",
    "spool_status",
    "submit_to_spool",
    "write_spool_result",
]

_POLL_S = 0.05


class SimulationService:
    """A batched multi-worker simulation service."""

    def __init__(
        self,
        n_workers: int = 2,
        *,
        cache_dir: str | None = None,
        capacity: int = 64,
        retry_policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        start_method: str | None = None,
        drain_deadline_s: float | None = None,
    ) -> None:
        self.queue = JobQueue(capacity)
        self.batcher = Batcher()
        self.pool = WorkerPool(
            n_workers, cache_dir=cache_dir, start_method=start_method
        )
        self.metrics = metrics or MetricsRegistry("serve")
        self.retry_policy = retry_policy or RetryPolicy()
        #: Wall-clock bound on one :meth:`run` drain; ``None`` = unbounded.
        #: Overrun raises a typed :class:`~repro.errors.
        #: DeadlineExceededError` instead of hanging a caller forever on a
        #: wedged pool.
        self.drain_deadline_s = drain_deadline_s
        self.results: dict[str, JobResult] = {}
        self._order: list[str] = []
        self._wait_s: dict[str, float] = {}
        self._started = False
        self._mean_service_s = 0.0
        #: Results recorded since the last :meth:`take_fresh_results` —
        #: the incremental completion feed a long-running driver (the
        #: gateway shard pump) consumes between :meth:`step` calls.
        self._fresh: list[JobResult] = []
        #: Per-batch progress observer, ``f(worker_id, job_id, batch,
        #: seconds, n_particles)`` — the PR 5 ``on_batch`` contract bridged
        #: out of the worker processes.  Timing only; never tallies.
        self.on_progress = None
        # Pre-register the export surface so an idle service still reports
        # a complete (zeroed) metrics document.
        for name in (
            "jobs_submitted", "jobs_completed", "jobs_failed",
            "jobs_expired", "jobs_requeued", "jobs_poisoned",
            "worker_crashes", "queue_rejections", "library_builds",
            "library_disk_hits", "library_memory_hits",
        ):
            self.metrics.counter(name)
        for name in ("queue_depth", "in_flight", "workers_alive",
                     "cache_hit_rate", "circuits_open"):
            self.metrics.gauge(name)
        self.metrics.gauge("retry_after_seconds").set(
            self.queue.retry_after_hint
        )
        self.metrics.info("circuit_breaker").set(self.pool.breaker.as_dict())
        for name in ("queue_wait_seconds", "service_seconds",
                     "build_seconds", "dispatch_overhead_seconds"):
            self.metrics.histogram(name)

    # -- Submission ----------------------------------------------------------

    def submit(self, spec: JobSpec, *, front: bool = False) -> str:
        """Admit one job; raises :class:`QueueFullError` at capacity.

        ``front=True`` is the recovery path (capacity-exempt, enters ahead
        of its priority class): the gateway uses it to requeue jobs pulled
        back from an evicted shard, mirroring the pool's own crash requeue.
        """
        if spec.submitted_at is None:
            import dataclasses

            spec = dataclasses.replace(spec, submitted_at=time.time())
        if spec.job_id in self.results or spec.job_id in self._order:
            raise JobError(f"duplicate job id {spec.job_id!r}")
        try:
            self.queue.put(spec, front=front)
        except QueueFullError:
            self.metrics.counter("queue_rejections").inc()
            raise
        self._order.append(spec.job_id)
        self.metrics.counter("jobs_submitted").inc()
        self.metrics.gauge("queue_depth").set(len(self.queue))
        return spec.job_id

    # -- Lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if not self._started:
            self.pool.start()
            self._started = True
            self.metrics.gauge("workers_alive").set(self.pool.alive_count())

    def shutdown(self, *, graceful: bool = True) -> None:
        """Stop accepting jobs and stop workers (after in-flight work when
        graceful)."""
        self.queue.close()
        if self._started:
            self.pool.stop(graceful=graceful)
            self._started = False
        self.metrics.gauge("workers_alive").set(self.pool.alive_count())

    # -- Main loop -----------------------------------------------------------

    def run(self, specs: list[JobSpec] | None = None) -> list[JobResult]:
        """Feed ``specs`` (respecting queue capacity) and drain everything.

        Returns results for *all* jobs this service has completed, in
        submission order — the drain contract: every submitted job appears
        exactly once, as done, failed, or expired.
        """
        backlog = deque(specs or [])
        deadline = (
            Deadline(self.drain_deadline_s, label="serve drain")
            if self.drain_deadline_s is not None
            else None
        )
        self.start()
        while backlog or self.outstanding():
            if deadline is not None:
                deadline.check(
                    f"draining {len(self.queue)} queued / "
                    f"{self.pool.in_flight()} in-flight job(s)"
                )
            while backlog:
                try:
                    self.submit(backlog[0])
                except QueueFullError:
                    break
                backlog.popleft()
            self._tick()
        self._fresh.clear()
        return [self.results[job_id] for job_id in self._order
                if job_id in self.results]

    def run_until_drained(self) -> list[JobResult]:
        return self.run([])

    def outstanding(self) -> int:
        """Jobs admitted but not yet resolved (queued, staged, in flight)."""
        return len(self.queue) + len(self.batcher) + self.pool.in_flight()

    def step(self) -> list[JobResult]:
        """One incremental scheduling round; returns newly recorded results.

        The long-running-driver API: where :meth:`run` owns the whole
        drain, ``step`` advances the loop exactly one tick (stage,
        dispatch, collect — blocking at most the poll interval) so an
        outer scheduler (a gateway shard pump) can interleave feeding,
        supervision, and completion forwarding at its own cadence.
        """
        self.start()
        self._tick()
        return self.take_fresh_results()

    def take_fresh_results(self) -> list[JobResult]:
        """Results recorded since the last take (completion order)."""
        fresh = self._fresh
        self._fresh = []
        return fresh

    def _tick(self) -> None:
        """One scheduling round: stage, dispatch, collect."""
        t0 = time.perf_counter()
        self._stage_jobs()
        dispatched = self._dispatch_idle()
        overhead = time.perf_counter() - t0
        if dispatched:
            self.metrics.histogram("dispatch_overhead_seconds").observe(
                overhead
            )

        for event in self.pool.poll(timeout=_POLL_S):
            t1 = time.perf_counter()
            self._handle_event(event)
            self.metrics.histogram("dispatch_overhead_seconds").observe(
                time.perf_counter() - t1
            )
        self.metrics.gauge("queue_depth").set(len(self.queue))
        self.metrics.gauge("in_flight").set(self.pool.in_flight())
        self.metrics.gauge("workers_alive").set(self.pool.alive_count())

    def _stage_jobs(self) -> None:
        """Move queued jobs into the batcher while workers could use them."""
        window = 2 * self.pool.n_workers
        while len(self.batcher) < window:
            item = self.queue.get(timeout=0.0)
            if item is None:
                break
            if self._expired(item):
                continue
            self.batcher.add(item)

    def _expired(self, item: QueuedJob) -> bool:
        spec = item.spec
        if spec.deadline_s is None or spec.submitted_at is None:
            return False
        if time.time() - spec.submitted_at <= spec.deadline_s:
            return False
        self._record(
            JobResult.failure(
                spec,
                f"deadline of {spec.deadline_s}s exceeded before dispatch",
                status="expired",
                attempts=item.attempt,
            )
        )
        self.metrics.counter("jobs_expired").inc()
        return True

    def _dispatch_idle(self) -> int:
        dispatched = 0
        for worker_id in self.pool.idle_workers():
            picked = self.batcher.take_for(worker_id)
            if picked is None:
                break
            job, _affinity_hit = picked
            wait = time.monotonic() - job.enqueued_at
            self._wait_s[job.spec.job_id] = wait
            self.metrics.histogram("queue_wait_seconds").observe(wait)
            self.pool.dispatch(worker_id, job)
            dispatched += 1
        return dispatched

    def _handle_event(self, event: PoolEvent) -> None:
        if event.kind == "progress":
            if self.on_progress is not None:
                self.on_progress(event.worker_id, *event.progress)
            return
        if event.kind == "done":
            result = event.result
            result.wait_seconds = self._wait_s.pop(result.job_id, 0.0)
            self._record(result)
            self.batcher.note_done(event.worker_id, result.service_seconds)
            self.metrics.counter("jobs_completed").inc()
            self.metrics.histogram("service_seconds").observe(
                result.service_seconds
            )
            if result.build_seconds:
                self.metrics.histogram("build_seconds").observe(
                    result.build_seconds
                )
            source_counter = {
                "built": "library_builds",
                "disk-cache": "library_disk_hits",
                "memory": "library_memory_hits",
            }.get(result.library_source)
            if source_counter:
                self.metrics.counter(source_counter).inc()
            self._update_cache_hit_rate()
            self._update_retry_hint(result.service_seconds)
        elif event.kind == "error":
            job = event.job
            self._record(
                JobResult.failure(
                    job.spec,
                    event.message,
                    worker_id=event.worker_id,
                    attempts=job.attempt,
                )
            )
            self.batcher.note_done(event.worker_id, event.service_seconds)
            self.metrics.counter("jobs_failed").inc()
        elif event.kind == "poisoned":
            # The job's circuit tripped: quarantine it as a typed failure
            # and move on — the pool already respawned the worker, and no
            # further attempts will be dispatched for this spec.
            self.metrics.counter("worker_crashes").inc()
            self.batcher.forget_worker_library(event.worker_id)
            job = event.job
            self.batcher.note_done(event.worker_id)
            error = PoisonedJobError(
                f"job {job.spec.job_id} quarantined: {event.message}",
                job_id=job.spec.job_id,
                crashes=self.pool.breaker.failures(job.spec.job_id),
            )
            self._record(
                JobResult.failure(
                    job.spec,
                    f"{type(error).__name__}: {error}",
                    status="poisoned",
                    worker_id=event.worker_id,
                    attempts=job.attempt,
                )
            )
            self.metrics.counter("jobs_poisoned").inc()
            self._export_breaker()
        elif event.kind == "crash":
            self.metrics.counter("worker_crashes").inc()
            self.batcher.forget_worker_library(event.worker_id)
            job = event.job
            if job is None:
                return
            self.batcher.note_done(event.worker_id)
            if job.attempt < self.retry_policy.max_attempts:
                self.queue.put(
                    job.spec, attempt=job.attempt + 1, front=True
                )
                self.metrics.counter("jobs_requeued").inc()
            else:
                self._record(
                    JobResult.failure(
                        job.spec,
                        f"worker crashed; retry budget of "
                        f"{self.retry_policy.max_attempts} attempts exhausted",
                        worker_id=event.worker_id,
                        attempts=job.attempt,
                    )
                )
                self.metrics.counter("jobs_failed").inc()
        else:  # pragma: no cover - defensive
            raise ServeError(f"unknown pool event {event.kind!r}")

    def _record(self, result: JobResult) -> None:
        if result.job_id in self.results:
            raise ServeError(
                f"job {result.job_id} completed twice — lost/duplicated "
                f"work in the dispatch path"
            )
        self.results[result.job_id] = result
        self._fresh.append(result)

    def _export_breaker(self) -> None:
        """Mirror circuit-breaker state into the metrics registry."""
        state = self.pool.breaker.as_dict()
        self.metrics.gauge("circuits_open").set(len(state["open"]))
        self.metrics.info("circuit_breaker").set(state)

    def _update_cache_hit_rate(self) -> None:
        builds = self.metrics.counter("library_builds").value
        hits = (
            self.metrics.counter("library_disk_hits").value
            + self.metrics.counter("library_memory_hits").value
        )
        total = builds + hits
        if total:
            self.metrics.gauge("cache_hit_rate").set(hits / total)

    def _update_retry_hint(self, service_s: float) -> None:
        # EMA of service time; one slot frees roughly every mean/workers.
        alpha = 0.3
        self._mean_service_s = (
            service_s
            if self._mean_service_s == 0.0
            else alpha * service_s + (1 - alpha) * self._mean_service_s
        )
        self.queue.retry_after_hint = max(
            0.05, self._mean_service_s / self.pool.n_workers
        )
        self.metrics.gauge("retry_after_seconds").set(
            self.queue.retry_after_hint
        )

    # -- Observability -------------------------------------------------------

    def metrics_summary(self) -> dict:
        """Metrics document + worker utilization + health, for export."""
        return {
            "metrics": self.metrics.as_dict(),
            "workers": self.batcher.utilization_dict(),
            "health": self.pool.health(),
        }


# -- File spool (the CLI's persistence layer) --------------------------------

_SPOOL_SUBDIRS = ("pending", "done", "failed")


def atomic_write_text(
    path: str | Path, text: str, *, fsync: bool = True
) -> Path:
    """Publish ``text`` at ``path`` all-or-nothing.

    Write to a dot-prefixed temp file in the same directory (invisible
    to the spool's ``*.json`` globs), flush + fsync, then ``os.replace``
    — so a reader observes either the complete old file or the complete
    new file, never a half-record, even across a kill mid-write.
    """
    import os

    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def spool_dirs(root: str | Path, *, create: bool = False) -> dict[str, Path]:
    root = Path(root)
    dirs = {name: root / name for name in _SPOOL_SUBDIRS}
    if create:
        for path in dirs.values():
            path.mkdir(parents=True, exist_ok=True)
    return dirs


def submit_to_spool(root: str | Path, spec: JobSpec) -> Path:
    """Write a spec into ``root/pending`` (stamping submission time)."""
    import dataclasses

    if spec.submitted_at is None:
        spec = dataclasses.replace(spec, submitted_at=time.time())
    dirs = spool_dirs(root, create=True)
    path = dirs["pending"] / f"{spec.job_id}.json"
    if path.exists():
        raise JobError(f"job {spec.job_id} already spooled at {path}")
    # Atomic publish: a kill mid-submit leaves an invisible temp file,
    # never a half-record that would poison a later ``serve --spool``.
    return atomic_write_text(path, spec.to_json())


def read_spool_pending(root: str | Path) -> list[JobSpec]:
    """Pending specs in service order (priority, then submission time).

    A spool is shared mutable state: a record torn by a crashed (or
    pre-atomic-write) submitter must not poison the whole drain.  Any
    pending file that does not parse as a spec is quarantined — renamed
    to ``<job>.corrupt``, out of the ``*.json`` namespace — and skipped.
    """
    import os

    dirs = spool_dirs(root)
    specs = []
    if dirs["pending"].is_dir():
        for path in sorted(dirs["pending"].glob("*.json")):
            try:
                specs.append(JobSpec.from_json(path.read_text()))
            except (JobError, OSError):
                try:
                    os.replace(path, path.with_suffix(".corrupt"))
                except OSError:
                    pass
    specs.sort(
        key=lambda s: (-s.priority, s.submitted_at or 0.0, s.job_id)
    )
    return specs


def write_spool_result(root: str | Path, result: JobResult) -> Path:
    """File a result under ``done/`` or ``failed/`` and clear its pending
    spec."""
    dirs = spool_dirs(root, create=True)
    bucket = "done" if result.status == "done" else "failed"
    path = dirs[bucket] / f"{result.job_id}.json"
    atomic_write_text(path, result.to_json(indent=2))
    pending = dirs["pending"] / f"{result.job_id}.json"
    if pending.exists():
        pending.unlink()
    return path


def spool_status(root: str | Path) -> dict:
    """Counts, recent results, and the last metrics export for a spool."""
    root = Path(root)
    dirs = spool_dirs(root)
    counts = {
        name: len(list(path.glob("*.json"))) if path.is_dir() else 0
        for name, path in dirs.items()
    }
    results = []
    if dirs["done"].is_dir():
        for path in sorted(dirs["done"].glob("*.json")):
            result = JobResult.from_json(path.read_text())
            results.append(
                {
                    "job_id": result.job_id,
                    "k_effective": result.k_effective,
                    "k_std_err": result.k_std_err,
                    "n_batches": result.n_batches,
                    "worker_id": result.worker_id,
                    "attempts": result.attempts,
                    "library_source": result.library_source,
                    # Scenario provenance (PR 6): which case of which
                    # suite, and the document fingerprint it compiled
                    # from.  Empty strings for ad-hoc jobs.
                    "case_id": result.case_id,
                    "suite_id": result.suite_id,
                    "scenario_fingerprint": result.scenario_fingerprint,
                }
            )
    status: dict = {"root": str(root), "counts": counts, "results": results}
    metrics_path = root / "metrics.json"
    if metrics_path.exists():
        status["metrics"] = json.loads(metrics_path.read_text())
        # Surface the adaptive backpressure hint (what a rejected client
        # would be told to wait) at the top level, where shell callers
        # expect it — the nested metrics document keeps the raw gauge.
        try:
            status["retry_after_s"] = (
                status["metrics"]["metrics"]["metrics"]
                ["retry_after_seconds"]["value"]
            )
        except (KeyError, TypeError):
            pass
    return status
