"""Job model: what a client submits and what the service returns.

A :class:`JobSpec` is a *complete, self-contained* description of one
eigenvalue calculation: the library to build (model + fidelity + seed) and
the physics settings of the run, plus scheduling metadata (priority,
deadline).  Completeness is what makes the service deterministic — a worker
reconstructs the exact :class:`~repro.transport.simulation.Settings` and
:class:`~repro.data.library.LibraryConfig` from the spec alone, so a job
produces bit-identical k-effective trajectories whether it runs through the
queue, survives a worker crash and reruns, or is executed directly by
``Simulation``.

Both dataclasses round-trip through JSON exactly (Python's ``json`` emits
shortest-repr floats, which parse back bit-identically), so specs and
results can live in spool files, stream over stdin, and cross process
boundaries without perturbing the physics payload.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import asdict, dataclass, field, fields, replace

from ..data.library import LibraryConfig, library_fingerprint
from ..errors import JobError, ReproError
from ..resilience.checkpoint import settings_fingerprint
from ..transport.simulation import Settings, SimulationResult

__all__ = ["JobSpec", "JobResult"]

#: Settings fields a job may carry (checkpointing is a service concern, not
#: a job concern — workers never checkpoint).
_ALLOWED_SETTINGS = frozenset(
    f.name for f in fields(Settings)
) - {"checkpoint_every", "checkpoint_dir"}

_FIDELITIES = ("tiny", "default")

#: Fields that define a job's *physics identity* — everything a worker
#: consults to produce the payload, and nothing it doesn't.  Job IDs,
#: priorities, deadlines, and scenario provenance are scheduling metadata:
#: including them would fragment the result cache across identical physics.
_IDENTITY_FIELDS = (
    "model",
    "fidelity",
    "library_seed",
    "library_temperature",
    "settings",
)


def _new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class JobSpec:
    """One simulation request.

    ``settings`` holds keyword overrides for
    :class:`~repro.transport.simulation.Settings` (particles, batches, seed,
    mode, ...).  ``priority`` orders jobs in the queue (higher runs first);
    within a priority, submission order is preserved.  ``deadline_s`` is a
    relative service-level deadline: jobs still queued that long after
    ``submitted_at`` are expired rather than run.  ``fault_crash_attempts``
    is the test hook for crash recovery — a worker hard-exits mid-job on the
    first N attempts, exercising the requeue path deterministically.
    """

    job_id: str = field(default_factory=_new_job_id)
    model: str = "hm-small"
    fidelity: str = "tiny"
    library_seed: int = 20150525
    #: Library data temperature [K]; ``None`` keeps the fidelity preset's
    #: default.  Distinct temperatures are distinct library fingerprints
    #: (Doppler sweeps rebuild the data, as they must).
    library_temperature: float | None = None
    settings: dict = field(default_factory=dict)
    priority: int = 0
    deadline_s: float | None = None
    #: Wall-clock submission time (``time.time()``), stamped by the queue.
    submitted_at: float | None = None
    #: Crash injection: workers ``os._exit`` mid-job on attempts <= this.
    fault_crash_attempts: int = 0
    #: Scenario provenance (set by ``repro.scenarios``): which case of
    #: which suite produced this job, and the fingerprint of the scenario
    #: document it compiled from.  Purely descriptive — never consulted by
    #: workers, so legacy specs (empty strings) behave identically.
    case_id: str = ""
    suite_id: str = ""
    scenario_fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.fidelity not in _FIDELITIES:
            raise JobError(
                f"job {self.job_id}: unknown fidelity {self.fidelity!r} "
                f"(want one of {_FIDELITIES})"
            )
        unknown = set(self.settings) - _ALLOWED_SETTINGS
        if unknown:
            raise JobError(
                f"job {self.job_id}: unknown settings keys {sorted(unknown)}"
            )

    # -- Reconstruction ------------------------------------------------------

    def to_settings(self) -> Settings:
        """The exact ``Settings`` a worker (or a direct run) uses."""
        return Settings(**self.settings)

    def library_config(self) -> LibraryConfig:
        config = (
            LibraryConfig.tiny(seed=self.library_seed)
            if self.fidelity == "tiny"
            else LibraryConfig(seed=self.library_seed)
        )
        if self.library_temperature is not None:
            config = replace(config, temperature=self.library_temperature)
        return config

    # -- Fingerprints --------------------------------------------------------

    def settings_fingerprint(self) -> str:
        """Physics fingerprint (shared with the checkpoint subsystem)."""
        return settings_fingerprint(self.to_settings())

    def library_fingerprint(self) -> str:
        """Cache/affinity key: determines the built library bit-for-bit."""
        return library_fingerprint(self.model, self.library_config())

    def cache_key(self) -> str:
        """Result-cache key: SHA-256 over the canonical physics identity.

        Two specs share a key exactly when a worker would produce
        bit-identical payloads for both — same library (model, fidelity,
        seed, temperature) and same transport settings.  Scheduling
        metadata never contributes, so resubmitting a job under a new ID
        (or from a different suite) still hits the cache.
        """
        doc = {name: getattr(self, name) for name in _IDENTITY_FIELDS}
        return hashlib.sha256(
            json.dumps(doc, sort_keys=True).encode()
        ).hexdigest()

    # -- JSON round trip -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if not isinstance(data, dict):
            raise JobError(f"job spec must be an object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise JobError(f"unknown job spec fields {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise JobError(f"malformed job spec: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobError(f"job spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)


@dataclass
class JobResult:
    """The outcome of one job: physics payload plus service accounting.

    The physics fields (per-batch estimator traces, combined k) are exactly
    what :class:`~repro.transport.simulation.SimulationResult` reports —
    :meth:`from_simulation` is the single construction path used by workers
    *and* by ``repro-sim run --json``, so a payload diff between the two is
    a determinism bug by definition.
    """

    job_id: str
    status: str = "done"  # done | failed | expired | poisoned
    mode: str = ""
    n_particles: int = 0
    n_batches: int = 0
    #: Combined k-effective over active batches (mean, standard error).
    k_effective: float = float("nan")
    k_std_err: float = float("nan")
    #: Per-batch estimator and entropy traces (the determinism payload).
    k_collision: list[float] = field(default_factory=list)
    k_absorption: list[float] = field(default_factory=list)
    k_track: list[float] = field(default_factory=list)
    entropy: list[float] = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    settings_fingerprint: str = ""
    library_fingerprint: str = ""
    #: Scenario provenance, copied verbatim from the spec.
    case_id: str = ""
    suite_id: str = ""
    scenario_fingerprint: str = ""
    #: Service accounting.
    worker_id: int = -1
    attempts: int = 1
    wait_seconds: float = 0.0
    service_seconds: float = 0.0
    build_seconds: float = 0.0
    #: Where the worker got its library: built | disk-cache | memory.
    library_source: str = ""
    wall_time: float = 0.0
    error: str | None = None

    @classmethod
    def from_simulation(
        cls,
        spec: JobSpec,
        result: SimulationResult,
        *,
        worker_id: int = -1,
        attempts: int = 1,
        build_seconds: float = 0.0,
        library_source: str = "built",
    ) -> "JobResult":
        k = result.k_effective
        return cls(
            job_id=spec.job_id,
            status="done",
            mode=result.mode,
            n_particles=result.n_particles,
            n_batches=result.n_batches,
            k_effective=k.mean,
            k_std_err=k.std_err,
            k_collision=list(result.statistics.k_collision),
            k_absorption=list(result.statistics.k_absorption),
            k_track=list(result.statistics.k_track),
            entropy=list(result.statistics.entropy),
            counters=result.counters.as_dict(),
            settings_fingerprint=spec.settings_fingerprint(),
            library_fingerprint=spec.library_fingerprint(),
            case_id=spec.case_id,
            suite_id=spec.suite_id,
            scenario_fingerprint=spec.scenario_fingerprint,
            worker_id=worker_id,
            attempts=attempts,
            build_seconds=build_seconds,
            library_source=library_source,
            wall_time=result.wall_time,
        )

    @classmethod
    def failure(
        cls, spec: JobSpec, error: str, *, status: str = "failed",
        worker_id: int = -1, attempts: int = 1,
    ) -> "JobResult":
        # A job can fail *because* its settings are invalid, in which case
        # fingerprinting (which constructs Settings) would raise too.
        try:
            settings_fp = spec.settings_fingerprint()
        except ReproError:
            settings_fp = ""
        return cls(
            job_id=spec.job_id,
            status=status,
            settings_fingerprint=settings_fp,
            library_fingerprint=spec.library_fingerprint(),
            case_id=spec.case_id,
            suite_id=spec.suite_id,
            scenario_fingerprint=spec.scenario_fingerprint,
            worker_id=worker_id,
            attempts=attempts,
            error=error,
        )

    #: The deterministic physics payload: exactly the fields that are a
    #: pure function of the spec (service accounting — worker IDs, waits,
    #: wall times — varies run to run and is excluded).  This is the
    #: surface the bit-identical guarantees quantify over.
    PAYLOAD_FIELDS = (
        "status",
        "mode",
        "n_particles",
        "n_batches",
        "k_effective",
        "k_std_err",
        "k_collision",
        "k_absorption",
        "k_track",
        "entropy",
        "counters",
        "settings_fingerprint",
        "library_fingerprint",
    )

    def payload_dict(self) -> dict:
        """The deterministic physics payload as a plain dict."""
        return {name: getattr(self, name) for name in self.PAYLOAD_FIELDS}

    def payload_json(self) -> str:
        """Canonical exact-float JSON of the payload.

        Python's ``json`` emits shortest-repr floats that parse back
        bit-identically, so two results are physics-equal iff these
        strings are byte-equal — the comparison the gateway's result
        cache and the determinism tests use.
        """
        return json.dumps(self.payload_dict(), sort_keys=True)

    # -- JSON round trip -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise JobError(f"unknown job result fields {sorted(unknown)}")
        try:
            return cls(**data)
        except TypeError as exc:
            raise JobError(f"malformed job result: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "JobResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise JobError(f"job result is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
