"""Fingerprint-affinity batching: route compatible jobs to warm workers.

The paper's Fig. 3 argument — bank enough homogeneous work to amortize a
fixed cost — reappears at the job level: a worker that has already built
(or loaded) a library serves any job with the same
:func:`~repro.data.library.library_fingerprint` at marginal cost, while a
fingerprint switch pays the build/load price again.  The :class:`Batcher`
therefore keeps dispatch-ready jobs grouped by fingerprint and, when a
worker goes idle, prefers a job matching the library that worker already
holds; only when no compatible job exists does it fall back to the oldest
pending job (so affinity never starves a lone job of a different physics).

It also owns per-worker utilization accounting (jobs served, busy seconds,
affinity hit rate) — the service's answer to "are my workers warm and
busy?".
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from .queue import QueuedJob

__all__ = ["Batcher", "WorkerUtilization"]


@dataclass
class WorkerUtilization:
    """Dispatch-side view of one worker's usefulness."""

    worker_id: int
    jobs_done: int = 0
    busy_seconds: float = 0.0
    #: Dispatches whose fingerprint matched the worker's warm library.
    affinity_hits: int = 0
    dispatches: int = 0
    #: Fingerprint of the library the worker holds (after first dispatch).
    fingerprint: str = ""
    _busy_since: float | None = field(default=None, repr=False)

    @property
    def affinity_rate(self) -> float:
        return self.affinity_hits / self.dispatches if self.dispatches else 0.0

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of ``elapsed`` service seconds."""
        busy = self.busy_seconds
        if self._busy_since is not None:
            busy += time.monotonic() - self._busy_since
        return busy / elapsed if elapsed > 0 else 0.0

    def as_dict(self, elapsed: float) -> dict:
        return {
            "worker_id": self.worker_id,
            "jobs_done": self.jobs_done,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization(elapsed),
            "affinity_rate": self.affinity_rate,
            "dispatches": self.dispatches,
            "fingerprint": self.fingerprint[:12],
        }


class Batcher:
    """Holds dispatch-ready jobs grouped by library fingerprint.

    Jobs arrive in queue order (priority already resolved by
    :class:`~repro.serve.queue.JobQueue`) and leave either by affinity
    (:meth:`take_for` with a matching fingerprint) or age (head of the
    oldest group).  Insertion order is preserved within and across groups
    via a monotone arrival index.
    """

    def __init__(self) -> None:
        self._groups: "OrderedDict[str, list[tuple[int, QueuedJob]]]" = (
            OrderedDict()
        )
        self._arrival = 0
        self._workers: dict[int, WorkerUtilization] = {}
        self._started_at = time.monotonic()

    def __len__(self) -> int:
        return sum(len(jobs) for jobs in self._groups.values())

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def add(self, job: QueuedJob) -> None:
        fp = job.spec.library_fingerprint()
        self._groups.setdefault(fp, []).append((self._arrival, job))
        self._arrival += 1

    def peek_fingerprints(self) -> tuple[str, ...]:
        return tuple(self._groups)

    def take_for(self, worker_id: int) -> tuple[QueuedJob, bool] | None:
        """Pick the next job for an idle worker.

        Returns ``(job, affinity_hit)``: the oldest job sharing the
        worker's warm fingerprint when one exists, else the oldest job
        overall.  ``None`` when no jobs are staged.
        """
        if not self._groups:
            return None
        util = self._workers.setdefault(
            worker_id, WorkerUtilization(worker_id)
        )
        fp = util.fingerprint
        if fp and fp in self._groups:
            chosen_fp, hit = fp, True
        else:
            # Oldest pending job across all groups (min arrival index).
            chosen_fp = min(self._groups, key=lambda f: self._groups[f][0][0])
            hit = util.fingerprint == chosen_fp
        _, job = self._groups[chosen_fp].pop(0)
        if not self._groups[chosen_fp]:
            del self._groups[chosen_fp]
        util.dispatches += 1
        util.affinity_hits += int(hit)
        util.fingerprint = chosen_fp
        util._busy_since = time.monotonic()
        return job, hit

    # -- Utilization accounting ---------------------------------------------

    def note_done(self, worker_id: int, busy_seconds: float | None = None) -> None:
        """Record a completed (or crashed-out) dispatch for a worker."""
        util = self._workers.setdefault(
            worker_id, WorkerUtilization(worker_id)
        )
        if busy_seconds is None:
            busy_seconds = (
                time.monotonic() - util._busy_since
                if util._busy_since is not None
                else 0.0
            )
        util.jobs_done += 1
        util.busy_seconds += busy_seconds
        util._busy_since = None

    def forget_worker_library(self, worker_id: int) -> None:
        """A worker was respawned: its in-memory library is gone."""
        util = self._workers.get(worker_id)
        if util is not None:
            util.fingerprint = ""
            util._busy_since = None

    def utilization(self) -> dict[int, WorkerUtilization]:
        return dict(self._workers)

    def utilization_dict(self) -> list[dict]:
        elapsed = time.monotonic() - self._started_at
        return [
            self._workers[wid].as_dict(elapsed)
            for wid in sorted(self._workers)
        ]
