"""Bounded, thread-safe priority queue of jobs with typed backpressure.

Ordering is ``(-priority, sequence)``: higher-priority jobs first, strict
FIFO within a priority (the sequence counter is monotone, so two jobs of
equal priority dequeue in submission order).  Capacity is a hard bound —
:meth:`JobQueue.put` never blocks and never drops; a full queue raises
:class:`~repro.errors.QueueFullError` carrying a retry-after estimate, the
job-level analogue of a device refusing work until an in-flight bank
drains.

Recovery requeues bypass the capacity check and re-enter *at the front* of
their priority class (negative sequence): a job that was already dispatched
once must not lose its place — or be rejected — because fresh submissions
filled the queue while it was in flight.
"""

from __future__ import annotations

import heapq
import threading
import time

from ..errors import QueueFullError, ServeError
from .jobs import JobSpec

__all__ = ["JobQueue", "QueuedJob"]


class QueuedJob:
    """A spec plus its queue bookkeeping (attempt count, enqueue time)."""

    __slots__ = ("spec", "attempt", "enqueued_at")

    def __init__(self, spec: JobSpec, attempt: int, enqueued_at: float) -> None:
        self.spec = spec
        self.attempt = attempt
        self.enqueued_at = enqueued_at


class JobQueue:
    """Thread-safe bounded priority queue (higher priority dequeues first)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ServeError("JobQueue needs capacity >= 1")
        self.capacity = capacity
        self._heap: list[tuple[int, int, QueuedJob]] = []
        self._seq = 0
        self._front_seq = 0  # decreasing; requeues jump the FIFO line
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        #: Estimated seconds until capacity frees (kept current by the
        #: service from its measured drain rate); reported on rejection.
        self.retry_after_hint = 1.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self)

    def put(self, spec: JobSpec, *, attempt: int = 1, front: bool = False) -> None:
        """Enqueue a job; raise :class:`QueueFullError` at capacity.

        ``front=True`` is the recovery path: the job re-enters ahead of its
        priority class and is exempt from the capacity bound (a requeued
        in-flight job was already admitted once).
        """
        with self._lock:
            if self._closed:
                raise ServeError("queue is closed to new submissions")
            if not front and len(self._heap) >= self.capacity:
                raise QueueFullError(
                    f"queue at capacity ({self.capacity} jobs); "
                    f"retry in {self.retry_after_hint:.2f}s",
                    retry_after_s=self.retry_after_hint,
                )
            if front:
                self._front_seq -= 1
                seq = self._front_seq
            else:
                self._seq += 1
                seq = self._seq
            item = QueuedJob(spec, attempt, time.monotonic())
            heapq.heappush(self._heap, (-spec.priority, seq, item))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> QueuedJob | None:
        """Dequeue the next job, or ``None`` on timeout / closed-and-empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not self._heap:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            _, _, item = heapq.heappop(self._heap)
            return item

    def close(self) -> None:
        """Refuse further submissions; pending jobs remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
