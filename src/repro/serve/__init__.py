"""Batched multi-worker simulation service.

The paper's Fig. 3 lesson — bank at least 10,000 particles so homogeneous
kernels amortize fixed offload costs — applied at the job level: batch
incoming simulation requests, shard them across persistent workers, and
amortize the dominant fixed cost (cross-section library construction) with
a shared fingerprint-keyed cache and affinity-aware batching.

Layers (each its own module):

* :mod:`~repro.serve.jobs` — :class:`JobSpec`/:class:`JobResult`, the
  JSON-round-tripping request/response model;
* :mod:`~repro.serve.queue` — bounded priority queue with typed
  backpressure (:class:`~repro.errors.QueueFullError` + retry-after);
* :mod:`~repro.serve.cache` — fingerprint-keyed on-disk library cache
  (build once, load everywhere);
* :mod:`~repro.serve.batching` — fingerprint-affinity dispatch and
  per-worker utilization accounting;
* :mod:`~repro.serve.pool` — persistent multiprocessing workers with
  heartbeat health, graceful drain, and crash respawn;
* :mod:`~repro.serve.metrics` — counters/gauges/latency histograms
  exported as JSON and projectable onto :class:`repro.profiling.Profile`;
* :mod:`~repro.serve.service` — the orchestrating loop plus the file
  spool behind ``repro-sim serve/submit/status``.

Invariant: a job executed through the service — through queueing,
batching, caching, even a worker crash and rerun — produces bit-identical
k-effective trajectories to the same settings run directly through
:class:`~repro.transport.simulation.Simulation`.
"""

from .batching import Batcher, WorkerUtilization
from .cache import CacheOutcome, LibraryCache
from .jobs import JobResult, JobSpec
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Info,
    MetricsRegistry,
)
from .pool import PoolEvent, WorkerPool
from .queue import JobQueue, QueuedJob
from .service import (
    SimulationService,
    read_spool_pending,
    spool_dirs,
    spool_status,
    submit_to_spool,
    write_spool_result,
)

__all__ = [
    "Batcher",
    "WorkerUtilization",
    "CacheOutcome",
    "LibraryCache",
    "JobResult",
    "JobSpec",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Info",
    "MetricsRegistry",
    "PoolEvent",
    "WorkerPool",
    "JobQueue",
    "QueuedJob",
    "SimulationService",
    "read_spool_pending",
    "spool_dirs",
    "spool_status",
    "submit_to_spool",
    "write_spool_result",
]
