"""Persistent multiprocessing workers that amortize library construction.

Each worker is a long-lived process with a private task queue and a shared
result queue.  On its first job for a given library fingerprint it builds
the library — or loads it from the shared on-disk
:class:`~repro.serve.cache.LibraryCache` — and keeps it in memory, so
every subsequent compatible job pays only transport time.  This is the
paper's offload model applied to scheduling: the build is the fixed cost,
the resident library is the bank, and the batcher keeps the bank full.

Failure handling reuses :mod:`repro.resilience` semantics: a worker that
dies mid-job surfaces as a ``crash`` event carrying the in-flight job, the
pool respawns the worker (fresh incarnation, empty library memory), and
the service requeues the job under its
:class:`~repro.resilience.recovery.RetryPolicy`.  Because every job is
deterministic in its spec alone, a rerun after a crash is bit-identical to
an undisturbed run — the same invariant checkpoint/restart guarantees
within a single simulation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as stdlib_queue
import time
from dataclasses import dataclass
from time import perf_counter

from ..errors import ServeError
from ..supervise.circuit import CircuitBreaker
from .cache import CacheOutcome, LibraryCache
from .jobs import JobResult, JobSpec
from .queue import QueuedJob

__all__ = ["PoolEvent", "WorkerPool"]

#: Exit code used by the fault-injection hard exit (distinguishable from a
#: genuine interpreter death in test assertions).
CRASH_EXIT_CODE = 23

_HEARTBEAT_S = 0.25


def _resolve_context(start_method: str | None) -> mp.context.BaseContext:
    if start_method is not None:
        return mp.get_context(start_method)
    # fork keeps worker startup in the low-millisecond range; fall back to
    # spawn where fork is unavailable (all worker args are picklable).
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker_main(
    worker_id: int,
    task_q: "mp.Queue",
    result_q: "mp.Queue",
    cache_dir: str | None,
    heartbeat_s: float,
) -> None:
    """Worker loop: build-or-load library once per fingerprint, serve jobs."""
    libraries: dict = {}
    cache = LibraryCache(cache_dir) if cache_dir else None
    result_q.put(("ready", worker_id, os.getpid()))
    while True:
        try:
            msg = task_q.get(timeout=heartbeat_s)
        except stdlib_queue.Empty:
            result_q.put(("heartbeat", worker_id))
            continue
        if msg is None:
            result_q.put(("stopped", worker_id))
            return
        spec_dict, attempt = msg
        spec = JobSpec.from_dict(spec_dict)
        result_q.put(("started", worker_id, spec.job_id))
        if attempt <= spec.fault_crash_attempts:
            # Injected mid-job crash: die without flushing anything, the
            # worst case short of corrupting state (which os._exit cannot).
            os._exit(CRASH_EXIT_CODE)
        t0 = perf_counter()
        try:
            fp = spec.library_fingerprint()
            if fp in libraries:
                library = libraries[fp]
                outcome = CacheOutcome(fp, "memory")
            elif cache is not None:
                library, outcome = cache.get_or_build(
                    spec.model, spec.library_config()
                )
            else:
                from ..data.library import build_library

                tb = perf_counter()
                library = build_library(spec.model, spec.library_config())
                outcome = CacheOutcome(
                    fp, "built", build_seconds=perf_counter() - tb
                )
            libraries[fp] = library

            from ..transport.simulation import Simulation

            def on_batch(
                batch: int, seconds: float, n_particles: int,
                _job_id: str = spec.job_id,
            ) -> None:
                # Per-batch progress for streaming observers: timing only
                # (the PR 5 observer contract), so it cannot perturb
                # physics no matter what the gateway does with it.
                result_q.put(
                    ("progress", worker_id, _job_id, batch, seconds,
                     n_particles)
                )

            result = Simulation(library, spec.to_settings()).run(
                on_batch=on_batch
            )
            job_result = JobResult.from_simulation(
                spec,
                result,
                worker_id=worker_id,
                attempts=attempt,
                build_seconds=outcome.build_seconds,
                library_source=outcome.source,
            )
            job_result.service_seconds = perf_counter() - t0
            result_q.put(("done", worker_id, spec.job_id, job_result.to_dict()))
        except Exception as exc:  # noqa: BLE001 — worker must never die silently
            result_q.put(
                (
                    "error",
                    worker_id,
                    spec.job_id,
                    f"{type(exc).__name__}: {exc}",
                    perf_counter() - t0,
                )
            )


@dataclass
class PoolEvent:
    """One observable worker transition, consumed by the service loop.

    ``kind`` is one of ``done`` (payload: :class:`JobResult`), ``error``
    (payload: message string; job carries the failed dispatch), ``crash``
    (payload: ``None``; job is the in-flight dispatch to requeue, or
    ``None`` if the worker died idle), ``poisoned`` (the crashed job's
    circuit tripped — quarantine it instead of requeueing; ``message``
    carries the crash streak), or ``progress`` (one transport batch
    finished; ``progress`` carries ``(job_id, batch, seconds,
    n_particles)``).
    """

    kind: str
    worker_id: int
    job: QueuedJob | None = None
    result: JobResult | None = None
    message: str = ""
    service_seconds: float = 0.0
    #: ``progress`` events only: (job_id, batch, seconds, n_particles).
    progress: tuple | None = None


class _WorkerHandle:
    __slots__ = (
        "worker_id", "process", "task_q", "incarnation", "state",
        "current", "dispatched_at", "last_seen", "pid",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.task_q = None
        self.incarnation = 0
        self.state = "new"  # new | starting | idle | busy | stopped
        self.current: QueuedJob | None = None
        self.dispatched_at = 0.0
        self.last_seen = time.monotonic()
        self.pid: int | None = None


class WorkerPool:
    """A fixed-size set of persistent simulation workers."""

    def __init__(
        self,
        n_workers: int = 2,
        *,
        cache_dir: str | None = None,
        start_method: str | None = None,
        heartbeat_s: float = _HEARTBEAT_S,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if n_workers < 1:
            raise ServeError("WorkerPool needs n_workers >= 1")
        self.n_workers = n_workers
        self.cache_dir = cache_dir
        self.heartbeat_s = heartbeat_s
        #: Consecutive worker-death counter per job id: a job that keeps
        #: killing its worker is *poison*, not unlucky, and respawn-and-
        #: requeue would loop on it forever.  With a retry budget narrower
        #: than the threshold (3), budget exhaustion fires first and the
        #: job fails as a plain crash casualty; the breaker bounds the
        #: case where the budget is wide enough to keep feeding the
        #: poison back to fresh workers.
        self.breaker = breaker or CircuitBreaker()
        self._ctx = _resolve_context(start_method)
        self._result_q: "mp.Queue" = self._ctx.Queue()
        self._workers: dict[int, _WorkerHandle] = {
            wid: _WorkerHandle(wid) for wid in range(n_workers)
        }
        self._started = False
        self._stopping = False

    # -- Lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            raise ServeError("pool already started")
        self._started = True
        for handle in self._workers.values():
            self._spawn(handle)

    def _spawn(self, handle: _WorkerHandle) -> None:
        handle.incarnation += 1
        handle.task_q = self._ctx.Queue()
        handle.process = self._ctx.Process(
            target=_worker_main,
            args=(
                handle.worker_id,
                handle.task_q,
                self._result_q,
                self.cache_dir,
                self.heartbeat_s,
            ),
            daemon=True,
            name=f"repro-serve-worker-{handle.worker_id}",
        )
        handle.process.start()
        handle.pid = handle.process.pid
        handle.state = "starting"
        handle.current = None
        handle.last_seen = time.monotonic()

    def stop(self, *, graceful: bool = True, timeout_s: float = 10.0) -> None:
        """Shut the pool down.

        Graceful stop sends each worker a sentinel and joins it — in-flight
        jobs finish first because the sentinel queues behind them.  The
        non-graceful path terminates processes outright.
        """
        self._stopping = True
        if graceful:
            for handle in self._workers.values():
                if handle.process is not None and handle.process.is_alive():
                    handle.task_q.put(None)
            deadline = time.monotonic() + timeout_s
            for handle in self._workers.values():
                if handle.process is not None:
                    handle.process.join(
                        max(0.0, deadline - time.monotonic())
                    )
        for handle in self._workers.values():
            proc = handle.process
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if handle.task_q is not None:
                handle.task_q.cancel_join_thread()
            handle.state = "stopped"
        self._result_q.cancel_join_thread()

    # -- Dispatch ------------------------------------------------------------

    def idle_workers(self) -> list[int]:
        return [
            wid
            for wid, h in self._workers.items()
            if h.state in ("idle", "starting") and h.current is None
        ]

    def in_flight(self) -> int:
        return sum(1 for h in self._workers.values() if h.current is not None)

    def dispatch(self, worker_id: int, job: QueuedJob) -> None:
        handle = self._workers[worker_id]
        if handle.current is not None:
            raise ServeError(
                f"worker {worker_id} already has job "
                f"{handle.current.spec.job_id} in flight"
            )
        handle.current = job
        handle.dispatched_at = time.monotonic()
        handle.state = "busy"
        handle.task_q.put((job.spec.to_dict(), job.attempt))

    # -- Event collection ----------------------------------------------------

    def poll(self, timeout: float = 0.1) -> list[PoolEvent]:
        """Drain worker messages (blocking up to ``timeout`` for the first)
        and detect crashed workers; crashed busy workers are respawned and
        their in-flight job returned for requeue."""
        events: list[PoolEvent] = []
        block = True
        while True:
            try:
                msg = self._result_q.get(
                    timeout=timeout if block else 0.0
                )
            except stdlib_queue.Empty:
                break
            block = False
            events_from_msg = self._handle_message(msg)
            if events_from_msg is not None:
                events.append(events_from_msg)
        events.extend(self._reap_crashes())
        return events

    def _handle_message(self, msg: tuple) -> PoolEvent | None:
        kind, worker_id = msg[0], msg[1]
        handle = self._workers[worker_id]
        handle.last_seen = time.monotonic()
        if kind == "ready":
            handle.state = "idle" if handle.current is None else "busy"
            return None
        if kind == "heartbeat":
            return None
        if kind == "started":
            return None
        if kind == "progress":
            _, _, job_id, batch, seconds, n_particles = msg
            return PoolEvent(
                "progress", worker_id,
                progress=(job_id, batch, seconds, n_particles),
            )
        if kind == "stopped":
            handle.state = "stopped"
            return None
        if kind == "done":
            _, _, job_id, result_dict = msg
            job = self._finish(handle, job_id)
            result = JobResult.from_dict(result_dict)
            self.breaker.record_success(job_id)
            return PoolEvent(
                "done",
                worker_id,
                job=job,
                result=result,
                service_seconds=result.service_seconds,
            )
        if kind == "error":
            _, _, job_id, message, service_s = msg
            job = self._finish(handle, job_id)
            return PoolEvent(
                "error", worker_id, job=job, message=message,
                service_seconds=service_s,
            )
        raise ServeError(f"unknown worker message kind {kind!r}")

    def _finish(self, handle: _WorkerHandle, job_id: str) -> QueuedJob | None:
        job = handle.current
        if job is not None and job.spec.job_id != job_id:
            raise ServeError(
                f"worker {handle.worker_id} finished {job_id} but "
                f"{job.spec.job_id} was in flight"
            )
        handle.current = None
        handle.state = "idle"
        return job

    def _reap_crashes(self) -> list[PoolEvent]:
        events: list[PoolEvent] = []
        if self._stopping:
            return events
        for handle in self._workers.values():
            proc = handle.process
            if proc is None or proc.is_alive() or handle.state == "stopped":
                continue
            lost = handle.current
            if lost is None:
                events.append(PoolEvent("crash", handle.worker_id))
            else:
                streak = self.breaker.record_failure(lost.spec.job_id)
                if self.breaker.is_open(lost.spec.job_id):
                    events.append(
                        PoolEvent(
                            "poisoned",
                            handle.worker_id,
                            job=lost,
                            message=(
                                f"worker died {streak} consecutive times "
                                f"with this job in flight"
                            ),
                        )
                    )
                else:
                    events.append(
                        PoolEvent("crash", handle.worker_id, job=lost)
                    )
            self._spawn(handle)
        return events

    # -- Health --------------------------------------------------------------

    def health(self) -> dict[int, dict]:
        """Liveness/heartbeat snapshot per worker."""
        now = time.monotonic()
        return {
            wid: {
                "alive": bool(h.process is not None and h.process.is_alive()),
                "state": h.state,
                "pid": h.pid,
                "incarnation": h.incarnation,
                "last_seen_s": now - h.last_seen,
                "in_flight": None
                if h.current is None
                else h.current.spec.job_id,
            }
            for wid, h in sorted(self._workers.items())
        }

    def alive_count(self) -> int:
        return sum(
            1
            for h in self._workers.values()
            if h.process is not None and h.process.is_alive()
        )
