"""Consistent-hash routing of library fingerprints onto shards.

The gateway's sharding invariant: **all jobs needing the same XS library
land on the same shard**, so the library is built once, node-locally
(the :class:`~repro.serve.cache.LibraryCache` single-builder lockfile
election never crosses a shard boundary) and every worker on that shard
serves the fingerprint from warm memory or local disk.

A :class:`HashRing` gives that affinity the two properties a service tier
needs:

* **Determinism.**  Placement is a pure function of the shard set and the
  key — SHA-256 points on a 64-bit ring, no clocks, no randomness — so
  two gateways (or a gateway and a test) agree on every assignment.
* **Minimal disruption.**  When a shard is quarantined, only the keys
  that lived on it move (deterministically, to the next point on the
  ring); every other fingerprint keeps its warm shard.  This is why
  quarantine costs one shard's worth of rebuilt libraries, not a full
  reshuffle.

``replicas`` virtual nodes per shard smooth the split (the classic
consistent-hashing trick); 64 keeps the worst shard within a few tens of
percent of fair share, plenty for fingerprint-granular placement.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

from ..errors import GatewayError, ShardQuarantinedError

__all__ = ["HashRing"]


def _point(text: str) -> int:
    """A stable 64-bit position on the ring."""
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring over integer shard IDs."""

    def __init__(self, shard_ids: Iterable[int], *, replicas: int = 64) -> None:
        ids = list(shard_ids)
        if not ids:
            raise GatewayError("HashRing needs at least one shard")
        if len(set(ids)) != len(ids):
            raise GatewayError(f"duplicate shard ids in {ids}")
        if replicas < 1:
            raise GatewayError(f"replicas must be >= 1, got {replicas}")
        self.shard_ids = tuple(sorted(ids))
        self.replicas = replicas
        points = [
            (_point(f"shard-{shard}:replica-{r}"), shard)
            for shard in self.shard_ids
            for r in range(replicas)
        ]
        points.sort()
        self._points = points
        self._keys = [p for p, _ in points]

    def shard_for(
        self, key: str, *, excluded: frozenset[int] | set[int] = frozenset()
    ) -> int:
        """The shard owning ``key``, skipping ``excluded`` shards.

        Walking the ring past excluded points is what makes quarantine
        remapping deterministic *and* minimal: a key whose owner is
        healthy never moves, a key whose owner is excluded lands on the
        next healthy point clockwise.
        """
        alive = [s for s in self.shard_ids if s not in excluded]
        if not alive:
            raise ShardQuarantinedError(
                f"no routable shard: all of {list(self.shard_ids)} excluded"
            )
        start = bisect_right(self._keys, _point(key)) % len(self._points)
        for offset in range(len(self._points)):
            _, shard = self._points[(start + offset) % len(self._points)]
            if shard not in excluded:
                return shard
        raise GatewayError("unreachable: ring walk found no shard")

    def assignments(
        self,
        keys: Iterable[str],
        *,
        excluded: frozenset[int] | set[int] = frozenset(),
    ) -> dict[int, list[str]]:
        """Shard → keys placement preview (diagnostics and tests)."""
        placement: dict[int, list[str]] = {
            s: [] for s in self.shard_ids if s not in excluded
        }
        for key in keys:
            placement[self.shard_for(key, excluded=excluded)].append(key)
        return placement
