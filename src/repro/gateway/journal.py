"""Versioned append-only write-ahead journal for the gateway tier.

The gateway's state machine (accepted → routed → completed, plus cache
hits, leader elections, and quarantines) lives in memory; a killed
process loses all of it.  The journal makes every transition durable
*before* the in-memory mutation it describes — the write-ahead rule —
so a restarted gateway can replay the file and land in exactly the
state the dead one had journaled:

* jobs whose results landed (a ``completed``/``cache-hit`` record) are
  restored verbatim, never re-simulated;
* jobs accepted but unfinished are re-admitted in original-arrival
  order;
* quarantine and circuit-breaker state replays deterministically (the
  breaker is a pure function of its record_* call sequence).

Framing
-------

The file is line-oriented JSONL with a per-record integrity frame::

    repro-journal v1\\n
    {length:08d} {sha256hex} {payload-json}\\n
    {length:08d} {sha256hex} {payload-json}\\n
    ...

``length`` is the byte length of the JSON payload and ``sha256hex`` its
SHA-256 — so a **torn tail** (a partially written final frame after a
crash, the only corruption an append-only file can suffer) is *detected*
by the frame check and **truncated, not parsed**.  Everything before the
first bad frame is intact by construction; :meth:`WriteAheadJournal.scan`
returns it and (with ``repair=True``) trims the file back to the last
good frame so appends continue cleanly.

Every payload carries a ``seq`` that must increase by exactly one from
1.  A gap or repeat inside *valid* frames cannot be produced by a crash
— only by splicing or replaying the file — and raises a typed
:class:`~repro.errors.JournalError` instead of being repaired.

``on_append`` is the chaos hook: called *after* each record is durably
written, it lets :mod:`repro.chaos` simulate a process kill between any
two journal records (raise inside the hook = die with record N on disk
and record N+1 never written).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import JournalError

__all__ = ["JournalRecord", "JournalScan", "WriteAheadJournal"]

_HEADER = b"repro-journal v1\n"
#: ``{length:08d} {sha256hex} `` — 8 digits, space, 64 hex chars, space.
_FRAME_PREFIX_LEN = 8 + 1 + 64 + 1
_MAX_RECORD_BYTES = 10**8  # an 8-digit length can never claim more


@dataclass(frozen=True)
class JournalRecord:
    """One journaled state transition: a sequence number, a kind, and
    the kind-specific data document."""

    seq: int
    kind: str
    data: dict = field(default_factory=dict)

    def to_payload(self) -> bytes:
        doc = {"seq": self.seq, "kind": self.kind, **self.data}
        return json.dumps(doc, sort_keys=True).encode()

    @classmethod
    def from_payload(cls, payload: bytes) -> "JournalRecord":
        doc = json.loads(payload.decode())
        seq = doc.pop("seq")
        kind = doc.pop("kind")
        return cls(seq=int(seq), kind=str(kind), data=doc)


@dataclass
class JournalScan:
    """The result of reading a journal: every intact record, in order,
    plus how many torn-tail bytes were discarded (0 for a clean file)."""

    path: Path
    records: list[JournalRecord] = field(default_factory=list)
    truncated_bytes: int = 0

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0

    def by_kind(self, kind: str) -> list[JournalRecord]:
        return [r for r in self.records if r.kind == kind]


def _frame(payload: bytes) -> bytes:
    digest = hashlib.sha256(payload).hexdigest()
    return b"%08d %s %s\n" % (len(payload), digest.encode(), payload)


class WriteAheadJournal:
    """Append-only, SHA-256-framed journal with torn-tail repair."""

    def __init__(
        self, path: str | Path, *, fsync: bool = False
    ) -> None:
        self.path = Path(path)
        #: ``fsync=True`` makes every append survive power loss, not just
        #: process death; the chaos harness models process death only, so
        #: the default trades the syscall for throughput.
        self.fsync = fsync
        #: Post-append observer ``f(record)``; raising inside it models a
        #: kill *between* journal records (the record is already durable).
        self.on_append = None
        self._fh = None
        self._next_seq = 1
        self._closed = False
        self.appended = 0

    # -- Reading ---------------------------------------------------------

    @classmethod
    def scan(
        cls, path: str | Path, *, repair: bool = False
    ) -> JournalScan:
        """Read every intact record; detect (optionally trim) a torn tail.

        A missing or empty file scans as zero records.  A torn tail —
        truncated header, bad length digits, short frame, digest
        mismatch, missing newline, or unparsable JSON at the *end* of
        the file — stops the scan there; with ``repair=True`` the file
        is truncated back to the last good frame.  A ``seq`` that does
        not increase by exactly one across valid frames raises
        :class:`JournalError` (splice damage, never crash damage).
        """
        path = Path(path)
        if not path.exists():
            return JournalScan(path=path)
        data = path.read_bytes()
        if not data:
            return JournalScan(path=path)
        if len(data) < len(_HEADER):
            # A crash inside the very first write: the whole file is tail.
            return cls._tear(path, data, 0, repair)
        if not data.startswith(_HEADER):
            raise JournalError(
                f"{path}: not a repro-journal v1 file "
                f"(header {data[:16]!r})"
            )
        scan = JournalScan(path=path)
        offset = len(_HEADER)
        expected_seq = 1
        while offset < len(data):
            record, frame_len = cls._parse_frame(data, offset)
            if record is None:
                torn = cls._tear(path, data, offset, repair)
                scan.truncated_bytes = torn.truncated_bytes
                return scan
            if record.seq != expected_seq:
                raise JournalError(
                    f"{path}: sequence discontinuity at byte {offset}: "
                    f"expected seq {expected_seq}, found {record.seq} "
                    f"(journal spliced or replayed?)"
                )
            scan.records.append(record)
            expected_seq += 1
            offset += frame_len
        return scan

    @staticmethod
    def _parse_frame(data: bytes, offset: int):
        """``(record, frame_length)`` at ``offset``, or ``(None, 0)`` if
        the bytes from here on are a torn tail."""
        head = data[offset: offset + _FRAME_PREFIX_LEN]
        if len(head) < _FRAME_PREFIX_LEN:
            return None, 0
        length_bytes, digest_bytes = head[:8], head[9:73]
        if not length_bytes.isdigit() or head[8:9] != b" " \
                or head[73:74] != b" ":
            return None, 0
        length = int(length_bytes)
        if length > _MAX_RECORD_BYTES:
            return None, 0
        start = offset + _FRAME_PREFIX_LEN
        end = start + length + 1  # payload + newline
        if end > len(data):
            return None, 0
        payload = data[start: end - 1]
        if data[end - 1: end] != b"\n":
            return None, 0
        if hashlib.sha256(payload).hexdigest().encode() != digest_bytes:
            return None, 0
        try:
            record = JournalRecord.from_payload(payload)
        except (ValueError, KeyError, TypeError):
            # Digest-valid but unparsable is splice damage, not a tear —
            # a frame we wrote whole always round-trips.
            raise JournalError(
                f"journal frame at byte {offset} has a valid digest but "
                f"an unparsable payload"
            ) from None
        return record, _FRAME_PREFIX_LEN + length + 1

    @staticmethod
    def _tear(
        path: Path, data: bytes, good_bytes: int, repair: bool
    ) -> JournalScan:
        scan = JournalScan(
            path=path, truncated_bytes=len(data) - good_bytes
        )
        if repair:
            with open(path, "r+b") as fh:
                fh.truncate(good_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        return scan

    # -- Appending -------------------------------------------------------

    def replay(self) -> JournalScan:
        """Scan this journal (repairing any torn tail), position the
        append cursor after the last good record, and return the scan.

        The recovery entry point: :meth:`repro.gateway.Gateway.recover`
        replays the returned records, then keeps appending to the same
        file — sequence numbers continue across incarnations.
        """
        scan = self.scan(self.path, repair=True)
        self._next_seq = scan.last_seq + 1
        return scan

    def _ensure_open(self) -> None:
        if self._closed:
            raise JournalError(f"{self.path}: journal is closed")
        if self._fh is not None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or \
            self.path.stat().st_size == 0
        if not fresh:
            self.replay()
        self._fh = open(self.path, "ab")
        if fresh:
            self._fh.write(_HEADER)
            self._flush()

    def append(self, kind: str, **data) -> JournalRecord:
        """Durably write one record, then fire ``on_append``.

        The record is flushed (and fsynced when configured) *before*
        the hook runs and before the caller's state mutation — the
        journal is the commit point.
        """
        self._ensure_open()
        record = JournalRecord(seq=self._next_seq, kind=kind, data=data)
        self._fh.write(_frame(record.to_payload()))
        self._flush()
        self._next_seq += 1
        self.appended += 1
        if self.on_append is not None:
            self.on_append(record)
        return record

    def _flush(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def close(self) -> None:
        if self._fh is not None:
            self._flush()
            self._fh.close()
            self._fh = None
        self._closed = True

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
