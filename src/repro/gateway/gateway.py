"""The gateway: admission → cache → ring → shards, with supervision.

:class:`Gateway` is the front tier over N node-local
:class:`~repro.gateway.shard.GatewayShard`\\ s.  A submitted
:class:`~repro.serve.jobs.JobSpec` passes through four stations:

1. **Admission** (:class:`~repro.gateway.admission.AdmissionController`)
   — bounded in-flight occupancy with per-class fairness; rejection is a
   typed :class:`~repro.errors.QueueFullError` carrying the adaptive
   retry-after hint.
2. **Result cache** (:class:`~repro.gateway.results.ResultCache`) — a
   spec whose physics identity was already computed resolves immediately,
   with a payload byte-identical to recomputation and zero transport.
   Identical physics *in flight* coalesces: the first spec per cache key
   becomes the leader and runs; followers park and resolve from the
   cache the moment the leader's result lands.
3. **Routing** (:class:`~repro.gateway.routing.HashRing`) — placement by
   library fingerprint, so each XS library is built on exactly one shard
   and the single-builder lockfile election stays node-local.
4. **A shard** — whose pump thread feeds its service and reports results
   and per-batch progress back on the shared outbox.

Supervision runs shard-granular, reusing the supervise-tier primitives
one level up: per-shard throughput EMAs in a
:class:`~repro.supervise.health.HealthMonitor` (shards as ranks, fed by
worker progress events), and a
:class:`~repro.supervise.circuit.CircuitBreaker` that promotes repeated
*poisoned-job* verdicts on one shard into a **sick-shard** quarantine:
the shard is evicted, its unfinished jobs re-route deterministically
around the ring (front of their priority class, capacity-exempt), and
its fingerprints' next builds land on the surviving shards.  The last
healthy shard is never quarantined — degraded service beats none, the
supervise tier's graceful-degradation rule.

The async surface (:meth:`run_async`, :meth:`stream`) is cooperative
feeding over the same synchronous core: backlog feeding yields on
backpressure for exactly the advertised retry-after, and every cache
hit, completion, and per-batch progress report is one event in the
stream.

**Durability** (``journal_path=``): every state transition — accepted,
leader-elected, routed, completed, cache-hit, quarantined — is appended
to a :class:`~repro.gateway.journal.WriteAheadJournal` *before* the
in-memory mutation it describes.  A restarted gateway calls
:meth:`recover`: landed results are restored verbatim from their
``completed``/``cache-hit`` records (never re-simulated), unfinished
specs re-admit front-of-class in original-arrival order
(capacity-exempt — they already held a slot once), and quarantine plus
circuit-breaker state replays deterministically.  Recovered sweep
payloads are byte-identical to an uninterrupted run — the physics is a
pure function of the spec, and the journal guarantees nothing landed
twice.
"""

from __future__ import annotations

import asyncio
import queue as _queue
from collections import deque
from pathlib import Path

from ..errors import GatewayError, JobError, QueueFullError
from ..serve.jobs import JobResult, JobSpec
from ..supervise.circuit import CircuitBreaker
from ..supervise.deadline import Deadline
from ..supervise.health import HealthMonitor
from .admission import AdmissionController
from .journal import WriteAheadJournal
from .results import ResultCache
from .routing import HashRing
from .shard import GatewayShard, ShardEvent

__all__ = ["Gateway"]

#: Aggregate counters rolled up across shard services.
_AGGREGATE_COUNTERS = (
    "jobs_completed", "jobs_failed", "jobs_poisoned", "jobs_requeued",
    "worker_crashes", "library_builds", "library_disk_hits",
    "library_memory_hits",
)

_IDLE_SLEEP_S = 0.005


class Gateway:
    """Sharded async service tier with admission, affinity, and caching."""

    def __init__(
        self,
        n_shards: int = 2,
        *,
        workers_per_shard: int = 1,
        capacity: int = 256,
        max_class_share: float = 0.5,
        cache_dir: str | None = None,
        result_cache: ResultCache | None = None,
        shard_capacity: int = 64,
        breaker_threshold: int = 2,
        start_method: str | None = None,
        service_factory=None,
        journal_path: str | Path | None = None,
        journal_fsync: bool = False,
    ) -> None:
        if n_shards < 1:
            raise GatewayError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.workers_per_shard = workers_per_shard
        self.outbox: "_queue.Queue[ShardEvent]" = _queue.Queue()
        self.shards: dict[int, GatewayShard] = {
            i: GatewayShard(
                i,
                self.outbox,
                n_workers=workers_per_shard,
                # Per-shard cache subtree: the LibraryCache lockfile
                # election is a *node-local* protocol, and the shard is
                # the gateway's node.
                cache_dir=(
                    str(Path(cache_dir) / f"shard-{i}") if cache_dir else None
                ),
                capacity=shard_capacity,
                start_method=start_method,
                service_factory=service_factory,
            )
            for i in range(n_shards)
        }
        self.ring = HashRing(self.shards)
        self.admission = AdmissionController(
            capacity,
            max_class_share=max_class_share,
            slots=n_shards * workers_per_shard,
        )
        # `is not None`, not truthiness: an empty ResultCache is len()==0
        # and must still be honored (it may carry a disk directory).
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        self.health = HealthMonitor(list(self.shards))
        #: Poison-promotion breaker, keyed ``shard-<id>``: ``threshold``
        #: consecutive poisoned jobs on one shard trip quarantine.
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self.quarantined: set[int] = set()
        self.results: dict[str, JobResult] = {}
        self._specs: dict[str, JobSpec] = {}
        self._order: list[str] = []
        self._outstanding: set[str] = set()
        self._admitted_class: dict[str, str] = {}
        self._job_shard: dict[str, int] = {}
        #: In-flight leader per cache key, and the followers parked on it.
        self._inflight: dict[str, str] = {}
        self._waiters: dict[str, list[str]] = {}
        #: Events produced gateway-side (cache hits) awaiting the next poll.
        self._local_events: deque[dict] = deque()
        self.counters = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "poisoned": 0,
            "requeued": 0,
            "quarantines": 0,
            "quarantines_skipped": 0,
            "recovered": 0,
        }
        #: Write-ahead journal: every transition lands here before the
        #: in-memory state mutates (``None`` = volatile gateway).
        self.journal = (
            WriteAheadJournal(journal_path, fsync=journal_fsync)
            if journal_path is not None
            else None
        )
        self._started = False

    def _journal_append(self, kind: str, **data) -> None:
        if self.journal is not None:
            self.journal.append(kind, **data)

    # -- Lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        for shard_id, shard in self.shards.items():
            if shard_id not in self.quarantined:
                shard.start()
        self._started = True

    def shutdown(self, *, graceful: bool = True) -> None:
        for shard_id, shard in self.shards.items():
            if shard_id in self.quarantined:
                continue  # already stopped by eviction
            shard.stop(graceful=graceful)
        if self.journal is not None:
            self.journal.close()
        self._started = False

    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(graceful=not any(exc))

    # -- Submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Admit, cache-check, and route one job; returns its id.

        Raises :class:`QueueFullError` (typed, with the adaptive
        retry-after) when admission rejects, :class:`JobError` on a
        duplicate id.
        """
        if spec.job_id in self._specs:
            raise JobError(f"duplicate job id {spec.job_id!r}")
        cls = self.admission.admit(spec)
        # Write-ahead: the acceptance is durable before any state below
        # reflects it.  A crash between admit() and this append loses
        # only the (volatile) occupancy count, which dies with us anyway.
        self._journal_append(
            "accepted", job_id=spec.job_id, cls=cls, spec=spec.to_dict()
        )
        self._specs[spec.job_id] = spec
        self._order.append(spec.job_id)
        self.counters["submitted"] += 1

        cached = self.result_cache.get(spec)
        if cached is not None:
            # Resolved at the front door: no shard, no slot held.  The
            # record carries the full result so recovery can restore it
            # even if the cache directory has since been lost.
            self._journal_append(
                "cache-hit", job_id=spec.job_id, result=cached.to_dict()
            )
            self.admission.release(cls)
            self.results[spec.job_id] = cached
            self.counters["cache_hits"] += 1
            self.counters["completed"] += 1
            self._local_events.append(
                {
                    "kind": "done",
                    "job_id": spec.job_id,
                    "status": cached.status,
                    "shard": -1,
                    "cached": True,
                }
            )
            return spec.job_id

        self._admitted_class[spec.job_id] = cls
        self._outstanding.add(spec.job_id)
        key = self.result_cache.key_for(spec)
        if key in self._inflight:
            # Coalesce: the same physics is already running somewhere in
            # the tier.  Park behind the leader; the cache answers when
            # its result lands.  The slot stays held — a parked job is
            # still admitted occupancy.
            self._waiters.setdefault(key, []).append(spec.job_id)
            self.counters["coalesced"] += 1
            return spec.job_id
        self._elect_leader(key, spec.job_id)
        self._route(spec, front=False)
        return spec.job_id

    def _elect_leader(self, key: str, job_id: str) -> None:
        self._journal_append(
            "leader-elected", job_id=job_id, key=key
        )
        self._inflight[key] = job_id

    def _route(self, spec: JobSpec, *, front: bool) -> None:
        shard_id = self.ring.shard_for(
            spec.library_fingerprint(), excluded=self.quarantined
        )
        self._journal_append(
            "routed", job_id=spec.job_id, shard=shard_id, front=front
        )
        self._job_shard[spec.job_id] = shard_id
        self.shards[shard_id].submit(spec, front=front)

    # -- Event pump ----------------------------------------------------------

    def poll(self, timeout: float = 0.05) -> list[dict]:
        """Process pending shard events; returns them in arrival order.

        Blocks up to ``timeout`` only when nothing is immediately ready.
        Event documents: ``{"kind": "progress", "shard", "job_id",
        "worker_id", "batch", "seconds", "n_particles"}`` and ``{"kind":
        "done", "job_id", "status", "shard", "cached"}``.
        """
        self.start()
        events: list[dict] = []
        while self._local_events:
            events.append(self._local_events.popleft())
        block = timeout if not events else 0.0
        while True:
            try:
                raw = self.outbox.get(timeout=block)
            except _queue.Empty:
                break
            block = 0.0
            handled = self._handle(raw)
            if handled is not None:
                events.append(handled)
            while self._local_events:
                events.append(self._local_events.popleft())
        return events

    def _handle(self, event: ShardEvent) -> dict | None:
        if event.kind == "progress":
            worker_id, job_id, batch, seconds, n_particles = event.progress
            # Shards are the supervised ranks: every batch completed by
            # any of a shard's workers feeds that shard's throughput EMA.
            self.health.record(event.shard_id, batch, seconds, n_particles)
            return {
                "kind": "progress",
                "shard": event.shard_id,
                "job_id": job_id,
                "worker_id": worker_id,
                "batch": batch,
                "seconds": seconds,
                "n_particles": n_particles,
            }

        result = event.result
        if result.job_id in self.results:
            # A completion racing an eviction can be reported by both the
            # dying shard's flush and the surviving shard's rerun; the
            # payloads are bit-identical, so first report wins.  The
            # dedup sits *before* the journal append, so a journal never
            # carries two landings for one job — the exactly-once
            # property the chaos audit checks.
            return None
        self._journal_append(
            "completed",
            job_id=result.job_id,
            status=result.status,
            shard=event.shard_id,
            result=result.to_dict(),
        )
        self.results[result.job_id] = result
        self._outstanding.discard(result.job_id)
        cls = self._admitted_class.pop(result.job_id, None)
        if cls is not None:
            self.admission.release(cls)

        shard_key = f"shard-{event.shard_id}"
        spec = self._specs.get(result.job_id)
        key = self.result_cache.key_for(spec) if spec is not None else None
        if key is not None and self._inflight.get(key) == result.job_id:
            del self._inflight[key]
        if result.status == "done":
            self.counters["completed"] += 1
            self.admission.note_service(result.service_seconds)
            self.breaker.record_success(shard_key)
            if spec is not None:
                self.result_cache.put(spec, result)
            if key is not None:
                self._resolve_waiters(key)
        elif result.status == "poisoned":
            self.counters["poisoned"] += 1
            # Poison promotion: a job that deterministically kills this
            # shard's workers may be the job's fault once — but a streak
            # indicts the shard.
            self.breaker.record_failure(shard_key)
            if (
                self.breaker.is_open(shard_key)
                and event.shard_id not in self.quarantined
            ):
                self.quarantine_shard(event.shard_id)
        else:
            self.counters["failed"] += 1
        if result.status != "done" and key is not None:
            self._promote_waiter(key)

        return {
            "kind": "done",
            "job_id": result.job_id,
            "status": result.status,
            "shard": event.shard_id,
            "cached": False,
        }

    def _resolve_waiters(self, key: str) -> None:
        """Serve every follower parked on ``key`` from the fresh cache."""
        for waiter_id in self._waiters.pop(key, []):
            cached = self.result_cache.get(self._specs[waiter_id])
            if cached is None:  # cache raced an eviction: rerun instead
                self._elect_leader(key, waiter_id)
                self._route(self._specs[waiter_id], front=True)
                continue
            self._journal_append(
                "cache-hit", job_id=waiter_id, result=cached.to_dict()
            )
            self.results[waiter_id] = cached
            self._outstanding.discard(waiter_id)
            cls = self._admitted_class.pop(waiter_id, None)
            if cls is not None:
                self.admission.release(cls)
            self.counters["cache_hits"] += 1
            self.counters["completed"] += 1
            self._local_events.append(
                {
                    "kind": "done",
                    "job_id": waiter_id,
                    "status": cached.status,
                    "shard": -1,
                    "cached": True,
                }
            )

    def _promote_waiter(self, key: str) -> None:
        """The leader for ``key`` failed: its followers must not hang.

        The first parked follower becomes the new leader and actually
        runs (front of its class — it has already waited its turn); the
        rest stay parked behind it.
        """
        waiters = self._waiters.get(key)
        if not waiters:
            self._waiters.pop(key, None)
            return
        new_leader = waiters.pop(0)
        if not waiters:
            del self._waiters[key]
        self._elect_leader(key, new_leader)
        self._route(self._specs[new_leader], front=True)

    # -- Quarantine ----------------------------------------------------------

    def quarantine_shard(self, shard_id: int) -> bool:
        """Evict a shard and re-route its unfinished jobs; False if skipped.

        The minimum-one-shard floor: quarantining the only healthy shard
        would turn a sick service into no service, so the request is
        counted and refused instead.
        """
        if shard_id in self.quarantined:
            return False
        if len(self.quarantined) + 1 >= self.n_shards:
            self.counters["quarantines_skipped"] += 1
            return False
        leftovers = self.shards[shard_id].evict()
        requeue = [
            spec for spec in leftovers if spec.job_id not in self.results
        ]
        # One record covers the whole quarantine; the re-routes that
        # follow journal themselves as ordinary ``routed`` records.
        self._journal_append(
            "quarantined",
            shard=shard_id,
            requeued=[spec.job_id for spec in requeue],
        )
        self.quarantined.add(shard_id)
        self.health.mark_dead(shard_id)
        self.counters["quarantines"] += 1
        healthy = self.n_shards - len(self.quarantined)
        self.admission.slots = healthy * self.workers_per_shard
        for spec in requeue:
            self.counters["requeued"] += 1
            self._route(spec, front=True)
        return True

    # -- Crash recovery ------------------------------------------------------

    def has_job(self, job_id: str) -> bool:
        """Whether this gateway already knows ``job_id`` (recovered,
        in flight, or resolved) — the CLI's resubmission filter."""
        return job_id in self._specs or job_id in self.results

    def recover(self) -> dict:
        """Replay the journal and resume where the dead incarnation died.

        * **Landed results** (``completed``/``cache-hit`` records) are
          restored verbatim — the payload bytes in :attr:`results` are
          exactly the ones the previous incarnation journaled, and the
          work is never re-simulated.
        * **Unfinished specs** (accepted, no landing) re-admit in their
          original arrival order, capacity-exempt and front-of-class:
          they already held a slot and already waited their turn.
        * **Quarantine and breaker state** replay deterministically —
          the breaker is a pure function of its record_* sequence, so
          the restored circuits match the dead gateway's exactly.

        Returns a summary document (``replayed``, ``restored``,
        ``requeued``, ``truncated_bytes``).  Raises
        :class:`~repro.errors.GatewayError` when the gateway has no
        journal, and :class:`~repro.errors.JournalError` on splice-level
        corruption (a torn tail is repaired silently).
        """
        if self.journal is None:
            raise GatewayError(
                "recover() needs a journal_path-configured gateway"
            )
        if self._specs or self.results:
            raise GatewayError(
                "recover() must run on a fresh gateway, before any "
                "submissions"
            )
        scan = self.journal.replay()
        specs: dict[str, JobSpec] = {}
        order: list[str] = []
        landed: dict[str, JobResult] = {}
        cached_ids: set[str] = set()
        for record in scan.records:
            data = record.data
            if record.kind == "accepted":
                spec = JobSpec.from_dict(data["spec"])
                specs[spec.job_id] = spec
                order.append(spec.job_id)
            elif record.kind == "completed":
                landed[data["job_id"]] = JobResult.from_dict(
                    data["result"]
                )
                shard_key = f"shard-{data['shard']}"
                if data["status"] == "done":
                    self.breaker.record_success(shard_key)
                elif data["status"] == "poisoned":
                    self.counters["poisoned"] += 1
                    self.breaker.record_failure(shard_key)
                if data["status"] not in ("done", "poisoned"):
                    self.counters["failed"] += 1
            elif record.kind == "cache-hit":
                landed[data["job_id"]] = JobResult.from_dict(
                    data["result"]
                )
                cached_ids.add(data["job_id"])
            elif record.kind == "quarantined":
                shard_id = int(data["shard"])
                if shard_id in self.quarantined:
                    continue
                self.quarantined.add(shard_id)
                self.health.mark_dead(shard_id)
                self.counters["quarantines"] += 1
                self.counters["requeued"] += len(data["requeued"])
        healthy = self.n_shards - len(self.quarantined)
        if healthy > 0:
            self.admission.slots = healthy * self.workers_per_shard

        # Restore the durable picture before journaling anything new.
        for job_id in order:
            self._specs[job_id] = specs[job_id]
            self._order.append(job_id)
            self.counters["submitted"] += 1
            result = landed.get(job_id)
            if result is None:
                continue
            self.counters["recovered"] += 1
            self.results[job_id] = result
            if job_id in cached_ids:
                self.counters["cache_hits"] += 1
                self.counters["completed"] += 1
            elif result.status == "done":
                self.counters["completed"] += 1
                # Re-seed the cache: identical future physics must keep
                # hitting even if the cache tier itself was volatile.
                self.result_cache.put(specs[job_id], result)

        pending = [j for j in order if j not in landed]
        self._journal_append(
            "recovered",
            replayed=len(scan.records),
            restored=len(landed),
            pending=pending,
            truncated_bytes=scan.truncated_bytes,
        )

        # Re-admit survivors: original arrival order, front of class.
        for job_id in pending:
            spec = specs[job_id]
            self.counters["recovered"] += 1
            cached = self.result_cache.get(spec)
            if cached is not None:
                self._journal_append(
                    "cache-hit", job_id=job_id, result=cached.to_dict()
                )
                self.results[job_id] = cached
                self.counters["cache_hits"] += 1
                self.counters["completed"] += 1
                self._local_events.append(
                    {
                        "kind": "done",
                        "job_id": job_id,
                        "status": cached.status,
                        "shard": -1,
                        "cached": True,
                    }
                )
                continue
            cls = self.admission.admit(spec, exempt=True)
            self._admitted_class[job_id] = cls
            self._outstanding.add(job_id)
            key = self.result_cache.key_for(spec)
            if key in self._inflight:
                self._waiters.setdefault(key, []).append(job_id)
                self.counters["coalesced"] += 1
                continue
            self._elect_leader(key, job_id)
            self._route(spec, front=True)
        return {
            "replayed": len(scan.records),
            "restored": len(landed),
            "requeued": len(pending),
            "truncated_bytes": scan.truncated_bytes,
        }

    # -- Draining ------------------------------------------------------------

    def unresolved(self) -> int:
        """Jobs admitted but not yet resolved anywhere in the tier."""
        return len(self._outstanding)

    def drain(self, *, deadline_s: float | None = None) -> None:
        """Block until every submitted job has a result."""
        deadline = (
            Deadline(deadline_s, label="gateway drain")
            if deadline_s is not None
            else None
        )
        while self.unresolved():
            if deadline is not None:
                deadline.check(
                    f"draining {self.unresolved()} unresolved job(s)"
                )
            self.poll(timeout=0.05)

    def ordered_results(self) -> list[JobResult]:
        """Results for every resolved job, in submission order."""
        return [
            self.results[job_id]
            for job_id in self._order
            if job_id in self.results
        ]

    # -- Async front tier ----------------------------------------------------

    async def run_async(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ) -> list[JobResult]:
        """Submit ``specs`` (yielding on backpressure) and drain them all."""
        results = []
        async for event in self.stream(specs, deadline_s=deadline_s):
            if event["kind"] == "done":
                results.append(self.results[event["job_id"]])
        ordered = {r.job_id: r for r in results}
        return [ordered[s.job_id] for s in specs if s.job_id in ordered]

    async def stream(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ):
        """Async event stream: submit ``specs``, yield every event.

        Yields the :meth:`poll` event documents — per-batch ``progress``
        and per-job ``done`` (cache hits included) — until every spec in
        this call has resolved.  Backpressure is cooperative: when
        admission rejects, the feeder sleeps the advertised retry-after
        and lets other coroutines run.
        """
        self.start()
        backlog = deque(specs)
        wanted = {s.job_id for s in specs}
        done = 0
        deadline = (
            Deadline(deadline_s, label="gateway stream")
            if deadline_s is not None
            else None
        )
        while backlog or done < len(wanted):
            if deadline is not None:
                deadline.check(
                    f"{len(wanted) - done} job(s) unresolved"
                )
            while backlog:
                try:
                    self.submit(backlog[0])
                except QueueFullError as exc:
                    await asyncio.sleep(
                        min(exc.retry_after_s, 0.25)
                    )
                    break
                backlog.popleft()
            events = self.poll(timeout=0.0)
            if not events:
                await asyncio.sleep(_IDLE_SLEEP_S)
                continue
            for event in events:
                if (
                    event["kind"] == "done"
                    and event["job_id"] in wanted
                ):
                    done += 1
                yield event

    def run(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ) -> list[JobResult]:
        """Synchronous wrapper over :meth:`run_async`."""
        return asyncio.run(
            self.run_async(specs, deadline_s=deadline_s)
        )

    # -- Observability -------------------------------------------------------

    def metrics_summary(self) -> dict:
        """Gateway counters + supervision state + per-shard summaries."""
        aggregate = {name: 0 for name in _AGGREGATE_COUNTERS}
        overhead_sum = 0.0
        service_sum = 0.0
        shards = {}
        for shard_id, shard in self.shards.items():
            metrics = shard.service.metrics
            for name in _AGGREGATE_COUNTERS:
                aggregate[name] += metrics.counter(name).value
            overhead_sum += metrics.histogram(
                "dispatch_overhead_seconds"
            ).sum
            service_sum += metrics.histogram("service_seconds").sum
            shards[str(shard_id)] = shard.metrics_summary()
        aggregate["dispatch_overhead_seconds"] = overhead_sum
        aggregate["service_seconds"] = service_sum
        aggregate["dispatch_overhead_fraction"] = (
            overhead_sum / service_sum if service_sum else 0.0
        )
        journal = None
        if self.journal is not None:
            journal = {
                "path": str(self.journal.path),
                "next_seq": self.journal.next_seq,
                "appended": self.journal.appended,
                "fsync": self.journal.fsync,
            }
        return {
            "gateway": {
                "n_shards": self.n_shards,
                "workers_per_shard": self.workers_per_shard,
                "quarantined": sorted(self.quarantined),
                "unresolved": self.unresolved(),
                "counters": dict(self.counters),
                "admission": self.admission.snapshot(),
                "result_cache": self.result_cache.stats(),
                "breaker": self.breaker.as_dict(),
                "health": self.health.summary(),
                "journal": journal,
            },
            "aggregate": aggregate,
            "shards": shards,
        }
