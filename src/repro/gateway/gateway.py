"""The gateway: admission → cache → ring → shards, with supervision.

:class:`Gateway` is the front tier over N node-local
:class:`~repro.gateway.shard.GatewayShard`\\ s.  A submitted
:class:`~repro.serve.jobs.JobSpec` passes through four stations:

1. **Admission** (:class:`~repro.gateway.admission.AdmissionController`)
   — bounded in-flight occupancy with per-class fairness; rejection is a
   typed :class:`~repro.errors.QueueFullError` carrying the adaptive
   retry-after hint.
2. **Result cache** (:class:`~repro.gateway.results.ResultCache`) — a
   spec whose physics identity was already computed resolves immediately,
   with a payload byte-identical to recomputation and zero transport.
   Identical physics *in flight* coalesces: the first spec per cache key
   becomes the leader and runs; followers park and resolve from the
   cache the moment the leader's result lands.
3. **Routing** (:class:`~repro.gateway.routing.HashRing`) — placement by
   library fingerprint, so each XS library is built on exactly one shard
   and the single-builder lockfile election stays node-local.
4. **A shard** — whose pump thread feeds its service and reports results
   and per-batch progress back on the shared outbox.

Supervision runs shard-granular, reusing the supervise-tier primitives
one level up: per-shard throughput EMAs in a
:class:`~repro.supervise.health.HealthMonitor` (shards as ranks, fed by
worker progress events), and a
:class:`~repro.supervise.circuit.CircuitBreaker` that promotes repeated
*poisoned-job* verdicts on one shard into a **sick-shard** quarantine:
the shard is evicted, its unfinished jobs re-route deterministically
around the ring (front of their priority class, capacity-exempt), and
its fingerprints' next builds land on the surviving shards.  The last
healthy shard is never quarantined — degraded service beats none, the
supervise tier's graceful-degradation rule.

The async surface (:meth:`run_async`, :meth:`stream`) is cooperative
feeding over the same synchronous core: backlog feeding yields on
backpressure for exactly the advertised retry-after, and every cache
hit, completion, and per-batch progress report is one event in the
stream.
"""

from __future__ import annotations

import asyncio
import queue as _queue
from collections import deque
from pathlib import Path

from ..errors import GatewayError, JobError, QueueFullError
from ..serve.jobs import JobResult, JobSpec
from ..supervise.circuit import CircuitBreaker
from ..supervise.deadline import Deadline
from ..supervise.health import HealthMonitor
from .admission import AdmissionController
from .results import ResultCache
from .routing import HashRing
from .shard import GatewayShard, ShardEvent

__all__ = ["Gateway"]

#: Aggregate counters rolled up across shard services.
_AGGREGATE_COUNTERS = (
    "jobs_completed", "jobs_failed", "jobs_poisoned", "jobs_requeued",
    "worker_crashes", "library_builds", "library_disk_hits",
    "library_memory_hits",
)

_IDLE_SLEEP_S = 0.005


class Gateway:
    """Sharded async service tier with admission, affinity, and caching."""

    def __init__(
        self,
        n_shards: int = 2,
        *,
        workers_per_shard: int = 1,
        capacity: int = 256,
        max_class_share: float = 0.5,
        cache_dir: str | None = None,
        result_cache: ResultCache | None = None,
        shard_capacity: int = 64,
        breaker_threshold: int = 2,
        start_method: str | None = None,
        service_factory=None,
    ) -> None:
        if n_shards < 1:
            raise GatewayError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.workers_per_shard = workers_per_shard
        self.outbox: "_queue.Queue[ShardEvent]" = _queue.Queue()
        self.shards: dict[int, GatewayShard] = {
            i: GatewayShard(
                i,
                self.outbox,
                n_workers=workers_per_shard,
                # Per-shard cache subtree: the LibraryCache lockfile
                # election is a *node-local* protocol, and the shard is
                # the gateway's node.
                cache_dir=(
                    str(Path(cache_dir) / f"shard-{i}") if cache_dir else None
                ),
                capacity=shard_capacity,
                start_method=start_method,
                service_factory=service_factory,
            )
            for i in range(n_shards)
        }
        self.ring = HashRing(self.shards)
        self.admission = AdmissionController(
            capacity,
            max_class_share=max_class_share,
            slots=n_shards * workers_per_shard,
        )
        # `is not None`, not truthiness: an empty ResultCache is len()==0
        # and must still be honored (it may carry a disk directory).
        self.result_cache = (
            result_cache if result_cache is not None else ResultCache()
        )
        self.health = HealthMonitor(list(self.shards))
        #: Poison-promotion breaker, keyed ``shard-<id>``: ``threshold``
        #: consecutive poisoned jobs on one shard trip quarantine.
        self.breaker = CircuitBreaker(threshold=breaker_threshold)
        self.quarantined: set[int] = set()
        self.results: dict[str, JobResult] = {}
        self._specs: dict[str, JobSpec] = {}
        self._order: list[str] = []
        self._outstanding: set[str] = set()
        self._admitted_class: dict[str, str] = {}
        self._job_shard: dict[str, int] = {}
        #: In-flight leader per cache key, and the followers parked on it.
        self._inflight: dict[str, str] = {}
        self._waiters: dict[str, list[str]] = {}
        #: Events produced gateway-side (cache hits) awaiting the next poll.
        self._local_events: deque[dict] = deque()
        self.counters = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "poisoned": 0,
            "requeued": 0,
            "quarantines": 0,
            "quarantines_skipped": 0,
        }
        self._started = False

    # -- Lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        for shard_id, shard in self.shards.items():
            if shard_id not in self.quarantined:
                shard.start()
        self._started = True

    def shutdown(self, *, graceful: bool = True) -> None:
        for shard_id, shard in self.shards.items():
            if shard_id in self.quarantined:
                continue  # already stopped by eviction
            shard.stop(graceful=graceful)
        self._started = False

    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown(graceful=not any(exc))

    # -- Submission ----------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Admit, cache-check, and route one job; returns its id.

        Raises :class:`QueueFullError` (typed, with the adaptive
        retry-after) when admission rejects, :class:`JobError` on a
        duplicate id.
        """
        if spec.job_id in self._specs:
            raise JobError(f"duplicate job id {spec.job_id!r}")
        cls = self.admission.admit(spec)
        self._specs[spec.job_id] = spec
        self._order.append(spec.job_id)
        self.counters["submitted"] += 1

        cached = self.result_cache.get(spec)
        if cached is not None:
            # Resolved at the front door: no shard, no slot held.
            self.admission.release(cls)
            self.results[spec.job_id] = cached
            self.counters["cache_hits"] += 1
            self.counters["completed"] += 1
            self._local_events.append(
                {
                    "kind": "done",
                    "job_id": spec.job_id,
                    "status": cached.status,
                    "shard": -1,
                    "cached": True,
                }
            )
            return spec.job_id

        self._admitted_class[spec.job_id] = cls
        self._outstanding.add(spec.job_id)
        key = self.result_cache.key_for(spec)
        if key in self._inflight:
            # Coalesce: the same physics is already running somewhere in
            # the tier.  Park behind the leader; the cache answers when
            # its result lands.  The slot stays held — a parked job is
            # still admitted occupancy.
            self._waiters.setdefault(key, []).append(spec.job_id)
            self.counters["coalesced"] += 1
            return spec.job_id
        self._inflight[key] = spec.job_id
        self._route(spec, front=False)
        return spec.job_id

    def _route(self, spec: JobSpec, *, front: bool) -> None:
        shard_id = self.ring.shard_for(
            spec.library_fingerprint(), excluded=self.quarantined
        )
        self._job_shard[spec.job_id] = shard_id
        self.shards[shard_id].submit(spec, front=front)

    # -- Event pump ----------------------------------------------------------

    def poll(self, timeout: float = 0.05) -> list[dict]:
        """Process pending shard events; returns them in arrival order.

        Blocks up to ``timeout`` only when nothing is immediately ready.
        Event documents: ``{"kind": "progress", "shard", "job_id",
        "worker_id", "batch", "seconds", "n_particles"}`` and ``{"kind":
        "done", "job_id", "status", "shard", "cached"}``.
        """
        self.start()
        events: list[dict] = []
        while self._local_events:
            events.append(self._local_events.popleft())
        block = timeout if not events else 0.0
        while True:
            try:
                raw = self.outbox.get(timeout=block)
            except _queue.Empty:
                break
            block = 0.0
            handled = self._handle(raw)
            if handled is not None:
                events.append(handled)
            while self._local_events:
                events.append(self._local_events.popleft())
        return events

    def _handle(self, event: ShardEvent) -> dict | None:
        if event.kind == "progress":
            worker_id, job_id, batch, seconds, n_particles = event.progress
            # Shards are the supervised ranks: every batch completed by
            # any of a shard's workers feeds that shard's throughput EMA.
            self.health.record(event.shard_id, batch, seconds, n_particles)
            return {
                "kind": "progress",
                "shard": event.shard_id,
                "job_id": job_id,
                "worker_id": worker_id,
                "batch": batch,
                "seconds": seconds,
                "n_particles": n_particles,
            }

        result = event.result
        if result.job_id in self.results:
            # A completion racing an eviction can be reported by both the
            # dying shard's flush and the surviving shard's rerun; the
            # payloads are bit-identical, so first report wins.
            return None
        self.results[result.job_id] = result
        self._outstanding.discard(result.job_id)
        cls = self._admitted_class.pop(result.job_id, None)
        if cls is not None:
            self.admission.release(cls)

        shard_key = f"shard-{event.shard_id}"
        spec = self._specs.get(result.job_id)
        key = self.result_cache.key_for(spec) if spec is not None else None
        if key is not None and self._inflight.get(key) == result.job_id:
            del self._inflight[key]
        if result.status == "done":
            self.counters["completed"] += 1
            self.admission.note_service(result.service_seconds)
            self.breaker.record_success(shard_key)
            if spec is not None:
                self.result_cache.put(spec, result)
            if key is not None:
                self._resolve_waiters(key)
        elif result.status == "poisoned":
            self.counters["poisoned"] += 1
            # Poison promotion: a job that deterministically kills this
            # shard's workers may be the job's fault once — but a streak
            # indicts the shard.
            self.breaker.record_failure(shard_key)
            if (
                self.breaker.is_open(shard_key)
                and event.shard_id not in self.quarantined
            ):
                self.quarantine_shard(event.shard_id)
        else:
            self.counters["failed"] += 1
        if result.status != "done" and key is not None:
            self._promote_waiter(key)

        return {
            "kind": "done",
            "job_id": result.job_id,
            "status": result.status,
            "shard": event.shard_id,
            "cached": False,
        }

    def _resolve_waiters(self, key: str) -> None:
        """Serve every follower parked on ``key`` from the fresh cache."""
        for waiter_id in self._waiters.pop(key, []):
            cached = self.result_cache.get(self._specs[waiter_id])
            if cached is None:  # cache raced an eviction: rerun instead
                self._inflight[key] = waiter_id
                self._route(self._specs[waiter_id], front=True)
                continue
            self.results[waiter_id] = cached
            self._outstanding.discard(waiter_id)
            cls = self._admitted_class.pop(waiter_id, None)
            if cls is not None:
                self.admission.release(cls)
            self.counters["cache_hits"] += 1
            self.counters["completed"] += 1
            self._local_events.append(
                {
                    "kind": "done",
                    "job_id": waiter_id,
                    "status": cached.status,
                    "shard": -1,
                    "cached": True,
                }
            )

    def _promote_waiter(self, key: str) -> None:
        """The leader for ``key`` failed: its followers must not hang.

        The first parked follower becomes the new leader and actually
        runs (front of its class — it has already waited its turn); the
        rest stay parked behind it.
        """
        waiters = self._waiters.get(key)
        if not waiters:
            self._waiters.pop(key, None)
            return
        new_leader = waiters.pop(0)
        if not waiters:
            del self._waiters[key]
        self._inflight[key] = new_leader
        self._route(self._specs[new_leader], front=True)

    # -- Quarantine ----------------------------------------------------------

    def quarantine_shard(self, shard_id: int) -> bool:
        """Evict a shard and re-route its unfinished jobs; False if skipped.

        The minimum-one-shard floor: quarantining the only healthy shard
        would turn a sick service into no service, so the request is
        counted and refused instead.
        """
        if shard_id in self.quarantined:
            return False
        if len(self.quarantined) + 1 >= self.n_shards:
            self.counters["quarantines_skipped"] += 1
            return False
        self.quarantined.add(shard_id)
        self.health.mark_dead(shard_id)
        self.counters["quarantines"] += 1
        healthy = self.n_shards - len(self.quarantined)
        self.admission.slots = healthy * self.workers_per_shard
        leftovers = self.shards[shard_id].evict()
        for spec in leftovers:
            if spec.job_id in self.results:
                continue
            self.counters["requeued"] += 1
            self._route(spec, front=True)
        return True

    # -- Draining ------------------------------------------------------------

    def unresolved(self) -> int:
        """Jobs admitted but not yet resolved anywhere in the tier."""
        return len(self._outstanding)

    def drain(self, *, deadline_s: float | None = None) -> None:
        """Block until every submitted job has a result."""
        deadline = (
            Deadline(deadline_s, label="gateway drain")
            if deadline_s is not None
            else None
        )
        while self.unresolved():
            if deadline is not None:
                deadline.check(
                    f"draining {self.unresolved()} unresolved job(s)"
                )
            self.poll(timeout=0.05)

    def ordered_results(self) -> list[JobResult]:
        """Results for every resolved job, in submission order."""
        return [
            self.results[job_id]
            for job_id in self._order
            if job_id in self.results
        ]

    # -- Async front tier ----------------------------------------------------

    async def run_async(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ) -> list[JobResult]:
        """Submit ``specs`` (yielding on backpressure) and drain them all."""
        results = []
        async for event in self.stream(specs, deadline_s=deadline_s):
            if event["kind"] == "done":
                results.append(self.results[event["job_id"]])
        ordered = {r.job_id: r for r in results}
        return [ordered[s.job_id] for s in specs if s.job_id in ordered]

    async def stream(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ):
        """Async event stream: submit ``specs``, yield every event.

        Yields the :meth:`poll` event documents — per-batch ``progress``
        and per-job ``done`` (cache hits included) — until every spec in
        this call has resolved.  Backpressure is cooperative: when
        admission rejects, the feeder sleeps the advertised retry-after
        and lets other coroutines run.
        """
        self.start()
        backlog = deque(specs)
        wanted = {s.job_id for s in specs}
        done = 0
        deadline = (
            Deadline(deadline_s, label="gateway stream")
            if deadline_s is not None
            else None
        )
        while backlog or done < len(wanted):
            if deadline is not None:
                deadline.check(
                    f"{len(wanted) - done} job(s) unresolved"
                )
            while backlog:
                try:
                    self.submit(backlog[0])
                except QueueFullError as exc:
                    await asyncio.sleep(
                        min(exc.retry_after_s, 0.25)
                    )
                    break
                backlog.popleft()
            events = self.poll(timeout=0.0)
            if not events:
                await asyncio.sleep(_IDLE_SLEEP_S)
                continue
            for event in events:
                if (
                    event["kind"] == "done"
                    and event["job_id"] in wanted
                ):
                    done += 1
                yield event

    def run(
        self,
        specs: list[JobSpec],
        *,
        deadline_s: float | None = None,
    ) -> list[JobResult]:
        """Synchronous wrapper over :meth:`run_async`."""
        return asyncio.run(
            self.run_async(specs, deadline_s=deadline_s)
        )

    # -- Observability -------------------------------------------------------

    def metrics_summary(self) -> dict:
        """Gateway counters + supervision state + per-shard summaries."""
        aggregate = {name: 0 for name in _AGGREGATE_COUNTERS}
        overhead_sum = 0.0
        service_sum = 0.0
        shards = {}
        for shard_id, shard in self.shards.items():
            metrics = shard.service.metrics
            for name in _AGGREGATE_COUNTERS:
                aggregate[name] += metrics.counter(name).value
            overhead_sum += metrics.histogram(
                "dispatch_overhead_seconds"
            ).sum
            service_sum += metrics.histogram("service_seconds").sum
            shards[str(shard_id)] = shard.metrics_summary()
        aggregate["dispatch_overhead_seconds"] = overhead_sum
        aggregate["service_seconds"] = service_sum
        aggregate["dispatch_overhead_fraction"] = (
            overhead_sum / service_sum if service_sum else 0.0
        )
        return {
            "gateway": {
                "n_shards": self.n_shards,
                "workers_per_shard": self.workers_per_shard,
                "quarantined": sorted(self.quarantined),
                "unresolved": self.unresolved(),
                "counters": dict(self.counters),
                "admission": self.admission.snapshot(),
                "result_cache": self.result_cache.stats(),
                "breaker": self.breaker.as_dict(),
                "health": self.health.summary(),
            },
            "aggregate": aggregate,
            "shards": shards,
        }
