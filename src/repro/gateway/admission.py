"""Gateway-edge admission control: bounded, fair, typed backpressure.

The serve queue's contract (PR 2) moves to the front door: capacity is a
hard bound, rejection is a typed :class:`~repro.errors.QueueFullError`
carrying an **adaptive retry-after** estimate, and nothing is ever
silently dropped.  Two additions at gateway scale:

* **Per-class fairness.**  Jobs are classed by priority band; one class
  may hold at most ``max_class_share`` of total capacity.  Under mixed
  traffic a flood of one class throttles itself (typed rejection naming
  the class) while other classes keep admitting — the queue-level
  priority ordering alone cannot provide this, because by the time jobs
  are queued the capacity is already spent.
* **Cluster-wide drain model.**  The retry hint divides the smoothed
  mean service time by the fleet's worker slots (shards x workers,
  shrinking as shards are quarantined), the same EMA the single-node
  service keeps for its own queue.

Admission state is in-flight occupancy, not queue depth: a job holds its
slot from ``admit`` until the gateway records its result (done, failed,
poisoned, or served from the result cache), so the bound covers work
resident anywhere in the tier — shard queues, batchers, and worker
processes alike.
"""

from __future__ import annotations

import threading

from ..errors import GatewayError, QueueFullError
from ..serve.jobs import JobSpec

__all__ = ["AdmissionController"]

_MIN_RETRY_AFTER_S = 0.05


class AdmissionController:
    """Bounded in-flight admission with per-class fairness caps."""

    def __init__(
        self,
        capacity: int = 256,
        *,
        max_class_share: float = 0.5,
        slots: int = 1,
    ) -> None:
        if capacity < 1:
            raise GatewayError(
                f"admission capacity must be >= 1, got {capacity}"
            )
        if not 0.0 < max_class_share <= 1.0:
            raise GatewayError(
                f"max_class_share must be in (0, 1], got {max_class_share}"
            )
        if slots < 1:
            raise GatewayError(f"slots must be >= 1, got {slots}")
        self.capacity = capacity
        self.max_class_share = max_class_share
        #: Fleet worker slots feeding the retry-after model; the gateway
        #: updates this as shards are quarantined.
        self.slots = slots
        self._lock = threading.Lock()
        self._in_flight = 0
        self._per_class: dict[str, int] = {}
        self._mean_service_s = 0.0
        self._retry_after_s = 1.0

    # -- Classing ------------------------------------------------------------

    @staticmethod
    def class_of(spec: JobSpec) -> str:
        """The fairness class of a spec: its priority band."""
        return f"priority-{spec.priority}"

    @property
    def class_cap(self) -> int:
        """Per-class occupancy bound (never below one slot)."""
        return max(1, int(self.capacity * self.max_class_share))

    # -- Admission -----------------------------------------------------------

    def admit(self, spec: JobSpec, *, exempt: bool = False) -> str:
        """Take one slot for ``spec``; raises :class:`QueueFullError`.

        Returns the class the slot was charged to (the token
        :meth:`release` must return).  ``exempt=True`` is the recovery
        path: journal-replayed jobs were *already admitted once* by the
        dead incarnation, so they re-enter past the capacity and
        fairness checks — but still count toward occupancy, keeping the
        in-flight bound honest for new traffic.
        """
        cls = self.class_of(spec)
        with self._lock:
            if exempt:
                self._in_flight += 1
                self._per_class[cls] = self._per_class.get(cls, 0) + 1
                return cls
            if self._in_flight >= self.capacity:
                raise QueueFullError(
                    f"gateway at capacity ({self.capacity} jobs in "
                    f"flight); retry in {self._retry_after_s:.2f}s",
                    retry_after_s=self._retry_after_s,
                )
            held = self._per_class.get(cls, 0)
            if held >= self.class_cap:
                raise QueueFullError(
                    f"class {cls} at its fairness cap ({self.class_cap} of "
                    f"{self.capacity} slots); retry in "
                    f"{self._retry_after_s:.2f}s",
                    retry_after_s=self._retry_after_s,
                )
            self._in_flight += 1
            self._per_class[cls] = held + 1
        return cls

    def release(self, cls: str) -> None:
        """Return the slot charged to class ``cls`` (on any resolution)."""
        with self._lock:
            held = self._per_class.get(cls, 0)
            if held <= 0 or self._in_flight <= 0:
                raise GatewayError(
                    f"admission release for class {cls!r} with no slot held"
                )
            self._in_flight -= 1
            if held == 1:
                del self._per_class[cls]
            else:
                self._per_class[cls] = held - 1

    # -- Adaptive retry-after ------------------------------------------------

    def note_service(self, seconds: float) -> None:
        """Fold one completion's service time into the retry-after model."""
        if seconds <= 0:
            return
        alpha = 0.3
        with self._lock:
            self._mean_service_s = (
                seconds
                if self._mean_service_s == 0.0
                else alpha * seconds + (1 - alpha) * self._mean_service_s
            )
            self._retry_after_s = max(
                _MIN_RETRY_AFTER_S, self._mean_service_s / self.slots
            )

    @property
    def retry_after_s(self) -> float:
        with self._lock:
            return self._retry_after_s

    # -- Observability -------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "class_cap": self.class_cap,
                "per_class": dict(sorted(self._per_class.items())),
                "retry_after_s": self._retry_after_s,
                "slots": self.slots,
            }
