"""A gateway shard: one node-local service pumped by a background thread.

Each shard owns a complete :class:`~repro.serve.service.SimulationService`
— bounded queue, fingerprint-affinity batcher, worker pool, circuit
breaker — plus a pump thread that drives it incrementally via the
service's :meth:`~repro.serve.service.SimulationService.step` API.  The
pump feeds admitted specs from the shard's inbox, forwards every fresh
result and per-batch progress report to the gateway's shared outbox as
:class:`ShardEvent`\\ s, and otherwise stays out of the way: all
scheduling policy lives in the service, all placement policy in the
gateway.

Shards are the gateway's failure domain.  :meth:`evict` is the
quarantine primitive: stop the pump, hard-stop the pool, flush any
results that did complete, and hand back the specs that did not — the
gateway re-routes those to surviving shards at the front of their
priority class, mirroring the pool's own crash requeue one level up.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from dataclasses import dataclass

from ..errors import QueueFullError
from ..serve.jobs import JobResult, JobSpec
from ..serve.service import SimulationService

__all__ = ["GatewayShard", "ShardEvent"]


@dataclass
class ShardEvent:
    """One shard→gateway report.

    ``kind`` is ``"done"`` (``result`` set: a job resolved — done, failed,
    expired, or poisoned) or ``"progress"`` (``progress`` set:
    ``(worker_id, job_id, batch, seconds, n_particles)`` — one simulation
    batch finished inside a worker).
    """

    kind: str
    shard_id: int
    result: JobResult | None = None
    progress: tuple | None = None


class GatewayShard:
    """One sharded service plus its pump thread."""

    def __init__(
        self,
        shard_id: int,
        outbox: "queue.Queue[ShardEvent]",
        *,
        n_workers: int = 1,
        cache_dir: str | None = None,
        capacity: int = 64,
        start_method: str | None = None,
        service_factory=None,
    ) -> None:
        self.shard_id = shard_id
        self.outbox = outbox
        # ``service_factory`` swaps in a protocol-compatible stand-in (the
        # benchmarks' SyntheticService) without touching pump mechanics.
        factory = service_factory or SimulationService
        self.service = factory(
            n_workers,
            cache_dir=cache_dir,
            capacity=capacity,
            start_method=start_method,
        )
        self.service.on_progress = self._on_progress
        self.n_workers = n_workers
        self._lock = threading.Lock()
        #: Admitted-but-unfed specs: ``(spec, front)`` pairs.
        self._inbox: deque[tuple[JobSpec, bool]] = deque()
        #: Every spec this shard currently owns, by job id — the eviction
        #: manifest: whatever is still here when the shard dies must be
        #: re-routed by the gateway.
        self._pending: dict[str, JobSpec] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- Submission (gateway thread) -----------------------------------------

    def submit(self, spec: JobSpec, *, front: bool = False) -> None:
        """Hand one routed spec to this shard (non-blocking)."""
        with self._lock:
            self._pending[spec.job_id] = spec
            if front:
                self._inbox.appendleft((spec, True))
            else:
                self._inbox.append((spec, False))

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- Lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._pump, name=f"gateway-shard-{self.shard_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, *, graceful: bool = True) -> None:
        """Stop the pump and the pool (after in-flight work if graceful)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if graceful:
            # Drain whatever the pump had already fed before stopping.
            while self.service.outstanding():
                self._forward(self.service.step())
        self._forward(self.service.take_fresh_results())
        self.service.shutdown(graceful=graceful)

    def evict(self) -> list[JobSpec]:
        """Quarantine this shard; returns the specs it failed to finish.

        Results that *did* complete are flushed to the outbox first (the
        gateway dedupes by job id, so a completion racing the eviction is
        harmless either way); everything else — inbox, queue, batcher,
        in-flight — comes back as specs for front-of-class re-routing.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # One last non-restarting collection pass: the pool may hold
        # finished results that the pump never got to poll.
        if self.service._started:
            self._forward(self.service.step())
        self._forward(self.service.take_fresh_results())
        self.service.shutdown(graceful=False)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            self._inbox.clear()
        return leftovers

    def kill(self) -> None:
        """Chaos primitive: die mid-job, reporting nothing.

        Unlike :meth:`evict` — the orderly quarantine that flushes
        finished results and hands back leftovers — ``kill`` models a
        shard process dropping dead: the pump stops, the pool is
        hard-stopped, and any results sitting unforwarded are *lost*.
        The pending manifest survives, so a subsequent :meth:`evict`
        (the gateway's quarantine) still recovers every unfinished spec.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.service.take_fresh_results()  # discard, as a crash would
        self.service.shutdown(graceful=False)

    # -- Pump (shard thread) -------------------------------------------------

    def _pump(self) -> None:
        while not self._stop.is_set():
            self._feed()
            self._forward(self.service.step())

    def _feed(self) -> None:
        """Move inbox specs into the service until it pushes back."""
        while True:
            with self._lock:
                if not self._inbox:
                    return
                spec, front = self._inbox.popleft()
            try:
                self.service.submit(spec, front=front)
            except QueueFullError:
                with self._lock:
                    self._inbox.appendleft((spec, front))
                return

    def _forward(self, results: list[JobResult]) -> None:
        for result in results:
            with self._lock:
                self._pending.pop(result.job_id, None)
            self.outbox.put(
                ShardEvent("done", self.shard_id, result=result)
            )

    def _on_progress(
        self,
        worker_id: int,
        job_id: str,
        batch: int,
        seconds: float,
        n_particles: int,
    ) -> None:
        self.outbox.put(
            ShardEvent(
                "progress",
                self.shard_id,
                progress=(worker_id, job_id, batch, seconds, n_particles),
            )
        )

    # -- Observability -------------------------------------------------------

    def metrics_summary(self) -> dict:
        return self.service.metrics_summary()
