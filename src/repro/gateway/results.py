"""Fingerprint+spec result cache: identical jobs answered without transport.

Heavy traffic repeats itself — the same canned scenario, the same sweep
resubmitted, the same curriculum job from a thousand clients.  Because a
:class:`~repro.serve.jobs.JobSpec`'s payload is a pure function of its
physics identity (the serve invariant, tested since PR 2), the gateway
can legally answer a repeat from a cache: the key is
:meth:`JobSpec.cache_key` (SHA-256 over the canonical identity document)
and the value is the completed :class:`~repro.serve.jobs.JobResult` as
exact-float JSON, so a hit is **byte-identical in its physics payload**
to recomputation (``payload_json`` equality; the determinism tests prove
it).

Mechanics:

* **LRU memory tier** with an optional ``max_entries`` bound; eviction is
  strict least-recently-used (hits refresh recency).
* **Optional disk tier** — one ``<key>.json`` per entry, published
  atomically (temp file + fsync + ``os.replace``, the library cache's
  pattern), so a cache directory survives process restarts and is
  shared by consecutive CLI invocations.  Memory eviction never deletes
  disk entries; the directory is the durable tier.
* **Checksummed entries.**  Disk entries are format-2 envelopes —
  ``{"format": 2, "sha256": ..., "result": {...}}`` with the digest
  over the canonical result JSON — verified on every read.  A corrupt,
  truncated, or tampered entry is **quarantined** (renamed to
  ``<key>.corrupt``, counted in ``corrupt_entries`` via a typed
  :class:`~repro.errors.CorruptEntryError`) and reported as a miss;
  readers never crash and never serve damaged bytes.  Legacy format-1
  entries (bare result JSON) still load.
* **First insert wins.**  Concurrent ``put`` of the same key (two shards
  completing identical specs in flight simultaneously) dedups under the
  lock; the stored payloads are bit-identical anyway, so either is valid.
* **Only ``done`` results are cacheable.**  Failed, expired, and
  poisoned results are refused — a poisoned job must trip the breaker on
  every resubmission, never be replayed from cache.

On a hit the cached payload is re-stamped with the *requesting* spec's
scheduling identity (job id, scenario provenance) and marked
``library_source="result-cache"`` with zeroed service accounting —
physics from the cache, bookkeeping from this submission.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..errors import CorruptEntryError, GatewayError, JobError
from ..serve.jobs import JobResult, JobSpec

__all__ = ["ResultCache"]

_ENTRY_FORMAT = 2


class ResultCache:
    """Thread-safe spec-keyed cache of completed job results."""

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise GatewayError(
                f"max_entries must be >= 1 when set, got {max_entries}"
            )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        #: key -> stored result dict, in LRU order (last = most recent).
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0
        #: Disk entries that failed their digest/shape check on read and
        #: were quarantined (renamed ``*.corrupt``) instead of served.
        self.corrupt_entries = 0

    @staticmethod
    def key_for(spec: JobSpec) -> str:
        return spec.cache_key()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Keys in LRU order, oldest first (eviction order)."""
        with self._lock:
            return list(self._entries)

    # -- Lookup --------------------------------------------------------------

    def get(self, spec: JobSpec) -> JobResult | None:
        """The cached result for ``spec``'s physics, or ``None`` on miss."""
        key = self.key_for(spec)
        with self._lock:
            stored = self._entries.get(key)
            if stored is not None:
                self._entries.move_to_end(key)
            elif self.directory is not None:
                stored = self._load_disk(key)
                if stored is not None:
                    self._entries[key] = stored
                    self._evict_over_bound()
            if stored is None:
                self.misses += 1
                return None
            self.hits += 1
            data = dict(stored)
        # Re-stamp scheduling identity outside the lock: the physics
        # payload is the cached bytes, the bookkeeping is this request's.
        data.update(
            job_id=spec.job_id,
            case_id=spec.case_id,
            suite_id=spec.suite_id,
            scenario_fingerprint=spec.scenario_fingerprint,
            worker_id=-1,
            attempts=1,
            wait_seconds=0.0,
            service_seconds=0.0,
            build_seconds=0.0,
            library_source="result-cache",
        )
        return JobResult.from_dict(data)

    # -- Insert --------------------------------------------------------------

    def put(self, spec: JobSpec, result: JobResult) -> bool:
        """Cache ``result`` under ``spec``'s key; returns whether stored.

        Refuses non-``done`` results (poison must stay poisonous) and
        dedups concurrent inserts of the same key (first wins).
        """
        if result.status != "done":
            self.rejected += 1
            return False
        key = self.key_for(spec)
        payload = result.to_json()
        with self._lock:
            if key in self._entries:
                return False
            if (
                self.directory is not None
                and self._disk_path(key).exists()
            ):
                return False
            self._entries[key] = json.loads(payload)
            self.insertions += 1
            if self.directory is not None:
                self._write_disk(key, payload)
            self._evict_over_bound()
        return True

    # -- Internals -----------------------------------------------------------

    def _evict_over_bound(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _disk_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @staticmethod
    def _result_digest(result: dict) -> str:
        return hashlib.sha256(
            json.dumps(result, sort_keys=True).encode()
        ).hexdigest()

    def _load_disk(self, key: str) -> dict | None:
        """A verified entry's result dict, or ``None`` (miss/quarantined).

        Every failure mode — unreadable file, torn JSON, a digest that
        does not match the content, a well-formed envelope around the
        wrong shape — funnels through the same typed
        :class:`CorruptEntryError` path: quarantine the file, count it,
        report a miss.  A concurrent reader racing the quarantine rename
        simply sees the file vanish (also a miss).
        """
        path = self._disk_path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self._quarantine(path, "unreadable entry")
            return None
        try:
            return self._verify_entry(path, text)
        except CorruptEntryError as exc:
            self._quarantine(path, str(exc))
            return None

    def _verify_entry(self, path: Path, text: str) -> dict:
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CorruptEntryError(
                f"not valid JSON ({exc})", path=str(path)
            ) from None
        if not isinstance(doc, dict):
            raise CorruptEntryError(
                f"entry is {type(doc).__name__}, not an object",
                path=str(path),
            )
        if "format" not in doc:
            # Legacy format-1 entry: bare result JSON, no digest to
            # check — validate the shape the hard way instead.
            try:
                JobResult.from_dict(doc)
            except JobError as exc:
                raise CorruptEntryError(
                    f"legacy entry does not parse as a result ({exc})",
                    path=str(path),
                ) from None
            return doc
        result = doc.get("result")
        if doc.get("format") != _ENTRY_FORMAT or not isinstance(
            result, dict
        ):
            raise CorruptEntryError(
                f"unknown entry format {doc.get('format')!r}",
                path=str(path),
            )
        digest = self._result_digest(result)
        if digest != doc.get("sha256"):
            raise CorruptEntryError(
                f"digest mismatch: stored {doc.get('sha256')!r}, "
                f"content {digest}",
                path=str(path),
            )
        return result

    def _quarantine(self, path: Path, reason: str) -> None:
        """Rename a damaged entry out of the ``*.json`` namespace."""
        del reason  # carried by the CorruptEntryError that led here
        self.corrupt_entries += 1
        try:
            os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass  # a racing reader already moved or removed it

    def _write_disk(self, key: str, payload: str) -> None:
        result = json.loads(payload)
        envelope = json.dumps(
            {
                "format": _ENTRY_FORMAT,
                "sha256": self._result_digest(result),
                "result": result,
            },
            sort_keys=True,
        )
        path = self._disk_path(key)
        tmp = path.with_name(f".{path.stem}.tmp-{os.getpid()}")
        with open(tmp, "w") as fh:
            fh.write(envelope)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    # -- Observability -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "corrupt_entries": self.corrupt_entries,
                "directory": (
                    str(self.directory) if self.directory else None
                ),
            }
