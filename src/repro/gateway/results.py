"""Fingerprint+spec result cache: identical jobs answered without transport.

Heavy traffic repeats itself — the same canned scenario, the same sweep
resubmitted, the same curriculum job from a thousand clients.  Because a
:class:`~repro.serve.jobs.JobSpec`'s payload is a pure function of its
physics identity (the serve invariant, tested since PR 2), the gateway
can legally answer a repeat from a cache: the key is
:meth:`JobSpec.cache_key` (SHA-256 over the canonical identity document)
and the value is the completed :class:`~repro.serve.jobs.JobResult` as
exact-float JSON, so a hit is **byte-identical in its physics payload**
to recomputation (``payload_json`` equality; the determinism tests prove
it).

Mechanics:

* **LRU memory tier** with an optional ``max_entries`` bound; eviction is
  strict least-recently-used (hits refresh recency).
* **Optional disk tier** — one ``<key>.json`` per entry, published
  atomically (temp file + ``os.replace``, the library cache's pattern),
  so a cache directory survives process restarts and is shared by
  consecutive CLI invocations.  Memory eviction never deletes disk
  entries; the directory is the durable tier.
* **First insert wins.**  Concurrent ``put`` of the same key (two shards
  completing identical specs in flight simultaneously) dedups under the
  lock; the stored payloads are bit-identical anyway, so either is valid.
* **Only ``done`` results are cacheable.**  Failed, expired, and
  poisoned results are refused — a poisoned job must trip the breaker on
  every resubmission, never be replayed from cache.

On a hit the cached payload is re-stamped with the *requesting* spec's
scheduling identity (job id, scenario provenance) and marked
``library_source="result-cache"`` with zeroed service accounting —
physics from the cache, bookkeeping from this submission.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from ..errors import GatewayError
from ..serve.jobs import JobResult, JobSpec

__all__ = ["ResultCache"]


class ResultCache:
    """Thread-safe spec-keyed cache of completed job results."""

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_entries: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise GatewayError(
                f"max_entries must be >= 1 when set, got {max_entries}"
            )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        #: key -> stored result dict, in LRU order (last = most recent).
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.rejected = 0

    @staticmethod
    def key_for(spec: JobSpec) -> str:
        return spec.cache_key()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """Keys in LRU order, oldest first (eviction order)."""
        with self._lock:
            return list(self._entries)

    # -- Lookup --------------------------------------------------------------

    def get(self, spec: JobSpec) -> JobResult | None:
        """The cached result for ``spec``'s physics, or ``None`` on miss."""
        key = self.key_for(spec)
        with self._lock:
            stored = self._entries.get(key)
            if stored is not None:
                self._entries.move_to_end(key)
            elif self.directory is not None:
                stored = self._load_disk(key)
                if stored is not None:
                    self._entries[key] = stored
                    self._evict_over_bound()
            if stored is None:
                self.misses += 1
                return None
            self.hits += 1
            data = dict(stored)
        # Re-stamp scheduling identity outside the lock: the physics
        # payload is the cached bytes, the bookkeeping is this request's.
        data.update(
            job_id=spec.job_id,
            case_id=spec.case_id,
            suite_id=spec.suite_id,
            scenario_fingerprint=spec.scenario_fingerprint,
            worker_id=-1,
            attempts=1,
            wait_seconds=0.0,
            service_seconds=0.0,
            build_seconds=0.0,
            library_source="result-cache",
        )
        return JobResult.from_dict(data)

    # -- Insert --------------------------------------------------------------

    def put(self, spec: JobSpec, result: JobResult) -> bool:
        """Cache ``result`` under ``spec``'s key; returns whether stored.

        Refuses non-``done`` results (poison must stay poisonous) and
        dedups concurrent inserts of the same key (first wins).
        """
        if result.status != "done":
            self.rejected += 1
            return False
        key = self.key_for(spec)
        payload = result.to_json()
        with self._lock:
            if key in self._entries:
                return False
            if (
                self.directory is not None
                and self._disk_path(key).exists()
            ):
                return False
            self._entries[key] = json.loads(payload)
            self.insertions += 1
            if self.directory is not None:
                self._write_disk(key, payload)
            self._evict_over_bound()
        return True

    # -- Internals -----------------------------------------------------------

    def _evict_over_bound(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _disk_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _load_disk(self, key: str) -> dict | None:
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            # A torn file cannot happen under the atomic publish, but a
            # cache must never become a source of failure.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_disk(self, key: str, payload: str) -> None:
        path = self._disk_path(key)
        tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)

    # -- Observability -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / total if total else 0.0,
                "insertions": self.insertions,
                "evictions": self.evictions,
                "rejected": self.rejected,
                "directory": (
                    str(self.directory) if self.directory else None
                ),
            }
