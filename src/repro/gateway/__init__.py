"""repro.gateway — sharded async service tier over the serve subsystem.

The gateway is the roof of the service stack: an asyncio front tier that
accepts :class:`~repro.serve.jobs.JobSpec` submissions and routes them to
N node-local shards (each a full
:class:`~repro.serve.service.SimulationService`), adding what a single
service cannot provide — cluster-wide admission control with per-class
fairness, fingerprint-affine consistent-hash placement, a result cache
answering repeat physics byte-identically without transport, and
shard-granular supervision (throughput health, poison-to-quarantine
promotion, deterministic re-routing of evicted work).

Layering: the gateway sits *above* ``repro.serve`` and
``repro.supervise`` and below nothing — only the CLI may import it.
"""

from .admission import AdmissionController
from .gateway import Gateway
from .results import ResultCache
from .routing import HashRing
from .shard import GatewayShard, ShardEvent
from .synthetic import SyntheticService

__all__ = [
    "AdmissionController",
    "Gateway",
    "GatewayShard",
    "HashRing",
    "ResultCache",
    "ShardEvent",
    "SyntheticService",
]
