"""repro.gateway — sharded async service tier over the serve subsystem.

The gateway is the roof of the service stack: an asyncio front tier that
accepts :class:`~repro.serve.jobs.JobSpec` submissions and routes them to
N node-local shards (each a full
:class:`~repro.serve.service.SimulationService`), adding what a single
service cannot provide — cluster-wide admission control with per-class
fairness, fingerprint-affine consistent-hash placement, a result cache
answering repeat physics byte-identically without transport, and
shard-granular supervision (throughput health, poison-to-quarantine
promotion, deterministic re-routing of evicted work).

Durability (PR 10): a ``journal_path``-configured gateway write-ahead
journals every state transition (:mod:`repro.gateway.journal`) and
:meth:`~repro.gateway.gateway.Gateway.recover` replays it after a crash
— landed results restore byte-identically, unfinished work re-admits in
arrival order, nothing simulates twice.

Layering: the gateway sits *above* ``repro.serve`` and
``repro.supervise`` and below nothing — only the CLI (and the chaos
harness that kills it) may import it.
"""

from .admission import AdmissionController
from .gateway import Gateway
from .journal import JournalRecord, JournalScan, WriteAheadJournal
from .results import ResultCache
from .routing import HashRing
from .shard import GatewayShard, ShardEvent
from .synthetic import SyntheticService

__all__ = [
    "AdmissionController",
    "Gateway",
    "GatewayShard",
    "HashRing",
    "JournalRecord",
    "JournalScan",
    "ResultCache",
    "ShardEvent",
    "SyntheticService",
    "WriteAheadJournal",
]
