"""A process-free stand-in service for gateway load benchmarks.

Benchmarking the *gateway* — admission, routing, caching, event pumping —
requires thousands of jobs per second, which real worker processes
running real transport cannot supply (nor should they: the transport
kernels have their own benches).  :class:`SyntheticService` implements
exactly the protocol :class:`~repro.gateway.shard.GatewayShard` drives —
``submit`` / ``step`` / ``take_fresh_results`` / ``outstanding`` /
``shutdown``, an ``on_progress`` observer, and a
:class:`~repro.serve.metrics.MetricsRegistry` — but resolves each job
instantly with a **fabricated, deterministic** payload: every physics
field is a pure function of the spec's cache key, so the result-cache
byte-identity property holds under synthetic load exactly as it does
under real transport.

Library-source accounting is modelled too (first sight of a fingerprint
is a ``built``, repeats are ``memory``), so affinity assertions — "one
build per fingerprint when routing is affine" — carry over to the bench.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque

from ..errors import QueueFullError
from ..serve.jobs import JobResult, JobSpec
from ..serve.metrics import MetricsRegistry

__all__ = ["SyntheticService"]

_IDLE_SLEEP_S = 0.001


def _frac(digest: bytes, i: int) -> float:
    """A [0, 1) float carved deterministically out of a digest."""
    return int.from_bytes(digest[4 * i: 4 * i + 4], "big") / 2.0**32


class SyntheticService:
    """Drop-in shard service that fabricates deterministic results."""

    def __init__(
        self,
        n_workers: int = 2,
        *,
        cache_dir: str | None = None,
        capacity: int = 64,
        start_method: str | None = None,
    ) -> None:
        del cache_dir, start_method  # protocol compatibility only
        self.n_workers = n_workers
        self.capacity = capacity
        self.on_progress = None
        self.metrics = MetricsRegistry("synthetic")
        for name in (
            "jobs_submitted", "jobs_completed", "jobs_failed",
            "jobs_poisoned", "jobs_requeued", "worker_crashes",
            "library_builds", "library_disk_hits", "library_memory_hits",
        ):
            self.metrics.counter(name)
        for name in ("dispatch_overhead_seconds", "service_seconds"):
            self.metrics.histogram(name)
        self._queue: deque[JobSpec] = deque()
        self._fresh: list[JobResult] = []
        self._seen_fingerprints: set[str] = set()
        self._started = False

    # -- Shard-service protocol ----------------------------------------------

    def submit(self, spec: JobSpec, *, front: bool = False) -> str:
        if len(self._queue) >= self.capacity:
            raise QueueFullError(
                f"synthetic service at capacity ({self.capacity})",
                retry_after_s=0.05,
            )
        if front:
            self._queue.appendleft(spec)
        else:
            self._queue.append(spec)
        self.metrics.counter("jobs_submitted").inc()
        return spec.job_id

    def outstanding(self) -> int:
        return len(self._queue)

    def start(self) -> None:
        self._started = True

    def step(self) -> list[JobResult]:
        self.start()
        if not self._queue:
            time.sleep(_IDLE_SLEEP_S)
            return self.take_fresh_results()
        t0 = time.perf_counter()
        for _ in range(self.n_workers):
            if not self._queue:
                break
            self._fresh.append(self._fabricate(self._queue.popleft()))
        self.metrics.histogram("dispatch_overhead_seconds").observe(
            time.perf_counter() - t0
        )
        return self.take_fresh_results()

    def take_fresh_results(self) -> list[JobResult]:
        fresh = self._fresh
        self._fresh = []
        return fresh

    def shutdown(self, *, graceful: bool = True) -> None:
        del graceful
        self._started = False

    def metrics_summary(self) -> dict:
        return {"metrics": self.metrics.as_dict()}

    # -- Fabrication ---------------------------------------------------------

    def _fabricate(self, spec: JobSpec) -> JobResult:
        digest = hashlib.sha256(
            f"synthetic:{spec.cache_key()}".encode()
        ).digest()
        settings = spec.to_settings()
        n_batches = settings.n_inactive + settings.n_active
        n_particles = settings.n_particles
        per_batch = [
            hashlib.sha256(f"{spec.cache_key()}:batch-{b}".encode()).digest()
            for b in range(n_batches)
        ]
        k_collision = [0.9 + 0.2 * _frac(d, 0) for d in per_batch]
        fingerprint = spec.library_fingerprint()
        if fingerprint in self._seen_fingerprints:
            source = "memory"
            self.metrics.counter("library_memory_hits").inc()
        else:
            self._seen_fingerprints.add(fingerprint)
            source = "built"
            self.metrics.counter("library_builds").inc()
        if self.on_progress is not None:
            for batch in range(n_batches):
                self.on_progress(
                    0, spec.job_id, batch, 1e-4, n_particles
                )
        service_s = 1e-4 * n_batches
        self.metrics.counter("jobs_completed").inc()
        self.metrics.histogram("service_seconds").observe(service_s)
        return JobResult(
            job_id=spec.job_id,
            status="done",
            mode=settings.mode,
            n_particles=n_particles,
            n_batches=n_batches,
            k_effective=0.9 + 0.2 * _frac(digest, 0),
            k_std_err=1e-3 * _frac(digest, 1),
            k_collision=k_collision,
            k_absorption=[0.9 + 0.2 * _frac(d, 1) for d in per_batch],
            k_track=[0.9 + 0.2 * _frac(d, 2) for d in per_batch],
            entropy=[_frac(d, 3) for d in per_batch],
            counters={"synthetic": True},
            settings_fingerprint=spec.settings_fingerprint(),
            library_fingerprint=fingerprint,
            case_id=spec.case_id,
            suite_id=spec.suite_id,
            scenario_fingerprint=spec.scenario_fingerprint,
            worker_id=0,
            attempts=1,
            service_seconds=service_s,
            library_source=source,
        )
