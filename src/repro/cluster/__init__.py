"""Distributed substrate: simulated MPI, cluster topologies, scaling."""

from .distributed import DistributedResult, DistributedSimulation
from .scaling import ScalePoint, strong_scaling, weak_scaling
from .simcomm import FabricModel, SimulatedComm
from .topology import JLSE, STAMPEDE, ClusterTopology, NodeConfig

__all__ = [
    "DistributedResult",
    "DistributedSimulation",
    "ScalePoint",
    "strong_scaling",
    "weak_scaling",
    "FabricModel",
    "SimulatedComm",
    "JLSE",
    "STAMPEDE",
    "ClusterTopology",
    "NodeConfig",
]
