"""Distributed substrate: simulated MPI, cluster topologies, scaling."""

from .distributed import DistributedResult, DistributedSimulation
from .scaling import ScalePoint, strong_scaling, weak_scaling
from .simcomm import FabricModel, SimulatedComm
from .topology import (
    FLEET_PRESETS,
    JLSE,
    STAMPEDE,
    ClusterTopology,
    NodeConfig,
    available_fleets,
    fleet_by_name,
)

__all__ = [
    "FLEET_PRESETS",
    "available_fleets",
    "fleet_by_name",
    "DistributedResult",
    "DistributedSimulation",
    "ScalePoint",
    "strong_scaling",
    "weak_scaling",
    "FabricModel",
    "SimulatedComm",
    "JLSE",
    "STAMPEDE",
    "ClusterTopology",
    "NodeConfig",
]
