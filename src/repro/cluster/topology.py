"""Cluster topologies: Stampede (TACC) and JLSE as the paper used them,
plus named GPU-era device fleets.

Stampede: 2 x E5-2680 hosts with FDR InfiniBand; 1,024 nodes carry one
SE10P Xeon Phi and 384 nodes carry two (the reason Fig. 6's 2-MIC curve
stops short of 2^10 nodes, which the paper asks the reader to note).

:data:`FLEET_PRESETS` names ordered heterogeneous device fleets (the
follow-on literature's node shapes — CPU + N GPUs) resolvable through
:func:`fleet_by_name`, with the registry-error convention on a miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError
from ..machine.presets import (
    JLSE_HOST,
    MIC_7120A,
    MIC_SE10P,
    STAMPEDE_HOST,
    fleet_from_names,
)
from ..machine.spec import DeviceSpec
from .simcomm import FabricModel

__all__ = [
    "NodeConfig",
    "ClusterTopology",
    "STAMPEDE",
    "JLSE",
    "FLEET_PRESETS",
    "fleet_by_name",
    "available_fleets",
]


@dataclass(frozen=True)
class NodeConfig:
    """Hardware of one node class."""

    host: DeviceSpec
    mics_per_node: int
    mic: DeviceSpec | None

    def __post_init__(self) -> None:
        if self.mics_per_node < 0:
            raise ClusterError("negative MIC count")
        if self.mics_per_node > 0 and self.mic is None:
            raise ClusterError("MIC count set but no MIC device")

    @property
    def devices(self) -> list[DeviceSpec]:
        """The node's ordered device fleet (accelerators first, host
        last — the :class:`~repro.execution.symmetric.FleetNode` order)."""
        accels = [self.mic] * self.mics_per_node if self.mic else []
        return [*accels, self.host]


@dataclass(frozen=True)
class ClusterTopology:
    """Named cluster: node classes with availability limits."""

    name: str
    host: DeviceSpec
    mic: DeviceSpec
    fabric: FabricModel
    #: Maximum node counts by MICs-per-node (0 = CPU-only runs allowed
    #: anywhere).
    max_nodes_1mic: int
    max_nodes_2mic: int

    def node(self, mics_per_node: int) -> NodeConfig:
        if mics_per_node not in (0, 1, 2):
            raise ClusterError("nodes carry 0, 1, or 2 MICs")
        return NodeConfig(
            host=self.host,
            mics_per_node=mics_per_node,
            mic=self.mic if mics_per_node else None,
        )

    def max_nodes(self, mics_per_node: int) -> int:
        """Largest job size for a node class (Fig. 6's curve extents)."""
        if mics_per_node == 2:
            return self.max_nodes_2mic
        return self.max_nodes_1mic


#: The TACC Stampede system as described in paper §III.
STAMPEDE = ClusterTopology(
    name="stampede",
    host=STAMPEDE_HOST,
    mic=MIC_SE10P,
    fabric=FabricModel(latency_s=2.5e-6, bandwidth_gbps=6.0),
    max_nodes_1mic=1024,
    max_nodes_2mic=384,
)

#: The JLSE testbed (3 nodes with 2 MICs each).
JLSE = ClusterTopology(
    name="jlse",
    host=JLSE_HOST,
    mic=MIC_7120A,
    fabric=FabricModel(latency_s=1.5e-6, bandwidth_gbps=7.0),
    max_nodes_1mic=3,
    max_nodes_2mic=3,
)

#: Named device fleets (ordered, host last), by preset device name.
FLEET_PRESETS: dict[str, tuple[str, ...]] = {
    "jlse-node": ("mic-7120a", "mic-7120a", "jlse-host"),
    "stampede-node": ("mic-se10p", "stampede-host"),
    "a100-node": ("a100", "a100", "epyc-host"),
    "mi250x-node": ("mi250x", "mi250x", "mi250x", "mi250x", "epyc-host"),
    "max1550-node": ("max1550", "max1550", "epyc-host"),
    "mixed-gpu-node": ("a100", "mi250x", "max1550", "epyc-host"),
}


def available_fleets() -> list[str]:
    """Sorted names of every preset fleet."""
    return sorted(FLEET_PRESETS)


def fleet_by_name(name: str) -> list[DeviceSpec]:
    """Resolve a named fleet to its ordered device list.

    Unknown names raise :class:`ClusterError` listing the live registry.
    """
    try:
        names = FLEET_PRESETS[name]
    except KeyError:
        raise ClusterError(
            f"unknown fleet {name!r}; available fleets: "
            f"{', '.join(available_fleets())}"
        ) from None
    return fleet_from_names(names)
