"""Cluster topologies: Stampede (TACC) and JLSE as the paper used them.

Stampede: 2 x E5-2680 hosts with FDR InfiniBand; 1,024 nodes carry one
SE10P Xeon Phi and 384 nodes carry two (the reason Fig. 6's 2-MIC curve
stops short of 2^10 nodes, which the paper asks the reader to note).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError
from ..machine.presets import JLSE_HOST, MIC_7120A, MIC_SE10P, STAMPEDE_HOST
from ..machine.spec import DeviceSpec
from .simcomm import FabricModel

__all__ = ["NodeConfig", "ClusterTopology", "STAMPEDE", "JLSE"]


@dataclass(frozen=True)
class NodeConfig:
    """Hardware of one node class."""

    host: DeviceSpec
    mics_per_node: int
    mic: DeviceSpec | None

    def __post_init__(self) -> None:
        if self.mics_per_node < 0:
            raise ClusterError("negative MIC count")
        if self.mics_per_node > 0 and self.mic is None:
            raise ClusterError("MIC count set but no MIC device")


@dataclass(frozen=True)
class ClusterTopology:
    """Named cluster: node classes with availability limits."""

    name: str
    host: DeviceSpec
    mic: DeviceSpec
    fabric: FabricModel
    #: Maximum node counts by MICs-per-node (0 = CPU-only runs allowed
    #: anywhere).
    max_nodes_1mic: int
    max_nodes_2mic: int

    def node(self, mics_per_node: int) -> NodeConfig:
        if mics_per_node not in (0, 1, 2):
            raise ClusterError("nodes carry 0, 1, or 2 MICs")
        return NodeConfig(
            host=self.host,
            mics_per_node=mics_per_node,
            mic=self.mic if mics_per_node else None,
        )

    def max_nodes(self, mics_per_node: int) -> int:
        """Largest job size for a node class (Fig. 6's curve extents)."""
        if mics_per_node == 2:
            return self.max_nodes_2mic
        return self.max_nodes_1mic


#: The TACC Stampede system as described in paper §III.
STAMPEDE = ClusterTopology(
    name="stampede",
    host=STAMPEDE_HOST,
    mic=MIC_SE10P,
    fabric=FabricModel(latency_s=2.5e-6, bandwidth_gbps=6.0),
    max_nodes_1mic=1024,
    max_nodes_2mic=384,
)

#: The JLSE testbed (3 nodes with 2 MICs each).
JLSE = ClusterTopology(
    name="jlse",
    host=JLSE_HOST,
    mic=MIC_7120A,
    fabric=FabricModel(latency_s=1.5e-6, bandwidth_gbps=7.0),
    max_nodes_1mic=3,
    max_nodes_2mic=3,
)
