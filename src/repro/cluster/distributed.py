"""Executable distributed eigenvalue simulation over the simulated fabric.

OpenMC's MPI decomposition, run for real (in-process): each rank transports
a slice of every generation, per-batch global tallies are combined with an
``allreduce`` through :class:`repro.cluster.simcomm.SimulatedComm`, fission
banks are merged and rebalanced, and the next generation is resampled from
the *global* bank.

Because particle RNG streams are keyed by **global** particle id and
tallies are additive, a run on R ranks is **bit-identical** to the serial
run — the property that makes MC transport "pleasingly parallel" and the
reason the paper's distributed results (Figs. 6-7) reduce to per-node rate
modelling.  The communicator charges modelled time for every collective,
so the run also yields the communication/computation split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.library import NuclideLibrary
from ..errors import ClusterError
from ..transport.events import run_generation_event
from ..transport.history import run_generation_history
from ..transport.simulation import Settings, Simulation
from ..transport.tally import BatchStatistics, GlobalTallies
from .simcomm import FabricModel, SimulatedComm

__all__ = ["DistributedResult", "DistributedSimulation"]


@dataclass
class DistributedResult:
    """Outcome of a distributed run."""

    statistics: BatchStatistics
    n_ranks: int
    comm_time: float
    per_rank_particles: list[int]

    @property
    def k_effective(self):
        return self.statistics.combined_k()


class DistributedSimulation:
    """An R-rank eigenvalue calculation over the simulated communicator.

    Ranks execute sequentially in-process (we model the cluster, not
    wall-clock parallelism), but every data movement a real MPI build
    performs — tally reduction, bank merge, source broadcast — goes through
    the communicator and is charged modelled fabric time.
    """

    def __init__(
        self,
        library: NuclideLibrary,
        settings: Settings,
        n_ranks: int,
        fabric: FabricModel | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ClusterError("need at least one rank")
        self.settings = settings
        self.n_ranks = n_ranks
        self.comm = SimulatedComm(n_ranks, fabric)
        # One Simulation provides source sampling and a shared context
        # (read-only nuclear data and geometry are node-replicated in the
        # paper's runs; sharing the context models that replication).
        self._driver = Simulation(library, settings)
        self.ctx = self._driver.ctx

    def _rank_slices(self, n: int) -> list[slice]:
        """Contiguous particle slices per rank (OpenMC's static split)."""
        base = n // self.n_ranks
        rem = n % self.n_ranks
        slices = []
        start = 0
        for r in range(self.n_ranks):
            count = base + (1 if r < rem else 0)
            slices.append(slice(start, start + count))
            start += count
        return slices

    def run(self) -> DistributedResult:
        s = self.settings
        run_generation = (
            run_generation_history if s.mode == "history" else run_generation_event
        )
        stats = BatchStatistics(n_inactive=s.n_inactive)
        positions, energies = self._driver.initial_source(s.n_particles)
        slices = self._rank_slices(s.n_particles)

        id_offset = 0
        for _ in range(s.n_inactive + s.n_active):
            k_norm = stats.running_k()
            rank_tallies: list[np.ndarray] = []
            rank_banks = []
            for r, sl in enumerate(slices):
                tallies = GlobalTallies()
                bank = run_generation(
                    self.ctx,
                    positions[sl],
                    energies[sl],
                    tallies,
                    k_norm=k_norm,
                    first_id=id_offset + sl.start,
                )
                rank_tallies.append(tallies.as_array())
                rank_banks.append(bank)
            id_offset += s.n_particles

            # Global tally reduction (what symmetric mode reduces per batch).
            reduced, _ = self.comm.allreduce_sum(rank_tallies)
            global_tallies = GlobalTallies.from_array(reduced)
            stats.record(
                global_tallies,
                self._driver.mesh.entropy(
                    np.vstack(
                        [b.positions for b in rank_banks if len(b)]
                    )
                    if any(len(b) for b in rank_banks)
                    else np.empty((0, 3))
                ),
            )

            # Bank rebalancing traffic + global resample.
            self.comm.exchange_bank([len(b) for b in rank_banks])
            merged_pos = np.vstack(
                [b.positions for b in rank_banks if len(b)]
            )
            merged_en = np.concatenate(
                [b.energies for b in rank_banks if len(b)]
            )
            if merged_pos.shape[0] == 0:
                raise ClusterError("fission source died out")
            # Resample exactly as the serial driver does (same RNG).
            from ..transport.particle import FissionBank

            merged = FissionBank()
            for p, e in zip(merged_pos, merged_en):
                merged.add(p, e)
            positions, energies = merged.sample_source(
                s.n_particles, self._driver._source_rng
            )
            self.comm.bcast(positions)

        return DistributedResult(
            statistics=stats,
            n_ranks=self.n_ranks,
            comm_time=self.comm.comm_time,
            per_rank_particles=[sl.stop - sl.start for sl in slices],
        )
