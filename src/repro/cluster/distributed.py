"""Executable distributed eigenvalue simulation over the simulated fabric.

OpenMC's MPI decomposition, run for real (in-process): each rank transports
a slice of every generation, per-batch global tallies are combined with an
``allreduce`` through :class:`repro.cluster.simcomm.SimulatedComm`, fission
banks are merged and rebalanced, and the next generation is resampled from
the *global* bank.

Because particle RNG streams are keyed by **global** particle id and
tallies are additive, a run on R ranks is **bit-identical** to the serial
run — the property that makes MC transport "pleasingly parallel" and the
reason the paper's distributed results (Figs. 6-7) reduce to per-node rate
modelling.  The communicator charges modelled time for every collective,
so the run also yields the communication/computation split.

The same global-id keying powers the **rank-failure recovery path**: when a
:class:`~repro.resilience.faults.FaultPlan` crashes a rank mid-generation,
the dead rank's particle slice is redistributed contiguously across the
survivors (:func:`repro.resilience.recovery.redistribute_slice`) and
re-run.  The recovered histories are the exact histories the dead rank
would have produced, so even a run that loses ranks matches the serial run
bit-for-bit; only the modelled clock shows the failure (detection timeout,
backoff, re-shipped source sites, and a shrunken communicator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..data.library import NuclideLibrary
from ..errors import ClusterError
from ..execution.context import ExecutionContext
from ..resilience.faults import FaultPlan
from ..resilience.recovery import RetryPolicy, redistribute_slice
from ..transport.simulation import Settings, Simulation
from ..transport.tally import BatchStatistics, GlobalTallies
from .simcomm import FabricModel, SimulatedComm

__all__ = ["DistributedResult", "DistributedSimulation"]


@dataclass
class DistributedResult:
    """Outcome of a distributed run."""

    statistics: BatchStatistics
    n_ranks: int
    comm_time: float
    per_rank_particles: list[int]
    #: Modelled seconds spent detecting failures and re-running lost slices.
    recovery_time: float = 0.0
    #: Ranks (original ids) lost to injected crashes, in failure order.
    failed_ranks: list[int] = field(default_factory=list)
    #: Ranks still alive at the end of the run.
    surviving_ranks: int = 0

    @property
    def k_effective(self):
        return self.statistics.combined_k()


class DistributedSimulation:
    """An R-rank eigenvalue calculation over the simulated communicator.

    Ranks execute sequentially in-process (we model the cluster, not
    wall-clock parallelism), but every data movement a real MPI build
    performs — tally reduction, bank merge, source broadcast — goes through
    the communicator and is charged modelled fabric time.

    ``fault_plan`` injects deterministic rank crashes; ``retry_policy``
    prices failure detection and backoff on the modelled clock.
    """

    def __init__(
        self,
        library: NuclideLibrary,
        settings: Settings,
        n_ranks: int,
        fabric: FabricModel | None = None,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        supervisor=None,
    ) -> None:
        if n_ranks < 1:
            raise ClusterError("need at least one rank")
        self.settings = settings
        self.n_ranks = n_ranks
        self.supervisor = supervisor
        # A supervisor with a communication budget meters every collective.
        budget = getattr(supervisor, "comm_budget", None)
        self.comm = SimulatedComm(n_ranks, fabric, budget=budget)
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy or RetryPolicy()
        # One Simulation provides source sampling and a shared context
        # (read-only nuclear data and geometry are node-replicated in the
        # paper's runs; sharing the context models that replication).
        self._driver = Simulation(library, settings)
        self.ctx = self._driver.ctx
        # Ranks run transport through the registry backend named by the
        # settings; the ExecutionContext also carries the resilience hooks.
        self._ec = ExecutionContext.create(
            transport=self.ctx,
            backend=settings.mode,
            fault_plan=fault_plan,
            retry_policy=self.retry_policy,
        )

    def _rank_slices(self, n: int, n_ranks: int | None = None) -> list[slice]:
        """Contiguous particle slices per rank (OpenMC's static split)."""
        k = self.n_ranks if n_ranks is None else n_ranks
        base = n // k
        rem = n % k
        slices = []
        start = 0
        for r in range(k):
            count = base + (1 if r < rem else 0)
            slices.append(slice(start, start + count))
            start += count
        return slices

    def run(self) -> DistributedResult:
        s = self.settings
        ec = self._ec
        stats = BatchStatistics(n_inactive=s.n_inactive)
        positions, energies = self._driver.initial_source(s.n_particles)
        initial_slices = self._rank_slices(s.n_particles)

        alive = list(range(self.n_ranks))
        failed_ranks: list[int] = []
        recovery_time = 0.0

        supervisor = self.supervisor
        id_offset = 0
        for batch_idx in range(s.n_inactive + s.n_active):
            if supervisor is not None:
                supervisor.begin_batch()
            k_norm = stats.running_k()
            slices = self._rank_slices(s.n_particles, len(alive))
            crashed = (
                self.fault_plan.crashed_rank(batch_idx)
                if self.fault_plan is not None
                else None
            )
            if crashed is not None and crashed not in alive:
                crashed = None  # victim already dead (or out of range)

            # Each executed unit is (global_start, tallies, bank, owner_rank);
            # ascending global_start reproduces the serial bank ordering.
            units: list[tuple[int, GlobalTallies, object, int]] = []
            dead_slice: slice | None = None
            for i, rank in enumerate(alive):
                sl = slices[i]
                if rank == crashed:
                    # The rank dies mid-generation: its batch work is lost
                    # before it reaches any collective.
                    dead_slice = sl
                    continue
                tallies = ec.new_tallies()
                t0 = perf_counter()
                bank = ec.run_generation(
                    positions[sl],
                    energies[sl],
                    tallies,
                    k_norm=k_norm,
                    first_id=id_offset + sl.start,
                )
                if supervisor is not None:
                    supervisor.observe_batch(
                        rank, batch_idx, perf_counter() - t0,
                        sl.stop - sl.start,
                    )
                units.append((sl.start, tallies, bank, rank))

            if crashed is not None:
                survivors = [r for r in alive if r != crashed]
                if supervisor is not None:
                    # DegradedRunError at the policy floor, typed eviction
                    # event otherwise.
                    survivors = supervisor.evict(
                        crashed, batch=batch_idx, reason="crash"
                    )
                if not survivors:
                    raise ClusterError(
                        f"rank {crashed} crashed and no survivors remain"
                    )
                # Failure is detected after the stall timeout; survivors
                # re-run the lost slice, keyed by the same global ids.
                policy = self.retry_policy
                recovery_time += policy.stall_timeout_s + policy.delay_s(1)
                if supervisor is not None:
                    supervisor.note_retry()
                # Re-ship the dead slice's source sites (pos + energy).
                n_lost = dead_slice.stop - dead_slice.start
                recovery_time += self.comm.fabric.message_time(n_lost * 32.0)
                for host, sub in redistribute_slice(dead_slice, survivors):
                    tallies = ec.new_tallies()
                    bank = ec.run_generation(
                        positions[sub],
                        energies[sub],
                        tallies,
                        k_norm=k_norm,
                        first_id=id_offset + sub.start,
                    )
                    units.append((sub.start, tallies, bank, host))
                alive = survivors
                failed_ranks.append(crashed)
                self.comm = self.comm.shrink(len(alive))
            id_offset += s.n_particles

            units.sort(key=lambda u: u[0])

            # Global tally reduction (what symmetric mode reduces per batch):
            # one buffer per surviving rank, recovered sub-slices folded into
            # their host rank's contribution.
            per_rank = {rank: GlobalTallies() for rank in alive}
            bank_counts = {rank: 0 for rank in alive}
            for _, tallies, bank, rank in units:
                per_rank[rank].merge_from(tallies)
                bank_counts[rank] += len(bank)
            reduced, _ = self.comm.allreduce_sum(
                [per_rank[rank].as_array() for rank in alive]
            )
            global_tallies = GlobalTallies.from_array(reduced)

            # Global bank merge: sites carry global parent ids, so the
            # canonical (parent, seq) ordering reproduces the serial run's
            # bank regardless of which rank produced which slice.
            merged = ec.merge_banks([u[2] for u in units])
            stats.record(
                global_tallies,
                self._driver.mesh.entropy(
                    merged.positions if len(merged) else np.empty((0, 3))
                ),
            )

            # Bank rebalancing traffic + global resample.
            self.comm.exchange_bank([bank_counts[rank] for rank in alive])
            if len(merged) == 0:
                raise ClusterError("fission source died out")
            # Resample exactly as the serial driver does (same RNG).
            positions, energies = merged.sample_source(
                s.n_particles, self._driver._source_rng
            )
            self.comm.bcast(positions)

            if supervisor is not None:
                # Chronic stragglers leave the topology *between* batches
                # (their current batch already merged — no work is lost).
                evicted = supervisor.finish_batch(batch_idx)
                if evicted:
                    alive = [r for r in alive if r not in evicted]
                    failed_ranks.extend(evicted)
                    self.comm = self.comm.shrink(len(alive))

        return DistributedResult(
            statistics=stats,
            n_ranks=self.n_ranks,
            comm_time=self.comm.comm_time,
            per_rank_particles=[
                sl.stop - sl.start for sl in initial_slices
            ],
            recovery_time=recovery_time,
            failed_ranks=failed_ranks,
            surviving_ranks=len(alive),
        )
