"""A simulated MPI communicator: executable collectives with a cost model.

We have no multi-node machine (repro band 2), so the distributed runs of
Figs. 6-7 execute their communication *logically* — the same reductions a
real MPI build performs, over real NumPy buffers — while charging modelled
time for each collective: a binomial-tree ``ceil(log2 p)`` rounds of
(latency + bytes/bandwidth), the standard small-message collective model for
the FDR InfiniBand fabric Stampede used.

The important property (and a test target): per-batch communication is tiny
compared to compute at the paper's scales, so scaling losses come from
*occupancy*, not the network — exactly the paper's reading of its own 95%
figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ClusterError, CommunicationError

__all__ = ["FabricModel", "SimulatedComm"]


@dataclass(frozen=True)
class FabricModel:
    """Point-to-point fabric parameters (FDR InfiniBand defaults)."""

    latency_s: float = 2.5e-6
    bandwidth_gbps: float = 6.0

    def message_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbps * 1.0e9)

    def tree_collective_time(self, n_ranks: int, nbytes: float) -> float:
        """Binomial-tree collective: ``ceil(log2 p)`` message rounds."""
        if n_ranks < 1:
            raise ClusterError("need at least one rank")
        if n_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(n_ranks))
        return rounds * self.message_time(nbytes)


class SimulatedComm:
    """An executable communicator over in-process rank buffers.

    Collectives *really compute* their results (so tally reduction code
    paths run end-to-end) and return the modelled wall time alongside.
    """

    def __init__(
        self,
        n_ranks: int,
        fabric: FabricModel | None = None,
        budget=None,
    ) -> None:
        if n_ranks < 1:
            raise ClusterError("need at least one rank")
        self.n_ranks = n_ranks
        self.fabric = fabric or FabricModel()
        #: Accumulated modelled communication time [s].
        self.comm_time = 0.0
        #: Optional :class:`repro.supervise.Budget`: every collective's
        #: modelled time is charged against it, so a run whose
        #: communication exceeds its allowance fails with a typed
        #: :class:`~repro.errors.DeadlineExceededError` at the collective
        #: that crossed the line.  Charging is deterministic — modelled
        #: costs, not wall clock.
        self.budget = budget

    def _charge(self, seconds: float, what: str) -> float:
        """Accrue modelled time (and spend the budget, when attached)."""
        self.comm_time += seconds
        if self.budget is not None:
            self.budget.spend(seconds, what)
        return seconds

    def shrink(self, n_survivors: int) -> "SimulatedComm":
        """A survivors-only communicator after rank failure (the ULFM
        ``MPI_Comm_shrink`` analogue).  Accumulated communication time
        (and any attached budget) carries over so a recovered run reports
        one contiguous total."""
        if not 1 <= n_survivors <= self.n_ranks:
            raise CommunicationError(
                f"cannot shrink {self.n_ranks} ranks to {n_survivors}"
            )
        out = SimulatedComm(n_survivors, self.fabric, budget=self.budget)
        out.comm_time = self.comm_time
        return out

    def _check(self, per_rank: list[np.ndarray]) -> list[np.ndarray]:
        """Validate collective input buffers, raising typed errors.

        Malformed collectives — wrong buffer count, mismatched shapes,
        non-finite payloads — raise :class:`CommunicationError` rather
        than corrupting the reduction (a real MPI build would deadlock or
        abort here; we fail loudly and typed instead).
        """
        if len(per_rank) == 0:
            raise CommunicationError("collective received no rank buffers")
        if len(per_rank) != self.n_ranks:
            raise CommunicationError(
                f"expected {self.n_ranks} rank buffers, got {len(per_rank)}"
            )
        try:
            arrays = [np.asarray(a, dtype=np.float64) for a in per_rank]
        except (TypeError, ValueError) as exc:
            raise CommunicationError(
                f"rank buffer is not numeric: {exc}"
            ) from exc
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise CommunicationError("rank buffers must share a shape")
        if any(not np.isfinite(a).all() for a in arrays):
            raise CommunicationError(
                "rank buffer contains non-finite values (NaN/inf); "
                "a reduction would silently poison every rank"
            )
        return arrays

    def allreduce_sum(self, per_rank: list[np.ndarray]) -> tuple[np.ndarray, float]:
        """Sum across ranks; every rank receives the result.

        Time: reduce + broadcast trees (2 x log2 p rounds).
        """
        arrays = self._check(per_rank)
        result = np.sum(arrays, axis=0)
        t = 2.0 * self.fabric.tree_collective_time(
            self.n_ranks, result.nbytes
        )
        self._charge(t, "allreduce_sum")
        return result, t

    def reduce_sum(self, per_rank: list[np.ndarray]) -> tuple[np.ndarray, float]:
        """Sum across ranks to the root."""
        arrays = self._check(per_rank)
        result = np.sum(arrays, axis=0)
        t = self.fabric.tree_collective_time(self.n_ranks, result.nbytes)
        self._charge(t, "reduce_sum")
        return result, t

    def bcast(self, value: np.ndarray) -> tuple[np.ndarray, float]:
        """Broadcast from the root."""
        value = np.asarray(value, dtype=np.float64)
        t = self.fabric.tree_collective_time(self.n_ranks, value.nbytes)
        self._charge(t, "bcast")
        return value, t

    def exchange_bank(
        self, site_counts: list[int], site_bytes: float = 200.0
    ) -> float:
        """Fission-bank rebalancing between batches.

        OpenMC redistributes sites so every rank starts the next generation
        with its quota; the traffic is the imbalance (sites above/below the
        mean), sent point-to-point.  Returns (and accrues) the modelled
        time.
        """
        if len(site_counts) != self.n_ranks:
            raise CommunicationError(
                f"site_counts must have one entry per rank "
                f"(got {len(site_counts)}, have {self.n_ranks} ranks)"
            )
        if any(int(c) < 0 for c in site_counts):
            raise CommunicationError("site_counts must be non-negative")
        mean = sum(site_counts) / self.n_ranks
        moved = sum(max(0.0, c - mean) for c in site_counts)
        t = self.fabric.message_time(moved * site_bytes)
        self._charge(t, "exchange_bank")
        return t
