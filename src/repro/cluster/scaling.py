"""Strong and weak scaling drivers (Figs. 6-7).

A scaling run distributes a total particle population across ``p``
identical symmetric nodes (static alpha load balancing within each node),
executes the per-batch reduction and fission-bank exchange through the
simulated communicator, and reports per-scale rates and efficiencies.

The two effects the paper's Fig. 6 shows emerge from the model rather than
being programmed in:

* near-perfect scaling at moderate scales (communication is microseconds
  against seconds of compute);
* the 1-MIC curve's tail at 1,024 nodes — with only ~1e4 particles per node,
  Eq. 3's static alpha (measured at high occupancy) sends the MIC more work
  than its occupancy-degraded rate can absorb, so the node waits on the MIC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ClusterError
from ..execution.symmetric import SymmetricNode
from ..machine.kernels import WorkPerParticle
from .simcomm import SimulatedComm
from .topology import ClusterTopology

__all__ = ["ScalePoint", "strong_scaling", "weak_scaling"]

#: Bytes of the per-batch global tally reduction payload (the packed
#: GlobalTallies array).
TALLY_REDUCE_BYTES = 7 * 8


@dataclass(frozen=True)
class ScalePoint:
    """One point of a scaling curve."""

    nodes: int
    particles_per_node: int
    batch_time: float
    comm_time: float
    rate: float
    efficiency: float


def _node_for(
    topology: ClusterTopology,
    mics_per_node: int,
    model: str,
    work: WorkPerParticle | None,
) -> SymmetricNode:
    devices = topology.node(mics_per_node).devices
    return SymmetricNode(devices[-1], devices[:-1], model, work)


def _batch_time(
    node: SymmetricNode,
    comm: SimulatedComm,
    n_node: int,
    alpha: float | None,
    mics_per_node: int,
) -> tuple[float, float]:
    """Per-batch node time + cluster communication time."""
    strategy = "alpha" if (alpha is not None and mics_per_node > 0) else "equal"
    t_compute = node.batch_time(n_node, strategy, alpha)
    # Tally allreduce + fission-bank exchange with ~5% imbalance.
    tallies = [np.zeros(TALLY_REDUCE_BYTES // 8) for _ in range(comm.n_ranks)]
    _, t_reduce = comm.allreduce_sum(tallies)
    counts = [n_node] * comm.n_ranks
    counts[0] = int(n_node * 1.05)
    t_bank = comm.exchange_bank(counts)
    return t_compute, t_reduce + t_bank


def strong_scaling(
    topology: ClusterTopology,
    node_counts: list[int],
    n_total: int,
    mics_per_node: int,
    model: str = "hm-large",
    alpha: float | None = None,
    work: WorkPerParticle | None = None,
) -> list[ScalePoint]:
    """Fixed total particles, growing node counts (Fig. 6).

    Efficiency is relative to the smallest allotment in ``node_counts``
    (the paper uses 4 nodes as its reference, the smallest fit for 1e7
    particles).
    """
    if not node_counts:
        raise ClusterError("need at least one node count")
    limit = topology.max_nodes(mics_per_node)
    node = _node_for(topology, mics_per_node, model, work)
    points: list[ScalePoint] = []
    ref_time_x_nodes: float | None = None
    for p in sorted(node_counts):
        if p > limit:
            continue
        n_node = n_total // p
        comm = SimulatedComm(p, topology.fabric)
        t_compute, t_comm = _batch_time(node, comm, n_node, alpha, mics_per_node)
        t = t_compute + t_comm
        if ref_time_x_nodes is None:
            ref_time_x_nodes = t * p
        eff = ref_time_x_nodes / (t * p)
        points.append(
            ScalePoint(
                nodes=p,
                particles_per_node=n_node,
                batch_time=t,
                comm_time=t_comm,
                rate=n_total / t,
                efficiency=eff,
            )
        )
    return points


def weak_scaling(
    topology: ClusterTopology,
    node_counts: list[int],
    n_per_node: int,
    mics_per_node: int,
    model: str = "hm-large",
    alpha: float | None = None,
    work: WorkPerParticle | None = None,
) -> list[ScalePoint]:
    """Fixed particles per node, growing node counts (Fig. 7).

    Efficiency is the single-reference batch time over the batch time at
    scale (flat curve = perfect weak scaling).
    """
    if not node_counts:
        raise ClusterError("need at least one node count")
    limit = topology.max_nodes(mics_per_node)
    node = _node_for(topology, mics_per_node, model, work)
    points: list[ScalePoint] = []
    ref_time: float | None = None
    for p in sorted(node_counts):
        if p > limit:
            continue
        comm = SimulatedComm(p, topology.fabric)
        t_compute, t_comm = _batch_time(
            node, comm, n_per_node, alpha, mics_per_node
        )
        t = t_compute + t_comm
        if ref_time is None:
            ref_time = t
        points.append(
            ScalePoint(
                nodes=p,
                particles_per_node=n_per_node,
                batch_time=t,
                comm_time=t_comm,
                rate=n_per_node * p / t,
                efficiency=ref_time / t,
            )
        )
    return points
