"""Pluggable transport backends: select a schedule by name.

A :class:`TransportBackend` is a *schedule* over the shared stage kernels
(:mod:`repro.transport.stages`): ``history`` runs the scalar applies one
particle at a time, ``event`` runs the banked applies over the compacted
live bank, ``delta`` runs the banked applies under Woodcock majorant
tracking, and ``numba-event`` runs the event schedule with the XS hot
path routed through the compiled-kernel tier
(:mod:`repro.transport.jit`) over an energy-sorted bank.  The registry
lets every driver — :class:`Simulation`, ``repro.serve``,
``repro.cluster``, the execution-model schedulers — select a backend by
name instead of importing module functions, so a new schedule plugs in
without touching any caller.

The registry stores **factories**: :func:`get_backend` returns a fresh
instance per call, so a backend may cache per-run state (e.g. the delta
backend's majorant table) without leaking it across unrelated runs.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..errors import ExecutionError
from .context import TransportContext
from .particle import FissionBank
from .stats import TransportStats
from .tally import GlobalTallies

__all__ = [
    "TransportBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "HistoryBackend",
    "EventBackend",
    "DeltaBackend",
    "NumbaEventBackend",
]


@runtime_checkable
class TransportBackend(Protocol):
    """One transport schedule: how a generation of particles is advanced
    through the stage kernels.

    All backends share the generation signature and the contract that, for
    the surface-tracking schedules, identical seeds produce bit-identical
    tallies, fission banks, and work counters.
    """

    #: Registry name (``--backend`` on the CLI).
    name: str
    #: Whether the schedule scores the track-length estimator (delta
    #: tracking does not — its flights are against the majorant).
    supports_track_length: bool

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        """Transport one generation; return the next fission bank."""
        ...


_REGISTRY: dict[str, Callable[[], "TransportBackend"]] = {}


def register_backend(
    name: str, factory: Callable[[], "TransportBackend"]
) -> None:
    """Register a backend factory under ``name`` (last registration wins,
    so downstream code can shadow a built-in with an instrumented variant)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> "TransportBackend":
    """Instantiate the backend registered under ``name``.

    Each call returns a fresh instance: per-run caches (like the delta
    majorant) live on the instance, so hold on to the returned object for
    the duration of a run.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ExecutionError(
            f"unknown transport backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory()


class HistoryBackend:
    """The scalar schedule (OpenMC-style, the paper's baseline)."""

    name = "history"
    supports_track_length = True

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .history import run_generation_history

        return run_generation_history(
            ctx, positions, energies, tallies, k_norm, first_id,
            stats=stats, power=power, spectrum=spectrum,
        )


class EventBackend:
    """The banked schedule (Brown & Martin event-based vectorization).

    ``sort_policy`` is the bank-ordering policy of the lookup/flight
    super-stage (see :data:`repro.transport.events.SORT_POLICIES`);
    ``"energy"`` enables the energy-sorted event bank, which is
    bit-identical to the default live-index order.
    """

    name = "event"
    supports_track_length = True

    def __init__(self, sort_policy: str = "none") -> None:
        self.sort_policy = sort_policy

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .events import run_generation_event

        return run_generation_event(
            ctx, positions, energies, tallies, k_norm, first_id,
            stats=stats, power=power, spectrum=spectrum,
            sort_policy=self.sort_policy,
        )


class DeltaBackend:
    """Woodcock delta tracking against a cached majorant cross section.

    The majorant table is built once per (instance, context) pair and
    reused across batches — the reason :func:`get_backend` hands out fresh
    instances rather than singletons.
    """

    name = "delta"
    supports_track_length = False

    def __init__(self) -> None:
        self._majorant = None
        self._majorant_ctx: TransportContext | None = None

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .delta import MajorantXS, run_generation_delta

        if power is not None or spectrum is not None:
            raise ExecutionError(
                "delta tracking does not score track-length tallies "
                "(no power map / spectrum); use the history or event backend"
            )
        if self._majorant is None or self._majorant_ctx is not ctx:
            self._majorant = MajorantXS(ctx)
            self._majorant_ctx = ctx
        return run_generation_delta(
            ctx, positions, energies, tallies, k_norm, first_id,
            majorant=self._majorant,
        )


class NumbaEventBackend:
    """The event schedule with the compiled-kernel XS tier and an
    energy-sorted bank.

    Identical to :class:`EventBackend` except that the transport context's
    calculator is wrapped in a
    :class:`~repro.transport.jit.JitXSCalculator` (so the XS-lookup and
    attribution hot paths run as ``@njit`` kernels when numba is
    installed — ``pip install repro[jit]`` — and as the ordinary banked
    NumPy applies otherwise) and the bank is processed energy-sorted by
    default, so the compiled gathers walk the union grid near
    sequentially.  Both substitutions are bit-identity preserving:
    a ``numba-event`` run produces exactly the tallies, fission banks,
    and work counters of an ``event`` (or ``history``) run with the same
    seed, with or without numba present.

    The wrapped-context cache is per (instance, context), like the delta
    backend's majorant — another reason :func:`get_backend` returns fresh
    instances.
    """

    name = "numba-event"
    supports_track_length = True

    def __init__(self, sort_policy: str = "energy", compiled: str = "auto") -> None:
        self.sort_policy = sort_policy
        self.compiled = compiled
        self._jit_ctx: TransportContext | None = None
        self._base_ctx: TransportContext | None = None

    def _wrap(self, ctx: TransportContext) -> TransportContext:
        import dataclasses

        from .jit import JitXSCalculator

        if self._base_ctx is not ctx:
            # dataclasses.replace shares every other field by reference —
            # counters, fast geometry, model — so tallies/counters flow to
            # the caller's objects exactly as with the unwrapped context.
            self._jit_ctx = dataclasses.replace(
                ctx,
                calculator=JitXSCalculator(
                    ctx.calculator, compiled=self.compiled
                ),
            )
            self._base_ctx = ctx
        return self._jit_ctx

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .events import run_generation_event

        return run_generation_event(
            self._wrap(ctx), positions, energies, tallies, k_norm, first_id,
            stats=stats, power=power, spectrum=spectrum,
            sort_policy=self.sort_policy,
        )


register_backend("history", HistoryBackend)
register_backend("event", EventBackend)
register_backend("delta", DeltaBackend)
register_backend("numba-event", NumbaEventBackend)
