"""Pluggable transport backends: select a schedule by name.

A :class:`TransportBackend` is a *schedule* over the shared stage kernels
(:mod:`repro.transport.stages`): ``history`` runs the scalar applies one
particle at a time, ``event`` runs the banked applies over the compacted
live bank, ``delta`` runs the banked applies under Woodcock majorant
tracking.  The registry lets every driver — :class:`Simulation`,
``repro.serve``, ``repro.cluster``, the execution-model schedulers — select
a backend by name instead of importing module functions, and leaves room
for future variants (an ``event-sorted`` energy-ordered bank, say) to
plug in without touching any caller.

The registry stores **factories**: :func:`get_backend` returns a fresh
instance per call, so a backend may cache per-run state (e.g. the delta
backend's majorant table) without leaking it across unrelated runs.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from ..errors import ExecutionError
from .context import TransportContext
from .particle import FissionBank
from .stats import TransportStats
from .tally import GlobalTallies

__all__ = [
    "TransportBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "HistoryBackend",
    "EventBackend",
    "DeltaBackend",
]


@runtime_checkable
class TransportBackend(Protocol):
    """One transport schedule: how a generation of particles is advanced
    through the stage kernels.

    All backends share the generation signature and the contract that, for
    the surface-tracking schedules, identical seeds produce bit-identical
    tallies, fission banks, and work counters.
    """

    #: Registry name (``--backend`` on the CLI).
    name: str
    #: Whether the schedule scores the track-length estimator (delta
    #: tracking does not — its flights are against the majorant).
    supports_track_length: bool

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        """Transport one generation; return the next fission bank."""
        ...


_REGISTRY: dict[str, Callable[[], "TransportBackend"]] = {}


def register_backend(
    name: str, factory: Callable[[], "TransportBackend"]
) -> None:
    """Register a backend factory under ``name`` (last registration wins,
    so downstream code can shadow a built-in with an instrumented variant)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> "TransportBackend":
    """Instantiate the backend registered under ``name``.

    Each call returns a fresh instance: per-run caches (like the delta
    majorant) live on the instance, so hold on to the returned object for
    the duration of a run.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ExecutionError(
            f"unknown transport backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory()


class HistoryBackend:
    """The scalar schedule (OpenMC-style, the paper's baseline)."""

    name = "history"
    supports_track_length = True

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .history import run_generation_history

        return run_generation_history(
            ctx, positions, energies, tallies, k_norm, first_id,
            stats=stats, power=power, spectrum=spectrum,
        )


class EventBackend:
    """The banked schedule (Brown & Martin event-based vectorization)."""

    name = "event"
    supports_track_length = True

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .events import run_generation_event

        return run_generation_event(
            ctx, positions, energies, tallies, k_norm, first_id,
            stats=stats, power=power, spectrum=spectrum,
        )


class DeltaBackend:
    """Woodcock delta tracking against a cached majorant cross section.

    The majorant table is built once per (instance, context) pair and
    reused across batches — the reason :func:`get_backend` hands out fresh
    instances rather than singletons.
    """

    name = "delta"
    supports_track_length = False

    def __init__(self) -> None:
        self._majorant = None
        self._majorant_ctx: TransportContext | None = None

    def run_generation(
        self,
        ctx: TransportContext,
        positions: np.ndarray,
        energies: np.ndarray,
        tallies: GlobalTallies,
        k_norm: float = 1.0,
        first_id: int = 0,
        stats: TransportStats | None = None,
        power=None,
        spectrum=None,
    ) -> FissionBank:
        from .delta import MajorantXS, run_generation_delta

        if power is not None or spectrum is not None:
            raise ExecutionError(
                "delta tracking does not score track-length tallies "
                "(no power map / spectrum); use the history or event backend"
            )
        if self._majorant is None or self._majorant_ctx is not ctx:
            self._majorant = MajorantXS(ctx)
            self._majorant_ctx = ctx
        return run_generation_delta(
            ctx, positions, energies, tallies, k_norm, first_id,
            majorant=self._majorant,
        )


register_backend("history", HistoryBackend)
register_backend("event", EventBackend)
register_backend("delta", DeltaBackend)
