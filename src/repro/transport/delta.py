r"""Woodcock delta-tracking: the SIMD-friendliest transport scheme.

Surface tracking (the loops in :mod:`~repro.transport.history` /
:mod:`~repro.transport.events`) must compute the distance to the nearest
surface on every flight — branchy geometry code that resists vectorization
(the reason the paper's related GPU work leans on coarser tracking).
Woodcock tracking removes geometry from the flight entirely:

1. build a **majorant** cross section :math:`\Sigma_{maj}(E) \ge
   \Sigma_t(E, \vec r)\ \forall \vec r` (max over materials, with a bound
   factor covering URR fluctuations);
2. sample every flight against :math:`\Sigma_{maj}` — one gather, no
   surface search;
3. at the tentative collision point, look up the *real* material and accept
   the collision with probability :math:`\Sigma_t / \Sigma_{maj}`;
   otherwise the collision is **virtual** and the flight continues.

Every step is a dense vectorized kernel over the whole bank — no
per-particle geometry branching at all.  Reflective pin-cell boundaries are
handled by analytic coordinate folding (mirror periodicity), and vacuum
boxes by killing particles whose tentative point lands outside.

Delta tracking draws a different random-number sequence than surface
tracking, so the two are compared *statistically* (same eigenvalue, within
error bars) rather than bitwise; the collision and absorption k estimators
remain unbiased (the track-length estimator is not scored — its delta-mode
form needs per-segment material integrals).
"""

from __future__ import annotations

import numpy as np

from ..errors import PhysicsError
from ..geometry.hoogenboom import ACTIVE_HALF_HEIGHT as _HALF_Z
from ..geometry.hoogenboom import PIN_PITCH
from ..rng.lcg import prn_array
from ..types import CollisionChannel
from .context import TransportContext
from .particle import FissionBank, ParticleBank
from .stages import (
    COLLISION,
    FISSION,
    SCATTER,
    SURVIVAL,
    SigmaTables,
    group_by_value,
)
from .tally import GlobalTallies

__all__ = ["MajorantXS", "run_generation_delta", "fold_reflective"]

_TINY = 1.0e-300


class MajorantXS:
    """A tabulated majorant over all materials on the union grid.

    ``safety`` adds headroom; URR fluctuations are covered by scaling with
    each probability table's maximum total-factor where energies fall in an
    unresolved range.
    """

    def __init__(self, ctx: TransportContext, safety: float = 1.02) -> None:
        calc = ctx.calculator
        if calc.union is None:
            raise PhysicsError("delta tracking requires a unionized grid")
        self.energy = calc.union.energy
        totals = []
        for material in ctx.model.materials:
            # Deterministic part (URR factors handled by the bound below).
            saved = calc.use_urr
            calc.use_urr = False
            try:
                res = calc.banked(material, self.energy)
            finally:
                calc.use_urr = saved
            totals.append(res["total"])
        sigma = np.max(totals, axis=0)

        # URR bound: within any table's range, scale by the largest factor
        # any reaction/band/column can apply.
        if calc.use_urr and ctx.library.urr:
            bound = np.ones_like(sigma)
            for table in ctx.library.urr.values():
                mask = np.asarray(table.contains(self.energy))
                if mask.any():
                    bound[mask] = np.maximum(
                        bound[mask], float(table.factors.max())
                    )
            sigma = sigma * bound
        self.sigma = sigma * safety

    def __call__(self, energies: np.ndarray) -> np.ndarray:
        """Majorant at each energy (right-continuous grid gather)."""
        idx = np.clip(
            np.searchsorted(self.energy, energies, side="right") - 1,
            0,
            self.energy.size - 2,
        )
        return np.maximum(self.sigma[idx], self.sigma[idx + 1])


def fold_reflective(
    coords: np.ndarray, half: float
) -> tuple[np.ndarray, np.ndarray]:
    """Fold unbounded coordinates into a mirror-reflective slab [-half, half].

    Returns ``(folded_coords, direction_sign)`` where the sign is -1 on
    axes that crossed an odd number of mirrors (the direction component
    flips).  Vectorized over any shape.
    """
    period = 4.0 * half
    m = np.mod(coords + half, period)
    first_half = m <= 2.0 * half
    folded = np.where(first_half, m - half, 3.0 * half - m)
    sign = np.where(first_half, 1.0, -1.0)
    return folded, sign


def run_generation_delta(
    ctx: TransportContext,
    positions: np.ndarray,
    energies: np.ndarray,
    tallies: GlobalTallies,
    k_norm: float = 1.0,
    first_id: int = 0,
    majorant: MajorantXS | None = None,
) -> FissionBank:
    """Transport one generation with Woodcock delta-tracking (event-style).

    Supports the reflective pin cell (folded coordinates) and the
    vacuum-bounded full core (outside -> leak).  Returns the fission bank;
    the ``virtual`` counter field reports the rejection overhead via
    ``ctx.counters.flights`` (every tentative flight counts) vs
    ``ctx.counters.collisions`` (real ones only).
    """
    calc = ctx.calculator
    counters = ctx.counters
    if majorant is None:
        majorant = MajorantXS(ctx)
    fission_bank = FissionBank()

    bank = ParticleBank.from_source(positions, energies, first_id, ctx.master_seed)
    particle_ids = first_id + np.arange(positions.shape[0])
    n = bank.n
    tallies.source_weight += float(n)
    counters.rn_draws += 2 * n

    pincell = ctx.fast.pincell
    half = 0.5 * PIN_PITCH

    sig = SigmaTables.zeros(n)

    while True:
        alive = np.nonzero(bank.alive)[0]
        if alive.size == 0:
            break

        # ---- Flight against the majorant: one gather, no geometry.
        sig_maj = majorant(bank.energy[alive])
        states, xi = prn_array(bank.rng_state[alive])
        bank.rng_state[alive] = states
        counters.rn_draws += alive.size
        counters.flights += alive.size
        d = -np.log(np.maximum(xi, _TINY)) / sig_maj
        bank.position[alive] += d[:, None] * bank.direction[alive]

        # ---- Boundaries: fold (reflective pincell) or leak (vacuum box).
        if pincell:
            for axis, h in ((0, half), (1, half), (2, _HALF_Z)):
                folded, sign = fold_reflective(bank.position[alive, axis], h)
                bank.position[alive, axis] = folded
                bank.direction[alive, axis] *= sign
        mats = ctx.fast.locate_many(bank.position[alive])
        leaked = alive[mats < 0]
        if leaked.size:
            tallies.n_leaks += leaked.size
            bank.alive[leaked] = False
        inside = alive[mats >= 0]
        if inside.size == 0:
            continue
        bank.material[inside] = mats[mats >= 0]

        # ---- Real cross sections at tentative collision points.
        for mid, pos in group_by_value(bank.material[inside]):
            grp = inside[pos]
            states = bank.rng_state[grp]
            res = calc.banked(
                ctx.material(mid), bank.energy[grp],
                rng_states=states, counters=counters,
            )
            bank.rng_state[grp] = states
            sig.total[grp] = res["total"]
            sig.capture[grp] = res["capture"]
            sig.fission[grp] = res["fission"]
            sig.nu_fission[grp] = res["nu_fission"]

        # ---- Accept/reject: real vs virtual collision (one draw).
        states, xi_acc = prn_array(bank.rng_state[inside])
        bank.rng_state[inside] = states
        counters.rn_draws += inside.size
        ratio = sig.total[inside] / majorant(bank.energy[inside])
        if np.any(ratio > 1.0 + 1e-9):
            raise PhysicsError(
                "majorant violated — increase the safety factor"
            )
        real = inside[xi_acc < ratio]
        # Virtual collisions: nothing happens; flight continues next cycle.
        if real.size == 0:
            continue

        tallies.score_collision_many(
            bank.weight[real], sig.nu_fission[real], sig.total[real]
        )
        counters.collisions += real.size

        if ctx.survival_biasing:
            SURVIVAL.banked(
                ctx, bank, real, tallies, fission_bank, k_norm,
                particle_ids, sig,
            )
            continue

        channels = COLLISION.banked(ctx, bank, real, sig)

        cap = real[channels == int(CollisionChannel.CAPTURE)]
        if cap.size:
            tallies.score_absorption_many(
                bank.weight[cap], sig.nu_fission[cap], sig.absorption(cap)
            )
            bank.alive[cap] = False
        fis = real[channels == int(CollisionChannel.FISSION)]
        if fis.size:
            tallies.score_absorption_many(
                bank.weight[fis], sig.nu_fission[fis], sig.absorption(fis)
            )
            counters.fissions += fis.size
            FISSION.banked(ctx, bank, fis, fission_bank, k_norm, particle_ids)
            bank.alive[fis] = False
        sct = real[channels == int(CollisionChannel.SCATTER)]
        if sct.size:
            SCATTER.banked(ctx, bank, sct)

    return fission_bank
