r"""Stage kernels: the physics work shared by both transport schedules.

The paper's central observation (and this repo's architecture after PR 4)
is that history-based and event-based transport are *two schedules over the
same physics kernels*: banking merely reorders when the XS-lookup, flight,
collision, fission, scatter, and crossing work happens.  This module is
that shared kernel layer.  Each stage is a :class:`StageKernel` with

* a **scalar** apply — one particle at a time, consuming its private
  :class:`~repro.rng.lcg.RandomStream` (the history schedule), and
* a **banked** apply — a vectorized kernel over a
  :class:`~repro.transport.particle.ParticleBank`'s SoA arrays and the
  per-particle :class:`SigmaTables` side-tables, dispatched per material
  over the cached MaterialPlans (the event schedule).

The two applies of every kernel consume each particle's random-number
stream in **exactly the same order** (the RNG protocol documented in
:mod:`repro.transport.history`), so a history run and an event run with the
same seed produce bit-identical tallies, fission banks, and work counters —
enforced by ``tests/transport/test_equivalence.py``.  A physics change now
lands once, in one kernel, and both schedules pick it up.

Layering: this module sits at the bottom of the transport stack.  It may
import physics, data, rng, and sibling transport modules only — never
execution, serve, cluster, simd, machine, or profiling (checked by
``tools/check_layering.py`` in CI).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import SURFACE_NUDGE
from ..data.nuclide import NU_THERMAL_SLOPE
from ..physics.collision import select_channel, select_channel_many
from ..physics.fission import (
    WATT_A,
    WATT_B,
    sample_nu,
    sample_nu_many,
    watt_spectrum,
    watt_spectrum_many,
)
from ..physics.scattering import (
    elastic_scatter,
    elastic_scatter_many,
    rotate_direction,
    rotate_direction_many,
)
from ..physics.thermal import free_gas_scatter, free_gas_scatter_many
from ..rng.lcg import prn_array
from ..rng.sampling import sample_index, sample_index_many
from ..types import Reaction
from .context import TransportContext
from .particle import FissionBank, Particle, ParticleBank
from .tally import GlobalTallies

__all__ = [
    "SigmaTables",
    "StageKernel",
    "XSLookupKernel",
    "FlightKernel",
    "CrossingKernel",
    "CollisionChannelKernel",
    "SurvivalKernel",
    "FissionKernel",
    "ScatterKernel",
    "XS_LOOKUP",
    "FLIGHT",
    "CROSSING",
    "COLLISION",
    "SURVIVAL",
    "FISSION",
    "SCATTER",
    "STAGE_KERNELS",
    "group_by_value",
]

_TINY = 1.0e-300


def group_by_value(values: np.ndarray):
    """Yield ``(value, positions)`` for each distinct value, via one stable
    argsort instead of ``np.unique`` plus a boolean scan per value.

    ``positions`` index into ``values`` and are ascending within each group
    (stable sort), and groups come out in ascending value order — exactly
    the iteration order of the ``np.unique`` + mask idiom it replaces, so
    RNG consumption order is unchanged.  This is the material-dispatch
    primitive of every banked kernel below.
    """
    if values.size == 0:
        return
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1
    start = 0
    for end in [*boundaries.tolist(), sorted_vals.size]:
        yield int(sorted_vals[start]), order[start:end]
        start = end


@dataclass
class SigmaTables:
    """Per-particle macroscopic cross sections, refreshed by the XS-lookup
    stage each cycle — the SoA side-tables every downstream banked kernel
    gathers from.  All arrays are full-bank length; only live lanes are
    meaningful."""

    total: np.ndarray
    capture: np.ndarray
    fission: np.ndarray
    nu_fission: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "SigmaTables":
        return cls(
            total=np.zeros(n),
            capture=np.zeros(n),
            fission=np.zeros(n),
            nu_fission=np.zeros(n),
        )

    def absorption(self, idx: np.ndarray) -> np.ndarray:
        return self.capture[idx] + self.fission[idx]


class StageKernel:
    """Base class: a physics stage with scalar and banked applies."""

    name = "stage"


class XSLookupKernel(StageKernel):
    """Macroscopic cross-section lookup (Algorithm 1, the bottleneck)."""

    name = "xs_lookup"

    def scalar(self, ctx: TransportContext, material, energy: float, stream):
        """One particle's macro XS in ``material`` at ``energy``."""
        return ctx.calculator.scalar(material, energy, stream, ctx.counters)

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        alive_idx: np.ndarray,
        sig: SigmaTables,
    ) -> None:
        """Locate and refresh the live lanes' sigma side-tables, grouped by
        material via one stable argsort dispatch (same group order as
        ``np.unique``)."""
        calc = ctx.calculator
        counters = ctx.counters
        mats = ctx.fast.locate_many(bank.position[alive_idx])
        bank.material[alive_idx] = mats
        # (Source particles start inside; crossings already resolved escapes.)
        for mid, pos in group_by_value(mats):
            grp = alive_idx[pos]
            material = ctx.material(mid)
            states = bank.rng_state[grp]
            res = calc.banked(
                material, bank.energy[grp], rng_states=states, counters=counters
            )
            bank.rng_state[grp] = states
            sig.total[grp] = res["total"]
            sig.capture[grp] = res["capture"]
            sig.fission[grp] = res["fission"]
            sig.nu_fission[grp] = res["nu_fission"]


class FlightKernel(StageKernel):
    """Distance to collision (Eq. 1) vs distance to boundary."""

    name = "flight"

    def scalar(
        self, ctx: TransportContext, particle: Particle, xs
    ) -> tuple[float, float]:
        """Sample the collision distance and ray-trace the boundary
        distance for one particle; returns ``(d_coll, d_bound)``."""
        xi_dist = particle.stream.prn()
        d_coll = -np.log(max(xi_dist, _TINY)) / xs.total
        d_bound = ctx.boundary_distance(particle.position, particle.direction)
        ctx.counters.rn_draws += 1
        ctx.counters.flights += 1
        return d_coll, d_bound

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        alive_idx: np.ndarray,
        sig: SigmaTables,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample all collision distances at once and ray-trace all
        boundary distances with the analytic fast geometry.

        Returns ``(pos, dirs, w, d, crossing)``: the gathered position /
        direction / weight columns (each consumer below reads the compacted
        copy instead of re-running the fancy index), the flight distance,
        and the crossing mask.
        """
        counters = ctx.counters
        states, xi = prn_array(bank.rng_state[alive_idx])
        bank.rng_state[alive_idx] = states
        counters.rn_draws += alive_idx.size
        counters.flights += alive_idx.size
        pos = bank.position[alive_idx]
        dirs = bank.direction[alive_idx]
        w = bank.weight[alive_idx]
        d_coll = -np.log(np.maximum(xi, _TINY)) / sig.total[alive_idx]
        d_bound = ctx.fast.distance_many(pos, dirs)
        crossing = d_bound < d_coll
        d = np.where(crossing, d_bound, d_coll)
        return pos, dirs, w, d, crossing


class CrossingKernel(StageKernel):
    """Surface crossing: nudge past the surface, resolve escapes."""

    name = "crossing"

    def scalar(
        self,
        ctx: TransportContext,
        particle: Particle,
        tallies: GlobalTallies,
        d_bound: float,
    ) -> None:
        """Move one particle past the surface and apply the boundary
        condition if it escaped (scoring the leak)."""
        particle.position = ctx.nudge(
            particle.position + d_bound * particle.direction,
            particle.direction,
        )
        if ctx.material_id_at(particle.position) < 0:
            p_new, u_new, alive = ctx.handle_escape(
                particle.position, particle.direction
            )
            if not alive:
                tallies.n_leaks += 1
                particle.alive = False
            else:
                particle.position = p_new
                particle.direction = u_new

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        cross_idx: np.ndarray,
        tallies: GlobalTallies,
    ) -> None:
        """Nudge the crossing sub-bank past its surfaces; apply boundary
        conditions to the (rare) escapes scalar-wise for bit-parity with
        the history schedule."""
        bank.position[cross_idx] += SURFACE_NUDGE * bank.direction[cross_idx]
        after = ctx.fast.locate_many(bank.position[cross_idx])
        escaped = cross_idx[after < 0]
        # Escapes are rare (outer box only): scalar BC handling keeps
        # bit-parity with the history loop.
        for j in escaped:
            p_new, u_new, alive = ctx.handle_escape(
                bank.position[j], bank.direction[j]
            )
            if alive:
                bank.position[j] = p_new
                bank.direction[j] = u_new
            else:
                tallies.n_leaks += 1
                bank.alive[j] = False


class CollisionChannelKernel(StageKernel):
    """Analog channel selection (capture / fission / scatter)."""

    name = "collision"

    def scalar(self, ctx: TransportContext, xs, stream):
        """Draw the channel for one collision."""
        channel = select_channel(xs, stream.prn())
        ctx.counters.rn_draws += 1
        return channel

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        coll_idx: np.ndarray,
        sig: SigmaTables,
    ) -> np.ndarray:
        """Branch-free channel selection over the collision sub-bank."""
        states, xi_ch = prn_array(bank.rng_state[coll_idx])
        bank.rng_state[coll_idx] = states
        ctx.counters.rn_draws += coll_idx.size
        return select_channel_many(
            sig.total[coll_idx],
            sig.capture[coll_idx],
            sig.fission[coll_idx],
            xi_ch,
        )


class SurvivalKernel(StageKernel):
    """Implicit capture + expected fission sites + Russian roulette."""

    name = "survival"

    def scalar(
        self,
        ctx: TransportContext,
        particle: Particle,
        material,
        xs,
        tallies: GlobalTallies,
        fission_bank: FissionBank,
        k_norm: float,
    ) -> None:
        """One survival-biased collision: no channel draw — capture and
        fission are implicit.  One draw for the expected fission-site
        count, per-site Watt draws, the scatter sequence, then one roulette
        draw only if the reduced weight fell below the cutoff."""
        stream = particle.stream
        counters = ctx.counters
        w = particle.weight
        absorbed = w * xs.absorption / xs.total
        tallies.score_absorption(absorbed, xs.nu_fission, xs.absorption)
        nu_bar = w * xs.nu_fission / xs.total
        n_sites = sample_nu(nu_bar, k_norm, stream.prn())
        counters.rn_draws += 1
        if n_sites:
            counters.fissions += 1
        for s in range(n_sites):
            e_birth = watt_spectrum(WATT_A, WATT_B, stream)
            fission_bank.add(particle.position, e_birth, particle.id, s)
        particle.weight = w * (1.0 - xs.absorption / xs.total)
        SCATTER.scalar(ctx, particle, material)
        if particle.weight < ctx.weight_cutoff:
            xi = stream.prn()
            counters.rn_draws += 1
            if xi < particle.weight / ctx.weight_survival:
                particle.weight = ctx.weight_survival
            else:
                particle.alive = False

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        coll: np.ndarray,
        tallies: GlobalTallies,
        fission_bank: FissionBank,
        k_norm: float,
        particle_ids: np.ndarray,
        sig: SigmaTables,
    ) -> None:
        """Vectorized implicit-capture collision stage, mirroring the
        scalar apply draw for draw (site count, per-site Watt, scatter
        sequence, conditional roulette)."""
        counters = ctx.counters
        w = bank.weight[coll]
        sig_a = sig.absorption(coll)
        absorbed = w * sig_a / sig.total[coll]
        tallies.score_absorption_many(absorbed, sig.nu_fission[coll], sig_a)

        # Expected fission sites (no nuclide attribution: nu Sigma_f is
        # already the material aggregate, and Watt parameters are library
        # constants).
        states, xi_nu = prn_array(bank.rng_state[coll])
        bank.rng_state[coll] = states
        counters.rn_draws += coll.size
        nu_bar = w * sig.nu_fission[coll] / sig.total[coll]
        n_sites = sample_nu_many(nu_bar, k_norm, xi_nu)
        counters.fissions += int((n_sites > 0).sum())
        max_sites = int(n_sites.max()) if n_sites.size else 0
        for s in range(max_sites):
            sub = coll[n_sites > s]
            if sub.size == 0:
                break
            e_birth, new_states = watt_spectrum_many(
                WATT_A, WATT_B, bank.rng_state[sub]
            )
            bank.rng_state[sub] = new_states
            fission_bank.add_many(
                bank.position[sub], e_birth, particle_ids[sub], seq=s
            )

        bank.weight[coll] = w * (1.0 - sig_a / sig.total[coll])
        SCATTER.banked(ctx, bank, coll)

        # Russian roulette on the reduced weights.
        rl = coll[bank.weight[coll] < ctx.weight_cutoff]
        if rl.size:
            states, xi = prn_array(bank.rng_state[rl])
            bank.rng_state[rl] = states
            counters.rn_draws += rl.size
            survive = xi < bank.weight[rl] / ctx.weight_survival
            bank.weight[rl[survive]] = ctx.weight_survival
            bank.alive[rl[~survive]] = False


class FissionKernel(StageKernel):
    """Analog fission: nuclide attribution, site counts, Watt energies."""

    name = "fission"

    def scalar(
        self,
        ctx: TransportContext,
        particle: Particle,
        material,
        fission_bank: FissionBank,
        k_norm: float,
    ) -> None:
        """One analog fission: 1 draw for the fissioning nuclide, 1 draw
        for the site count, then per banked site the Watt rejection draws;
        the history ends."""
        calc = ctx.calculator
        stream = particle.stream
        counters = ctx.counters
        weights = calc.attribution_weights(
            material, particle.energy, Reaction.FISSION, counters
        )[:, 0]
        k = sample_index(weights, stream.prn())
        ids, _ = material.resolve(ctx.library)
        nuc = ctx.library[int(ids[k])]
        nu_bar = float(nuc.nu(particle.energy)) * particle.weight
        n_sites = sample_nu(nu_bar, k_norm, stream.prn())
        counters.rn_draws += 2
        for s in range(n_sites):
            e_birth = watt_spectrum(nuc.watt_a, nuc.watt_b, stream)
            fission_bank.add(particle.position, e_birth, particle.id, s)
        particle.alive = False

    def banked(
        self,
        ctx: TransportContext,
        bank: ParticleBank,
        fis: np.ndarray,
        fission_bank: FissionBank,
        k_norm: float,
        particle_ids: np.ndarray,
    ) -> None:
        """Vectorized fission processing per material group (the caller
        terminates the sub-bank)."""
        calc = ctx.calculator
        counters = ctx.counters
        soa = calc.soa
        for mid, pos in group_by_value(bank.material[fis]):
            grp = fis[pos]
            material = ctx.material(mid)
            ids, _ = material.resolve(ctx.library)
            weights = calc.attribution_weights(
                material, bank.energy[grp], Reaction.FISSION, counters
            )
            states, xi_nuc = prn_array(bank.rng_state[grp])
            which = sample_index_many(weights, xi_nuc)
            nuclide_ids = ids[which]
            nu_bar = (
                soa.nu0[nuclide_ids] + NU_THERMAL_SLOPE * bank.energy[grp]
            ) * bank.weight[grp]
            states, xi_nu = prn_array(states)
            bank.rng_state[grp] = states
            counters.rn_draws += 2 * grp.size
            n_sites = sample_nu_many(nu_bar, k_norm, xi_nu)

            # Per-site Watt draws, peeled one site-index at a time so each
            # parent stream advances exactly as in the scalar loop.
            max_sites = int(n_sites.max()) if n_sites.size else 0
            for s in range(max_sites):
                sub = grp[n_sites > s]
                if sub.size == 0:
                    break
                # Watt parameters are library-wide constants (all nuclides
                # carry the defaults), so one batched sampler covers the
                # whole group.
                nid0 = int(nuclide_ids[0])
                e_birth, new_states = watt_spectrum_many(
                    float(soa.watt_a[nid0]), float(soa.watt_b[nid0]),
                    bank.rng_state[sub],
                )
                bank.rng_state[sub] = new_states
                fission_bank.add_many(
                    bank.position[sub], e_birth, particle_ids[sub], seq=s
                )


class ScatterKernel(StageKernel):
    """Scattering: nuclide attribution then S(a,b) / free-gas /
    target-at-rest kinematics, with the energy-cutoff clamp."""

    name = "scatter"

    def scalar(
        self, ctx: TransportContext, particle: Particle, material
    ) -> None:
        """The scalar scatter sequence: 1 draw for the nuclide, then the
        kinematics draws (see the RNG protocol in
        :mod:`repro.transport.history`)."""
        calc = ctx.calculator
        stream = particle.stream
        counters = ctx.counters
        weights = calc.attribution_weights(
            material, particle.energy, Reaction.ELASTIC, counters
        )[:, 0]
        k = sample_index(weights, stream.prn())
        counters.rn_draws += 1
        ids, _ = material.resolve(ctx.library)
        nuc = ctx.library[int(ids[k])]
        sab = ctx.library.sab.get(nuc.name) if calc.use_sab else None
        if sab is not None and particle.energy < sab.cutoff:
            e_out, mu = sab.sample(particle.energy, stream.prn(), stream.prn())
            phi = 2.0 * np.pi * stream.prn()
            particle.direction = rotate_direction(particle.direction, mu, phi)
            particle.energy = e_out
            counters.rn_draws += 3
            counters.sab_samples += 1
        elif particle.energy < ctx.free_gas_cutoff:
            e_out, new_dir = free_gas_scatter(
                particle.energy,
                particle.direction,
                nuc.awr,
                ctx.temperature,
                stream,
            )
            particle.energy = e_out
            particle.direction = new_dir
            counters.rn_draws += 7
        else:
            e_out, mu = elastic_scatter(particle.energy, nuc.awr, stream.prn())
            phi = 2.0 * np.pi * stream.prn()
            particle.direction = rotate_direction(particle.direction, mu, phi)
            particle.energy = e_out
            counters.rn_draws += 2
        if particle.energy < ctx.energy_cutoff:
            particle.energy = ctx.energy_cutoff

    def banked(
        self, ctx: TransportContext, bank: ParticleBank, sct: np.ndarray
    ) -> None:
        """Vectorized scattering: nuclide attribution then the three
        kinematics sub-banks, gathered from the SoA side-tables."""
        calc = ctx.calculator
        counters = ctx.counters
        soa = calc.soa
        chosen = np.empty(sct.size, dtype=np.int64)  # global nuclide ids

        for mid, pos in group_by_value(bank.material[sct]):
            grp = sct[pos]
            material = ctx.material(mid)
            ids, _ = material.resolve(ctx.library)
            weights = calc.attribution_weights(
                material, bank.energy[grp], Reaction.ELASTIC, counters
            )
            states, xi_nuc = prn_array(bank.rng_state[grp])
            bank.rng_state[grp] = states
            counters.rn_draws += grp.size
            which = sample_index_many(weights, xi_nuc)
            chosen[pos] = ids[which]

        energies = bank.energy[sct]
        # Per-target metadata as gathers out of the SoA side-tables — no
        # Python loop over the chosen nuclides.
        if calc.use_sab:
            sab_mask = soa.has_sab[chosen] & (energies < soa.sab_cutoff[chosen])
        else:
            sab_mask = np.zeros(sct.size, dtype=bool)
        fg_mask = (~sab_mask) & (energies < ctx.free_gas_cutoff)
        fast_mask = ~(sab_mask | fg_mask)

        # --- S(alpha, beta) sub-bank (bound thermal scattering).
        if sab_mask.any():
            idx = sct[sab_mask]
            nids = chosen[sab_mask]
            states = bank.rng_state[idx]
            states, xi1 = prn_array(states)
            states, xi2 = prn_array(states)
            states, xi_phi = prn_array(states)
            bank.rng_state[idx] = states
            counters.rn_draws += 3 * idx.size
            counters.sab_samples += idx.size
            # All S(a,b) nuclides in a group share a table in practice (H1);
            # group by nuclide id to stay general.
            for nid in np.unique(nids):
                m = nids == nid
                table = soa.sab_tables[int(nid)]
                e_out, mu = table.sample_many(
                    bank.energy[idx[m]], xi1[m], xi2[m]
                )
                bank.direction[idx[m]] = rotate_direction_many(
                    bank.direction[idx[m]], mu, 2.0 * np.pi * xi_phi[m]
                )
                bank.energy[idx[m]] = e_out

        # --- Free-gas sub-bank (thermal motion, no bound table).
        if fg_mask.any():
            idx = sct[fg_mask]
            nids = chosen[fg_mask]
            states = bank.rng_state[idx]
            xi = np.empty((idx.size, 7))
            for c in range(7):
                states, xi[:, c] = prn_array(states)
            bank.rng_state[idx] = states
            counters.rn_draws += 7 * idx.size
            awr = calc.soa.awr[nids]
            e_out, dir_out = free_gas_scatter_many(
                bank.energy[idx], bank.direction[idx], awr, ctx.temperature, xi
            )
            bank.energy[idx] = e_out
            bank.direction[idx] = dir_out

        # --- Target-at-rest elastic sub-bank.
        if fast_mask.any():
            idx = sct[fast_mask]
            nids = chosen[fast_mask]
            states = bank.rng_state[idx]
            states, xi_mu = prn_array(states)
            states, xi_phi = prn_array(states)
            bank.rng_state[idx] = states
            counters.rn_draws += 2 * idx.size
            awr = calc.soa.awr[nids]
            e_out, mu_lab = elastic_scatter_many(bank.energy[idx], awr, xi_mu)
            bank.direction[idx] = rotate_direction_many(
                bank.direction[idx], mu_lab, 2.0 * np.pi * xi_phi
            )
            bank.energy[idx] = e_out

        # Energy-cutoff clamp (shared by both schedules).
        low = sct[bank.energy[sct] < ctx.energy_cutoff]
        bank.energy[low] = ctx.energy_cutoff


#: Module-level kernel singletons — the one set of physics both schedules
#: run.  ``SURVIVAL`` and the drivers reference these by name.
XS_LOOKUP = XSLookupKernel()
FLIGHT = FlightKernel()
CROSSING = CrossingKernel()
COLLISION = CollisionChannelKernel()
SURVIVAL = SurvivalKernel()
FISSION = FissionKernel()
SCATTER = ScatterKernel()

STAGE_KERNELS: tuple[StageKernel, ...] = (
    XS_LOOKUP, FLIGHT, CROSSING, COLLISION, SURVIVAL, FISSION, SCATTER
)
