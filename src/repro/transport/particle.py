"""Particle representations: AoS objects and the SoA particle bank.

The history-based loop tracks one :class:`Particle` (array-of-structs
object) at a time; the event-based loop operates on a :class:`ParticleBank`
whose state lives in contiguous struct-of-arrays NumPy buffers.  Conversion
between the two (:meth:`ParticleBank.from_particles`,
:meth:`ParticleBank.to_particles`) *is* the paper's "banking" operation whose
cost Table II measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..rng.lcg import DEFAULT_SEED, RandomStream, particle_seeds
from ..types import EventKind

__all__ = ["Particle", "ParticleBank", "FissionSite", "FissionBank"]


@dataclass
class Particle:
    """One neutron history (AoS form, used by the history-based loop)."""

    id: int
    position: np.ndarray
    direction: np.ndarray
    energy: float
    weight: float = 1.0
    alive: bool = True
    stream: RandomStream = field(default_factory=RandomStream)

    @classmethod
    def from_source(
        cls,
        pid: int,
        position: np.ndarray,
        energy: float,
        master_seed: int = DEFAULT_SEED,
    ) -> "Particle":
        """Birth a particle: its stream is positioned at its history's
        reserved stride, and the first two draws pick an isotropic
        direction (the shared RNG protocol's birth step)."""
        stream = RandomStream()
        stream.set_particle(master_seed, pid)
        mu = 2.0 * stream.prn() - 1.0
        phi = 2.0 * np.pi * stream.prn()
        s = np.sqrt(max(0.0, 1.0 - mu * mu))
        direction = np.array([s * np.cos(phi), s * np.sin(phi), mu])
        return cls(
            id=pid,
            position=np.asarray(position, dtype=np.float64).copy(),
            direction=direction,
            energy=float(energy),
            stream=stream,
        )


class ParticleBank:
    """Struct-of-arrays state for a bank of particles.

    Attributes (all length ``n`` unless noted)
    ------------------------------------------
    position, direction:
        ``(n, 3)`` float64.
    energy, weight:
        float64.
    rng_state:
        uint64 per-particle LCG states.
    alive:
        bool mask.
    material:
        Fast-geometry material id at the current position (refreshed by the
        event loop's lookup stage).
    event:
        Current :class:`repro.types.EventKind` tag per particle.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.position = np.zeros((n, 3))
        self.direction = np.zeros((n, 3))
        self.energy = np.zeros(n)
        self.weight = np.ones(n)
        self.rng_state = np.zeros(n, dtype=np.uint64)
        self.alive = np.ones(n, dtype=bool)
        self.material = np.full(n, -1, dtype=np.int64)
        self.event = np.full(n, int(EventKind.XS_LOOKUP), dtype=np.int64)

    # -- Construction -----------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        positions: np.ndarray,
        energies: np.ndarray,
        first_id: int = 0,
        master_seed: int = DEFAULT_SEED,
    ) -> "ParticleBank":
        """Birth a bank of particles (vectorized twin of
        :meth:`Particle.from_source`, drawing the same two birth variates
        from the same per-history streams)."""
        positions = np.asarray(positions, dtype=np.float64)
        energies = np.asarray(energies, dtype=np.float64)
        n = positions.shape[0]
        bank = cls(n)
        bank.position[:] = positions
        bank.energy[:] = energies
        ids = (first_id + np.arange(n)).astype(np.uint64)
        states = particle_seeds(master_seed, ids)
        from ..rng.lcg import prn_array  # local to avoid cycle at import time

        states, xi1 = prn_array(states)
        states, xi2 = prn_array(states)
        bank.rng_state[:] = states
        mu = 2.0 * xi1 - 1.0
        phi = 2.0 * np.pi * xi2
        s = np.sqrt(np.maximum(1.0 - mu * mu, 0.0))
        bank.direction[:, 0] = s * np.cos(phi)
        bank.direction[:, 1] = s * np.sin(phi)
        bank.direction[:, 2] = mu
        return bank

    @classmethod
    def from_particles(cls, particles: list[Particle]) -> "ParticleBank":
        """Bank AoS particles into SoA arrays — the banking operation."""
        n = len(particles)
        bank = cls(n)
        for i, p in enumerate(particles):
            bank.position[i] = p.position
            bank.direction[i] = p.direction
            bank.energy[i] = p.energy
            bank.weight[i] = p.weight
            bank.alive[i] = p.alive
            bank.rng_state[i] = p.stream.seed
        return bank

    def to_particles(self) -> list[Particle]:
        """Un-bank: SoA arrays back to AoS particle objects."""
        out = []
        for i in range(self.n):
            out.append(
                Particle(
                    id=i,
                    position=self.position[i].copy(),
                    direction=self.direction[i].copy(),
                    energy=float(self.energy[i]),
                    weight=float(self.weight[i]),
                    alive=bool(self.alive[i]),
                    stream=RandomStream(seed=int(self.rng_state[i])),
                )
            )
        return out

    # -- Introspection -----------------------------------------------------------

    @property
    def n_alive(self) -> int:
        return int(self.alive.sum())

    @property
    def nbytes(self) -> int:
        """Actual bytes of the SoA buffers (the *modelled* per-particle
        record of Table II, which includes per-nuclide caches, lives in
        :mod:`repro.machine.memory`)."""
        return int(
            self.position.nbytes
            + self.direction.nbytes
            + self.energy.nbytes
            + self.weight.nbytes
            + self.rng_state.nbytes
            + self.alive.nbytes
            + self.material.nbytes
            + self.event.nbytes
        )


@dataclass
class FissionSite:
    """A banked fission site: birthplace of a next-generation neutron."""

    position: np.ndarray
    energy: float


class FissionBank:
    """Append-only bank of fission sites, sampled into the next generation.

    Sites carry their parent particle id and per-parent sequence number, and
    all reads use the canonical ``(parent, seq)`` ordering — so the bank's
    contents are identical whether histories were tracked one at a time
    (history loop) or in vectorized stages (event loop), which bank sites in
    a different raw order.

    Storage is chunked: each ``add_many`` appends whole arrays (the event
    loop banks a vector of sites per call), so banking is O(1) Python work
    per call instead of a per-site loop; reads concatenate and apply the
    canonical ordering.
    """

    def __init__(self) -> None:
        self._pos_chunks: list[np.ndarray] = []
        self._energy_chunks: list[np.ndarray] = []
        self._parent_chunks: list[np.ndarray] = []
        self._seq_chunks: list[np.ndarray] = []
        self._n = 0

    def add(
        self, position: np.ndarray, energy: float, parent: int = 0, seq: int = 0
    ) -> None:
        self._pos_chunks.append(
            np.asarray(position, dtype=np.float64).reshape(1, 3).copy()
        )
        self._energy_chunks.append(np.array([float(energy)]))
        self._parent_chunks.append(np.array([int(parent)], dtype=np.int64))
        self._seq_chunks.append(np.array([int(seq)], dtype=np.int64))
        self._n += 1

    def add_many(
        self,
        positions: np.ndarray,
        energies: np.ndarray,
        parents: np.ndarray | None = None,
        seq: int = 0,
    ) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        n = positions.shape[0]
        if n == 0:
            return
        if parents is None:
            parents = np.zeros(n, dtype=np.int64)
        self._pos_chunks.append(positions.copy())
        self._energy_chunks.append(
            np.asarray(energies, dtype=np.float64).copy()
        )
        self._parent_chunks.append(np.asarray(parents, dtype=np.int64).copy())
        self._seq_chunks.append(np.full(n, int(seq), dtype=np.int64))
        self._n += n

    def absorb(self, other: "FissionBank") -> None:
        """Append every site of ``other`` (chunk references, no copies).

        Because all reads apply the canonical ``(parent, seq)`` ordering
        and parents are *global* particle ids, absorbing per-rank or
        per-slice banks in any order reproduces the serial run's bank
        exactly — the primitive behind the symmetric scheduler's and the
        distributed driver's bank merges.
        """
        self._pos_chunks.extend(other._pos_chunks)
        self._energy_chunks.extend(other._energy_chunks)
        self._parent_chunks.extend(other._parent_chunks)
        self._seq_chunks.extend(other._seq_chunks)
        self._n += other._n

    def __len__(self) -> int:
        return self._n

    def _order(self) -> np.ndarray:
        parents = np.concatenate(self._parent_chunks)
        seqs = np.concatenate(self._seq_chunks)
        return np.argsort(parents * 1_000_000 + seqs, kind="stable")

    @property
    def positions(self) -> np.ndarray:
        if self._n == 0:
            return np.empty((0, 3))
        return np.concatenate(self._pos_chunks, axis=0)[self._order()]

    @property
    def energies(self) -> np.ndarray:
        if self._n == 0:
            return np.empty(0)
        return np.concatenate(self._energy_chunks)[self._order()]

    def sample_source(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resample exactly ``n`` sites (with replacement if the bank is
        short, a random subset if long) — the generation-to-generation
        population control of the power iteration."""
        if len(self) == 0:
            raise ValueError("fission bank is empty — source died out")
        idx = rng.integers(0, len(self), size=n) if len(self) != n else np.arange(n)
        if len(self) > n:
            idx = rng.choice(len(self), size=n, replace=False)
        pos = self.positions[idx]
        en = self.energies[idx]
        return pos, en
