r"""Monte Carlo efficiency statistics: the figure of merit.

The standard efficiency measure for variance-reduction techniques:

.. math:: \mathrm{FOM} = \frac{1}{\sigma_{rel}^2\, T}

with relative error :math:`\sigma_{rel}` and wall (or modelled) time
:math:`T`.  FOM is invariant under running longer (error falls as
:math:`1/\sqrt{T}`), so two methods' FOMs compare their *intrinsic*
efficiency — the right lens for survival biasing, delta tracking, and the
banked-vs-history comparison alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from .simulation import SimulationResult

__all__ = ["figure_of_merit", "fom_of_result", "EfficiencyComparison"]


def figure_of_merit(rel_err: float, seconds: float) -> float:
    """FOM = 1 / (rel_err^2 * T)."""
    if rel_err <= 0 or seconds <= 0:
        raise ReproError("FOM needs positive error and time")
    return 1.0 / (rel_err * rel_err * seconds)


def fom_of_result(result: SimulationResult) -> float:
    """FOM of a simulation's combined k estimate against its wall time."""
    k = result.k_effective
    if not (k.mean and k.std_err) or k.std_err != k.std_err:
        raise ReproError("result has no usable k statistics")
    if k.std_err in (0.0, float("inf")):
        raise ReproError("need >= 2 active batches for a FOM")
    return figure_of_merit(k.std_err / abs(k.mean), result.wall_time)


@dataclass(frozen=True)
class EfficiencyComparison:
    """FOM comparison of two runs (e.g. analog vs survival biasing)."""

    label_a: str
    label_b: str
    fom_a: float
    fom_b: float

    @property
    def ratio(self) -> float:
        """FOM_b / FOM_a: >1 means B is the more efficient method."""
        return self.fom_b / self.fom_a

    @classmethod
    def of(
        cls,
        label_a: str,
        result_a: SimulationResult,
        label_b: str,
        result_b: SimulationResult,
    ) -> "EfficiencyComparison":
        return cls(
            label_a=label_a,
            label_b=label_b,
            fom_a=fom_of_result(result_a),
            fom_b=fom_of_result(result_b),
        )
