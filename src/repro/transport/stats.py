"""Unified per-stage transport statistics for both schedules.

:class:`TransportStats` records how many particles each stage processed per
*dispatch* — one row per event-loop cycle on the banked schedule, one row
per particle history on the scalar schedule.  Under the same seed the two
schedules execute the same physics work in a different order, so the
**column totals agree exactly** between backends (same flights, collisions
and crossings), while the row structure exposes each schedule's shape:
event rows shrink as the generation drains (the lane-utilization story),
history rows show the per-history divergence that banking has to absorb.

``EventLoopStats`` remains as a backward-compatible alias in
:mod:`repro.transport.events`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransportStats"]


class TransportStats:
    """Per-stage particle counts — the queue-occupancy profile of a
    transport schedule (used to study lane utilization / divergence).

    Backed by one amortized-doubling ``(3, capacity)`` int64 array rather
    than unbounded Python lists; ``lookup_counts`` / ``collision_counts`` /
    ``crossing_counts`` are zero-copy views of the recorded prefix.
    """

    _STAGES = ("lookup", "collision", "crossing")

    def __init__(self) -> None:
        self.iterations = 0
        self._counts = np.zeros((3, 16), dtype=np.int64)
        #: Aborted-and-reissued operations (stalled PCIe shipments re-sent
        #: under a retry policy) — recovery work, not physics work.
        self.retries = 0

    def record_retries(self, n: int = 1) -> None:
        """Count ``n`` aborted-and-reissued operations for this run."""
        self.retries += int(n)

    def record(self, n_lookup: int, n_collision: int, n_crossing: int) -> None:
        i = self.iterations
        if i >= self._counts.shape[1]:
            grown = np.zeros((3, 2 * self._counts.shape[1]), dtype=np.int64)
            grown[:, :i] = self._counts
            self._counts = grown
        self._counts[0, i] = n_lookup
        self._counts[1, i] = n_collision
        self._counts[2, i] = n_crossing
        self.iterations = i + 1

    @property
    def lookup_counts(self) -> np.ndarray:
        return self._counts[0, : self.iterations]

    @property
    def collision_counts(self) -> np.ndarray:
        return self._counts[1, : self.iterations]

    @property
    def crossing_counts(self) -> np.ndarray:
        return self._counts[2, : self.iterations]

    def summary(self) -> dict:
        """Per-stage occupancy statistics over the recorded dispatches.

        Returns ``{"iterations": n, "stages": {name: {"mean", "min",
        "max", "total"}}}`` — the inputs to the lane-utilization analysis
        (:func:`repro.simd.analysis.lane_utilization_report`).
        """
        stages: dict[str, dict[str, float | int]] = {}
        for row, name in enumerate(self._STAGES):
            counts = self._counts[row, : self.iterations]
            if counts.size:
                stages[name] = {
                    "mean": float(counts.mean()),
                    "min": int(counts.min()),
                    "max": int(counts.max()),
                    "total": int(counts.sum()),
                }
            else:
                stages[name] = {"mean": 0.0, "min": 0, "max": 0, "total": 0}
        return {
            "iterations": self.iterations,
            "retries": self.retries,
            "stages": stages,
        }
