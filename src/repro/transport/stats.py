"""Unified per-stage transport statistics for both schedules.

:class:`TransportStats` records how many particles each stage processed per
*dispatch* — one row per event-loop cycle on the banked schedule, one row
per particle history on the scalar schedule.  Under the same seed the two
schedules execute the same physics work in a different order, so the
**column totals agree exactly** between backends (same flights, collisions
and crossings), while the row structure exposes each schedule's shape:
event rows shrink as the generation drains (the lane-utilization story),
history rows show the per-history divergence that banking has to absorb.

``EventLoopStats`` remains as a backward-compatible alias in
:mod:`repro.transport.events`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransportStats"]


class TransportStats:
    """Per-stage particle counts — the queue-occupancy profile of a
    transport schedule (used to study lane utilization / divergence).

    Backed by one amortized-doubling ``(3, capacity)`` int64 array rather
    than unbounded Python lists; ``lookup_counts`` / ``collision_counts`` /
    ``crossing_counts`` are zero-copy views of the recorded prefix.
    """

    _STAGES = ("lookup", "collision", "crossing")

    def __init__(self) -> None:
        self.iterations = 0
        self._counts = np.zeros((3, 16), dtype=np.int64)
        #: Aborted-and-reissued operations (stalled PCIe shipments re-sent
        #: under a retry policy) — recovery work, not physics work.
        self.retries = 0
        #: Gather-locality accumulators: sum of |stride| between consecutive
        #: union-grid gather indices, and the number of strides observed.
        #: Recorded by the event schedule in the order the XS-lookup stage
        #: actually walks the bank, so the energy-sorted bank policy is
        #: directly observable (mean stride collapses toward ~0-1) instead
        #: of inferred from wall time.
        self._gather_stride_sum = 0
        self._gather_stride_n = 0

    def record_retries(self, n: int = 1) -> None:
        """Count ``n`` aborted-and-reissued operations for this run."""
        self.retries += int(n)

    def record_gather_indices(self, indices: np.ndarray) -> None:
        """Accumulate the stride profile of one union-grid gather stream.

        ``indices`` are the grid intervals a lookup dispatch gathers from,
        in dispatch order.  A fully energy-sorted bank yields near-zero
        strides (sequential walks of the grid); an unsorted bank yields
        strides on the order of the grid size.
        """
        indices = np.asarray(indices)
        if indices.size < 2:
            return
        strides = np.abs(np.diff(indices.astype(np.int64)))
        self._gather_stride_sum += int(strides.sum())
        self._gather_stride_n += strides.size

    @property
    def gather_mean_stride(self) -> float | None:
        """Mean absolute union-grid gather stride, or ``None`` when no
        gather stream was recorded (history schedule, no union grid)."""
        if self._gather_stride_n == 0:
            return None
        return self._gather_stride_sum / self._gather_stride_n

    def record(self, n_lookup: int, n_collision: int, n_crossing: int) -> None:
        i = self.iterations
        if i >= self._counts.shape[1]:
            grown = np.zeros((3, 2 * self._counts.shape[1]), dtype=np.int64)
            grown[:, :i] = self._counts
            self._counts = grown
        self._counts[0, i] = n_lookup
        self._counts[1, i] = n_collision
        self._counts[2, i] = n_crossing
        self.iterations = i + 1

    @property
    def lookup_counts(self) -> np.ndarray:
        return self._counts[0, : self.iterations]

    @property
    def collision_counts(self) -> np.ndarray:
        return self._counts[1, : self.iterations]

    @property
    def crossing_counts(self) -> np.ndarray:
        return self._counts[2, : self.iterations]

    def summary(self) -> dict:
        """Per-stage occupancy statistics over the recorded dispatches.

        Returns ``{"iterations": n, "stages": {name: {"mean", "min",
        "max", "total"}}}`` — the inputs to the lane-utilization analysis
        (:func:`repro.simd.analysis.lane_utilization_report`).
        """
        stages: dict[str, dict[str, float | int]] = {}
        for row, name in enumerate(self._STAGES):
            counts = self._counts[row, : self.iterations]
            if counts.size:
                stages[name] = {
                    "mean": float(counts.mean()),
                    "min": int(counts.min()),
                    "max": int(counts.max()),
                    "total": int(counts.sum()),
                }
            else:
                stages[name] = {"mean": 0.0, "min": 0, "max": 0, "total": 0}
        return {
            "iterations": self.iterations,
            "retries": self.retries,
            "stages": stages,
            "gather": {
                "mean_stride": self.gather_mean_stride,
                "strides": self._gather_stride_n,
            },
        }
