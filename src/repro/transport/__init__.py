"""Transport core: particles, tallies, history & event loops, simulation."""

from .context import FREE_GAS_CUTOFF, TransportContext
from .delta import MajorantXS, fold_reflective, run_generation_delta
from .entropy import EntropyMesh, shannon_entropy
from .events import EventLoopStats, run_generation_event
from .history import run_generation_history, transport_history
from .meshtally import PowerTally
from .particle import FissionBank, FissionSite, Particle, ParticleBank
from .spectrum import SpectrumTally
from .statistics import EfficiencyComparison, figure_of_merit, fom_of_result
from .simulation import Settings, Simulation, SimulationResult
from .tally import BatchStatistics, GlobalTallies, TallyResult

__all__ = [
    "FREE_GAS_CUTOFF",
    "TransportContext",
    "MajorantXS",
    "fold_reflective",
    "run_generation_delta",
    "EntropyMesh",
    "shannon_entropy",
    "EventLoopStats",
    "run_generation_event",
    "run_generation_history",
    "transport_history",
    "PowerTally",
    "SpectrumTally",
    "EfficiencyComparison",
    "figure_of_merit",
    "fom_of_result",
    "FissionBank",
    "FissionSite",
    "Particle",
    "ParticleBank",
    "Settings",
    "Simulation",
    "SimulationResult",
    "BatchStatistics",
    "GlobalTallies",
    "TallyResult",
]
