"""Transport core: stage kernels, schedules (backends), tallies, simulation.

The physics lives once, in :mod:`repro.transport.stages`; the history,
event, and delta modules are *schedules* over those kernels, selected by
name through the backend registry (:mod:`repro.transport.backends`).
"""

from .backends import (
    DeltaBackend,
    EventBackend,
    HistoryBackend,
    TransportBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .context import FREE_GAS_CUTOFF, TransportContext
from .delta import MajorantXS, fold_reflective, run_generation_delta
from .entropy import EntropyMesh, shannon_entropy
from .events import EventLoopStats, run_generation_event
from .history import run_generation_history, transport_history
from .meshtally import PowerTally
from .particle import FissionBank, FissionSite, Particle, ParticleBank
from .spectrum import SpectrumTally
from .stages import STAGE_KERNELS, SigmaTables, StageKernel
from .statistics import EfficiencyComparison, figure_of_merit, fom_of_result
from .stats import TransportStats
from .simulation import Settings, Simulation, SimulationResult
from .tally import BatchStatistics, GlobalTallies, TallyResult

__all__ = [
    "FREE_GAS_CUTOFF",
    "TransportContext",
    "TransportBackend",
    "TransportStats",
    "HistoryBackend",
    "EventBackend",
    "DeltaBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "StageKernel",
    "STAGE_KERNELS",
    "SigmaTables",
    "MajorantXS",
    "fold_reflective",
    "run_generation_delta",
    "EntropyMesh",
    "shannon_entropy",
    "EventLoopStats",
    "run_generation_event",
    "run_generation_history",
    "transport_history",
    "PowerTally",
    "SpectrumTally",
    "EfficiencyComparison",
    "figure_of_merit",
    "fom_of_result",
    "FissionBank",
    "FissionSite",
    "Particle",
    "ParticleBank",
    "Settings",
    "Simulation",
    "SimulationResult",
    "BatchStatistics",
    "GlobalTallies",
    "TallyResult",
]
