"""Batched eigenvalue simulation: the power-iteration driver.

Runs the standard Monte Carlo k-eigenvalue scheme the paper's OpenMC
experiments use: an initial fission source sampled in the fuel, a number of
**inactive batches** (source convergence, monitored by Shannon entropy, no
tallies reported) followed by **active batches** whose tallies accumulate the
k-effective estimators.  Either transport algorithm — history or event —
drives a generation; both produce identical results by construction.

The headline metric is the paper's *calculation rate* (simulated neutrons
per second), reported both measured (wall clock of this Python
implementation) and as raw work counters for the machine model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..constants import ENERGY_MAX
from ..data.library import NuclideLibrary
from ..data.unionized import UnionizedGrid
from ..errors import ExecutionError
from ..geometry.hoogenboom import (
    ACTIVE_HALF_HEIGHT,
    ASSEMBLY_PITCH,
    CORE_SIZE,
    MAT_FUEL,
    PIN_PITCH,
)
from ..work import WorkCounters
from .context import TransportContext
from .entropy import EntropyMesh
from .events import run_generation_event
from .history import run_generation_history
from .meshtally import PowerTally
from .tally import BatchStatistics, GlobalTallies, TallyResult

__all__ = ["Settings", "SimulationResult", "Simulation"]


@dataclass(frozen=True)
class Settings:
    """Simulation controls.

    ``mode`` selects the transport algorithm: ``"history"`` (scalar,
    OpenMC-style), ``"event"`` (banked, vectorized), or ``"delta"``
    (Woodcock delta tracking against a majorant cross section).
    """

    n_particles: int = 1000
    n_inactive: int = 2
    n_active: int = 5
    seed: int = 1
    mode: str = "history"
    pincell: bool = False
    use_sab: bool = True
    use_urr: bool = True
    use_union_grid: bool = True
    use_fast_geometry: bool = True
    #: Implicit capture + Russian roulette (variance reduction) instead of
    #: analog absorption.
    survival_biasing: bool = False
    #: Accumulate an assembly-resolved power map over active batches.
    tally_power: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("history", "event", "delta"):
            raise ExecutionError(f"unknown transport mode {self.mode!r}")
        if self.n_particles < 1 or self.n_active < 1:
            raise ExecutionError("need n_particles >= 1 and n_active >= 1")
        if self.mode == "delta":
            if self.tally_power:
                raise ExecutionError(
                    "delta tracking does not score track-length tallies "
                    "(no power map); use history or event mode"
                )
            if not self.use_union_grid:
                raise ExecutionError("delta tracking requires the union grid")


@dataclass
class SimulationResult:
    """Outcome of a batched eigenvalue run."""

    statistics: BatchStatistics
    counters: WorkCounters
    wall_time: float
    n_particles: int
    n_batches: int
    mode: str
    #: Assembly power map accumulated over active batches (when
    #: ``Settings.tally_power`` was set).
    power: "PowerTally | None" = None

    @property
    def k_effective(self) -> TallyResult:
        """Combined k estimate.

        Collision/absorption/track-length for the surface-tracking modes;
        delta tracking scores no track-length estimator, so its combination
        uses the first two only.
        """
        if self.mode == "delta":
            combined = [
                0.5 * (a + b)
                for a, b in zip(
                    self.statistics.k_collision, self.statistics.k_absorption
                )
            ]
            stats = BatchStatistics(n_inactive=self.statistics.n_inactive)
            stats.k_collision = combined
            return stats._stat(combined)
        return self.statistics.combined_k()

    @property
    def calculation_rate(self) -> float:
        """Measured neutrons simulated per wall-clock second (the paper's
        headline metric, here for the Python implementation)."""
        total = self.n_particles * self.n_batches
        return total / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def entropy_trace(self) -> list[float]:
        return self.statistics.entropy


class Simulation:
    """A batched eigenvalue calculation over a built transport context."""

    def __init__(
        self,
        library: NuclideLibrary,
        settings: Settings,
        context: TransportContext | None = None,
    ) -> None:
        self.library = library
        self.settings = settings
        if context is None:
            union = (
                UnionizedGrid(library) if settings.use_union_grid else None
            )
            context = TransportContext.create(
                library,
                pincell=settings.pincell,
                union=union,
                use_sab=settings.use_sab,
                use_urr=settings.use_urr,
                use_fast_geometry=settings.use_fast_geometry,
                master_seed=settings.seed,
                survival_biasing=settings.survival_biasing,
            )
        self.ctx = context
        half = (
            0.5 * PIN_PITCH
            if settings.pincell
            else 0.5 * CORE_SIZE * ASSEMBLY_PITCH
        )
        self.mesh = EntropyMesh(
            lower=(-half, -half, -ACTIVE_HALF_HEIGHT),
            upper=(half, half, ACTIVE_HALF_HEIGHT),
            shape=(8, 8, 8) if not settings.pincell else (2, 2, 8),
        )
        self._source_rng = np.random.default_rng(settings.seed)

    # -- Source ----------------------------------------------------------------

    def initial_source(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Uniform fission source in the fuel (rejection sampled) with a
        Watt birth spectrum."""
        rng = self._source_rng
        if self.settings.pincell:
            half, zmax = 0.5 * PIN_PITCH, ACTIVE_HALF_HEIGHT
        else:
            half, zmax = 0.5 * CORE_SIZE * ASSEMBLY_PITCH, ACTIVE_HALF_HEIGHT
        positions = np.empty((n, 3))
        filled = 0
        while filled < n:
            m = max(4 * (n - filled), 64)
            cand = np.column_stack(
                [
                    rng.uniform(-half, half, m),
                    rng.uniform(-half, half, m),
                    rng.uniform(-zmax, zmax, m),
                ]
            )
            ok = self.ctx.fast.locate_many(cand) == MAT_FUEL
            take = min(int(ok.sum()), n - filled)
            positions[filled : filled + take] = cand[ok][:take]
            filled += take
        energies = self._watt_numpy(n, rng)
        return positions, energies

    @staticmethod
    def _watt_numpy(n: int, rng: np.random.Generator, a=0.988, b=2.249) -> np.ndarray:
        """Watt spectrum via the same rejection scheme, on the NumPy RNG
        (the initial guess source need not be stream-reproducible)."""
        k = 1.0 + a * b / 8.0
        ell = a * (k + np.sqrt(k * k - 1.0))
        m = ell / a - 1.0
        out = np.empty(n)
        filled = 0
        while filled < n:
            todo = n - filled
            x = -np.log(rng.random(todo) + 1e-300)
            y = -np.log(rng.random(todo) + 1e-300)
            ok = (y - m * (x + 1.0)) ** 2 <= b * ell * x
            take = int(ok.sum())
            out[filled : filled + take] = ell * x[ok]
            filled += take
        return np.clip(out, 1e-11, ENERGY_MAX)

    # -- Driver ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        s = self.settings
        n_batches = s.n_inactive + s.n_active
        stats = BatchStatistics(n_inactive=s.n_inactive)
        positions, energies = self.initial_source(s.n_particles)
        if s.mode == "history":
            run_generation = run_generation_history
        elif s.mode == "event":
            run_generation = run_generation_event
        else:  # delta
            from .delta import MajorantXS, run_generation_delta

            majorant = MajorantXS(self.ctx)

            def run_generation(ctx, pos, en, tallies, k_norm, first_id, power=None):
                return run_generation_delta(
                    ctx, pos, en, tallies, k_norm, first_id, majorant=majorant
                )

        power: PowerTally | None = None
        if s.tally_power:
            if s.pincell:
                half = 0.5 * PIN_PITCH
                power = PowerTally(shape=(1, 1), half_width=half)
            else:
                power = PowerTally()

        t0 = time.perf_counter()
        id_offset = 0
        for batch in range(n_batches):
            tallies = GlobalTallies()
            k_norm = stats.running_k()
            active = batch >= s.n_inactive
            bank = run_generation(
                self.ctx,
                positions,
                energies,
                tallies,
                k_norm=k_norm,
                first_id=id_offset,
                power=power if active else None,
            )
            id_offset += s.n_particles
            if len(bank) == 0:
                raise ExecutionError(
                    "fission source died out — increase particles or check "
                    "material compositions"
                )
            stats.record(tallies, self.mesh.entropy(bank.positions))
            if power is not None and active:
                power.end_batch(tallies.source_weight)
            positions, energies = bank.sample_source(
                s.n_particles, self._source_rng
            )
        wall = time.perf_counter() - t0

        return SimulationResult(
            statistics=stats,
            counters=self.ctx.counters,
            wall_time=wall,
            n_particles=s.n_particles,
            n_batches=n_batches,
            mode=s.mode,
            power=power,
        )
