"""Batched eigenvalue simulation: the power-iteration driver.

Runs the standard Monte Carlo k-eigenvalue scheme the paper's OpenMC
experiments use: an initial fission source sampled in the fuel, a number of
**inactive batches** (source convergence, monitored by Shannon entropy, no
tallies reported) followed by **active batches** whose tallies accumulate the
k-effective estimators.  Either transport algorithm — history or event —
drives a generation; both produce identical results by construction.

The headline metric is the paper's *calculation rate* (simulated neutrons
per second), reported both measured (wall clock of this Python
implementation) and as raw work counters for the machine model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..constants import ENERGY_MAX
from ..data.library import NuclideLibrary
from ..data.unionized import UnionizedGrid
from ..errors import ExecutionError
from ..geometry.hoogenboom import (
    ACTIVE_HALF_HEIGHT,
    ASSEMBLY_PITCH,
    MAT_FUEL,
    PIN_PITCH,
    pattern_from_rows,
)
from ..profiling.timers import Profile, TimerRegistry
from ..resilience.checkpoint import (
    CheckpointState,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
    settings_fingerprint,
)
from ..resilience.faults import FaultPlan, SimulatedCrash
from ..work import WorkCounters
from .backends import available_backends, get_backend
from .context import TransportContext
from .entropy import EntropyMesh
from .meshtally import PowerTally
from .tally import BatchStatistics, GlobalTallies, TallyResult

__all__ = ["Settings", "SimulationResult", "Simulation"]


@dataclass(frozen=True)
class Settings:
    """Simulation controls.

    ``mode`` selects the transport backend by registry name
    (:func:`repro.transport.backends.available_backends`): ``"history"``
    (scalar, OpenMC-style), ``"event"`` (banked, vectorized),
    ``"delta"`` (Woodcock delta tracking against a majorant cross
    section), or ``"numba-event"`` (the event schedule with the
    compiled-kernel XS tier and an energy-sorted bank; runs the NumPy
    fallback, bit-identically, when numba is not installed).
    """

    n_particles: int = 1000
    n_inactive: int = 2
    n_active: int = 5
    seed: int = 1
    mode: str = "history"
    pincell: bool = False
    use_sab: bool = True
    use_urr: bool = True
    use_union_grid: bool = True
    use_fast_geometry: bool = True
    #: Implicit capture + Russian roulette (variance reduction) instead of
    #: analog absorption.
    survival_biasing: bool = False
    #: Accumulate an assembly-resolved power map over active batches.
    tally_power: bool = False
    #: Soluble-boron concentration of the moderator [ppm].
    boron_ppm: float = 600.0
    #: Scale factor on the U-235 fuel density (enrichment sweeps).
    enrichment_scale: float = 1.0
    #: Explicit fuel isotopics: ``(nuclide, number_density)`` pairs applied
    #: over the model census (the scenario system's MOX/depletion channel).
    fuel_overrides: tuple = ()
    #: Declarative core footprint: rows of ``F``/``W`` characters, square.
    #: Empty means the canonical 241-assembly Hoogenboom-Martin map.
    #: Ignored for pin-cell runs.
    core_pattern: tuple = ()
    #: Watt fission-spectrum parameters of the initial guess source.
    source_watt_a: float = 0.988
    source_watt_b: float = 2.249
    #: Write a checkpoint every N recorded batches (0 disables).
    checkpoint_every: int = 0
    #: Directory receiving checkpoint files (required when checkpointing).
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in available_backends():
            raise ExecutionError(
                f"unknown transport mode {self.mode!r}; "
                f"available: {', '.join(available_backends())}"
            )
        if self.n_particles < 1 or self.n_active < 1:
            raise ExecutionError("need n_particles >= 1 and n_active >= 1")
        # JSON round-trips deliver lists; canonicalize to tuples so frozen
        # Settings compare (and fingerprint) identically either way.
        object.__setattr__(
            self,
            "fuel_overrides",
            tuple((str(n), float(r)) for n, r in self.fuel_overrides),
        )
        object.__setattr__(
            self, "core_pattern", tuple(str(r) for r in self.core_pattern)
        )
        if not (self.boron_ppm >= 0.0):
            raise ExecutionError("boron_ppm must be >= 0")
        if not (self.enrichment_scale > 0.0):
            raise ExecutionError("enrichment_scale must be > 0")
        for nuc, rho in self.fuel_overrides:
            if not (rho > 0.0):
                raise ExecutionError(
                    f"fuel override {nuc!r} needs a positive density"
                )
        if self.core_pattern:
            # Parse eagerly: a malformed lattice should fail at Settings
            # construction, not batches later inside a worker.
            pattern_from_rows(self.core_pattern)
        if self.checkpoint_every < 0:
            raise ExecutionError("checkpoint_every must be >= 0")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ExecutionError(
                "checkpoint_every > 0 requires checkpoint_dir"
            )
        if self.mode == "delta":
            if self.tally_power:
                raise ExecutionError(
                    "delta tracking does not score track-length tallies "
                    "(no power map); use history or event mode"
                )
            if not self.use_union_grid:
                raise ExecutionError("delta tracking requires the union grid")


@dataclass
class SimulationResult:
    """Outcome of a batched eigenvalue run."""

    statistics: BatchStatistics
    counters: WorkCounters
    wall_time: float
    n_particles: int
    n_batches: int
    mode: str
    #: Assembly power map accumulated over active batches (when
    #: ``Settings.tally_power`` was set).
    power: "PowerTally | None" = None
    #: Routine profile (transport, checkpoint write/restore); for resumed
    #: runs this is the merge of all segments' profiles.
    profile: Profile | None = None

    @property
    def k_effective(self) -> TallyResult:
        """Combined k estimate.

        Collision/absorption/track-length for the surface-tracking modes;
        delta tracking scores no track-length estimator, so its combination
        uses the first two only.
        """
        if self.mode == "delta":
            combined = [
                0.5 * (a + b)
                for a, b in zip(
                    self.statistics.k_collision, self.statistics.k_absorption
                )
            ]
            stats = BatchStatistics(n_inactive=self.statistics.n_inactive)
            stats.k_collision = combined
            return stats._stat(combined)
        return self.statistics.combined_k()

    @property
    def calculation_rate(self) -> float:
        """Measured neutrons simulated per wall-clock second (the paper's
        headline metric, here for the Python implementation)."""
        total = self.n_particles * self.n_batches
        return total / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def entropy_trace(self) -> list[float]:
        return self.statistics.entropy


class Simulation:
    """A batched eigenvalue calculation over a built transport context."""

    def __init__(
        self,
        library: NuclideLibrary,
        settings: Settings,
        context: TransportContext | None = None,
    ) -> None:
        self.library = library
        self.settings = settings
        if context is None:
            union = (
                UnionizedGrid(library) if settings.use_union_grid else None
            )
            context = TransportContext.create(
                library,
                pincell=settings.pincell,
                union=union,
                use_sab=settings.use_sab,
                use_urr=settings.use_urr,
                use_fast_geometry=settings.use_fast_geometry,
                master_seed=settings.seed,
                survival_biasing=settings.survival_biasing,
                boron_ppm=settings.boron_ppm,
                enrichment_scale=settings.enrichment_scale,
                fuel_overrides=settings.fuel_overrides,
                core_pattern=settings.core_pattern,
            )
        self.ctx = context
        # Core extent comes from the context's geometry, so custom lattice
        # footprints (scenarios) get a matching mesh and source region.
        half = (
            0.5 * PIN_PITCH if settings.pincell else self.ctx.fast.half_core
        )
        self.mesh = EntropyMesh(
            lower=(-half, -half, -ACTIVE_HALF_HEIGHT),
            upper=(half, half, ACTIVE_HALF_HEIGHT),
            shape=(8, 8, 8) if not settings.pincell else (2, 2, 8),
        )
        self._source_rng = np.random.default_rng(settings.seed)
        #: Static timers: transport generations plus checkpoint write/restore.
        self.timers = TimerRegistry("simulation")

    # -- Source ----------------------------------------------------------------

    def initial_source(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Uniform fission source in the fuel (rejection sampled) with a
        Watt birth spectrum."""
        rng = self._source_rng
        if self.settings.pincell:
            half, zmax = 0.5 * PIN_PITCH, ACTIVE_HALF_HEIGHT
        else:
            half, zmax = self.ctx.fast.half_core, ACTIVE_HALF_HEIGHT
        positions = np.empty((n, 3))
        filled = 0
        while filled < n:
            m = max(4 * (n - filled), 64)
            cand = np.column_stack(
                [
                    rng.uniform(-half, half, m),
                    rng.uniform(-half, half, m),
                    rng.uniform(-zmax, zmax, m),
                ]
            )
            ok = self.ctx.fast.locate_many(cand) == MAT_FUEL
            take = min(int(ok.sum()), n - filled)
            positions[filled : filled + take] = cand[ok][:take]
            filled += take
        energies = self._watt_numpy(
            n, rng, a=self.settings.source_watt_a,
            b=self.settings.source_watt_b,
        )
        return positions, energies

    @staticmethod
    def _watt_numpy(n: int, rng: np.random.Generator, a=0.988, b=2.249) -> np.ndarray:
        """Watt spectrum via the same rejection scheme, on the NumPy RNG
        (the initial guess source need not be stream-reproducible)."""
        k = 1.0 + a * b / 8.0
        ell = a * (k + np.sqrt(k * k - 1.0))
        m = ell / a - 1.0
        out = np.empty(n)
        filled = 0
        while filled < n:
            todo = n - filled
            x = -np.log(rng.random(todo) + 1e-300)
            y = -np.log(rng.random(todo) + 1e-300)
            ok = (y - m * (x + 1.0)) ** 2 <= b * ell * x
            take = int(ok.sum())
            out[filled : filled + take] = ell * x[ok]
            filled += take
        return np.clip(out, 1e-11, ENERGY_MAX)

    # -- Checkpointing -----------------------------------------------------------

    def _write_checkpoint(
        self,
        batches_done: int,
        id_offset: int,
        stats: BatchStatistics,
        positions: np.ndarray,
        energies: np.ndarray,
        power: "PowerTally | None",
        elapsed_seconds: float,
    ):
        """Snapshot full between-batch state to the configured directory."""
        power_state = None
        if power is not None:
            power_state = {
                "shape": power.shape,
                "half_width": power.half_width,
                "n_batches": power.n_batches,
                "sum": power._sum,
                "sum_sq": power._sum_sq,
            }
        state = CheckpointState(
            batches_done=batches_done,
            id_offset=id_offset,
            n_inactive=stats.n_inactive,
            fingerprint=settings_fingerprint(self.settings),
            positions=positions,
            energies=energies,
            k_collision=stats.k_collision,
            k_absorption=stats.k_absorption,
            k_track=stats.k_track,
            entropy=stats.entropy,
            source_rng_state=self._source_rng.bit_generator.state,
            counters=self.ctx.counters.as_dict(),
            elapsed_seconds=elapsed_seconds,
            profile_json=self.timers.profile.to_json(),
            power=power_state,
        )
        path = checkpoint_path(self.settings.checkpoint_dir, batches_done)
        return save_checkpoint(state, path, timers=self.timers)

    def _restore(self, resume_from, power: "PowerTally | None"):
        """Load a checkpoint and rebuild driver state from it."""
        state = load_checkpoint(
            resume_from,
            expect_fingerprint=settings_fingerprint(self.settings),
            timers=self.timers,
        )
        stats = BatchStatistics(n_inactive=self.settings.n_inactive)
        stats.k_collision = list(state.k_collision)
        stats.k_absorption = list(state.k_absorption)
        stats.k_track = list(state.k_track)
        stats.entropy = list(state.entropy)
        self._source_rng.bit_generator.state = state.source_rng_state
        for name, value in state.counters.items():
            setattr(self.ctx.counters, name, int(value))
        if power is not None and state.power is not None:
            power._sum[:] = state.power["sum"]
            power._sum_sq[:] = state.power["sum_sq"]
            power.n_batches = int(state.power["n_batches"])
        if state.profile_json:
            self.timers.profile = Profile.from_json(state.profile_json).merge(
                self.timers.profile, label=self.timers.profile.label
            )
        return state, stats

    # -- Driver ------------------------------------------------------------------

    def run(
        self,
        *,
        resume_from=None,
        fault_plan: FaultPlan | None = None,
        on_batch=None,
    ) -> SimulationResult:
        """Run the power iteration, optionally resuming from a checkpoint.

        ``resume_from`` names a checkpoint file written by an earlier
        (interrupted) run under physics-identical settings; the resumed run
        is bit-identical to an uninterrupted one.  ``fault_plan`` injects
        deterministic failures (a scheduled ``MID_BATCH_KILL`` raises
        :class:`~repro.resilience.faults.SimulatedCrash` after the batch's
        transport but before any state is recorded — the worst-case loss).

        ``on_batch(batch, seconds, n_particles)`` is called after each
        batch's transport with the batch index and its wall time — the
        supervision hook (:meth:`repro.supervise.Supervisor.batch_callback`
        builds one).  The observer sees timing only, never tallies or
        banks, so it cannot perturb the physics; an observer that raises
        (a batch deadline) aborts the run with its typed error.
        """
        s = self.settings
        n_batches = s.n_inactive + s.n_active
        # One backend instance for the whole run, so per-run caches (the
        # delta majorant) are built once and reused across batches.
        backend = get_backend(s.mode)

        power: PowerTally | None = None
        if s.tally_power:
            if s.pincell:
                half = 0.5 * PIN_PITCH
                power = PowerTally(shape=(1, 1), half_width=half)
            else:
                # One mesh cell per assembly footprint position; the H.M.
                # default reproduces PowerTally's canonical 17x17 mesh.
                n_pat = self.ctx.fast.n_pattern
                power = PowerTally(
                    shape=(n_pat, n_pat),
                    half_width=0.5 * n_pat * ASSEMBLY_PITCH,
                )

        if resume_from is not None:
            state, stats = self._restore(resume_from, power)
            positions, energies = state.positions, state.energies
            start_batch = state.batches_done
            id_offset = state.id_offset
            prior_elapsed = state.elapsed_seconds
        else:
            stats = BatchStatistics(n_inactive=s.n_inactive)
            positions, energies = self.initial_source(s.n_particles)
            start_batch = 0
            id_offset = 0
            prior_elapsed = 0.0

        t0 = time.perf_counter()
        for batch in range(start_batch, n_batches):
            tallies = GlobalTallies()
            k_norm = stats.running_k()
            active = batch >= s.n_inactive
            batch_t0 = time.perf_counter()
            with self.timers.timer("transport_generation"):
                bank = backend.run_generation(
                    self.ctx,
                    positions,
                    energies,
                    tallies,
                    k_norm=k_norm,
                    first_id=id_offset,
                    power=power if active else None,
                )
            if on_batch is not None:
                on_batch(
                    batch, time.perf_counter() - batch_t0, s.n_particles
                )
            if fault_plan is not None and fault_plan.kills_at(batch):
                # The process dies with a full generation transported but
                # nothing recorded — the most work a checkpoint can lose.
                raise SimulatedCrash(
                    f"injected mid-batch kill during batch {batch}"
                )
            id_offset += s.n_particles
            if len(bank) == 0:
                raise ExecutionError(
                    "fission source died out — increase particles or check "
                    "material compositions"
                )
            stats.record(tallies, self.mesh.entropy(bank.positions))
            if power is not None and active:
                power.end_batch(tallies.source_weight)
            positions, energies = bank.sample_source(
                s.n_particles, self._source_rng
            )
            if s.checkpoint_every and (batch + 1) % s.checkpoint_every == 0:
                self._write_checkpoint(
                    batch + 1,
                    id_offset,
                    stats,
                    positions,
                    energies,
                    power,
                    prior_elapsed + time.perf_counter() - t0,
                )
        wall = prior_elapsed + (time.perf_counter() - t0)

        return SimulationResult(
            statistics=stats,
            counters=self.ctx.counters,
            wall_time=wall,
            n_particles=s.n_particles,
            n_batches=n_batches,
            mode=s.mode,
            power=power,
            profile=self.timers.profile,
        )
