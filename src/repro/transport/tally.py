r"""Global tallies and k-effective estimators.

OpenMC's default global tallies — the ones the paper's experiments collect —
are total **collisions**, **absorptions**, and **track lengths**, each of
which yields an estimator of :math:`k_\mathrm{eff}`:

* collision estimator:  :math:`k_c = \sum_i w_i\, \nu\Sigma_f/\Sigma_t` over
  collision sites;
* absorption estimator: :math:`k_a = \sum_i w_i\, \nu\Sigma_f/\Sigma_a` over
  absorption sites;
* track-length estimator: :math:`k_t = \sum_i w_i\, d_i\, \nu\Sigma_f` over
  flight segments.

Each is normalized by the batch's source weight.  :class:`BatchStatistics`
accumulates per-batch values and reports mean and standard error over active
batches, exactly the inactive/active split of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GlobalTallies", "BatchStatistics", "TallyResult"]


@dataclass
class GlobalTallies:
    """Within-batch accumulators (reset at every batch boundary)."""

    collision: float = 0.0
    absorption: float = 0.0
    track_length: float = 0.0
    #: Statistical weight of the batch source (the normalization).
    source_weight: float = 0.0
    #: Raw event counts (diagnostics, not estimators).
    n_collisions: int = 0
    n_absorptions: int = 0
    n_leaks: int = 0

    def score_collision(self, weight: float, nu_sigma_f: float, sigma_t: float) -> None:
        if sigma_t > 0.0:
            self.collision += weight * nu_sigma_f / sigma_t
        self.n_collisions += 1

    def score_collision_many(
        self, weight: np.ndarray, nu_sigma_f: np.ndarray, sigma_t: np.ndarray
    ) -> None:
        ok = sigma_t > 0.0
        self.collision += float(np.sum(weight[ok] * nu_sigma_f[ok] / sigma_t[ok]))
        self.n_collisions += int(weight.shape[0])

    def score_absorption(
        self, weight: float, nu_sigma_f: float, sigma_a: float
    ) -> None:
        if sigma_a > 0.0:
            self.absorption += weight * nu_sigma_f / sigma_a
        self.n_absorptions += 1

    def score_absorption_many(
        self, weight: np.ndarray, nu_sigma_f: np.ndarray, sigma_a: np.ndarray
    ) -> None:
        ok = sigma_a > 0.0
        self.absorption += float(np.sum(weight[ok] * nu_sigma_f[ok] / sigma_a[ok]))
        self.n_absorptions += int(weight.shape[0])

    def score_track(self, weight: float, distance: float, nu_sigma_f: float) -> None:
        self.track_length += weight * distance * nu_sigma_f

    def score_track_many(
        self, weight: np.ndarray, distance: np.ndarray, nu_sigma_f: np.ndarray
    ) -> None:
        self.track_length += float(np.sum(weight * distance * nu_sigma_f))

    # -- Batch estimators -----------------------------------------------------------

    def k_collision(self) -> float:
        return self.collision / self.source_weight if self.source_weight else 0.0

    def k_absorption(self) -> float:
        return self.absorption / self.source_weight if self.source_weight else 0.0

    def k_track_length(self) -> float:
        return self.track_length / self.source_weight if self.source_weight else 0.0

    def reset(self) -> None:
        self.collision = 0.0
        self.absorption = 0.0
        self.track_length = 0.0
        self.source_weight = 0.0
        self.n_collisions = 0
        self.n_absorptions = 0
        self.n_leaks = 0

    def as_array(self) -> np.ndarray:
        """Dense packing used by the simulated MPI reduction — the payload
        whose reduce cost the cluster model charges per batch."""
        return np.array(
            [
                self.collision,
                self.absorption,
                self.track_length,
                self.source_weight,
                float(self.n_collisions),
                float(self.n_absorptions),
                float(self.n_leaks),
            ]
        )

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "GlobalTallies":
        t = cls()
        (
            t.collision,
            t.absorption,
            t.track_length,
            t.source_weight,
            nc,
            na,
            nl,
        ) = (float(v) for v in arr)
        t.n_collisions = int(nc)
        t.n_absorptions = int(na)
        t.n_leaks = int(nl)
        return t

    def merge_from(self, other: "GlobalTallies") -> None:
        """Accumulate another partial tally into this one (rank/slice
        reduction).  All fields are sums, so merging is exact and
        order-independent up to float addition order — schedulers that need
        bit-parity with a serial run must merge in rank order."""
        self.collision += other.collision
        self.absorption += other.absorption
        self.track_length += other.track_length
        self.source_weight += other.source_weight
        self.n_collisions += other.n_collisions
        self.n_absorptions += other.n_absorptions
        self.n_leaks += other.n_leaks


@dataclass
class TallyResult:
    """Mean and standard error of one estimator over active batches."""

    mean: float
    std_err: float
    n_batches: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.5f} +/- {self.std_err:.5f} ({self.n_batches} batches)"


@dataclass
class BatchStatistics:
    """Per-batch k estimates with the inactive/active split."""

    n_inactive: int
    k_collision: list[float] = field(default_factory=list)
    k_absorption: list[float] = field(default_factory=list)
    k_track: list[float] = field(default_factory=list)
    entropy: list[float] = field(default_factory=list)

    def record(self, tallies: GlobalTallies, entropy: float | None = None) -> None:
        self.k_collision.append(tallies.k_collision())
        self.k_absorption.append(tallies.k_absorption())
        self.k_track.append(tallies.k_track_length())
        if entropy is not None:
            self.entropy.append(entropy)

    @property
    def n_batches(self) -> int:
        return len(self.k_collision)

    @property
    def n_active(self) -> int:
        return max(0, self.n_batches - self.n_inactive)

    def _stat(self, values: list[float]) -> TallyResult:
        active = np.array(values[self.n_inactive:])
        if active.size == 0:
            return TallyResult(mean=float("nan"), std_err=float("nan"), n_batches=0)
        mean = float(active.mean())
        if active.size > 1:
            err = float(active.std(ddof=1) / np.sqrt(active.size))
        else:
            err = float("inf")
        return TallyResult(mean=mean, std_err=err, n_batches=int(active.size))

    def result_collision(self) -> TallyResult:
        return self._stat(self.k_collision)

    def result_absorption(self) -> TallyResult:
        return self._stat(self.k_absorption)

    def result_track(self) -> TallyResult:
        return self._stat(self.k_track)

    def combined_k(self) -> TallyResult:
        """Equal-weight combination of the three estimators per batch."""
        combined = [
            (a + b + c) / 3.0
            for a, b, c in zip(self.k_collision, self.k_absorption, self.k_track)
        ]
        return self._stat(combined)

    def running_k(self) -> float:
        """Best current k estimate for source normalization (collision
        estimator mean over all batches so far, or 1 before any batch)."""
        if not self.k_collision:
            return 1.0
        return float(np.mean(self.k_collision))
