r"""Compiled stage kernels over the flat SoA side-tables.

Each kernel is the loop-nest form of one banked NumPy apply, compiled with
:func:`~repro.transport.jit.shim.njit` when numba is present (and a
plain-Python twin otherwise — slow, but bit-exact, which is what the
fallback tests run).  Two rules keep the compiled path **bit-identical**
to the NumPy path it replaces:

1. **Same operations in the same order.**  IEEE-754 ``+ - * /`` are
   correctly rounded, so a scalar loop that performs *exactly* the ops of
   the vectorized expression — ``(E - e0)/(e1 - e0)`` clipped, then
   ``lo*g + hi*f``; accumulation strictly nuclide-row by nuclide-row, the
   order of NumPy's strided ``np.add.reduce`` — produces the same bits.
   ``fastmath`` stays off (see the shim) so LLVM may not reassociate or
   contract ``a*b + c`` into an FMA.
2. **No transcendentals.**  ``log``/``cos``/``sin`` are *not* correctly
   rounded and NumPy's SIMD implementations need not agree with libm to
   the last ulp, so flight sampling, Watt rejection, and rotation stay in
   the NumPy stage kernels; the compiled tier covers the search / gather /
   interpolate / accumulate work — the paper's Algorithm-1 bottleneck —
   where exactness is provable.

The kernels mirror, line for line:

* :func:`xs_gather3` — ``XSCalculator._local_indices`` (union-grid branch)
  fused with the SoA three-row gather/interpolation block of
  ``XSCalculator.banked``;
* :func:`xs_gather1` — the one-row gather of
  ``XSCalculator.attribution_weights`` (collision / fission / scatter
  nuclide attribution);
* :func:`accumulate_macro` — the per-nuclide accumulation of
  ``XSCalculator.banked`` (row-by-row, matching both the strided-reduce
  ``N > 1`` path and the explicit ``N == 1`` loop, which share one
  ordering).

Layering: like :mod:`repro.transport.stages`, this package sits at the
bottom of the transport stack and imports nothing above it (rule 7 of
``tools/check_layering.py``).
"""

from __future__ import annotations

from .shim import njit

__all__ = ["xs_gather3", "xs_gather1", "accumulate_macro"]


@njit
def xs_gather3(
    energies,
    union_energy,
    union_indices_flat,
    union_rowoff,
    offsets,
    soa_energy,
    soa_elastic,
    soa_capture,
    soa_fission,
    out_el,
    out_cap,
    out_fis,
):
    """Fused union search + three-reaction SoA gather/interpolation.

    For each particle ``j``: one binary search of the union grid
    (``searchsorted(..., side="right") - 1`` semantics, clipped), then for
    each material nuclide ``k`` a gather of the bracketing grid points and
    the linear interpolation ``lo*g + hi*f`` into the ``(n_nuc, N)``
    output matrices.  Loop order is particle-outer so an energy-sorted
    bank walks each nuclide's grid near-sequentially.
    """
    n = energies.shape[0]
    n_nuc = offsets.shape[0]
    n_union = union_energy.shape[0]
    for j in range(n):
        e = energies[j]
        # Binary search: bisect_right(union_energy, e) - 1, clipped into
        # [0, n_union - 2] — exactly UnionizedGrid.search_many.
        lo = 0
        hi = n_union
        while lo < hi:
            mid = (lo + hi) >> 1
            if union_energy[mid] <= e:
                lo = mid + 1
            else:
                hi = mid
        u = lo - 1
        if u < 0:
            u = 0
        elif u > n_union - 2:
            u = n_union - 2
        for k in range(n_nuc):
            local = union_indices_flat[union_rowoff[k] + u]
            idx = offsets[k] + local
            e0 = soa_energy[idx]
            e1 = soa_energy[idx + 1]
            den = e1 - e0
            f = (e - e0) / den
            if f < 0.0:
                f = 0.0
            elif f > 1.0:
                f = 1.0
            g = 1.0 - f
            out_el[k, j] = soa_elastic[idx] * g + soa_elastic[idx + 1] * f
            out_cap[k, j] = soa_capture[idx] * g + soa_capture[idx + 1] * f
            out_fis[k, j] = soa_fission[idx] * g + soa_fission[idx + 1] * f
    return 0


@njit
def xs_gather1(
    energies,
    union_energy,
    union_indices_flat,
    union_rowoff,
    offsets,
    soa_energy,
    soa_row,
    out,
):
    """One-reaction twin of :func:`xs_gather3` (attribution weights)."""
    n = energies.shape[0]
    n_nuc = offsets.shape[0]
    n_union = union_energy.shape[0]
    for j in range(n):
        e = energies[j]
        lo = 0
        hi = n_union
        while lo < hi:
            mid = (lo + hi) >> 1
            if union_energy[mid] <= e:
                lo = mid + 1
            else:
                hi = mid
        u = lo - 1
        if u < 0:
            u = 0
        elif u > n_union - 2:
            u = n_union - 2
        for k in range(n_nuc):
            local = union_indices_flat[union_rowoff[k] + u]
            idx = offsets[k] + local
            e0 = soa_energy[idx]
            e1 = soa_energy[idx + 1]
            den = e1 - e0
            f = (e - e0) / den
            if f < 0.0:
                f = 0.0
            elif f > 1.0:
                f = 1.0
            g = 1.0 - f
            out[k, j] = soa_row[idx] * g + soa_row[idx + 1] * f
    return 0


@njit
def accumulate_macro(
    m_el,
    m_cap,
    m_fis,
    rho,
    fissionable,
    nu0,
    energies,
    nu_slope,
    out_total,
    out_elastic,
    out_capture,
    out_fission,
    out_nu_fission,
):
    """Density-weighted per-nuclide accumulation into the macro arrays.

    Matches the NumPy path bit for bit: contributions are summed strictly
    in material (row) order — the accumulation order of the strided
    ``np.add.reduce`` over axis 0 of a C-order matrix and of the explicit
    ``N == 1`` loop alike — and each term is formed with the same
    parenthesisation: ``((el + cap) + fis) * rho`` for the total,
    ``(fis * rho) * (nu0 + nu_slope * E)`` for fission production.
    """
    n_nuc, n = m_el.shape
    for j in range(n):
        nu_e = nu_slope * energies[j]
        tot = 0.0
        el = 0.0
        cap = 0.0
        fis = 0.0
        nuf = 0.0
        for k in range(n_nuc):
            a = m_el[k, j]
            b = m_cap[k, j]
            c = m_fis[k, j]
            r = rho[k]
            tot += ((a + b) + c) * r
            el += a * r
            fc = c * r
            cap += b * r
            fis += fc
            if fissionable[k]:
                nuf += fc * (nu0[k] + nu_e)
        out_total[j] = tot
        out_elastic[j] = el
        out_capture[j] = cap
        out_fission[j] = fis
        out_nu_fission[j] = nuf
    return 0
