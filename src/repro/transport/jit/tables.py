"""Cache-friendly typed-tuple views of the SoA side-tables.

The compiled kernels take plain contiguous ``float64``/``int64`` arrays —
no Python objects — so this module flattens the pieces the NumPy path
reaches through attribute chains (:class:`~repro.data.soa.SoALibrary`
rows, :class:`~repro.physics.macroxs.MaterialPlan` offsets, the unionized
index matrix) into two ``NamedTuple`` views:

* :class:`LibraryView` — one per :class:`XSCalculator`: the flat union
  energy grid, the raveled per-nuclide index matrix, the concatenated SoA
  energy grid, and the three reaction rows the transport kernels gather
  (elastic / capture / fission).
* :class:`PlanView` — one per cached ``MaterialPlan``: dense offsets, row
  offsets into the raveled union matrix, densities, and the fission
  metadata the accumulation kernel folds in.

NamedTuples of arrays are a natural numba argument type (each field lowers
to a typed array), and building them is pure aliasing — every field is a
zero-copy view of arrays the calculator already owns, so a view costs a
few hundred bytes however large the library is.  Views are cached on
``id()`` keyed dicts exactly like the calculator's own MaterialPlan cache
(the plan's material reference keeps the id stable for the cache's
lifetime).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ...physics.macroxs import MaterialPlan, XSCalculator
from ...types import Reaction

__all__ = ["LibraryView", "PlanView", "library_view", "plan_view"]


class LibraryView(NamedTuple):
    """Flat, kernel-ready slices of a calculator's nuclear data."""

    #: Union energy grid (the binary-search target), shape ``(n_union,)``.
    union_energy: np.ndarray
    #: Raveled ``(n_nuclides * n_union,)`` per-nuclide interval matrix.
    union_indices_flat: np.ndarray
    #: Concatenated per-nuclide energy grids (SoA), ``(total_points,)``.
    energy: np.ndarray
    #: The three gathered reaction rows, each ``(total_points,)``.
    elastic: np.ndarray
    capture: np.ndarray
    fission: np.ndarray


class PlanView(NamedTuple):
    """Kernel-ready per-material metadata (one per MaterialPlan)."""

    #: Start of each material nuclide's grid in the flat SoA arrays.
    offsets: np.ndarray
    #: Row offsets into the raveled union index matrix (``ids * n_union``).
    union_rowoff: np.ndarray
    #: Atom densities aligned with ``offsets``.
    rho: np.ndarray
    #: Per-material-nuclide fission metadata for the accumulation kernel.
    fissionable: np.ndarray
    nu0: np.ndarray


_LIBRARY_VIEWS: dict[int, tuple[XSCalculator, LibraryView]] = {}
_PLAN_VIEWS: dict[int, tuple[MaterialPlan, PlanView]] = {}


def library_view(calc: XSCalculator) -> LibraryView:
    """Cached :class:`LibraryView` of ``calc`` (requires a union grid)."""
    cached = _LIBRARY_VIEWS.get(id(calc))
    if cached is not None:
        return cached[1]
    if calc.union is None:
        raise ValueError("library_view requires a unionized grid")
    soa = calc.soa
    view = LibraryView(
        union_energy=np.ascontiguousarray(calc.union.energy),
        union_indices_flat=np.ascontiguousarray(
            calc.union.indices.ravel().astype(np.int64, copy=False)
        ),
        energy=np.ascontiguousarray(soa.energy),
        elastic=np.ascontiguousarray(soa.xs[Reaction.ELASTIC]),
        capture=np.ascontiguousarray(soa.xs[Reaction.CAPTURE]),
        fission=np.ascontiguousarray(soa.xs[Reaction.FISSION]),
    )
    _LIBRARY_VIEWS[id(calc)] = (calc, view)
    return view


def plan_view(calc: XSCalculator, plan: MaterialPlan) -> PlanView:
    """Cached :class:`PlanView` of one material's plan."""
    cached = _PLAN_VIEWS.get(id(plan))
    if cached is not None:
        return cached[1]
    n_union = calc.union.indices.shape[1]
    view = PlanView(
        offsets=np.ascontiguousarray(plan.offsets.astype(np.int64, copy=False)),
        union_rowoff=np.ascontiguousarray(
            plan.ids.astype(np.int64) * np.int64(n_union)
        ),
        rho=np.ascontiguousarray(plan.rho),
        fissionable=np.ascontiguousarray(plan.fissionable.astype(np.bool_)),
        nu0=np.ascontiguousarray(plan.nu0),
    )
    _PLAN_VIEWS[id(plan)] = (plan, view)
    return view
