"""Numba detection, the ``njit`` shim, and compile-time accounting.

``numba`` is an **optional** dependency (``pip install repro[jit]``).  This
module is the single place that knows whether it is importable:

* With numba present, :func:`njit` is the real ``numba.njit`` (nopython
  mode, no ``fastmath`` — fast-math would license reassociation and FMA
  contraction, either of which breaks the bit-identity contract with the
  NumPy kernels).  Each kernel's **first call** is timed, so the one-shot
  JIT compile cost is observable (:func:`jit_status`, and the
  ``compile_s`` field of ``bench_event_hotpath``) separately from
  steady-state rates.
* Without numba, :func:`njit` is an identity decorator: the kernel bodies
  in :mod:`repro.transport.jit.kernels` remain callable as plain-Python
  loop twins — far too slow for production banks (the dispatch layer in
  :mod:`repro.transport.jit.calculator` falls back to the banked NumPy
  applies instead) but exactly right for bit-identity tests on tiny banks,
  so the kernel *logic* is verified even in numba-free environments.

The import of numba itself is deferred until the first kernel is
decorated at module import of ``kernels.py``; detection (``HAVE_NUMBA``)
uses only ``importlib.util.find_spec`` so registries and CLIs that merely
*name* the backend never pay numba's multi-second import.
"""

from __future__ import annotations

import importlib.util
from time import perf_counter

__all__ = ["HAVE_NUMBA", "njit", "jit_status", "reset_compile_times"]

#: True when the numba package is importable in this environment.
HAVE_NUMBA = importlib.util.find_spec("numba") is not None

#: Kernel name -> seconds spent in its first invocation (JIT compile +
#: first run).  Empty until kernels are exercised, and always empty when
#: numba is absent (the pure-Python twins are not instrumented).
_FIRST_CALL_SECONDS: dict[str, float] = {}


def _timed_first_call(func):
    """Wrap a jitted function so its first invocation is timed.

    Numba compiles lazily on first call; timing that call captures the
    compile cost (plus one tiny-bank execution, which is noise next to it).
    Subsequent calls go straight to the compiled dispatcher — the wrapper
    swaps itself out after the first call, so steady-state dispatch pays
    one attribute indirection, not a Python closure per call.
    """
    state = {"inner": None}

    def first(*args):
        t0 = perf_counter()
        out = func(*args)
        _FIRST_CALL_SECONDS[func.__name__] = perf_counter() - t0
        state["inner"] = func
        return out

    def dispatch(*args):
        inner = state["inner"]
        if inner is None:
            return first(*args)
        return inner(*args)

    dispatch.__name__ = func.__name__
    dispatch.__wrapped__ = func
    return dispatch


if HAVE_NUMBA:
    import numba as _numba

    def njit(func):
        """Compile ``func`` in nopython mode with deterministic float
        semantics (no fastmath, on-disk cache) and first-call timing."""
        return _timed_first_call(
            _numba.njit(func, cache=True, fastmath=False)
        )

else:

    def njit(func):
        """Identity decorator: the kernel body stays a plain-Python twin."""
        return func


def jit_status() -> dict:
    """One-call report of the JIT tier's state.

    Returns ``{"numba_available": bool, "kernels_compiled": [names],
    "compile_s": float}`` where ``compile_s`` is the summed first-call
    (compile) time of every kernel exercised so far — the number the
    hot-path bench reports separately from steady-state generation time.
    """
    return {
        "numba_available": HAVE_NUMBA,
        "kernels_compiled": sorted(_FIRST_CALL_SECONDS),
        "compile_s": float(sum(_FIRST_CALL_SECONDS.values())),
    }


def reset_compile_times() -> None:
    """Forget recorded first-call times (bench isolation only — compiled
    dispatchers stay warm; only the accounting resets)."""
    _FIRST_CALL_SECONDS.clear()
