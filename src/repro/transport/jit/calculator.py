"""Dispatch proxy routing the XS hot path through the compiled kernels.

:class:`JitXSCalculator` wraps an ordinary
:class:`~repro.physics.macroxs.XSCalculator` and overrides exactly the two
methods the event schedule's stage kernels hit in their inner loops —
:meth:`banked` (the XS-lookup stage) and :meth:`attribution_weights`
(collision-nuclide attribution in the fission/scatter stages).  Everything
else — material plans, the scalar path, physics toggles — delegates to the
wrapped calculator, so the proxy can be dropped into a
:class:`~repro.transport.context.TransportContext` via
``dataclasses.replace(ctx, calculator=proxy)`` and **no stage kernel
changes at all**: the stages keep calling ``ctx.calculator.banked`` and
transparently get the compiled tier.

The overridden methods are gather/interpolate/accumulate sandwiches:

    compiled gather (xs_gather3 / xs_gather1)
      -> shared Python corrections (XSCalculator.apply_corrections / SAB)
      -> compiled accumulation (accumulate_macro)

The corrections stay in Python on purpose: they draw random numbers and
touch object tables (S(alpha, beta) interpolants, URR probability tables),
and sharing the wrapped calculator's single implementation means the two
paths cannot drift.  The compiled pieces replicate the NumPy arithmetic
op-for-op (see :mod:`repro.transport.jit.kernels`), so the proxy is
**bit-identical** to the calculator it wraps — same tallies, same RNG
stream consumption, same counters.

Fallback contract (``compiled="auto"``): when numba is missing, or the
calculator has no union grid, or uses the AoS ablation layout, or a call
asks for ``per_nuclide_total`` (a shape the kernels don't produce), the
proxy simply calls the wrapped NumPy method.  ``compiled="force"`` runs
the kernels even without numba — the pure-Python twins, unusably slow for
real banks but exactly what the numba-free equivalence tests need —
and ``compiled="off"`` pins the proxy to pure delegation.
"""

from __future__ import annotations

import numpy as np

from ...data.nuclide import NU_THERMAL_SLOPE
from ...physics.macroxs import (
    BYTES_PER_NUCLIDE_LOOKUP,
    XSCalculator,
)
from ...types import Reaction
from ...work import WorkCounters
from .kernels import accumulate_macro, xs_gather1, xs_gather3
from .shim import HAVE_NUMBA
from .tables import library_view, plan_view

__all__ = ["JitXSCalculator"]

#: Reactions the single-row gather kernel can serve (the rows LibraryView
#: carries); any other reaction delegates to the NumPy path.
_GATHER_ROWS = (Reaction.ELASTIC, Reaction.CAPTURE, Reaction.FISSION)

_COMPILED_MODES = ("auto", "force", "off")


class JitXSCalculator:
    """Bit-identical compiled-kernel front for an :class:`XSCalculator`.

    Parameters
    ----------
    calc:
        The calculator to wrap.  Shared by reference — plans, caches, and
        physics toggles are the wrapped object's own.
    compiled:
        ``"auto"`` (kernels when numba is importable, NumPy otherwise),
        ``"force"`` (kernels always — pure-Python twins without numba;
        test use), or ``"off"`` (pure delegation).
    """

    def __init__(self, calc: XSCalculator, *, compiled: str = "auto") -> None:
        if isinstance(calc, JitXSCalculator):  # never stack proxies
            calc = calc.calc
        if compiled not in _COMPILED_MODES:
            raise ValueError(
                f"unknown compiled mode {compiled!r}; "
                f"expected one of {_COMPILED_MODES}"
            )
        self.calc = calc
        self.compiled = compiled

    # -- delegation ----------------------------------------------------

    def __getattr__(self, name: str):
        # Only called for attributes not found on the proxy itself:
        # library, union, soa, use_sab/use_urr, layout, scalar,
        # material_plan, banked_outer, soa_local_indices, ...
        return getattr(self.calc, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JitXSCalculator({self.calc!r}, compiled={self.compiled!r}, "
            f"active={self.active})"
        )

    @property
    def active(self) -> bool:
        """True when calls will route through the (possibly pure-Python
        twin) kernels rather than delegating to the NumPy path."""
        if self.compiled == "off":
            return False
        if self.compiled == "force":
            return self._kernel_capable()
        return HAVE_NUMBA and self._kernel_capable()

    def _kernel_capable(self) -> bool:
        calc = self.calc
        return calc.union is not None and calc.layout == "soa"

    # -- the two hot methods -------------------------------------------

    def banked(
        self,
        material,
        energies: np.ndarray,
        rng_states: np.ndarray | None = None,
        counters: WorkCounters | None = None,
        per_nuclide_total: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Compiled-kernel form of :meth:`XSCalculator.banked`.

        ``per_nuclide_total`` callers (collision-weight shapes the kernels
        do not produce) and non-kernel-capable configurations delegate.
        """
        if per_nuclide_total is not None or not self.active:
            return self.calc.banked(
                material, energies, rng_states, counters, per_nuclide_total
            )
        calc = self.calc
        energies = np.ascontiguousarray(energies, dtype=np.float64)
        plan = calc.material_plan(material)
        lib = library_view(calc)
        pv = plan_view(calc, plan)
        n_nuc = plan.n_nuclides
        n = energies.shape[0]

        m_el_mat = np.empty((n_nuc, n))
        m_cap_mat = np.empty((n_nuc, n))
        m_fis_mat = np.empty((n_nuc, n))
        xs_gather3(
            energies,
            lib.union_energy,
            lib.union_indices_flat,
            pv.union_rowoff,
            pv.offsets,
            lib.energy,
            lib.elastic,
            lib.capture,
            lib.fission,
            m_el_mat,
            m_cap_mat,
            m_fis_mat,
        )
        # Single shared implementation of S(alpha, beta) / URR — identical
        # code object to the NumPy path, so RNG consumption cannot drift.
        calc.apply_corrections(
            plan,
            energies,
            m_el_mat,
            m_cap_mat,
            m_fis_mat,
            rng_states=rng_states,
            counters=counters,
        )
        total = np.empty(n)
        elastic = np.empty(n)
        capture = np.empty(n)
        fission = np.empty(n)
        nu_fission = np.empty(n)
        accumulate_macro(
            m_el_mat,
            m_cap_mat,
            m_fis_mat,
            pv.rho,
            pv.fissionable,
            pv.nu0,
            energies,
            NU_THERMAL_SLOPE,
            total,
            elastic,
            capture,
            fission,
            nu_fission,
        )
        if counters:
            counters.lookups += n
            counters.nuclide_iterations += n * n_nuc
            counters.grid_searches += n
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return {
            "total": total,
            "elastic": elastic,
            "capture": capture,
            "fission": fission,
            "nu_fission": nu_fission,
        }

    def attribution_weights(
        self,
        material,
        energies: np.ndarray,
        reaction: Reaction,
        counters: WorkCounters | None = None,
    ) -> np.ndarray:
        """Compiled-kernel form of :meth:`XSCalculator.attribution_weights`."""
        if not self.active or reaction not in _GATHER_ROWS:
            return self.calc.attribution_weights(
                material, energies, reaction, counters
            )
        calc = self.calc
        energies = np.atleast_1d(
            np.ascontiguousarray(energies, dtype=np.float64)
        )
        plan = calc.material_plan(material)
        lib = library_view(calc)
        pv = plan_view(calc, plan)
        n_nuc = plan.n_nuclides
        n = energies.shape[0]
        if reaction == Reaction.ELASTIC:
            row = lib.elastic
        elif reaction == Reaction.CAPTURE:
            row = lib.capture
        else:
            row = lib.fission
        out = np.empty((n_nuc, n))
        xs_gather1(
            energies,
            lib.union_energy,
            lib.union_indices_flat,
            pv.union_rowoff,
            pv.offsets,
            lib.energy,
            row,
            out,
        )
        # Mirror XSCalculator.attribution_weights: S(alpha, beta)
        # substitution on the elastic row, then the density weighting.
        if reaction == Reaction.ELASTIC and calc.use_sab:
            for k, sab, cutoff in plan.sab_entries:
                mask = energies < cutoff
                if mask.any():
                    out[k, mask] = sab.thermal_xs(energies[mask])
        out *= plan.rho[:, None]
        if counters:
            counters.nuclide_iterations += n * n_nuc
            counters.bytes_read += n * n_nuc * BYTES_PER_NUCLIDE_LOOKUP
        return out
