"""Optional compiled-kernel (numba) tier for the event-based hot path.

The package behind the ``numba-event`` transport backend (DESIGN.md §15):

* :mod:`~repro.transport.jit.shim` — numba detection, the ``njit``
  decorator shim (identity without numba), compile-time accounting;
* :mod:`~repro.transport.jit.tables` — flat typed-tuple views of the SoA
  side-tables the kernels read;
* :mod:`~repro.transport.jit.kernels` — the ``@njit`` stage kernels
  (search + gather + interpolate, accumulate), written as exact loop-nest
  twins of the banked NumPy applies;
* :mod:`~repro.transport.jit.calculator` — :class:`JitXSCalculator`, the
  dispatch proxy a backend swaps into the transport context.

Numba is optional (``pip install repro[jit]``).  Without it every export
here still imports and works — kernels run as pure-Python twins (for
tests) and the proxy's ``"auto"`` mode falls back to the banked NumPy
applies, so the ``numba-event`` backend is selectable everywhere and
merely runs at ``event`` speed.

Layering: this package sits beside :mod:`repro.transport.stages` at the
bottom of the transport stack and must not import upward (execution /
serve / cluster / simd / ... — rule 7 of ``tools/check_layering.py``).
"""

from __future__ import annotations

from .calculator import JitXSCalculator
from .shim import HAVE_NUMBA, jit_status, reset_compile_times
from .tables import LibraryView, PlanView, library_view, plan_view

__all__ = [
    "HAVE_NUMBA",
    "JitXSCalculator",
    "LibraryView",
    "PlanView",
    "jit_status",
    "library_view",
    "plan_view",
    "reset_compile_times",
]
