r"""Shannon entropy of the fission source.

Source convergence of the power iteration is monitored with the Shannon
entropy of the fission-site distribution over a spatial mesh:

.. math:: H = -\sum_b p_b \log_2 p_b,

where :math:`p_b` is the fraction of fission sites in mesh box :math:`b`.
Stationary entropy indicates a converged source — the criterion behind the
paper's inactive/active batch split.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shannon_entropy", "EntropyMesh"]


class EntropyMesh:
    """A regular box mesh over the problem domain."""

    def __init__(
        self,
        lower: tuple[float, float, float],
        upper: tuple[float, float, float],
        shape: tuple[int, int, int] = (8, 8, 8),
    ) -> None:
        self.lower = np.asarray(lower, dtype=np.float64)
        self.upper = np.asarray(upper, dtype=np.float64)
        self.shape = shape
        if np.any(self.upper <= self.lower):
            raise ValueError("entropy mesh needs upper > lower")
        self._width = (self.upper - self.lower) / np.asarray(shape)

    def bin_indices(self, positions: np.ndarray) -> np.ndarray:
        """Flat mesh-box index per site (out-of-mesh sites clamp to edges)."""
        positions = np.atleast_2d(positions)
        ijk = np.floor((positions - self.lower) / self._width).astype(np.int64)
        for axis in range(3):
            np.clip(ijk[:, axis], 0, self.shape[axis] - 1, out=ijk[:, axis])
        return (
            ijk[:, 0] * self.shape[1] * self.shape[2]
            + ijk[:, 1] * self.shape[2]
            + ijk[:, 2]
        )

    def entropy(self, positions: np.ndarray) -> float:
        """Shannon entropy [bits] of the site distribution on this mesh."""
        if positions.shape[0] == 0:
            return 0.0
        nbins = int(np.prod(self.shape))
        counts = np.bincount(self.bin_indices(positions), minlength=nbins)
        return shannon_entropy(counts)


def shannon_entropy(counts: np.ndarray) -> float:
    """Entropy [bits] of a histogram of non-negative counts."""
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts[counts > 0] / total
    return float(-np.sum(p * np.log2(p)))
