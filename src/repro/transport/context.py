"""Shared transport context: geometry adapter, physics engine, settings.

Both transport loops (history and event) operate against a
:class:`TransportContext`, which binds together the model geometry (CSG or
the vectorized fast path), the material registry, the cross-section engine,
and the work counters.  Keeping this in one place guarantees the two loops
see *identical* physics and geometry, which is what makes them bit-comparable
(the strict RNG protocol is documented in :mod:`repro.transport.history`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import ENERGY_MIN, KT_ROOM, SURFACE_NUDGE
from ..data.library import NuclideLibrary
from ..data.unionized import UnionizedGrid
from ..errors import ExecutionError
from ..geometry.hoogenboom import (
    MAT_OUTSIDE,
    FastCoreGeometry,
    HMModel,
    build_hm_geometry,
    build_pincell_geometry,
    pattern_from_rows,
)
from ..physics.macroxs import XSCalculator
from ..work import WorkCounters

__all__ = ["TransportContext", "FREE_GAS_CUTOFF"]

#: Below this energy [MeV] (the 400 kT rule at room temperature), elastic
#: scattering off nuclides without an S(alpha, beta) table uses the free-gas
#: thermal treatment.
FREE_GAS_CUTOFF = 400.0 * KT_ROOM


@dataclass
class TransportContext:
    """Everything a transport loop needs, bound once per simulation.

    Attributes
    ----------
    model:
        The built geometry model (full core or pin cell).
    library, union, calculator:
        Nuclear data and the XS engine (whose ``use_sab``/``use_urr`` flags
        select full or stripped physics).
    fast:
        The vectorized analytic tracker matching ``model``.
    use_fast_geometry:
        When true (default), the *scalar* history loop also uses the fast
        tracker's scalar wrappers, making history and event runs follow
        byte-identical geometry arithmetic.  Set false to exercise the CSG
        engine end-to-end.
    """

    model: HMModel
    library: NuclideLibrary
    union: UnionizedGrid | None
    calculator: XSCalculator
    fast: FastCoreGeometry
    use_fast_geometry: bool = True
    master_seed: int = 1
    energy_cutoff: float = ENERGY_MIN
    free_gas_cutoff: float = FREE_GAS_CUTOFF
    #: Implicit capture + Russian roulette instead of analog absorption.
    survival_biasing: bool = False
    #: Roulette threshold and post-roulette weight for survival biasing.
    weight_cutoff: float = 0.25
    weight_survival: float = 1.0
    counters: WorkCounters = field(default_factory=WorkCounters)

    @classmethod
    def create(
        cls,
        library: NuclideLibrary,
        *,
        pincell: bool = False,
        union: UnionizedGrid | None = None,
        use_sab: bool = True,
        use_urr: bool = True,
        use_fast_geometry: bool = True,
        master_seed: int = 1,
        layout: str = "soa",
        survival_biasing: bool = False,
        boron_ppm: float = 600.0,
        enrichment_scale: float = 1.0,
        fuel_overrides=(),
        core_pattern=(),
    ) -> "TransportContext":
        """Build a context for the library's own model (small/large).

        ``boron_ppm``, ``enrichment_scale``, ``fuel_overrides``, and
        ``core_pattern`` are the scenario system's material/lattice knobs;
        the defaults reproduce the canonical Hoogenboom-Martin model
        bit-for-bit.  ``core_pattern`` (rows of ``F``/``W``) only applies
        to full-core geometry.
        """
        pattern = pattern_from_rows(core_pattern) if core_pattern else None
        if pincell:
            model = build_pincell_geometry(
                library.model,
                boron_ppm,
                enrichment_scale=enrichment_scale,
                fuel_overrides=fuel_overrides,
            )
        else:
            model = build_hm_geometry(
                library.model,
                boron_ppm,
                pattern=pattern,
                enrichment_scale=enrichment_scale,
                fuel_overrides=fuel_overrides,
            )
        calculator = XSCalculator(
            library, union, use_sab=use_sab, use_urr=use_urr, layout=layout
        )
        return cls(
            model=model,
            library=library,
            union=union,
            calculator=calculator,
            fast=FastCoreGeometry(pincell=pincell, pattern=pattern),
            use_fast_geometry=use_fast_geometry,
            master_seed=master_seed,
            survival_biasing=survival_biasing,
        )

    @property
    def temperature(self) -> float:
        return self.library.config.temperature

    # -- Geometry adapter (scalar) ------------------------------------------

    def material_id_at(self, p: np.ndarray) -> int:
        """Fast-path material id at a point (-1 outside)."""
        if self.use_fast_geometry:
            return self.fast.locate(p)
        loc = self.model.geometry.locate(p)
        if loc is None:
            return MAT_OUTSIDE
        for i, mat in enumerate(self.model.materials):
            if loc.material is mat:
                return i
        raise ExecutionError(f"unknown material {loc.material.name!r}")

    def boundary_distance(self, p: np.ndarray, u: np.ndarray) -> float:
        """Distance to the nearest candidate surface crossing."""
        if self.use_fast_geometry:
            return self.fast.distance(p, u)
        return self.model.geometry.distance_to_boundary(p, u)

    def handle_escape(
        self, p: np.ndarray, u: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Apply the outer boundary condition to an escaped particle."""
        return self.model.geometry.handle_boundary(p, u)

    # -- Convenience ----------------------------------------------------------

    def material(self, mat_id: int):
        return self.model.materials[mat_id]

    def nudge(self, p: np.ndarray, u: np.ndarray) -> np.ndarray:
        return p + SURFACE_NUDGE * u
