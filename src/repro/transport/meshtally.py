"""Assembly-resolved power tallies for the Hoogenboom-Martin benchmark.

The H.M. benchmark exists for "detailed power density calculation in a full
size reactor core" (its title); the paper runs only the default global
tallies, but a credible reproduction should be able to produce the power
map.  :class:`PowerTally` scores the track-length fission-rate estimator on
the 17x17 assembly mesh (or an arbitrary regular x-y mesh) with per-batch
statistics, from either transport loop — scoring consumes no random
numbers, so history/event bit-equivalence is untouched.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..geometry.hoogenboom import ASSEMBLY_PITCH, hm_core_pattern

__all__ = ["PowerTally"]


class PowerTally:
    """Track-length fission-power tally on a regular x-y mesh.

    Scores ``weight * distance * Sigma_f`` per mesh cell per batch;
    :meth:`end_batch` folds the batch into running mean/variance
    statistics.  The default mesh is the 17x17 assembly map centered on the
    core, with the 241-assembly footprint available as a mask.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (17, 17),
        half_width: float = 0.5 * 17 * ASSEMBLY_PITCH,
    ) -> None:
        if shape[0] < 1 or shape[1] < 1:
            raise ReproError("power tally mesh must be at least 1x1")
        self.shape = shape
        self.half_width = half_width
        self._pitch_x = 2.0 * half_width / shape[1]
        self._pitch_y = 2.0 * half_width / shape[0]
        self._current = np.zeros(shape)
        self._sum = np.zeros(shape)
        self._sum_sq = np.zeros(shape)
        self.n_batches = 0

    # -- Mesh indexing ---------------------------------------------------------

    def cell_indices(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(iy, ix) mesh indices for an (n, 3) position array (clamped)."""
        positions = np.atleast_2d(positions)
        ix = np.floor((positions[:, 0] + self.half_width) / self._pitch_x)
        iy = np.floor((positions[:, 1] + self.half_width) / self._pitch_y)
        ix = np.clip(ix.astype(np.int64), 0, self.shape[1] - 1)
        iy = np.clip(iy.astype(np.int64), 0, self.shape[0] - 1)
        return iy, ix

    # -- Scoring ----------------------------------------------------------------

    def score_track(
        self, position: np.ndarray, weight: float, distance: float,
        sigma_f: float,
    ) -> None:
        """Scalar track-length score at a segment midpoint (history loop)."""
        if sigma_f <= 0.0:
            return
        iy, ix = self.cell_indices(position[None, :])
        self._current[iy[0], ix[0]] += weight * distance * sigma_f

    def score_track_many(
        self,
        positions: np.ndarray,
        weight: np.ndarray,
        distance: np.ndarray,
        sigma_f: np.ndarray,
    ) -> None:
        """Vectorized score over a bank of segments (event loop)."""
        scores = weight * distance * sigma_f
        ok = scores > 0.0
        if not ok.any():
            return
        iy, ix = self.cell_indices(positions[ok])
        np.add.at(self._current, (iy, ix), scores[ok])

    # -- Batch statistics ----------------------------------------------------------

    def end_batch(self, source_weight: float) -> None:
        """Normalize the batch by its source weight and accumulate."""
        if source_weight <= 0.0:
            raise ReproError("batch ended with no source weight")
        batch = self._current / source_weight
        self._sum += batch
        self._sum_sq += batch * batch
        self._current[:] = 0.0
        self.n_batches += 1

    @property
    def mean(self) -> np.ndarray:
        """Per-cell batch-mean fission rate (zeros before any batch)."""
        if self.n_batches == 0:
            return np.zeros(self.shape)
        return self._sum / self.n_batches

    @property
    def rel_err(self) -> np.ndarray:
        """Per-cell relative standard error (inf where mean is 0 or
        fewer than 2 batches)."""
        out = np.full(self.shape, np.inf)
        if self.n_batches < 2:
            return out
        mean = self.mean
        var = (self._sum_sq / self.n_batches - mean * mean) / (
            self.n_batches - 1
        )
        ok = mean > 0
        out[ok] = np.sqrt(np.clip(var[ok], 0.0, None)) / mean[ok]
        return out

    def normalized_power(self) -> np.ndarray:
        """Power map normalized to a core-average of 1 over fuelled cells
        (the standard reactor-physics presentation)."""
        mean = self.mean
        fueled = mean > 0
        if not fueled.any():
            return mean
        return mean / mean[fueled].mean()

    def footprint_matches_core(self) -> bool:
        """Whether nonzero power appears only at the 241 fuel positions
        (meaningful for the default 17x17 assembly mesh)."""
        if self.shape != (17, 17):
            raise ReproError("footprint check requires the 17x17 assembly mesh")
        return bool(np.all((self.mean > 0) <= hm_core_pattern()))
