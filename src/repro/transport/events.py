r"""Event-based (banked) transport: the banked schedule over the stage kernels.

The algorithm of Brown & Martin that the paper's micro-benchmarks
prototype, carried to a full implementation: instead of following one
history at a time, *all* live particles advance together through a cycle of
homogeneous stages, each the **banked apply** of a shared
:class:`~repro.transport.stages.StageKernel`:

1. **XS lookup** — group the bank by material and apply the banked
   Algorithm 1 (:meth:`repro.physics.macroxs.XSCalculator.banked`) to each
   group (the paper's micro-benchmark #1);
2. **advance** — sample all collision distances at once (micro-benchmark
   #2), ray-trace all boundary distances with the analytic fast geometry,
   move everyone;
3. **surface crossings** — nudge, relocate, apply boundary conditions;
4. **collisions** — branch-free channel selection, then gathered/compressed
   sub-banks for capture, fission (vectorized Watt sampling), and scattering
   (S(alpha, beta) / free-gas / target-at-rest), exactly the
   gather-scatter-compress structure the paper prescribes for conditionals.

The physics lives in :mod:`repro.transport.stages`; this module is only the
*schedule* — the compacted live-index loop that decides when each kernel
runs.  Every particle's random-number stream is consumed in exactly the
order of the history-based protocol (see :mod:`repro.transport.history`),
so a history run and an event run with the same seed produce identical
particle histories, tallies, and fission banks — the strongest possible
correctness check for the restructured control flow.
"""

from __future__ import annotations

import numpy as np

from ..rng.sampling import sample_index_many as _sample_index_many  # noqa: F401  (compat)
from ..types import CollisionChannel
from .context import TransportContext
from .meshtally import PowerTally
from .particle import FissionBank, ParticleBank
from .spectrum import SpectrumTally
from .stages import (
    COLLISION,
    CROSSING,
    FISSION,
    FLIGHT,
    SCATTER,
    SURVIVAL,
    XS_LOOKUP,
    SigmaTables,
    group_by_value,
)
from .stats import TransportStats
from .tally import GlobalTallies

__all__ = ["run_generation_event", "EventLoopStats", "SORT_POLICIES"]

#: Backward-compatible alias: the event loop's stats class is now the
#: schedule-agnostic :class:`repro.transport.stats.TransportStats`.
EventLoopStats = TransportStats

#: Backward-compatible alias for the material-dispatch primitive, which now
#: lives with the kernels it dispatches.
_group_by_value = group_by_value


#: Valid values of the event schedule's bank-ordering policy.
SORT_POLICIES = ("none", "energy")


def run_generation_event(
    ctx: TransportContext,
    positions: np.ndarray,
    energies: np.ndarray,
    tallies: GlobalTallies,
    k_norm: float = 1.0,
    first_id: int = 0,
    stats: TransportStats | None = None,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
    *,
    sort_policy: str = "none",
) -> FissionBank:
    """Transport one generation of source particles, event style.

    Mirrors :func:`repro.transport.history.run_generation_history` exactly
    (same tallies, same fission bank, same RNG streams); returns the
    next-generation fission bank.

    ``sort_policy`` selects the bank-ordering policy of the lookup/flight
    super-stage:

    * ``"none"`` — live-index (ascending) order, the PR 3 behaviour;
    * ``"energy"`` — a stable argsort of the live bank by energy is applied
      before the XS-lookup stage, so within each material group the
      union-grid search walks ascending energies and the SoA gathers become
      near-sequential (the cache-locality argument of the paper's banked
      kernels).  The flight stage runs in the same order; its gathered
      outputs are then **unsorted via the inverse permutation** before any
      tally accumulation or sub-bank formation, so every float sum and
      every downstream stage sees exactly the live-index ordering.  Because
      each particle draws only from its private LCG stream and every stage
      writes per-particle results by absolute bank index, the sorted run is
      **bit-identical** to the unsorted one — tallies, banks, counters
      (enforced by ``tests/transport/test_sorted_bank.py``).
    """
    if sort_policy not in SORT_POLICIES:
        raise ValueError(
            f"unknown sort_policy {sort_policy!r}; "
            f"expected one of {SORT_POLICIES}"
        )
    energy_sorted = sort_policy == "energy"
    counters = ctx.counters
    fission_bank = FissionBank()

    bank = ParticleBank.from_source(positions, energies, first_id, ctx.master_seed)
    particle_ids = first_id + np.arange(positions.shape[0])
    n = bank.n
    tallies.source_weight += float(n)
    counters.rn_draws += 2 * n

    # Per-particle sigma side-tables refreshed by the lookup stage each cycle.
    sig = SigmaTables.zeros(n)

    # Compacted live-index bank: starts as the full bank and shrinks
    # monotonically as particles die, so no stage ever rescans dead lanes
    # (the remapping strategy of the GPU event-based literature; the
    # per-cycle ``np.nonzero(bank.alive)`` full-bank scan is gone).
    live = np.arange(n, dtype=np.int64)

    while True:
        # Compact: drop lanes that died last cycle.  ``live`` stays sorted,
        # so the filtered view equals ``np.nonzero(bank.alive)[0]`` without
        # touching the dead part of the bank.
        live = live[bank.alive[live]]
        if live.size == 0:
            break
        alive_idx = live

        # Bank-ordering policy: the lookup/flight super-stage may walk the
        # bank energy-sorted (near-sequential union-grid gathers); all
        # per-particle results are scattered back by absolute bank index,
        # so only the *returned* gathered arrays need unsorting below.
        if energy_sorted:
            order = np.argsort(bank.energy[alive_idx], kind="stable")
            lookup_idx = alive_idx[order]
        else:
            order = None
            lookup_idx = alive_idx

        # ---- Stage 1: banked cross-section lookups.
        XS_LOOKUP.banked(ctx, bank, lookup_idx, sig)
        if stats is not None and ctx.union is not None:
            # Gather-locality probe: the union intervals in the order the
            # lookup stage just walked them (diagnostics only — no RNG, no
            # counters — so recording cannot perturb the physics).
            stats.record_gather_indices(
                ctx.union.search_many(bank.energy[lookup_idx])
            )

        # ---- Stage 2: sample collision distances; ray-trace; advance.
        pos, dirs, w, d, crossing = FLIGHT.banked(ctx, bank, lookup_idx, sig)
        if order is not None:
            # Inverse permutation: restore live-index order before any
            # accumulation, so float sums (and sub-bank formation) are
            # bit-identical to the unsorted schedule.
            inv = np.empty_like(order)
            inv[order] = np.arange(order.size)
            pos = pos[inv]
            dirs = dirs[inv]
            w = w[inv]
            d = d[inv]
            crossing = crossing[inv]
        tallies.score_track_many(w, d, sig.nu_fission[alive_idx])
        if power is not None:
            power.score_track_many(
                pos + 0.5 * d[:, None] * dirs,
                w,
                d,
                sig.fission[alive_idx],
            )
        if spectrum is not None:
            spectrum.score_track_many(bank.energy[alive_idx], w, d)
        bank.position[alive_idx] = pos + d[:, None] * dirs

        cross_idx = alive_idx[crossing]
        coll_idx = alive_idx[~crossing]
        if stats is not None:
            stats.record(alive_idx.size, coll_idx.size, cross_idx.size)

        # ---- Stage 3: surface crossings — nudge past, resolve escapes.
        if cross_idx.size:
            CROSSING.banked(ctx, bank, cross_idx, tallies)

        # ---- Stage 4: collisions.
        if coll_idx.size == 0:
            continue
        tallies.score_collision_many(
            bank.weight[coll_idx], sig.nu_fission[coll_idx], sig.total[coll_idx]
        )
        counters.collisions += coll_idx.size

        if ctx.survival_biasing:
            SURVIVAL.banked(
                ctx, bank, coll_idx, tallies, fission_bank, k_norm,
                particle_ids, sig,
            )
            continue

        channels = COLLISION.banked(ctx, bank, coll_idx, sig)

        # Capture: absorb and terminate.
        cap = coll_idx[channels == int(CollisionChannel.CAPTURE)]
        if cap.size:
            tallies.score_absorption_many(
                bank.weight[cap], sig.nu_fission[cap], sig.absorption(cap)
            )
            bank.alive[cap] = False

        # Fission: absorb, bank sites, terminate.
        fis = coll_idx[channels == int(CollisionChannel.FISSION)]
        if fis.size:
            tallies.score_absorption_many(
                bank.weight[fis], sig.nu_fission[fis], sig.absorption(fis)
            )
            counters.fissions += fis.size
            FISSION.banked(ctx, bank, fis, fission_bank, k_norm, particle_ids)
            bank.alive[fis] = False

        # Scatter: pick nuclide, apply kinematics (clamp included).
        sct = coll_idx[channels == int(CollisionChannel.SCATTER)]
        if sct.size:
            SCATTER.banked(ctx, bank, sct)

    return fission_bank
