r"""Event-based (banked) transport: vectorized kernels over particle banks.

The algorithm of Brown & Martin that the paper's micro-benchmarks
prototype, carried to a full implementation: instead of following one
history at a time, *all* live particles advance together through a cycle of
homogeneous stages, each a vectorized kernel over the bank's SoA arrays:

1. **XS lookup** — group the bank by material and apply the banked
   Algorithm 1 (:meth:`repro.physics.macroxs.XSCalculator.banked`) to each
   group (the paper's micro-benchmark #1);
2. **advance** — sample all collision distances at once (micro-benchmark
   #2), ray-trace all boundary distances with the analytic fast geometry,
   move everyone;
3. **surface crossings** — nudge, relocate, apply boundary conditions;
4. **collisions** — branch-free channel selection, then gathered/compressed
   sub-banks for capture, fission (vectorized Watt sampling), and scattering
   (S(alpha, beta) / free-gas / target-at-rest), exactly the
   gather-scatter-compress structure the paper prescribes for conditionals.

Every particle's random-number stream is consumed in exactly the order of
the history-based protocol (see :mod:`repro.transport.history`), so a
history run and an event run with the same seed produce identical particle
histories, tallies, and fission banks — the strongest possible correctness
check for the restructured control flow.
"""

from __future__ import annotations

import numpy as np

from ..constants import SURFACE_NUDGE
from ..data.nuclide import NU_THERMAL_SLOPE
from ..physics.collision import select_channel_many
from ..physics.fission import WATT_A, WATT_B, sample_nu_many, watt_spectrum_many
from ..physics.scattering import elastic_scatter_many, rotate_direction_many
from ..physics.thermal import free_gas_scatter_many
from ..rng.lcg import prn_array
from ..types import CollisionChannel, Reaction
from .context import TransportContext
from .meshtally import PowerTally
from .particle import FissionBank, ParticleBank
from .spectrum import SpectrumTally
from .tally import GlobalTallies

__all__ = ["run_generation_event", "EventLoopStats"]

_TINY = 1.0e-300


class EventLoopStats:
    """Per-stage particle counts — the queue-occupancy profile of the event
    loop (used to study lane utilization / divergence).

    Backed by one amortized-doubling ``(3, capacity)`` int64 array rather
    than unbounded Python lists; ``lookup_counts`` / ``collision_counts`` /
    ``crossing_counts`` are zero-copy views of the recorded prefix.
    """

    _STAGES = ("lookup", "collision", "crossing")

    def __init__(self) -> None:
        self.iterations = 0
        self._counts = np.zeros((3, 16), dtype=np.int64)

    def record(self, n_lookup: int, n_collision: int, n_crossing: int) -> None:
        i = self.iterations
        if i >= self._counts.shape[1]:
            grown = np.zeros((3, 2 * self._counts.shape[1]), dtype=np.int64)
            grown[:, :i] = self._counts
            self._counts = grown
        self._counts[0, i] = n_lookup
        self._counts[1, i] = n_collision
        self._counts[2, i] = n_crossing
        self.iterations = i + 1

    @property
    def lookup_counts(self) -> np.ndarray:
        return self._counts[0, : self.iterations]

    @property
    def collision_counts(self) -> np.ndarray:
        return self._counts[1, : self.iterations]

    @property
    def crossing_counts(self) -> np.ndarray:
        return self._counts[2, : self.iterations]

    def summary(self) -> dict:
        """Per-stage occupancy statistics over the recorded cycles.

        Returns ``{"iterations": n, "stages": {name: {"mean", "min",
        "max", "total"}}}`` — the inputs to the lane-utilization analysis
        (:func:`repro.simd.analysis.lane_utilization_report`).
        """
        stages: dict[str, dict[str, float | int]] = {}
        for row, name in enumerate(self._STAGES):
            counts = self._counts[row, : self.iterations]
            if counts.size:
                stages[name] = {
                    "mean": float(counts.mean()),
                    "min": int(counts.min()),
                    "max": int(counts.max()),
                    "total": int(counts.sum()),
                }
            else:
                stages[name] = {"mean": 0.0, "min": 0, "max": 0, "total": 0}
        return {"iterations": self.iterations, "stages": stages}


def _sample_index_many(weights: np.ndarray, xi: np.ndarray) -> np.ndarray:
    """Vectorized CDF sampling: ``weights`` is (n_choices, n_particles)."""
    cum = np.cumsum(weights, axis=0)
    target = xi * cum[-1]
    idx = np.sum(cum <= target[None, :], axis=0)
    return np.minimum(idx, weights.shape[0] - 1)


def _group_by_value(values: np.ndarray):
    """Yield ``(value, positions)`` for each distinct value, via one stable
    argsort instead of ``np.unique`` plus a boolean scan per value.

    ``positions`` index into ``values`` and are ascending within each group
    (stable sort), and groups come out in ascending value order — exactly
    the iteration order of the ``np.unique`` + mask idiom it replaces, so
    RNG consumption order is unchanged.
    """
    if values.size == 0:
        return
    order = np.argsort(values, kind="stable")
    sorted_vals = values[order]
    boundaries = np.flatnonzero(sorted_vals[1:] != sorted_vals[:-1]) + 1
    start = 0
    for end in [*boundaries.tolist(), sorted_vals.size]:
        yield int(sorted_vals[start]), order[start:end]
        start = end


def run_generation_event(
    ctx: TransportContext,
    positions: np.ndarray,
    energies: np.ndarray,
    tallies: GlobalTallies,
    k_norm: float = 1.0,
    first_id: int = 0,
    stats: EventLoopStats | None = None,
    power: PowerTally | None = None,
    spectrum: SpectrumTally | None = None,
) -> FissionBank:
    """Transport one generation of source particles, event style.

    Mirrors :func:`repro.transport.history.run_generation_history` exactly
    (same tallies, same fission bank, same RNG streams); returns the
    next-generation fission bank.
    """
    calc = ctx.calculator
    counters = ctx.counters
    fission_bank = FissionBank()

    bank = ParticleBank.from_source(positions, energies, first_id, ctx.master_seed)
    particle_ids = first_id + np.arange(positions.shape[0])
    n = bank.n
    tallies.source_weight += float(n)
    counters.rn_draws += 2 * n

    # Per-particle storage refreshed by the lookup stage each cycle.
    sigma_t = np.zeros(n)
    sigma_c = np.zeros(n)
    sigma_f = np.zeros(n)
    nu_sigma_f = np.zeros(n)

    # Compacted live-index bank: starts as the full bank and shrinks
    # monotonically as particles die, so no stage ever rescans dead lanes
    # (the remapping strategy of the GPU event-based literature; the
    # per-cycle ``np.nonzero(bank.alive)`` full-bank scan is gone).
    live = np.arange(n, dtype=np.int64)

    while True:
        # Compact: drop lanes that died last cycle.  ``live`` stays sorted,
        # so the filtered view equals ``np.nonzero(bank.alive)[0]`` without
        # touching the dead part of the bank.
        live = live[bank.alive[live]]
        if live.size == 0:
            break
        alive_idx = live

        # ---- Stage 1: banked cross-section lookups, grouped by material
        # via one stable argsort dispatch (same group order as np.unique).
        mats = ctx.fast.locate_many(bank.position[alive_idx])
        bank.material[alive_idx] = mats
        # (Source particles start inside; crossings already resolved escapes.)
        for mid, pos in _group_by_value(mats):
            grp = alive_idx[pos]
            material = ctx.material(mid)
            states = bank.rng_state[grp]
            res = calc.banked(
                material, bank.energy[grp], rng_states=states, counters=counters
            )
            bank.rng_state[grp] = states
            sigma_t[grp] = res["total"]
            sigma_c[grp] = res["capture"]
            sigma_f[grp] = res["fission"]
            nu_sigma_f[grp] = res["nu_fission"]

        # ---- Stage 2: sample collision distances; ray-trace; advance.
        states, xi = prn_array(bank.rng_state[alive_idx])
        bank.rng_state[alive_idx] = states
        counters.rn_draws += alive_idx.size
        counters.flights += alive_idx.size
        # Gather each per-particle column once; every consumer below reads
        # the compacted copy instead of re-running the fancy index.
        pos = bank.position[alive_idx]
        dirs = bank.direction[alive_idx]
        w = bank.weight[alive_idx]
        d_coll = -np.log(np.maximum(xi, _TINY)) / sigma_t[alive_idx]
        d_bound = ctx.fast.distance_many(pos, dirs)
        crossing = d_bound < d_coll
        d = np.where(crossing, d_bound, d_coll)
        tallies.score_track_many(w, d, nu_sigma_f[alive_idx])
        if power is not None:
            power.score_track_many(
                pos + 0.5 * d[:, None] * dirs,
                w,
                d,
                sigma_f[alive_idx],
            )
        if spectrum is not None:
            spectrum.score_track_many(bank.energy[alive_idx], w, d)
        bank.position[alive_idx] = pos + d[:, None] * dirs

        cross_idx = alive_idx[crossing]
        coll_idx = alive_idx[~crossing]
        if stats is not None:
            stats.record(alive_idx.size, coll_idx.size, cross_idx.size)

        # ---- Stage 3: surface crossings — nudge past, resolve escapes.
        if cross_idx.size:
            bank.position[cross_idx] += (
                SURFACE_NUDGE * bank.direction[cross_idx]
            )
            after = ctx.fast.locate_many(bank.position[cross_idx])
            escaped = cross_idx[after < 0]
            # Escapes are rare (outer box only): scalar BC handling keeps
            # bit-parity with the history loop.
            for j in escaped:
                p_new, u_new, alive = ctx.handle_escape(
                    bank.position[j], bank.direction[j]
                )
                if alive:
                    bank.position[j] = p_new
                    bank.direction[j] = u_new
                else:
                    tallies.n_leaks += 1
                    bank.alive[j] = False

        # ---- Stage 4: collisions.
        if coll_idx.size == 0:
            continue
        tallies.score_collision_many(
            bank.weight[coll_idx], nu_sigma_f[coll_idx], sigma_t[coll_idx]
        )
        counters.collisions += coll_idx.size

        if ctx.survival_biasing:
            _collide_survival_stage(
                ctx, bank, coll_idx, tallies, fission_bank, k_norm,
                particle_ids, sigma_t, sigma_c, sigma_f, nu_sigma_f,
            )
            continue

        states, xi_ch = prn_array(bank.rng_state[coll_idx])
        bank.rng_state[coll_idx] = states
        counters.rn_draws += coll_idx.size
        channels = select_channel_many(
            sigma_t[coll_idx], sigma_c[coll_idx], sigma_f[coll_idx], xi_ch
        )

        # Capture: absorb and terminate.
        cap = coll_idx[channels == int(CollisionChannel.CAPTURE)]
        if cap.size:
            tallies.score_absorption_many(
                bank.weight[cap], nu_sigma_f[cap], sigma_c[cap] + sigma_f[cap]
            )
            bank.alive[cap] = False

        # Fission: absorb, bank sites, terminate.
        fis = coll_idx[channels == int(CollisionChannel.FISSION)]
        if fis.size:
            tallies.score_absorption_many(
                bank.weight[fis], nu_sigma_f[fis], sigma_c[fis] + sigma_f[fis]
            )
            counters.fissions += fis.size
            _fission_stage(ctx, bank, fis, fission_bank, k_norm, particle_ids)
            bank.alive[fis] = False

        # Scatter: pick nuclide, apply kinematics.
        sct = coll_idx[channels == int(CollisionChannel.SCATTER)]
        if sct.size:
            _scatter_stage(ctx, bank, sct)
            low = sct[bank.energy[sct] < ctx.energy_cutoff]
            bank.energy[low] = ctx.energy_cutoff

    return fission_bank


def _collide_survival_stage(
    ctx: TransportContext,
    bank: ParticleBank,
    coll: np.ndarray,
    tallies: GlobalTallies,
    fission_bank: FissionBank,
    k_norm: float,
    particle_ids: np.ndarray,
    sigma_t: np.ndarray,
    sigma_c: np.ndarray,
    sigma_f: np.ndarray,
    nu_sigma_f: np.ndarray,
) -> None:
    """Vectorized implicit-capture collision stage, mirroring the history
    loop's survival protocol draw for draw (site count, per-site Watt,
    scatter sequence, conditional roulette)."""
    counters = ctx.counters
    w = bank.weight[coll]
    sig_a = sigma_c[coll] + sigma_f[coll]
    absorbed = w * sig_a / sigma_t[coll]
    tallies.score_absorption_many(absorbed, nu_sigma_f[coll], sig_a)

    # Expected fission sites (no nuclide attribution: nu Sigma_f is already
    # the material aggregate, and Watt parameters are library constants).
    states, xi_nu = prn_array(bank.rng_state[coll])
    bank.rng_state[coll] = states
    counters.rn_draws += coll.size
    nu_bar = w * nu_sigma_f[coll] / sigma_t[coll]
    n_sites = sample_nu_many(nu_bar, k_norm, xi_nu)
    counters.fissions += int((n_sites > 0).sum())
    max_sites = int(n_sites.max()) if n_sites.size else 0
    for s in range(max_sites):
        sub = coll[n_sites > s]
        if sub.size == 0:
            break
        e_birth, new_states = watt_spectrum_many(
            WATT_A, WATT_B, bank.rng_state[sub]
        )
        bank.rng_state[sub] = new_states
        fission_bank.add_many(
            bank.position[sub], e_birth, particle_ids[sub], seq=s
        )

    bank.weight[coll] = w * (1.0 - sig_a / sigma_t[coll])
    _scatter_stage(ctx, bank, coll)
    low = coll[bank.energy[coll] < ctx.energy_cutoff]
    bank.energy[low] = ctx.energy_cutoff

    # Russian roulette on the reduced weights.
    rl = coll[bank.weight[coll] < ctx.weight_cutoff]
    if rl.size:
        states, xi = prn_array(bank.rng_state[rl])
        bank.rng_state[rl] = states
        counters.rn_draws += rl.size
        survive = xi < bank.weight[rl] / ctx.weight_survival
        bank.weight[rl[survive]] = ctx.weight_survival
        bank.alive[rl[~survive]] = False


def _fission_stage(
    ctx: TransportContext,
    bank: ParticleBank,
    fis: np.ndarray,
    fission_bank: FissionBank,
    k_norm: float,
    particle_ids: np.ndarray,
) -> None:
    """Vectorized fission processing: nuclide attribution, site counts,
    Watt energies — per material group."""
    calc = ctx.calculator
    counters = ctx.counters
    soa = calc.soa
    for mid, pos in _group_by_value(bank.material[fis]):
        grp = fis[pos]
        material = ctx.material(mid)
        ids, _ = material.resolve(ctx.library)
        weights = calc.attribution_weights(
            material, bank.energy[grp], Reaction.FISSION, counters
        )
        states, xi_nuc = prn_array(bank.rng_state[grp])
        which = _sample_index_many(weights, xi_nuc)
        nuclide_ids = ids[which]
        nu_bar = (
            soa.nu0[nuclide_ids] + NU_THERMAL_SLOPE * bank.energy[grp]
        ) * bank.weight[grp]
        states, xi_nu = prn_array(states)
        bank.rng_state[grp] = states
        counters.rn_draws += 2 * grp.size
        n_sites = sample_nu_many(nu_bar, k_norm, xi_nu)

        # Per-site Watt draws, peeled one site-index at a time so each
        # parent stream advances exactly as in the scalar loop.
        max_sites = int(n_sites.max()) if n_sites.size else 0
        for s in range(max_sites):
            sub = grp[n_sites > s]
            if sub.size == 0:
                break
            # Watt parameters are library-wide constants (all nuclides carry
            # the defaults), so one batched sampler covers the whole group.
            nid0 = int(nuclide_ids[0])
            e_birth, new_states = watt_spectrum_many(
                float(soa.watt_a[nid0]), float(soa.watt_b[nid0]),
                bank.rng_state[sub],
            )
            bank.rng_state[sub] = new_states
            fission_bank.add_many(
                bank.position[sub], e_birth, particle_ids[sub], seq=s
            )


def _scatter_stage(ctx: TransportContext, bank: ParticleBank, sct: np.ndarray) -> None:
    """Vectorized scattering: nuclide attribution then the three kinematics
    sub-banks (S(alpha, beta), free-gas, target-at-rest)."""
    calc = ctx.calculator
    counters = ctx.counters
    soa = calc.soa
    chosen = np.empty(sct.size, dtype=np.int64)  # global nuclide ids

    for mid, pos in _group_by_value(bank.material[sct]):
        grp = sct[pos]
        material = ctx.material(mid)
        ids, _ = material.resolve(ctx.library)
        weights = calc.attribution_weights(
            material, bank.energy[grp], Reaction.ELASTIC, counters
        )
        states, xi_nuc = prn_array(bank.rng_state[grp])
        bank.rng_state[grp] = states
        counters.rn_draws += grp.size
        which = _sample_index_many(weights, xi_nuc)
        chosen[pos] = ids[which]

    energies = bank.energy[sct]
    # Per-target metadata as gathers out of the SoA side-tables — no
    # Python loop over the chosen nuclides.
    if calc.use_sab:
        sab_mask = soa.has_sab[chosen] & (energies < soa.sab_cutoff[chosen])
    else:
        sab_mask = np.zeros(sct.size, dtype=bool)
    fg_mask = (~sab_mask) & (energies < ctx.free_gas_cutoff)
    fast_mask = ~(sab_mask | fg_mask)

    # --- S(alpha, beta) sub-bank (bound thermal scattering).
    if sab_mask.any():
        idx = sct[sab_mask]
        nids = chosen[sab_mask]
        states = bank.rng_state[idx]
        states, xi1 = prn_array(states)
        states, xi2 = prn_array(states)
        states, xi_phi = prn_array(states)
        bank.rng_state[idx] = states
        counters.rn_draws += 3 * idx.size
        counters.sab_samples += idx.size
        # All S(a,b) nuclides in a group share a table in practice (H1);
        # group by nuclide id to stay general.
        for nid in np.unique(nids):
            m = nids == nid
            table = soa.sab_tables[int(nid)]
            e_out, mu = table.sample_many(
                bank.energy[idx[m]], xi1[m], xi2[m]
            )
            bank.direction[idx[m]] = rotate_direction_many(
                bank.direction[idx[m]], mu, 2.0 * np.pi * xi_phi[m]
            )
            bank.energy[idx[m]] = e_out

    # --- Free-gas sub-bank (thermal motion, no bound table).
    if fg_mask.any():
        idx = sct[fg_mask]
        nids = chosen[fg_mask]
        states = bank.rng_state[idx]
        xi = np.empty((idx.size, 7))
        for c in range(7):
            states, xi[:, c] = prn_array(states)
        bank.rng_state[idx] = states
        counters.rn_draws += 7 * idx.size
        awr = calc.soa.awr[nids]
        e_out, dir_out = free_gas_scatter_many(
            bank.energy[idx], bank.direction[idx], awr, ctx.temperature, xi
        )
        bank.energy[idx] = e_out
        bank.direction[idx] = dir_out

    # --- Target-at-rest elastic sub-bank.
    if fast_mask.any():
        idx = sct[fast_mask]
        nids = chosen[fast_mask]
        states = bank.rng_state[idx]
        states, xi_mu = prn_array(states)
        states, xi_phi = prn_array(states)
        bank.rng_state[idx] = states
        counters.rn_draws += 2 * idx.size
        awr = calc.soa.awr[nids]
        e_out, mu_lab = elastic_scatter_many(bank.energy[idx], awr, xi_mu)
        bank.direction[idx] = rotate_direction_many(
            bank.direction[idx], mu_lab, 2.0 * np.pi * xi_phi
        )
        bank.energy[idx] = e_out
