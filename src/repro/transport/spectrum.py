r"""Energy-spectrum flux tallies.

A track-length estimator of the scalar flux binned in energy:
:math:`\phi(E_b) \approx \sum w\, d` over flight segments whose energy falls
in bin :math:`b`.  For a light-water reactor the converged spectrum has
three textbook features this tally makes testable end-to-end:

* a **thermal Maxwellian** peak near :math:`kT` (moderation +
  S(alpha, beta) upscatter),
* a **1/E slowing-down** region (elastic moderation, flat lethargy flux),
* a **fission-source** bump in the MeV range (Watt spectrum births).

Scoring consumes no random numbers, so attaching the tally never perturbs
history/event bit-equivalence.
"""

from __future__ import annotations

import numpy as np

from ..constants import ENERGY_MAX, ENERGY_MIN
from ..errors import ReproError

__all__ = ["SpectrumTally"]


class SpectrumTally:
    """Track-length flux spectrum on a log-uniform energy grid."""

    def __init__(
        self,
        n_bins: int = 60,
        e_min: float = ENERGY_MIN,
        e_max: float = ENERGY_MAX,
    ) -> None:
        if n_bins < 1:
            raise ReproError("spectrum tally needs at least one bin")
        if not 0 < e_min < e_max:
            raise ReproError("spectrum tally needs 0 < e_min < e_max")
        self.edges = np.geomspace(e_min, e_max, n_bins + 1)
        self.flux = np.zeros(n_bins)
        self.total_weight = 0.0

    @property
    def n_bins(self) -> int:
        return int(self.flux.size)

    @property
    def centers(self) -> np.ndarray:
        """Geometric bin centers [MeV]."""
        return np.sqrt(self.edges[:-1] * self.edges[1:])

    def bin_of(self, energies: np.ndarray | float) -> np.ndarray | int:
        """Bin index per energy (clamped to the grid)."""
        idx = np.searchsorted(self.edges, energies, side="right") - 1
        idx = np.clip(idx, 0, self.n_bins - 1)
        return idx

    # -- Scoring -------------------------------------------------------------

    def score_track(self, energy: float, weight: float, distance: float) -> None:
        """Scalar track-length flux score (history loop)."""
        self.flux[int(self.bin_of(energy))] += weight * distance
        self.total_weight += weight * distance

    def score_track_many(
        self, energies: np.ndarray, weight: np.ndarray, distance: np.ndarray
    ) -> None:
        """Vectorized score over a bank of segments (event loop)."""
        scores = weight * distance
        np.add.at(self.flux, self.bin_of(energies), scores)
        self.total_weight += float(scores.sum())

    # -- Views -----------------------------------------------------------------

    def per_lethargy(self) -> np.ndarray:
        """Flux per unit lethargy, normalized to unit integral.

        The canonical reactor-spectrum plot: the 1/E region is flat in this
        representation.
        """
        if self.total_weight == 0.0:
            return np.zeros(self.n_bins)
        du = np.log(self.edges[1:] / self.edges[:-1])
        phi = self.flux / du
        return phi / (phi * du).sum()

    def fraction_below(self, energy: float) -> float:
        """Fraction of the flux below an energy (e.g. the thermal cut)."""
        if self.total_weight == 0.0:
            return 0.0
        idx = int(self.bin_of(energy))
        # Whole bins below, ignoring partial-bin overlap (bins are fine).
        return float(self.flux[:idx].sum() / self.total_weight)
